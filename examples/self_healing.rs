//! §5.9 / §5.10 — the self-healing fabric: fail a link under live
//! traffic, watch the reachability protocol detect it, route around it,
//! and re-admit it after repair.
//!
//! ```sh
//! cargo run --release --example self_healing
//! ```

use stardust::fabric::{FabricConfig, FabricEngine};
use stardust::sim::units::gbps;
use stardust::sim::{SimDuration, SimTime};
use stardust::topo::builders::{two_tier, TwoTierParams};
use stardust::topo::LinkId;

fn main() {
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let cfg = FabricConfig {
        host_ports: 2,
        host_port_bps: gbps(40),
        // Reachability message every 10µs, 3 misses to declare failure —
        // Appendix E's configuration scaled to the simulation.
        reach_interval: Some(SimDuration::from_micros(10)),
        reach_miss_threshold: 3,
        ..FabricConfig::default()
    };
    let mut net = FabricEngine::new(tt.topo, cfg);
    let n = net.num_fas() as u32;

    // Continuous 20G flow from FA0 to the farthest FA.
    net.add_cbr_flow(
        0,
        n - 1,
        0,
        0,
        gbps(20),
        1500,
        SimTime::ZERO,
        SimTime::from_millis(30),
    );
    net.run_until(SimTime::from_millis(2));
    let before = net.stats().packets_delivered.get();
    println!("t=2ms: {} packets delivered, 0 lost — steady state", before);

    // Fail one of FA0's two uplinks (link 0 connects FA0 to its first
    // aggregation FE).
    let victim = LinkId(0);
    net.fail_link(victim);
    println!("t=2ms: FAILED link {:?} (one of FA0's uplinks)", victim);

    net.run_until(SimTime::from_millis(2) + SimDuration::from_micros(100));
    let discarded_early = net.stats().packets_discarded.get();
    println!(
        "t=2.1ms: {} packets discarded while the failure was undetected",
        discarded_early
    );

    net.run_until(SimTime::from_millis(10));
    let discarded_total = net.stats().packets_discarded.get();
    println!(
        "t=10ms: discards stopped at {} — traffic now balanced over the surviving uplink",
        discarded_total
    );

    // Repair the link; after `reach_miss_threshold` good messages it is
    // re-admitted (§5.10: "declared valid only after the number of good
    // reachability cells received crosses a threshold").
    net.restore_link(victim);
    println!("t=10ms: RESTORED link {:?}", victim);
    net.run_until(SimTime::from_millis(30));

    let s = net.stats();
    println!(
        "t=30ms: {} delivered, {} discarded in total, {} cells lost on the dead link",
        s.packets_delivered.get(),
        s.packets_discarded.get(),
        s.cells_dropped.get()
    );
    assert!(
        s.packets_discarded.get() > 0,
        "the failure window loses packets"
    );
    assert_eq!(
        s.packets_discarded.get(),
        discarded_total,
        "no loss after detection or after repair"
    );
    println!("\nself-healing verified: loss confined to the detection window");
}
