//! §5.4 — incast absorption: the same many-to-one burst on the Ethernet
//! push fabric and on Stardust.
//!
//! The paper's thought experiment: every ToR sends a 1 MB burst to one
//! 50G port. The push fabric delivers everything to the destination ToR,
//! whose buffer overflows; Stardust admits the incast at the destination
//! port's rate and parks the surplus (~0.99 MB per source) in ingress
//! VOQs — "the available packet buffer memory per destination is
//! effectively ×128 larger".
//!
//! ```sh
//! cargo run --release --example incast_absorption
//! ```

use stardust::baseline::{LoadBalance, PushConfig, PushEngine};
use stardust::fabric::{FabricConfig, FabricEngine};
use stardust::sim::units::{gbps, mib};
use stardust::sim::SimTime;
use stardust::topo::builders::{two_tier, TwoTierParams};

const BURST_BYTES: u64 = 1_000_000;
const PKT: u32 = 1_000;

fn main() {
    let params = TwoTierParams::paper_scaled(8); // 32 FAs
    let n = params.num_fa;
    let victim_port_bps = gbps(50);

    // --- Ethernet push fabric, 1 MiB of egress buffer per ToR port ---
    let tt = two_tier(params);
    let mut push = PushEngine::new(
        tt.topo.clone(),
        PushConfig {
            link_bps: gbps(50),
            host_port_bps: victim_port_bps,
            host_ports: 2,
            tor_buffer_bytes: mib(1),
            lb: LoadBalance::PacketSpray,
            ..PushConfig::default()
        },
    );
    let pkts_per_src = BURST_BYTES / PKT as u64;
    for src in 1..n {
        for i in 0..pkts_per_src {
            push.inject(SimTime::from_nanos(i * 160), src, 0, 0, 0, src, PKT);
        }
    }
    push.run_until(SimTime::from_millis(50));

    // --- Stardust ---
    let mut sd = FabricEngine::new(
        tt.topo,
        FabricConfig {
            host_ports: 2,
            host_port_bps: victim_port_bps,
            ..FabricConfig::default()
        },
    );
    for src in 1..n {
        for i in 0..pkts_per_src {
            sd.inject(SimTime::from_nanos(i * 160), src, 0, 0, 0, PKT);
        }
    }
    sd.run_until(SimTime::from_millis(50));

    let total = (n as u64 - 1) * BURST_BYTES;
    println!(
        "incast: {} sources x {} MB toward one {}G port ({} MB total)\n",
        n - 1,
        BURST_BYTES / 1_000_000,
        victim_port_bps / 1_000_000_000,
        total / 1_000_000
    );
    println!("Ethernet push fabric:");
    println!(
        "  delivered : {} packets",
        push.stats().packets_delivered.get()
    );
    println!(
        "  dropped   : {} in fabric, {} at the ToR egress buffer",
        push.stats().fabric_drops.get(),
        push.stats().egress_drops.get()
    );

    println!("\nStardust scheduled fabric:");
    println!(
        "  delivered : {} packets",
        sd.stats().packets_delivered.get()
    );
    println!(
        "  dropped   : {} cells, {} packets discarded",
        sd.stats().cells_dropped.get(),
        sd.stats().packets_discarded.get()
    );
    println!(
        "  peak VOQ  : {:.2} MB at a single ingress (surplus parked at sources)",
        sd.stats().max_voq_bytes as f64 / 1e6
    );
    println!(
        "  peak egress buffer: {:.0} KB (shallow, as §6.2 predicts)",
        sd.stats().max_egress_bytes as f64 / 1e3
    );

    assert!(
        push.stats().egress_drops.get() > 0,
        "push fabric must overflow"
    );
    assert_eq!(
        sd.stats().cells_dropped.get(),
        0,
        "Stardust must be lossless"
    );
}
