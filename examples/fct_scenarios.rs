//! Fig 10(b) in miniature — one workload spec, two engines.
//!
//! A seeded `Scenario` expands a heavy-tailed Web-workload mix into a
//! deterministic flow list and offers it to both the cell-accurate
//! Stardust fabric (finite message flows through VOQs, credits, packing
//! and spraying — no per-flow transport machinery) and the §6.3 fat-tree
//! transport simulator running TCP-over-Stardust. The FCT tables come
//! back as the same `FlowStats` type, so the comparison is one loop.
//!
//! ```sh
//! cargo run --release --example fct_scenarios
//! ```

use stardust::fabric::{FabricConfig, FabricEngine};
use stardust::sim::units::gbps;
use stardust::sim::{SimDuration, SimTime};
use stardust::topo::builders::{kary, two_tier, KaryParams, TwoTierParams};
use stardust::transport::{Protocol, TransportConfig, TransportSim};
use stardust::workload::{FlowSizeDist, Scenario, ScenarioKind, TransportFlowEngine};

fn main() {
    let scenario = Scenario {
        name: "example-web-mix".into(),
        seed: 42,
        kind: ScenarioKind::Mix {
            dist: FlowSizeDist::fb_web(),
            n_flows: 100,
            // Per-node Poisson gap: ~1 Gbps offered per 10G NIC.
            node_gap: SimDuration::from_micros(800),
        },
    };
    let horizon = SimTime::from_millis(100);

    // The cell fabric: 16 FAs, one 10G host port each.
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let cfg = FabricConfig {
        host_ports: 1,
        host_port_bps: gbps(10),
        ..FabricConfig::default()
    };
    let mut engine = FabricEngine::new(tt.topo, cfg);
    let fabric = scenario.run(&mut engine, horizon);
    assert_eq!(engine.stats().cells_dropped.get(), 0);

    // The fat-tree transport model: k = 4, 16 hosts, TCP-over-Stardust.
    let ft = kary(KaryParams {
        k: 4,
        ..KaryParams::paper_6_3()
    });
    let sim = TransportSim::new(ft, TransportConfig::default());
    let mut wrapped = TransportFlowEngine::new(sim, Protocol::Stardust);
    let transport = scenario.run(&mut wrapped, horizon);

    println!("100 Web-mix flows, 16 nodes, one spec on two engines:\n");
    println!("{:>22} {:>12} {:>12}", "", "SD-fabric", "SD-transport");
    for (label, q) in [("median FCT [µs]", 0.5), ("p99 FCT [µs]", 0.99)] {
        let us = |fs: &stardust::sim::FlowStats| {
            fs.fct_quantile(q)
                .map_or("-".into(), |d| format!("{:.1}", d.as_micros_f64()))
        };
        println!("{label:>22} {:>12} {:>12}", us(&fabric), us(&transport));
    }
    println!(
        "{:>22} {:>12} {:>12}",
        "completed",
        format!("{}/{}", fabric.completed(), fabric.len()),
        format!("{}/{}", transport.completed(), transport.len()),
    );
    println!(
        "\nThe scheduled cell fabric needs no per-flow transport state to \
         finish every flow: cells are sprayed over all eligible links and \
         the destination's credit scheduler paces each source."
    );
}
