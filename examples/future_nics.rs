//! §8 — "The Case for Future Data Centers": Fabric-Adapter-like NICs.
//!
//! The paper's closing vision removes ToR switches entirely: every server
//! NIC becomes a miniature Fabric Adapter (host-scale VOQs, cell
//! handling, credit scheduling) connected straight into Fabric Elements.
//! "Connecting a NIC to a Fabric Element is the same as to a ToR, while
//! the reachability table required is smaller ... or can be entirely
//! eliminated if the NIC connects to a single Fabric Element."
//!
//! This example builds exactly that: many tiny FAs (one host port, two
//! fabric uplinks — a dual-homed smart NIC) over a single tier of Fabric
//! Elements, and shows the fabric behaving like one giant lossless switch
//! between servers.
//!
//! ```sh
//! cargo run --release --example future_nics
//! ```

use stardust::fabric::{FabricConfig, FabricEngine};
use stardust::sim::units::gbps;
use stardust::sim::{SimDuration, SimTime};
use stardust::topo::builders::{single_tier, SingleTierParams};

fn main() {
    // 64 servers, each with a dual-homed 2×50G smart NIC, over 2 Fabric
    // Elements (a rack-scale Stardust cell, the paper's end state).
    let params = SingleTierParams {
        num_fa: 64,
        fa_uplinks: 2,
        fe_count: 2,
        meters: 5,
    };
    let st = single_tier(params);
    let cfg = FabricConfig {
        host_ports: 1,                        // the NIC's host-side DMA engine
        host_port_bps: gbps(90),              // ~PCIe-limited
        credit_bytes: 2048,                   // host-scale credits (§4.1 minimum)
        voq_max_bytes: Some(4 * 1024 * 1024), // host memory as buffer [54,58]
        low_latency_tc: Some(0),              // RPCs bypass the credit round trip
        num_tcs: 2,
        ..FabricConfig::default()
    };
    println!(
        "NIC-fabric: {} server NICs x {}x50G over {} Fabric Elements",
        params.num_fa, params.fa_uplinks, params.fe_count
    );

    let mut net = FabricEngine::new(st.topo, cfg);

    // Bulk traffic: every server streams to its neighbor (storage-style).
    let n = params.num_fa;
    let stop = SimTime::from_millis(2);
    for s in 0..n {
        net.add_cbr_flow(s, (s + 1) % n, 0, 1, gbps(60), 4096, SimTime::ZERO, stop);
    }
    // Latency-critical RPCs on the low-latency class, injected mid-run.
    let rpc_at = SimTime::from_millis(1);
    for s in 0..8 {
        net.inject(rpc_at, s, n - 1 - s, 0, 0, 512);
    }
    net.begin_measurement(SimTime::from_micros(100));
    net.run_until(SimTime::from_millis(3));

    let s = net.stats();
    println!("\nafter 3 ms:");
    println!("  packets delivered : {}", s.packets_delivered.get());
    println!(
        "  cells dropped     : {} (lossless NIC fabric)",
        s.cells_dropped.get()
    );
    println!(
        "  bulk utilization  : {:.1}% of fabric payload capacity",
        net.fabric_utilization(SimDuration::from_millis(3)) * 100.0
    );
    println!(
        "  packet latency    : mean {:.2} us (bulk, store-and-forward)",
        s.packet_latency_ns.mean() / 1000.0
    );
    println!(
        "  RPC path          : low-latency class bypasses the credit round \
         trip (§5.6)"
    );
    assert_eq!(s.cells_dropped.get(), 0);
    assert_eq!(s.packets_discarded.get(), 0);
    println!(
        "\n§8: \"Stardust predicts the elimination of packet switches, replaced by cell \
         switches in the network, and smart network hardware at the hosts.\""
    );
}
