//! Datacenter planner — the paper's analytic models as a sizing tool.
//!
//! Given a target host count, prints what it takes to build the network
//! as a Stardust fabric vs fat-trees at each link bundling, with device,
//! link, cost and power totals (Figures 2 and 11, Appendix A/D).
//!
//! ```sh
//! cargo run --release --example datacenter_planner -- 100000
//! ```

use stardust::model::cost::{CostConfig, PowerConfig, FIG11A_FT, FIG11A_STARDUST, FIG11B_FT};
use stardust::model::scalability::FIG2_CONFIGS;

fn main() {
    let hosts: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    println!("=== planning a {hosts}-host data center network ===\n");

    println!(
        "{:<30} {:>6} {:>10} {:>12} {:>14}",
        "technology", "tiers", "devices", "serial links", "(12.8T device)"
    );
    for c in FIG2_CONFIGS {
        match (
            c.tiers_for_hosts(hosts),
            c.devices_for_hosts(hosts),
            c.links_for_hosts(hosts),
        ) {
            (Some(t), Some(d), Some(l)) => {
                println!("{:<30} {:>6} {:>10} {:>12}", c.label, t, d, l)
            }
            _ => println!("{:<30} {:>6}", c.label, "infeasible within 4 tiers"),
        }
    }

    println!("\n--- bill of materials (6.4T platform generation, Table 3 prices) ---");
    println!(
        "{:<30} {:>6} {:>8} {:>10} {:>14} {:>10}",
        "technology", "tiers", "ToRs", "switches", "total cost $", "vs FT L=4"
    );
    let mut rows: Vec<CostConfig> = vec![FIG11A_STARDUST];
    rows.extend_from_slice(&FIG11A_FT);
    let reference = FIG11A_FT[0].bill(hosts).map(|b| b.total());
    for cfg in rows {
        match cfg.bill(hosts) {
            Some(b) => {
                let rel = reference
                    .map(|r| format!("{:.0}%", 100.0 * b.total() as f64 / r as f64))
                    .unwrap_or_else(|| "-".into());
                println!(
                    "{:<30} {:>6} {:>8} {:>10} {:>14.0} {:>10}",
                    cfg.label,
                    b.tiers,
                    b.tors,
                    b.fabric_switches,
                    b.total_usd(),
                    rel
                );
            }
            None => println!("{:<30} infeasible within 4 tiers", cfg.label),
        }
    }

    println!("\n--- power (12.8T generation, Fig 10(d) FE ratio) ---");
    println!(
        "{:<30} {:>14} {:>16}",
        "fat-tree baseline", "FT power [kW]", "Stardust rel. [%]"
    );
    for cfg in FIG11B_FT {
        match (
            cfg.network_power_w(hosts, false),
            cfg.stardust_relative_power_pct(hosts),
        ) {
            (Some(w), Some(p)) => {
                println!("{:<30} {:>14.1} {:>16.1}", cfg.label, w / 1e3, p)
            }
            _ => println!("{:<30} infeasible within 4 tiers", cfg.label),
        }
    }
    let sd = PowerConfig {
        label: "Stardust",
        port_gbps: 50,
        ports: 256,
        bundle: 1,
    };
    if let Some(w) = sd.network_power_w(hosts, true) {
        println!("{:<30} {:>14.1}", "Stardust absolute", w / 1e3);
    }
}
