//! Quickstart: build a Stardust fabric, push traffic through it, inspect
//! the measurements.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stardust::fabric::{FabricConfig, FabricEngine};
use stardust::sim::units::gbps;
use stardust::sim::{SimDuration, SimTime};
use stardust::topo::builders::{two_tier, TwoTierParams};

fn main() {
    // A 1/8-scale replica of the paper's §6.2 fabric: 32 Fabric Adapters,
    // 16 aggregation + 8 spine Fabric Elements, 50G links, 100 m fiber.
    let params = TwoTierParams::paper_scaled(8);
    let tt = two_tier(params);
    println!(
        "topology: {} FAs ({} uplinks each), {} aggregation FEs, {} spine FEs, {} links",
        tt.fas.len(),
        params.fa_uplinks,
        tt.t1.len(),
        tt.t2.len(),
        tt.topo.num_links()
    );

    let cfg = FabricConfig {
        host_ports: 2,
        host_port_bps: gbps(80),
        ..FabricConfig::default()
    };
    println!(
        "cells: {} B ({} B header), credits: {} B, speedup: {}%",
        cfg.cell_bytes,
        cfg.cell_header_bytes,
        cfg.credit_bytes,
        cfg.credit_speedup * 100.0
    );
    let mut net = FabricEngine::new(tt.topo, cfg);

    // A few hand-injected packets...
    for (src, dst, bytes) in [(0u32, 17u32, 1500u32), (3, 29, 9000), (31, 4, 64)] {
        net.inject(SimTime::ZERO, src, dst, 0, 0, bytes);
    }
    // ...plus an all-to-all saturation workload (the §6.2 experiment).
    net.saturate_all_to_all(750, 32 * 1024);
    net.begin_measurement(SimTime::from_micros(200));

    let horizon = SimTime::from_millis(2);
    net.run_until(horizon);

    let s = net.stats();
    println!("\nafter {}:", horizon);
    println!("  packets delivered : {}", s.packets_delivered.get());
    println!("  cells sent        : {}", s.cells_sent.get());
    println!(
        "  cells dropped     : {}  (the scheduled fabric is lossless)",
        s.cells_dropped.get()
    );
    println!("  credits granted   : {}", s.credits_sent.get());
    println!(
        "  fabric utilization: {:.1}% of payload capacity",
        net.fabric_utilization(SimDuration::from_millis(2)) * 100.0
    );
    println!(
        "  fabric latency    : mean {:.2} us, p99 {:.2} us, max {:.2} us",
        s.cell_latency_ns.mean() / 1000.0,
        s.cell_latency_ns.quantile(0.99) as f64 / 1000.0,
        s.cell_latency_ns.max() as f64 / 1000.0
    );
    println!(
        "  last-stage queues : mean {:.2} cells, p99 {} cells",
        s.last_stage_queue.mean(),
        s.last_stage_queue.quantile(0.99)
    );
    assert_eq!(s.cells_dropped.get(), 0);
}
