//! # Stardust — divide and conquer in the data center network
//!
//! A complete, from-scratch reproduction of *Stardust: Divide and Conquer
//! in the Data Center Network* (Zilberman, Bracha, Schzukin — NSDI 2019):
//! the scheduled cell-fabric architecture, the simulators behind its
//! evaluation, the Ethernet push-fabric and host-transport baselines it
//! is compared against, and the analytic scale/cost/power/resilience
//! models.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `stardust-sim` | discrete-event kernel: ps clock, calendar, links, RNG, stats |
//! | [`model`] | `stardust-model` | Appendix A–E analytics: fat-tree math, parallelism, data path, M/D/1, silicon, cost, power, resilience |
//! | [`topo`] | `stardust-topo` | folded-Clos / fat-tree builders (§6.1, §6.2, §6.3 shapes) |
//! | [`fabric`] | `stardust-fabric` | **the core contribution**: Fabric Adapter + Fabric Element engine — VOQs, credits, packing, spraying, FCI, reachability |
//! | [`baseline`] | `stardust-baseline` | push-fabric Ethernet baseline (Fig 7 / Fig 12 / §5.4) |
//! | [`transport`] | `stardust-transport` | htsim-style host transports: TCP, DCTCP, MPTCP, DCQCN, TCP-over-Stardust (Fig 10) |
//! | [`workload`] | `stardust-workload` | permutation / incast / all-to-all patterns, \[74\]-shaped packet and flow sizes |
//!
//! ## Quickstart
//!
//! ```
//! use stardust::fabric::{FabricConfig, FabricEngine};
//! use stardust::sim::SimTime;
//! use stardust::topo::builders::{two_tier, TwoTierParams};
//!
//! // A 1/16-scale replica of the paper's §6.2 two-tier fabric.
//! let tt = two_tier(TwoTierParams::paper_scaled(16));
//! let mut net = FabricEngine::new(tt.topo, FabricConfig::default());
//!
//! // One 9 KB packet from Fabric Adapter 0 to FA 8, port 0, best effort.
//! net.inject(SimTime::ZERO, 0, 8, 0, 0, 9000);
//! net.run_until(SimTime::from_millis(1));
//!
//! assert_eq!(net.stats().packets_delivered.get(), 1);
//! assert_eq!(net.stats().cells_dropped.get(), 0); // the fabric is lossless
//! ```
//!
//! The `stardust-bench` crate regenerates every table and figure of the
//! paper; see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for paper-vs-measured results.

pub use stardust_baseline as baseline;
pub use stardust_fabric as fabric;
pub use stardust_model as model;
pub use stardust_sim as sim;
pub use stardust_topo as topo;
pub use stardust_transport as transport;
pub use stardust_workload as workload;
