//! Golden-value regression tests for the analytic layer.
//!
//! Each test pins the Appendix A–E math at a handful of paper-parameter
//! points so a refactor cannot silently drift the closed forms. Values
//! were cross-computed independently (closed forms by hand, the M/D/1
//! recursion re-implemented in a separate script) — if one of these fails,
//! the *model* changed, not the test.

use stardust::model::fattree::FatTreeParams;
use stardust::model::md1;
use stardust::model::scalability::FIG2_CONFIGS;

fn close(actual: f64, expected: f64, tol: f64, what: &str) {
    assert!(
        (actual - expected).abs() <= tol,
        "{what}: got {actual}, pinned {expected}"
    );
}

/// M/D/1 mean number in system (Pollaczek–Khinchine) at paper-relevant
/// utilizations, including `rho = 1/1.05` — the paper's fabric speedup.
#[test]
fn golden_md1_mean_in_system() {
    close(md1::md1_mean_in_system(0.5), 0.75, 1e-12, "L(0.5)");
    close(md1::md1_mean_in_system(0.8), 2.4, 1e-12, "L(0.8)");
    close(md1::md1_mean_in_system(0.9), 4.95, 1e-12, "L(0.9)");
    // fs = 1.05 → rho = 20/21: L = 20/21 + (400/441)/(2/21) = 10.476190…
    close(
        md1::md1_mean_in_system(20.0 / 21.0),
        10.476_190_476_190_476,
        1e-9,
        "L(1/1.05)",
    );
}

/// The exact stationary queue distribution: empty probability and tail
/// mass at the same utilization points.
#[test]
fn golden_md1_distribution() {
    for (rho, p0, ccdf8, ccdf32) in [
        // ccdf32 at rho=0.5 sits at the f64 noise floor (~5e-15); the
        // absolute term of the tolerance below absorbs that.
        (0.5, 0.5, 1.001_315_006e-4, 4.616_047e-15),
        (0.8, 0.2, 4.245_491_381e-2, 1.371_609_729e-6),
        (0.9, 0.1, 2.189_192_269e-1, 1.517_685_974e-3),
        (20.0 / 21.0, 1.0 / 21.0, 4.917_124_983e-1, 4.816_849_422e-2),
    ] {
        let d = md1::queue_length_distribution(rho, 256);
        close(d[0], p0, 1e-9, "P(N=0)");
        close(md1::ccdf(&d, 8), ccdf8, ccdf8 * 1e-6, "P(N>=8)");
        close(md1::ccdf(&d, 32), ccdf32, ccdf32 * 1e-5 + 1e-14, "P(N>=32)");
    }
    // §6.2's extrapolation point: P(queue >= 128) at fs = 1.05.
    close(
        md1::paper_tail_approx(1.05, 128),
        3.763_045_227e-6,
        1e-12,
        "fs^-256",
    );
}

/// Table 2 closed forms at the two headline device configurations:
/// Stardust's 256×50G (k=256, t=80, l=1) and the 32×400G fat-tree
/// (k=32, t=10, l=8).
#[test]
fn golden_fattree_counts() {
    let sd = FatTreeParams::new(256, 80, 1);
    assert_eq!(sd.max_tors(1), 256);
    assert_eq!(sd.max_tors(2), 32_768);
    assert_eq!(sd.max_switches(2), 30_720); // 3/2 · 80 · 256
    assert_eq!(sd.link_bundles(2), 5_242_880); // 80 · 256²
    assert_eq!(sd.max_hosts(2, 40), 1_310_720);
    assert_eq!(sd.switches_for_tors(2, 25_000), 23_438);

    let l8 = FatTreeParams::new(32, 10, 8);
    assert_eq!(l8.max_tors(3), 8_192); // 32³/4
    assert_eq!(l8.max_switches(3), 12_800); // 5/4 · 10 · 32²
    assert_eq!(l8.links_per_tor(4), 560); // 7 · 10 · 8
    assert_eq!(l8.total_links(2), 81_920); // 10 · 32² · 8
    assert_eq!(l8.max_hosts(4, 40), 5_242_880);
}

/// Figure 2(b)/2(c) at the one-million-host point, all four bundle
/// configurations: minimum tiers, total devices, total serial links.
#[test]
fn golden_scalability_million_hosts() {
    // (tiers, devices, links) per config, in FIG2_CONFIGS order.
    let pinned = [
        (4, 79_688, 14_000_000), // FT 400G×32, L=8
        (3, 64_063, 6_000_000),  // FT 200G×64, L=4
        (3, 64_063, 6_000_000),  // FT 100G×128, L=2
        (2, 48_438, 4_000_000),  // Stardust 50G×256, L=1
    ];
    for (c, (tiers, devices, links)) in FIG2_CONFIGS.iter().zip(pinned) {
        assert_eq!(c.tiers_for_hosts(1_000_000), Some(tiers), "{}", c.label);
        assert_eq!(c.devices_for_hosts(1_000_000), Some(devices), "{}", c.label);
        assert_eq!(c.links_for_hosts(1_000_000), Some(links), "{}", c.label);
    }
}
