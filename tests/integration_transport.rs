//! Integration: the §6.3 transport comparison at small scale — the
//! qualitative orderings of Figure 10 must hold.

use stardust::sim::{DetRng, SimDuration, SimTime};
use stardust::topo::builders::{kary, KaryParams};
use stardust::transport::{FlowId, Protocol, TransportConfig, TransportSim};
use stardust::workload::permutation;

fn permutation_run(proto: Protocol, k: u32, ms: u64) -> Vec<f64> {
    let ft = kary(KaryParams {
        k,
        ..KaryParams::paper_6_3()
    });
    let mut sim = TransportSim::new(ft, TransportConfig::default());
    let n = sim.num_hosts();
    let mut rng = DetRng::from_label(7, "itest-perm");
    let perm = permutation(n, &mut rng);
    let ids: Vec<FlowId> = (0..n as u32)
        .map(|s| sim.add_flow(proto, s, perm[s as usize], u64::MAX / 2, SimTime::ZERO))
        .collect();
    let half = SimTime::from_millis(ms / 2);
    sim.run_until(half);
    let base: Vec<u64> = ids.iter().map(|&i| sim.flow(i).acked).collect();
    sim.run_until(SimTime::from_millis(ms));
    let w = SimDuration::from_millis(ms - ms / 2).as_secs_f64();
    ids.iter()
        .zip(base)
        .map(|(&i, b)| (sim.flow(i).acked - b) as f64 * 8.0 / w / 1e9)
        .collect()
}

#[test]
fn fig10a_ordering_stardust_beats_dctcp() {
    let sd = permutation_run(Protocol::Stardust, 4, 20);
    let dctcp = permutation_run(Protocol::Dctcp, 4, 20);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (m_sd, m_dc) = (mean(&sd), mean(&dctcp));
    assert!(m_sd > 9.0, "stardust mean {m_sd}");
    assert!(m_sd > m_dc * 1.2, "stardust {m_sd} vs dctcp {m_dc}");
}

#[test]
fn fig10a_stardust_fairness() {
    // The paper: 9.44G on 96% of flows. At k=4 scale: nearly every flow
    // at line rate.
    let sd = permutation_run(Protocol::Stardust, 4, 20);
    let near_line = sd.iter().filter(|&&g| g > 9.4).count() as f64 / sd.len() as f64;
    assert!(near_line > 0.9, "only {near_line} of flows near line rate");
}

#[test]
fn fig10c_stardust_fair_incast_without_loss() {
    let ft = kary(KaryParams {
        k: 4,
        ..KaryParams::paper_6_3()
    });
    let mut sim = TransportSim::new(ft, TransportConfig::default());
    let ids: Vec<FlowId> = (1..13u32)
        .map(|s| sim.add_flow(Protocol::Stardust, s, 0, 450_000, SimTime::ZERO))
        .collect();
    sim.run_until(SimTime::from_millis(100));
    let fcts: Vec<f64> = ids
        .iter()
        .map(|&i| sim.flow(i).fct().expect("unfinished").as_secs_f64() * 1e3)
        .collect();
    let first = fcts.iter().cloned().fold(f64::INFINITY, f64::min);
    let last = fcts.iter().cloned().fold(0.0f64, f64::max);
    assert_eq!(sim.counters.drops.get(), 0);
    // Ideal last-FCT: 12 × 450KB at 10G ≈ 4.32 ms; fairness keeps the
    // first close to the last.
    assert!(last < 6.5, "last {last}ms");
    assert!(last / first < 1.6, "fairness first={first} last={last}");
}

#[test]
fn fig10b_short_flows_faster_on_stardust_than_mptcp() {
    let run = |proto: Protocol| {
        let ft = kary(KaryParams {
            k: 4,
            ..KaryParams::paper_6_3()
        });
        let mut sim = TransportSim::new(ft, TransportConfig::default());
        // Background load.
        let mut rng = DetRng::from_label(9, "bg");
        for src in 2..16u32 {
            for _ in 0..2 {
                let mut dst = rng.below(16) as u32;
                while dst == src {
                    dst = rng.below(16) as u32;
                }
                sim.add_flow(proto, src, dst, u64::MAX / 2, SimTime::ZERO);
            }
        }
        // Measured short flows 0 → 15.
        let ids: Vec<FlowId> = (0..30)
            .map(|i| {
                sim.add_flow(
                    proto,
                    0,
                    15,
                    30_000,
                    SimTime::from_millis(2) + SimDuration::from_micros(300 * i),
                )
            })
            .collect();
        sim.run_until(SimTime::from_millis(120));
        let mut fcts: Vec<f64> = ids
            .iter()
            .filter_map(|&i| sim.flow(i).fct())
            .map(|d| d.as_secs_f64() * 1e3)
            .collect();
        fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(
            fcts.len() >= 25,
            "{proto:?}: too few completions {}",
            fcts.len()
        );
        fcts[fcts.len() / 2]
    };
    let sd = run(Protocol::Stardust);
    let mptcp = run(Protocol::Mptcp);
    assert!(sd < mptcp, "stardust median {sd}ms vs mptcp {mptcp}ms");
}

#[test]
fn deterministic_across_protocols() {
    for proto in [
        Protocol::Tcp,
        Protocol::Dctcp,
        Protocol::Mptcp,
        Protocol::Dcqcn,
        Protocol::Stardust,
    ] {
        let one = permutation_run(proto, 4, 6);
        let two = permutation_run(proto, 4, 6);
        assert_eq!(one, two, "{proto:?} not deterministic");
    }
}
