//! Cross-crate integration: the fabric engine against the analytic
//! models and conservation invariants.

use stardust::fabric::{FabricConfig, FabricEngine};
use stardust::model::md1;
use stardust::sim::units::gbps;
use stardust::sim::{SimDuration, SimTime};
use stardust::topo::builders::{two_tier, TwoTierParams};

fn engine_at_scale(util: f64, ms: u64, scale: u32) -> FabricEngine {
    let params = TwoTierParams::paper_scaled(scale);
    let tt = two_tier(params);
    let mut cfg = FabricConfig::default();
    let capacity = params.fa_uplinks as f64 * cfg.fabric_link_bps as f64 * cfg.payload_fraction();
    cfg.host_ports = 2;
    cfg.host_port_bps = (util * capacity / 2.0) as u64;
    cfg.fci_threshold_cells = 96;
    let mut e = FabricEngine::new(tt.topo, cfg);
    e.saturate_all_to_all(750, 32 * 1024);
    e.begin_measurement(SimTime::from_micros(300));
    e.run_until(SimTime::from_millis(ms));
    e
}

fn engine_at_utilization(util: f64, ms: u64) -> FabricEngine {
    engine_at_scale(util, ms, 16)
}

#[test]
fn achieved_utilization_tracks_offered() {
    for util in [0.5, 0.8, 0.92] {
        let e = engine_at_utilization(util, 2);
        let achieved = e.fabric_utilization(SimDuration::from_millis(2));
        assert!(
            (achieved - util).abs() < 0.06,
            "offered {util}, achieved {achieved}"
        );
        assert_eq!(e.stats().cells_dropped.get(), 0);
    }
}

#[test]
fn queue_tail_decays_like_md1() {
    // §4.2.1 / §6.2: "queue size probability is an exponential function of
    // fabric utilization, conforming to the theoretical M/D/1 model". At
    // reduced scale the credit bursts clump over few links (batch-ish
    // arrivals), so the absolute tail sits above pure-Poisson M/D/1 by
    // roughly the clump factor; the *exponential decay* is the invariant.
    // We check the log-slope of the CCDF against M/D/1's within the
    // clump-size band, at a scale wide enough (4 uplinks) for spraying to
    // do some whitening.
    let util = 0.9;
    let e = engine_at_scale(util, 1, 8);
    let dist = md1::queue_length_distribution(util, 512);
    let h = &e.stats().last_stage_queue;
    assert!(h.count() > 100_000, "need samples, got {}", h.count());
    let slope =
        |lo: u64, hi: u64, f: &dyn Fn(u64) -> f64| (f(lo).ln() - f(hi).ln()) / (hi - lo) as f64;
    let sim_slope = slope(8, 40, &|n| e.stats().last_stage_queue.ccdf(n).max(1e-12));
    let md1_slope = slope(8, 40, &|n| md1::ccdf(&dist, n as usize).max(1e-12));
    assert!(sim_slope > 0.0, "sim tail must decay");
    // Batch arrivals of ~credit/cell/uplinks ≈ 4 cells slow the decay by
    // about that factor; anything slower means queues are not M/D/1-like.
    assert!(
        sim_slope > md1_slope / 8.0,
        "sim decay {sim_slope} too slow vs M/D/1 {md1_slope}"
    );
    assert!(
        sim_slope < md1_slope * 2.0,
        "sim decay {sim_slope} implausibly fast vs M/D/1 {md1_slope}"
    );
    // And the deep tail is genuinely small: this is a shallow-buffer
    // fabric ("8 MB" egress extrapolation relies on it).
    assert!(e.stats().last_stage_queue.ccdf(96) < 1e-2);
}

#[test]
fn queue_tail_is_exponential_and_load_ordered() {
    let e80 = engine_at_utilization(0.8, 2);
    let e95 = engine_at_utilization(0.95, 2);
    let t80 = e80.stats().last_stage_queue.ccdf(24);
    let t95 = e95.stats().last_stage_queue.ccdf(24);
    assert!(
        t95 > t80 * 2.0,
        "tails must fatten with load: {t80} vs {t95}"
    );
}

#[test]
fn latency_grows_with_load_but_stays_bounded() {
    // Fig 9 left: "even at 95% utilization, the latency is bound by 13
    // microseconds" (full scale, 100 m fibers).
    let e66 = engine_at_utilization(0.66, 2);
    let e95 = engine_at_utilization(0.95, 2);
    let m66 = e66.stats().cell_latency_ns.mean();
    let m95 = e95.stats().cell_latency_ns.mean();
    assert!(m95 > m66, "latency must grow with load");
    assert!(
        e95.stats().cell_latency_ns.quantile(0.999) < 15_000,
        "p99.9 {}ns exceeds the paper's 13us-scale bound",
        e95.stats().cell_latency_ns.quantile(0.999)
    );
}

#[test]
fn oversubscription_is_controlled_by_fci() {
    // §6.2: at 120% offered load FCI throttles the effective utilization
    // to ~0.9 with no cell loss.
    let e = engine_at_utilization(1.2, 3);
    let eff = e.fabric_utilization(SimDuration::from_millis(3));
    assert!(eff > 0.8 && eff < 1.0, "effective utilization {eff}");
    assert_eq!(
        e.stats().cells_dropped.get(),
        0,
        "lossless even oversubscribed"
    );
    assert!(e.stats().fci_marks.get() > 0, "FCI must engage");
}

#[test]
fn packet_conservation_closed_workload() {
    // Everything injected is delivered exactly once (no loss, no dup).
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let mut e = FabricEngine::new(
        tt.topo,
        FabricConfig {
            host_ports: 2,
            host_port_bps: gbps(40),
            ..FabricConfig::default()
        },
    );
    let n = e.num_fas() as u32;
    let mut injected = 0u64;
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                for i in 0..20 {
                    e.inject(
                        SimTime::from_nanos(i * 777),
                        src,
                        dst,
                        (i % 2) as u8,
                        0,
                        517,
                    );
                    injected += 1;
                }
            }
        }
    }
    e.run_until(SimTime::from_millis(20));
    let s = e.stats();
    assert_eq!(s.packets_injected.get(), injected);
    assert_eq!(s.packets_delivered.get(), injected);
    assert_eq!(s.packets_discarded.get(), 0);
    assert_eq!(s.bytes_delivered.get(), injected * 517);
}

#[test]
fn egress_memory_stays_within_the_papers_bound() {
    // §6.2 extrapolates 8 MB of egress memory for 256 links; our scaled
    // fabric must stay proportionally far below that.
    let e = engine_at_utilization(0.95, 2);
    let bound = md1::egress_memory_bytes(128, 256, 2); // per-port uplink share
                                                       // The engine buffers whole packets at egress; allow generous slack
                                                       // while still proving "shallow" (<< 1 MB per port vs multi-MB ToRs).
    assert!(
        e.stats().max_egress_bytes < 64 * bound,
        "egress peak {} vs scaled bound {}",
        e.stats().max_egress_bytes,
        bound
    );
}
