//! Integration: Stardust vs the Ethernet push fabric on the paper's
//! head-to-head scenarios (Fig 7, Fig 12, §5.4), plus the
//! sequential-vs-sharded differential sweep over every `Scenario`.

use stardust::baseline::{LoadBalance, PushConfig, PushEngine};
use stardust::fabric::shard::ExecMode;
use stardust::fabric::{FabricConfig, FabricEngine, ShardedFabricEngine};
use stardust::sim::units::gbps;
use stardust::sim::{SimDuration, SimTime};
use stardust::topo::builders::{two_tier, TwoTierParams};
use stardust::topo::{NodeKind, Topology};
use stardust::workload::{FlowSizeDist, Scenario, ScenarioKind};

fn fig7_topo() -> Topology {
    let mut t = Topology::new();
    let tors: Vec<_> = (0..3).map(|_| t.add_node(NodeKind::Edge, 1)).collect();
    let sws: Vec<_> = (0..2).map(|_| t.add_node(NodeKind::Fabric, 2)).collect();
    for &tor in &tors {
        for &sw in &sws {
            t.add_link(tor, sw, 10);
        }
    }
    t
}

fn gbps_of(bytes: u64, ms: u64) -> f64 {
    bytes as f64 * 8.0 / (ms as f64 * 1e-3) / 1e9
}

#[test]
fn fig7_pull_protects_innocent_traffic() {
    let ms = 2;
    let stop = SimTime::from_millis(ms);
    let horizon = SimTime::from_millis(ms + 2);

    let mut push = PushEngine::new(
        fig7_topo(),
        PushConfig {
            link_bps: gbps(100),
            host_port_bps: gbps(100),
            host_ports: 2,
            switch_buffer_bytes: 256 * 1024,
            tor_buffer_bytes: 1024 * 1024,
            lb: LoadBalance::PacketSpray,
            ..PushConfig::default()
        },
    );
    push.add_cbr_flow(0, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
    push.add_cbr_flow(0, 2, 1, 0, gbps(100), 1500, SimTime::ZERO, stop);
    push.add_cbr_flow(1, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
    push.run_until(horizon);

    let mut pull = FabricEngine::new(
        fig7_topo(),
        FabricConfig {
            fabric_link_bps: gbps(100),
            host_port_bps: gbps(100),
            host_ports: 2,
            ..FabricConfig::default()
        },
    );
    pull.add_cbr_flow(0, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
    pull.add_cbr_flow(0, 2, 1, 0, gbps(100), 1500, SimTime::ZERO, stop);
    pull.add_cbr_flow(1, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
    pull.run_until(horizon);

    // Push: B collaterally damaged to ~2/3 (paper: 66%).
    let push_b = gbps_of(push.stats().delivered_per_port[2][1], ms);
    assert!(push_b < 80.0, "push B {push_b}");
    assert!(push.stats().fabric_drops.get() > 0);

    // Pull: both ports at full rate, nothing dropped in the fabric.
    let pull_a = gbps_of(pull.stats().delivered_per_port[2][0], ms).min(100.0);
    let pull_b = gbps_of(pull.stats().delivered_per_port[2][1], ms).min(100.0);
    assert!(pull_a > 95.0, "pull A {pull_a}");
    assert!(pull_b > 95.0, "pull B {pull_b}");
    assert_eq!(pull.stats().cells_dropped.get(), 0);
    // "The eventual throughput from Stardust is [better than] the standard
    // Ethernet switch." (both sides clamped to port rate: egress buffers
    // keep draining briefly after the flows stop).
    let push_a = gbps_of(push.stats().delivered_per_port[2][0], ms).min(100.0);
    let push_b = push_b.min(100.0);
    assert!(pull_a + pull_b > push_a + push_b);
}

#[test]
fn fig12_priority_starvation_only_in_push() {
    let ms = 2;
    let stop = SimTime::from_millis(ms);
    let horizon = SimTime::from_millis(ms + 2);

    let mut push = PushEngine::new(
        fig7_topo(),
        PushConfig {
            link_bps: gbps(100),
            host_port_bps: gbps(100),
            host_ports: 2,
            switch_buffer_bytes: 256 * 1024,
            lb: LoadBalance::PacketSpray,
            ..PushConfig::default()
        },
    );
    push.add_cbr_flow(0, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop); // A high
    push.add_cbr_flow(0, 2, 1, 1, gbps(100), 1500, SimTime::ZERO, stop); // B low
    push.add_cbr_flow(1, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop); // A high
    push.run_until(horizon);
    let push_b = gbps_of(push.stats().delivered_per_port[2][1], ms);
    assert!(
        push_b < 20.0,
        "push should starve low-priority B, got {push_b}"
    );

    let mut pull = FabricEngine::new(
        fig7_topo(),
        FabricConfig {
            fabric_link_bps: gbps(100),
            host_port_bps: gbps(100),
            host_ports: 2,
            ..FabricConfig::default()
        },
    );
    pull.add_cbr_flow(0, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
    pull.add_cbr_flow(0, 2, 1, 1, gbps(100), 1500, SimTime::ZERO, stop);
    pull.add_cbr_flow(1, 2, 0, 0, gbps(100), 1500, SimTime::ZERO, stop);
    pull.run_until(horizon);
    let pull_b = gbps_of(pull.stats().delivered_per_port[2][1], ms).min(100.0);
    assert!(pull_b > 95.0, "pull must deliver B fully, got {pull_b}");
}

#[test]
fn incast_absorbed_by_stardust_dropped_by_push() {
    let params = TwoTierParams::paper_scaled(16);
    let n = params.num_fa;
    let tt = two_tier(params);

    let mut push = PushEngine::new(
        tt.topo.clone(),
        PushConfig {
            link_bps: gbps(50),
            host_port_bps: gbps(50),
            host_ports: 2,
            tor_buffer_bytes: 256 * 1024,
            lb: LoadBalance::PacketSpray,
            ..PushConfig::default()
        },
    );
    let mut sd = FabricEngine::new(
        tt.topo,
        FabricConfig {
            host_ports: 2,
            host_port_bps: gbps(50),
            ..FabricConfig::default()
        },
    );
    for src in 1..n {
        for i in 0..300u64 {
            push.inject(SimTime::from_nanos(i * 200), src, 0, 0, 0, src, 1000);
            sd.inject(SimTime::from_nanos(i * 200), src, 0, 0, 0, 1000);
        }
    }
    push.run_until(SimTime::from_millis(20));
    sd.run_until(SimTime::from_millis(20));

    assert!(
        push.stats().egress_drops.get() > 0,
        "push ToR buffer must overflow"
    );
    assert_eq!(sd.stats().cells_dropped.get(), 0);
    assert_eq!(sd.stats().packets_discarded.get(), 0);
    assert_eq!(sd.stats().packets_delivered.get(), (n as u64 - 1) * 300);
    // The incast parks at the sources, not the destination.
    assert!(sd.stats().max_voq_bytes > 100_000);
    assert!(sd.stats().max_egress_bytes < 1_000_000);
}

/// Every `Scenario` kind — Permutation, Incast, and Mix over both
/// Facebook flow-size distributions — through the sequential and the
/// sharded fabric at two seeds each: the **per-flow FCT tables** (every
/// start and finish timestamp, to the picosecond) must be identical, not
/// just the aggregates. This is the differential test behind the sharded
/// engine's claim that parallelism is observably free.
#[test]
fn scenarios_sequential_vs_sharded_identical_flow_tables() {
    let scenarios: Vec<(Scenario, SimTime)> = vec![
        (
            Scenario {
                name: "diff-perm".into(),
                seed: 0, // overwritten per seed below
                kind: ScenarioKind::Permutation {
                    flow_bytes: 100_000,
                },
            },
            SimTime::from_millis(5),
        ),
        (
            Scenario {
                name: "diff-incast".into(),
                seed: 0,
                kind: ScenarioKind::Incast {
                    backends: 8,
                    response_bytes: 150_000,
                },
            },
            SimTime::from_millis(8),
        ),
        (
            Scenario {
                name: "diff-mix-web".into(),
                seed: 0,
                kind: ScenarioKind::Mix {
                    dist: FlowSizeDist::fb_web(),
                    n_flows: 30,
                    node_gap: SimDuration::from_micros(400),
                },
            },
            SimTime::from_millis(8),
        ),
        (
            Scenario {
                name: "diff-mix-hadoop".into(),
                seed: 0,
                kind: ScenarioKind::Mix {
                    dist: FlowSizeDist::fb_hadoop(),
                    n_flows: 8,
                    node_gap: SimDuration::from_micros(800),
                },
            },
            SimTime::from_millis(20),
        ),
    ];
    let cfg = || FabricConfig {
        host_ports: 1,
        host_port_bps: gbps(40),
        ..FabricConfig::default()
    };
    for (scn, horizon) in &scenarios {
        for seed in [41u64, 1234] {
            let scn = Scenario {
                seed,
                ..scn.clone()
            };
            let tt = two_tier(TwoTierParams::paper_scaled(16));
            let mut seq = FabricEngine::new(tt.topo, cfg());
            let seq_flows = scn.run(&mut seq, *horizon);
            assert!(
                seq_flows.completed() > 0,
                "{} seed {seed}: no flow completed",
                scn.name
            );
            let tt = two_tier(TwoTierParams::paper_scaled(16));
            let mut sh = ShardedFabricEngine::new(tt.topo, cfg(), 3);
            sh.set_exec_mode(ExecMode::Inline);
            let sh_flows = scn.run(&mut sh, *horizon);
            assert_eq!(
                seq_flows, sh_flows,
                "{} seed {seed}: per-flow FCT tables diverged",
                scn.name
            );
        }
    }
}

#[test]
fn fairness_of_incast_draining() {
    // §5.4: "The destination's egress scheduler distributes bandwidth
    // (credits) to incast sources evenly" — per-source delivered bytes
    // must be nearly equal mid-incast.
    let params = TwoTierParams::paper_scaled(16);
    let n = params.num_fa;
    let tt = two_tier(params);
    let mut sd = FabricEngine::new(
        tt.topo,
        FabricConfig {
            host_ports: 2,
            host_port_bps: gbps(50),
            ..FabricConfig::default()
        },
    );
    for src in 1..n {
        sd.add_cbr_flow(
            src,
            0,
            0,
            0,
            gbps(20),
            1000,
            SimTime::ZERO,
            SimTime::from_millis(5),
        );
    }
    sd.run_until(SimTime::from_millis(5));
    // All sources share one 50G port: delivered should be ~equal per src.
    // delivered_per_fa is per destination; use credits as a proxy for
    // even distribution: every source VOQ got nearly the same count.
    let s = sd.stats();
    assert_eq!(s.cells_dropped.get(), 0);
    let total = s.delivered_per_port[0][0];
    let per_src = total / (n as u64 - 1);
    assert!(per_src > 0);
    // Port never exceeded its physical rate.
    let max_bytes = 50e9 * 5e-3 / 8.0;
    assert!((total as f64) <= max_bytes * 1.02, "{total} vs {max_bytes}");
}
