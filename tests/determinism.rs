//! Determinism regression: a fabric run is a pure function of
//! `(topology, config, workload, seed)`.
//!
//! The EventQueue guarantees deterministic tie-breaking (FIFO among events
//! scheduled for the same picosecond) and every random draw flows from a
//! labelled [`DetRng`] stream, so two identical runs must produce
//! **bit-identical** [`FabricStats`] — identical delivered/dropped counts
//! and identical latency histograms, bin by bin. This locks the property
//! the paper's evaluation (and every future perf refactor here) relies on.

use stardust::fabric::{FabricConfig, FabricEngine, FabricStats};
use stardust::sim::{CalendarCore, CoreKind, DetRng, HeapCore, SimTime};
use stardust::topo::builders::{two_tier, TwoTierParams};
use stardust::workload::permutation;

/// Run the §6.2 two-tier permutation scenario at 1/16 scale on the
/// event core `K`.
fn permutation_run_on<K: CoreKind>(seed: u64) -> FabricEngine<K> {
    let params = TwoTierParams::paper_scaled(16);
    let tt = two_tier(params);
    let cfg = FabricConfig {
        seed,
        host_ports: 2,
        ..FabricConfig::default()
    };
    let num_fa = tt.fas.len();
    let mut rng = DetRng::from_label(seed, "det-regression-workload");
    let perm = permutation(num_fa, &mut rng);
    let mut e = FabricEngine::<K>::with_core(tt.topo, cfg);
    // Each FA streams 40 jittered packets at its permutation partner,
    // mixing 9 KB jumbos with small packets so packing paths execute.
    for src in 0..num_fa as u32 {
        let mut t = 0u64;
        for i in 0..40u32 {
            t += rng.below(2_000);
            let bytes = if i % 4 == 0 {
                9000
            } else {
                64 + rng.below(1400) as u32
            };
            e.inject(
                SimTime::from_nanos(t),
                src,
                perm[src as usize],
                (i % 2) as u8,
                0,
                bytes,
            );
        }
    }
    e.run_until(SimTime::from_millis(1));
    e
}

/// The same scenario on the production calendar-queue core.
fn permutation_run(seed: u64) -> FabricEngine {
    permutation_run_on::<CalendarCore>(seed)
}

#[test]
fn same_seed_bit_identical_stats() {
    let a = permutation_run(0xDC_FA_B0_05);
    let b = permutation_run(0xDC_FA_B0_05);

    // The whole measurement record must match, histograms included.
    assert_eq!(a.stats(), b.stats(), "same-seed runs diverged");

    // And the run must have actually exercised the fabric: every injected
    // packet delivered (the fabric is lossless), nonzero latency samples.
    let s: &FabricStats = a.stats();
    assert_eq!(s.packets_injected.get(), 16 * 40);
    assert_eq!(s.packets_delivered.get(), s.packets_injected.get());
    assert_eq!(s.cells_dropped.get(), 0);
    assert!(s.packet_latency_ns.count() > 0);
}

#[test]
fn heap_and_calendar_cores_bit_identical() {
    // The calendar-queue event core must be a behavior-preserving
    // replacement for the original binary heap: the §6.2 permutation
    // scenario on the old core and on the new core must agree on every
    // counter and every histogram bin, and must have executed the same
    // number of events in the same simulated span.
    let heap = permutation_run_on::<HeapCore>(0xDC_FA_B0_05);
    let cal = permutation_run_on::<CalendarCore>(0xDC_FA_B0_05);
    assert_eq!(heap.stats(), cal.stats(), "old→new event core diverged");
    assert_eq!(heap.events_executed(), cal.events_executed());
    assert_eq!(heap.now(), cal.now());
    assert!(heap.stats().packets_delivered.get() > 0);
}

/// The Fig 10(b) Web mix on the cell fabric, via the shared `Scenario`
/// spec and the finite-flow message layer.
fn web_mix_fct_run<K: CoreKind>() -> stardust::sim::FlowStats {
    use stardust::sim::SimDuration;
    use stardust::workload::{FlowSizeDist, Scenario, ScenarioKind};
    let scn = Scenario {
        name: "det-fct-web-mix".into(),
        seed: 11,
        kind: ScenarioKind::Mix {
            dist: FlowSizeDist::fb_web(),
            n_flows: 80,
            node_gap: SimDuration::from_micros(400),
        },
    };
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let cfg = FabricConfig {
        host_ports: 1,
        host_port_bps: stardust::sim::units::gbps(10),
        ..FabricConfig::default()
    };
    let mut e = FabricEngine::<K>::with_core(tt.topo, cfg);
    scn.run(&mut e, SimTime::from_millis(50))
}

#[test]
fn same_seed_fabric_fct_runs_bit_identical() {
    // The acceptance gate of the finite-flow layer: two same-seed Fig 10
    // FCT runs on the fabric engine must produce **bit-identical**
    // per-flow tables and FCT histograms — same starts, same finish
    // timestamps to the picosecond, bin-for-bin equal histograms.
    let a = web_mix_fct_run::<CalendarCore>();
    let b = web_mix_fct_run::<CalendarCore>();
    assert_eq!(a, b, "same-seed fabric FCT runs diverged");
    // The run must have been a real FCT experiment, not a no-op: every
    // offered flow completed on the lossless fabric.
    assert_eq!(a.len(), 80);
    assert_eq!(a.completed(), 80);
    assert!(a.fct_quantile(0.5).unwrap() > stardust::sim::SimDuration::ZERO);
    // And the event core must stay behavior-invisible for message flows
    // exactly as it is for CBR/saturation workloads.
    let h = web_mix_fct_run::<HeapCore>();
    assert_eq!(a, h, "FCT results differ across event cores");
}

#[test]
fn different_seed_diverges() {
    // Not a correctness requirement of the fabric, but a canary that the
    // seed actually reaches the spray/workload RNG streams: with a
    // different seed the latency microstructure should not be identical.
    let a = permutation_run(1);
    let b = permutation_run(2);
    assert_ne!(a.stats(), b.stats(), "seed does not influence the run");
}
