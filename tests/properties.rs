//! Property-based tests (proptest) on the core data structures and
//! invariants.

use proptest::prelude::*;
use stardust::fabric::cell::{Packet, PacketId};
use stardust::fabric::packing::pack_burst;
use stardust::fabric::cell::BurstId;
use stardust::fabric::spray::Sprayer;
use stardust::fabric::voq::Voq;
use stardust::model::fattree::FatTreeParams;
use stardust::model::md1;
use stardust::sim::stats::Histogram;
use stardust::sim::units::serialization_time;
use stardust::sim::{DetRng, EventQueue, SimTime};

fn pkt(bytes: u32) -> Packet {
    Packet {
        id: PacketId(0),
        src_fa: 0,
        dst_fa: 1,
        dst_port: 0,
        tc: 0,
        bytes,
        injected_at: SimTime::ZERO,
    }
}

proptest! {
    /// Packing conserves payload exactly and produces at most one short
    /// cell per burst (§3.4 / §5.3).
    #[test]
    fn packing_conserves_payload(sizes in prop::collection::vec(1u32..9000, 1..40)) {
        let total: u64 = sizes.iter().map(|&s| s as u64).sum();
        let packets: Vec<Packet> = sizes.iter().map(|&s| pkt(s)).collect();
        let pb = pack_burst(BurstId(0), packets, 256, 8, true, SimTime::ZERO);
        let payload: u64 = pb.cell_sizes.iter().map(|&c| (c - 8) as u64).sum();
        prop_assert_eq!(payload, total);
        let short = pb.cell_sizes.iter().filter(|&&c| c < 256).count();
        prop_assert!(short <= 1, "more than one short cell");
        prop_assert_eq!(pb.burst.n_cells as u64, total.div_ceil(248));
    }

    /// Non-packed cells never beat packed cells on wire bytes.
    #[test]
    fn packing_never_loses(sizes in prop::collection::vec(1u32..9000, 1..20)) {
        let mk = |packed| pack_burst(
            BurstId(0),
            sizes.iter().map(|&s| pkt(s)).collect(),
            256, 8, packed, SimTime::ZERO,
        );
        prop_assert!(mk(true).wire_bytes() <= mk(false).wire_bytes());
    }

    /// VOQ grant accounting: bytes out never exceed credits in by more
    /// than one packet, across any grant/push interleaving.
    #[test]
    fn voq_credit_conservation(
        pushes in prop::collection::vec(1u32..9000, 1..50),
        credit in 1024u64..16384,
    ) {
        let mut v = Voq::new();
        let mut total_in = 0u64;
        for &b in &pushes {
            v.push(pkt(b));
            total_in += b as u64;
        }
        let mut granted = 0u64;
        let mut released = 0u64;
        let max_pkt = *pushes.iter().max().unwrap() as u64;
        for _ in 0..200 {
            let burst = v.grant(credit, credit as i64);
            granted += credit;
            released += burst.iter().map(|p| p.bytes as u64).sum::<u64>();
            if v.is_empty() { break; }
            // Invariant: release never exceeds credit by more than the
            // final overshooting packet.
            prop_assert!(released <= granted + max_pkt);
        }
        prop_assert_eq!(released, total_in, "everything eventually drains");
    }

    /// The sprayer is perfectly balanced over any whole number of rounds.
    #[test]
    fn sprayer_balance(links in 1usize..64, rounds in 1u32..8, seed in any::<u64>()) {
        let rng = DetRng::from_parts(seed, 1);
        let mut s = Sprayer::new((0..links as u32).collect(), 4, rng);
        let mut counts = vec![0u32; links];
        for _ in 0..(links as u32 * rounds) {
            counts[s.next() as usize] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == rounds));
    }

    /// Event queue pops in nondecreasing time order regardless of the
    /// insertion order.
    #[test]
    fn event_queue_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some(ev) = q.pop() {
            prop_assert!(ev.at >= last);
            last = ev.at;
        }
    }

    /// Serialization time is additive: ser(a) + ser(b) == ser(a+b) up to
    /// 1 ps of integer rounding per call.
    #[test]
    fn serialization_additive(a in 1u64..100_000, b in 1u64..100_000, g in 1u64..400) {
        let rate = g * 1_000_000_000;
        let lhs = serialization_time(a, rate) + serialization_time(b, rate);
        let rhs = serialization_time(a + b, rate);
        let diff = lhs.as_ps().abs_diff(rhs.as_ps());
        prop_assert!(diff <= 2, "diff {diff}ps");
    }

    /// Histogram CCDF is monotone nonincreasing and consistent with the
    /// sample count.
    #[test]
    fn histogram_ccdf_monotone(samples in prop::collection::vec(0u64..500, 1..300)) {
        let mut h = Histogram::new(1, 512);
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let mut last = 1.0f64;
        for n in 0..512u64 {
            let c = h.ccdf(n);
            prop_assert!(c <= last + 1e-12);
            last = c;
        }
    }

    /// Fat-tree capacity is monotone in every parameter (Appendix A).
    #[test]
    fn fattree_monotone(k in 2u64..64, t in 1u64..32, n in 1u32..4) {
        let p = FatTreeParams::new(2 * k, t, 1);
        let bigger_k = FatTreeParams::new(2 * k + 2, t, 1);
        prop_assert!(bigger_k.max_tors(n) >= p.max_tors(n));
        prop_assert!(p.max_tors(n + 1) >= p.max_tors(n));
        prop_assert!(bigger_k.max_switches(n) >= 0u64.max(0));
        // Pro-rata provisioning never exceeds the full build.
        let full = p.max_switches(n);
        let part = p.switches_for_tors(n, p.max_tors(n));
        prop_assert!(part <= full + p.k);
    }

    /// M/D/1 distributions are valid probability vectors with the exact
    /// empty probability for any utilization.
    #[test]
    fn md1_distribution_valid(rho_millis in 1u64..990) {
        let rho = rho_millis as f64 / 1000.0;
        let d = md1::queue_length_distribution(rho, 256);
        let sum: f64 = d.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6);
        prop_assert!((d[0] - (1.0 - rho)).abs() < 1e-6);
        prop_assert!(d.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// The paper's o(fs^-2N) tail approximation is monotone in both
    /// arguments.
    #[test]
    fn md1_paper_tail_monotone(fs_centi in 101u32..300, n in 1u32..64) {
        let fs = fs_centi as f64 / 100.0;
        let t = md1::paper_tail_approx(fs, n);
        prop_assert!(t <= md1::paper_tail_approx(fs, n.saturating_sub(1).max(1)) + 1e-18);
        prop_assert!(t >= md1::paper_tail_approx(fs + 0.1, n) - 1e-18);
    }
}
