//! Property-based tests on the core data structures and invariants.
//!
//! The container this repo builds in has no network access, so instead of
//! `proptest` these use a small self-contained harness: each property runs
//! against `PROPTEST_CASES` randomly generated inputs (default 64) drawn
//! from the workspace's own deterministic [`DetRng`]. Failures print the
//! case seed so a run is exactly reproducible.

use stardust::fabric::cell::BurstId;
use stardust::fabric::cell::{Packet, PacketId, NO_FLOW};
use stardust::fabric::packing::pack_burst;
use stardust::fabric::shard::ExecMode;
use stardust::fabric::spray::Sprayer;
use stardust::fabric::voq::Voq;
use stardust::fabric::{FabricConfig, FabricEngine, ShardedFabricEngine};
use stardust::model::fattree::FatTreeParams;
use stardust::model::md1;
use stardust::sim::event::HeapEventQueue;
use stardust::sim::stats::Histogram;
use stardust::sim::units::serialization_time;
use stardust::sim::{DetRng, EventQueue, Mailboxes, ShardClock, SimDuration, SimTime};
use stardust::topo::builders::{single_tier, SingleTierParams};
use stardust::topo::LinkId;

/// Number of random cases per property (override with `PROPTEST_CASES`).
fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Run `body` once per case with a per-case deterministic RNG. On a
/// failure, reports the case index and seed before propagating the panic,
/// so the failing case can be re-run in isolation.
fn for_each_case(label: &str, mut body: impl FnMut(&mut DetRng)) {
    for case in 0..cases() {
        let seed = 0x57a2_d057 ^ case;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = DetRng::from_label(seed, label);
            body(&mut rng);
        }));
        if let Err(panic) = result {
            eprintln!(
                "property '{label}' failed at case {case}/{} \
                 (DetRng::from_label({seed:#x}, {label:?}))",
                cases()
            );
            std::panic::resume_unwind(panic);
        }
    }
}

/// Random `u32` in `[lo, hi)`.
fn gen_u32(rng: &mut DetRng, lo: u32, hi: u32) -> u32 {
    lo + rng.below((hi - lo) as u64) as u32
}

/// Random `u64` in `[lo, hi)`.
fn gen_u64(rng: &mut DetRng, lo: u64, hi: u64) -> u64 {
    lo + rng.below(hi - lo)
}

/// Random vec of `u32` values in `[lo, hi)`, length in `[len_lo, len_hi)`.
fn gen_vec_u32(rng: &mut DetRng, lo: u32, hi: u32, len_lo: usize, len_hi: usize) -> Vec<u32> {
    let len = len_lo + rng.index(len_hi - len_lo);
    (0..len).map(|_| gen_u32(rng, lo, hi)).collect()
}

/// Random vec of `u64` values in `[lo, hi)`, length in `[len_lo, len_hi)`.
fn gen_vec_u64(rng: &mut DetRng, lo: u64, hi: u64, len_lo: usize, len_hi: usize) -> Vec<u64> {
    let len = len_lo + rng.index(len_hi - len_lo);
    (0..len).map(|_| gen_u64(rng, lo, hi)).collect()
}

fn pkt(bytes: u32) -> Packet {
    Packet {
        id: PacketId(0),
        src_fa: 0,
        dst_fa: 1,
        dst_port: 0,
        tc: 0,
        bytes,
        flow: NO_FLOW,
        injected_at: SimTime::ZERO,
    }
}

/// Packing conserves payload exactly and produces at most one short
/// cell per burst (§3.4 / §5.3).
#[test]
fn packing_conserves_payload() {
    for_each_case("packing_conserves_payload", |rng| {
        let sizes = gen_vec_u32(rng, 1, 9000, 1, 40);
        let total: u64 = sizes.iter().map(|&s| s as u64).sum();
        let packets: Vec<Packet> = sizes.iter().map(|&s| pkt(s)).collect();
        let pb = pack_burst(BurstId(0), packets, 256, 8, true, SimTime::ZERO);
        let payload: u64 = pb.cell_sizes.iter().map(|&c| (c - 8) as u64).sum();
        assert_eq!(payload, total, "sizes {sizes:?}");
        let short = pb.cell_sizes.iter().filter(|&&c| c < 256).count();
        assert!(short <= 1, "more than one short cell for sizes {sizes:?}");
        assert_eq!(
            pb.burst.n_cells as u64,
            total.div_ceil(248),
            "sizes {sizes:?}"
        );
    });
}

/// Non-packed cells never beat packed cells on wire bytes.
#[test]
fn packing_never_loses() {
    for_each_case("packing_never_loses", |rng| {
        let sizes = gen_vec_u32(rng, 1, 9000, 1, 20);
        let mk = |packed| {
            pack_burst(
                BurstId(0),
                sizes.iter().map(|&s| pkt(s)).collect(),
                256,
                8,
                packed,
                SimTime::ZERO,
            )
        };
        assert!(
            mk(true).wire_bytes() <= mk(false).wire_bytes(),
            "sizes {sizes:?}"
        );
    });
}

/// VOQ grant accounting: bytes out never exceed credits in by more
/// than one packet, across any grant/push interleaving.
#[test]
fn voq_credit_conservation() {
    for_each_case("voq_credit_conservation", |rng| {
        let pushes = gen_vec_u32(rng, 1, 9000, 1, 50);
        let credit = gen_u64(rng, 1024, 16384);
        let mut v = Voq::new();
        let mut total_in = 0u64;
        for &b in &pushes {
            v.push(pkt(b));
            total_in += b as u64;
        }
        let mut granted = 0u64;
        let mut released = 0u64;
        let max_pkt = *pushes.iter().max().unwrap() as u64;
        // A queue of `total_in` bytes needs ⌈total_in / credit⌉ grants
        // plus at most one per overshooting packet (a fixed iteration
        // count under-drains when the credit is small and packets large).
        let grant_budget = total_in / credit + pushes.len() as u64 + 2;
        for _ in 0..grant_budget {
            let burst = v.grant(credit, credit as i64);
            granted += credit;
            released += burst.iter().map(|p| p.bytes as u64).sum::<u64>();
            if v.is_empty() {
                break;
            }
            // Invariant: release never exceeds credit by more than the
            // final overshooting packet.
            assert!(released <= granted + max_pkt, "pushes {pushes:?}");
        }
        assert_eq!(released, total_in, "everything eventually drains");
    });
}

/// The sprayer is perfectly balanced over any whole number of rounds.
#[test]
fn sprayer_balance() {
    for_each_case("sprayer_balance", |rng| {
        let links = 1 + rng.index(63);
        let rounds = gen_u32(rng, 1, 8);
        let seed = rng.next_u64();
        let child = DetRng::from_parts(seed, 1);
        let mut s = Sprayer::new((0..links as u32).collect(), 4, child);
        let mut counts = vec![0u32; links];
        for _ in 0..(links as u32 * rounds) {
            counts[s.next() as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c == rounds),
            "links {links} rounds {rounds} counts {counts:?}"
        );
    });
}

/// Event queue pops in nondecreasing time order regardless of the
/// insertion order.
#[test]
fn event_queue_sorted() {
    for_each_case("event_queue_sorted", |rng| {
        let times = gen_vec_u64(rng, 0, 1_000_000, 1, 200);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some(ev) = q.pop() {
            assert!(ev.at >= last);
            last = ev.at;
        }
    });
}

/// The calendar queue is a drop-in ordering match for the binary heap:
/// any random interleaving of schedules and pops (spanning the merge,
/// wheel and overflow levels, including same-timestamp clusters and
/// batched drains) produces the identical `(time, seq, payload)` trace
/// on both cores.
#[test]
fn calendar_queue_is_drop_in_for_heap() {
    for_each_case("calendar_queue_is_drop_in_for_heap", |rng| {
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut payload = 0u64;
        let ops = 200 + rng.index(800);
        let mut cal_batch = Vec::new();
        let mut heap_batch = Vec::new();
        for _ in 0..ops {
            let r = rng.unit();
            if r < 0.55 || cal.is_empty() {
                // Schedule 1–4 events; cluster some at the same instant
                // to exercise FIFO tie-breaking.
                let magnitude = 1u64 << (10 + rng.index(30) as u32);
                let base = cal.now() + SimDuration::from_ps(gen_u64(rng, 0, magnitude));
                for _ in 0..1 + rng.index(4) {
                    cal.schedule(base, payload);
                    heap.schedule(base, payload);
                    payload += 1;
                }
            } else if r < 0.85 {
                let a = cal.pop().expect("non-empty");
                let b = heap.pop().expect("mirrored queue non-empty");
                assert_eq!((a.at, a.seq, a.payload), (b.at, b.seq, b.payload));
                assert_eq!(cal.now(), heap.now());
                assert_eq!(cal.len(), heap.len());
            } else {
                // Batched same-timestamp drain up to a random horizon.
                let horizon = cal.now() + SimDuration::from_ps(gen_u64(rng, 0, 1 << 32));
                let nc = cal.pop_batch_until(horizon, &mut cal_batch);
                let nh = heap.pop_batch_until(horizon, &mut heap_batch);
                assert_eq!(nc, nh, "batch sizes diverged");
                for (a, b) in cal_batch.iter().zip(&heap_batch) {
                    assert_eq!((a.at, a.seq, a.payload), (b.at, b.seq, b.payload));
                }
            }
        }
        // Drain fully: the tails must match element for element.
        loop {
            match (cal.pop(), heap.pop()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!((a.at, a.seq, a.payload), (b.at, b.seq, b.payload));
                }
                _ => panic!("queues drained at different lengths"),
            }
        }
    });
}

/// Serialization time is additive: ser(a) + ser(b) == ser(a+b) up to
/// 1 ps of integer rounding per call.
#[test]
fn serialization_additive() {
    for_each_case("serialization_additive", |rng| {
        let a = gen_u64(rng, 1, 100_000);
        let b = gen_u64(rng, 1, 100_000);
        let g = gen_u64(rng, 1, 400);
        let rate = g * 1_000_000_000;
        let lhs = serialization_time(a, rate) + serialization_time(b, rate);
        let rhs = serialization_time(a + b, rate);
        let diff = lhs.as_ps().abs_diff(rhs.as_ps());
        assert!(diff <= 2, "a {a} b {b} g {g}: diff {diff}ps");
    });
}

/// Histogram CCDF is monotone nonincreasing and consistent with the
/// sample count.
#[test]
fn histogram_ccdf_monotone() {
    for_each_case("histogram_ccdf_monotone", |rng| {
        let samples = gen_vec_u64(rng, 0, 500, 1, 300);
        let mut h = Histogram::new(1, 512);
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.count(), samples.len() as u64);
        let mut last = 1.0f64;
        for n in 0..512u64 {
            let c = h.ccdf(n);
            assert!(c <= last + 1e-12);
            last = c;
        }
    });
}

/// Fat-tree capacity is monotone in every parameter (Appendix A).
#[test]
fn fattree_monotone() {
    for_each_case("fattree_monotone", |rng| {
        let k = gen_u64(rng, 2, 64);
        let t = gen_u64(rng, 1, 32);
        let n = gen_u32(rng, 1, 4);
        let p = FatTreeParams::new(2 * k, t, 1);
        let bigger_k = FatTreeParams::new(2 * k + 2, t, 1);
        assert!(bigger_k.max_tors(n) >= p.max_tors(n), "k {k} t {t} n {n}");
        assert!(p.max_tors(n + 1) >= p.max_tors(n), "k {k} t {t} n {n}");
        // Pro-rata provisioning never exceeds the full build.
        let full = p.max_switches(n);
        let part = p.switches_for_tors(n, p.max_tors(n));
        assert!(part <= full + p.k, "k {k} t {t} n {n}");
    });
}

/// M/D/1 distributions are valid probability vectors with the exact
/// empty probability for any utilization.
#[test]
fn md1_distribution_valid() {
    for_each_case("md1_distribution_valid", |rng| {
        let rho = gen_u64(rng, 1, 990) as f64 / 1000.0;
        let d = md1::queue_length_distribution(rho, 256);
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "rho {rho}: sum {sum}");
        assert!((d[0] - (1.0 - rho)).abs() < 1e-6, "rho {rho}");
        assert!(d.iter().all(|&p| (0.0..=1.0).contains(&p)), "rho {rho}");
    });
}

/// Generate a random piecewise log-linear flow-size CDF: 2–8 knots with
/// strictly increasing sizes and CDF values; the first knot's CDF is 0
/// half the time (continuous) and a positive atom otherwise.
fn gen_flow_dist(rng: &mut DetRng) -> stardust::workload::FlowSizeDist {
    let n_knots = 2 + rng.index(7);
    let mut sizes: Vec<u64> = Vec::with_capacity(n_knots);
    let mut s = gen_u64(rng, 64, 4_096);
    for _ in 0..n_knots {
        sizes.push(s);
        s += gen_u64(rng, 1, s.max(2) * 4);
    }
    let mut cdfs: Vec<f64> = (0..n_knots - 1).map(|_| rng.unit()).collect();
    cdfs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    cdfs.push(1.0);
    if rng.chance(0.5) {
        cdfs[0] = 0.0;
    }
    // Enforce strict increase under f64 comparison.
    for i in 1..cdfs.len() {
        if cdfs[i] <= cdfs[i - 1] {
            cdfs[i] = cdfs[i - 1] + 1e-6;
        }
    }
    let last = *cdfs.last().unwrap();
    for c in cdfs.iter_mut().take(n_knots - 1) {
        *c /= last.max(1.0);
    }
    *cdfs.last_mut().unwrap() = 1.0;
    stardust::workload::FlowSizeDist::new("prop", sizes.into_iter().zip(cdfs).collect())
}

/// `cdf` is the exact inverse of `quantile` (and hence of `sample`):
/// above the first-knot atom, `cdf(quantile(u)) ≈ u` up to the integer
/// rounding of sizes; at or below it, `quantile` lands on the atom whose
/// CDF is the atom mass.
#[test]
fn flow_size_cdf_quantile_round_trip() {
    for_each_case("flow_size_cdf_quantile_round_trip", |rng| {
        let d = gen_flow_dist(rng);
        let atom = d.cdf(d.quantile(0.0));
        for _ in 0..64 {
            let u = rng.unit();
            let q = d.quantile(u);
            let back = d.cdf(q);
            if u <= atom {
                assert_eq!(q, d.quantile(0.0), "u {u} must land on the atom");
                assert!((back - atom).abs() < 1e-12);
            } else {
                // `quantile` rounds the continuous inverse to whole
                // bytes, so the exact statement is a bracket: `u` must
                // lie between the CDFs of the neighboring byte counts
                // (tightly spaced knots can put a lot of mass on one
                // byte, so a flat tolerance would be wrong).
                let lo = d.cdf(q - 1);
                let hi = d.cdf(q + 1);
                assert!(
                    lo - 1e-9 <= u && u <= hi + 1e-9,
                    "u {u} → {q} B, but cdf brackets [{lo}, {hi}]"
                );
                assert!((back - u).abs() <= (hi - lo) + 1e-9);
            }
        }
    });
}

/// The closed-form mean of a flow-size distribution matches a sampled
/// estimate.
#[test]
fn flow_size_mean_matches_sampling() {
    for_each_case("flow_size_mean_matches_sampling", |rng| {
        let d = gen_flow_dist(rng);
        let n = 20_000;
        let sampled = (0..n).map(|_| d.sample(rng) as f64).sum::<f64>() / n as f64;
        let exact = d.mean();
        let rel = (sampled - exact).abs() / exact;
        assert!(rel < 0.05, "sampled {sampled} vs exact {exact}");
    });
}

/// `PacketMix::sample` frequencies match the declared weights for every
/// entry — including the final one, which the clamped draw must be able
/// to reach despite floating-point error in the subtraction scan.
#[test]
fn packet_mix_frequencies_match_weights() {
    for_each_case("packet_mix_frequencies_match_weights", |rng| {
        let n_entries = 2 + rng.index(7);
        let mut size = 64u64;
        let entries: Vec<(u64, f64)> = (0..n_entries)
            .map(|_| {
                let e = (size, 0.05 + rng.unit());
                size += gen_u64(rng, 1, 512);
                e
            })
            .collect();
        let mix = stardust::workload::PacketMix::new("prop", entries.clone());
        let total: f64 = entries.iter().map(|&(_, w)| w).sum();
        let n = 20_000;
        let mut counts = vec![0u64; n_entries];
        for _ in 0..n {
            let s = mix.sample(rng);
            let idx = entries
                .iter()
                .position(|&(e, _)| e == s)
                .expect("sample outside the table");
            counts[idx] += 1;
        }
        for (&(sz, w), &c) in entries.iter().zip(&counts) {
            let got = c as f64 / n as f64;
            let want = w / total;
            // 4-sigma binomial tolerance plus a floor for tiny weights.
            let tol = 4.0 * (want * (1.0 - want) / n as f64).sqrt() + 0.004;
            assert!(
                (got - want).abs() < tol,
                "size {sz}: got {got}, want {want}"
            );
        }
    });
}

/// One randomized sharded-vs-sequential case: a single-tier fabric of
/// `num_fa` FAs (uplinks spread over `fe_count` FEs), message + inject
/// traffic, and a mid-run `fail_link`/`restore_link` on a random link.
#[derive(Debug, Clone, Copy)]
struct ShardCase {
    num_fa: u32,
    fe_count: u32,
    shards: u32,
    seed: u64,
    /// Which link fails (index into the topology's links).
    fail_link: u32,
    /// Whether the failed link is restored mid-run.
    restore: bool,
}

/// Run the case on both engines; `true` when they diverge (the property
/// violation the shrinker minimizes).
fn shard_case_diverges(c: &ShardCase) -> bool {
    let build = || {
        single_tier(SingleTierParams {
            num_fa: c.num_fa,
            fa_uplinks: c.fe_count * 2,
            fe_count: c.fe_count,
            meters: 20,
        })
    };
    let cfg = FabricConfig {
        seed: c.seed,
        host_ports: 2,
        host_port_bps: stardust::sim::units::gbps(40),
        ..FabricConfig::default()
    };
    let fail = LinkId(c.fail_link % build().topo.num_links() as u32);
    macro_rules! drive {
        ($e:expr) => {{
            let n = $e.num_fas() as u32;
            let mut wl = DetRng::from_label(c.seed, "shard-prop-workload");
            for src in 0..n {
                $e.add_message(
                    src,
                    (src + 1) % n,
                    0,
                    0,
                    10_000 + wl.below(20_000),
                    SimTime::ZERO,
                );
                $e.inject(
                    SimTime::from_nanos(wl.below(40_000)),
                    src,
                    (src + 2) % n,
                    1,
                    1,
                    64 + wl.below(1400) as u32,
                );
            }
            // Fail while messages and injections are mid-flight (static
            // reach: the dead link blackholes its share of cells).
            $e.run_until(SimTime::from_micros(8));
            $e.fail_link(fail);
            $e.run_until(SimTime::from_micros(30));
            if c.restore {
                $e.restore_link(fail);
            }
            $e.run_until(SimTime::from_micros(400));
        }};
    }
    let mut seq = FabricEngine::new(build().topo, cfg.clone());
    drive!(seq);
    assert!(
        seq.stats().packets_delivered.get() > 0,
        "vacuous case: nothing delivered"
    );
    let mut sh = ShardedFabricEngine::new(build().topo, cfg, c.shards);
    sh.set_exec_mode(ExecMode::Inline);
    drive!(sh);
    *seq.stats() != sh.stats()
}

/// Sharded and sequential runs stay `Eq` under random topology sizes,
/// shard counts and mid-run link failures/restores. On a violation the
/// test **shrinks** greedily — smaller fabric, fewer shards, simpler
/// failure — and reports the smallest failing `(topo, shards, seed)`
/// triple for reproduction.
#[test]
fn sharded_fabric_matches_sequential_under_link_failures() {
    let fa_candidates = [4u32, 6, 8, 12, 16];
    for_each_case("sharded_fabric_matches_sequential", |rng| {
        let num_fa = fa_candidates[rng.index(fa_candidates.len())];
        let mut c = ShardCase {
            num_fa,
            fe_count: if rng.chance(0.5) { 2 } else { 4 },
            shards: 1 + rng.below(num_fa.min(6) as u64) as u32,
            seed: rng.next_u64(),
            fail_link: rng.next_u64() as u32,
            restore: rng.chance(0.5),
        };
        if !shard_case_diverges(&c) {
            return;
        }
        // Shrink: walk each dimension down while the divergence persists.
        loop {
            let mut shrunk = false;
            let try_case = |cand: ShardCase, c: &mut ShardCase, shrunk: &mut bool| {
                if shard_case_diverges(&cand) {
                    *c = cand;
                    *shrunk = true;
                }
            };
            if let Some(&smaller) = fa_candidates.iter().rev().find(|&&f| f < c.num_fa) {
                try_case(
                    ShardCase {
                        num_fa: smaller,
                        shards: c.shards.min(smaller),
                        ..c
                    },
                    &mut c,
                    &mut shrunk,
                );
            }
            if !shrunk && c.shards > 1 {
                try_case(
                    ShardCase {
                        shards: c.shards - 1,
                        ..c
                    },
                    &mut c,
                    &mut shrunk,
                );
            }
            if !shrunk && c.fe_count > 2 {
                try_case(ShardCase { fe_count: 2, ..c }, &mut c, &mut shrunk);
            }
            if !shrunk && c.restore {
                try_case(
                    ShardCase {
                        restore: false,
                        ..c
                    },
                    &mut c,
                    &mut shrunk,
                );
            }
            if !shrunk {
                break;
            }
        }
        panic!(
            "sharded run diverged from sequential; smallest failing triple: \
             topo = single_tier({} FAs × {} FEs), shards = {}, seed = {:#x} \
             (fail_link {}, restore {})",
            c.num_fa, c.fe_count, c.shards, c.seed, c.fail_link, c.restore
        );
    });
}

/// A miniature multi-hop relay network driven directly on the
/// [`ShardClock`]/[`Mailboxes`] primitives: every shard starts with
/// random events; each processed event with hops left re-sends itself to
/// a random peer with `lookahead + jitter` of latency. The conservative
/// bound must hold (nothing is ever delivered at or before the window it
/// was sent in), and the per-shard processing traces must be identical
/// between the threaded run (S OS threads) and the inline run (one
/// thread) — drain order independent of thread interleaving.
#[test]
fn mailbox_barrier_never_early_and_interleaving_free() {
    for_each_case("mailbox_barrier_property", |rng| {
        let shards = 2 + rng.index(5); // 2..=6
        let lookahead = SimDuration::from_nanos(50 + rng.below(400));
        let seeds: Vec<u64> = (0..shards).map(|_| rng.next_u64()).collect();

        type Item = (
            u64, /* at ps */
            u32, /* id */
            u8,  /* hops left */
        );
        type Trace = Vec<(u64, u32)>;

        // Deterministic per-shard initial events.
        let initial = |s: usize| -> Vec<Item> {
            let mut r = DetRng::from_parts(seeds[s], 1);
            (0..4 + r.index(6))
                .map(|i| {
                    (
                        r.below(2_000_000),
                        (s as u32) << 16 | i as u32,
                        1 + r.below(3) as u8,
                    )
                })
                .collect()
        };
        // The relay: where does a processed event send next, and when
        // does the relay arrive? Pure in (shard, event) so both modes
        // agree by construction.
        let relay = |s: usize, it: &Item| -> (usize, Item) {
            let mut r = DetRng::from_parts(seeds[s] ^ it.1 as u64, it.0);
            let dst = r.index(shards);
            let at = it.0 + lookahead.as_ps() + r.below(3 * lookahead.as_ps());
            (dst, (at, it.1, it.2 - 1))
        };

        let run = |threaded: bool| -> (Vec<Trace>, bool) {
            use std::collections::BinaryHeap;
            let clock = ShardClock::new(shards, lookahead);
            let mail: Mailboxes<Item> = Mailboxes::new(shards);
            let horizon = SimTime::from_millis(100);
            // Per-shard state: pending min-heap, trace, early-delivery flag.
            struct Shard {
                pending: BinaryHeap<std::cmp::Reverse<Item>>,
                trace: Trace,
                early: bool,
            }
            let mut states: Vec<Shard> = (0..shards)
                .map(|s| Shard {
                    pending: initial(s).into_iter().map(std::cmp::Reverse).collect(),
                    trace: Vec::new(),
                    early: false,
                })
                .collect();
            let window_of = |st: &Shard| st.pending.peek().map(|r| SimTime(r.0 .0));
            let exec_window = |s: usize, st: &mut Shard, wend: SimTime| -> Vec<Vec<Item>> {
                let mut out: Vec<Vec<Item>> = (0..shards).map(|_| Vec::new()).collect();
                while st.pending.peek().is_some_and(|r| r.0 .0 <= wend.as_ps()) {
                    let it = st.pending.pop().unwrap().0;
                    st.trace.push((it.0, it.1));
                    if it.2 > 0 {
                        let (dst, next) = relay(s, &it);
                        out[dst].push(next);
                    }
                }
                out
            };
            let deliver = |st: &mut Shard, wend: SimTime, batches: Vec<Vec<Item>>| {
                for b in batches {
                    for it in b {
                        // The conservative bound: nothing arrives inside
                        // (at or before) the window it was sent in.
                        if it.0 <= wend.as_ps() {
                            st.early = true;
                        }
                        st.pending.push(std::cmp::Reverse(it));
                    }
                }
            };
            if threaded {
                std::thread::scope(|scope| {
                    for (s, st) in states.iter_mut().enumerate() {
                        let (clock, mail) = (&clock, &mail);
                        scope.spawn(move || {
                            let mut round = 0u64;
                            while let Some(wend) = clock.next_window(round, window_of(st), horizon)
                            {
                                let out = exec_window(s, st, wend);
                                mail.publish(s, out);
                                clock.finish_window();
                                deliver(st, wend, mail.take_to(s));
                                round += 1;
                            }
                        });
                    }
                });
            } else {
                loop {
                    let next = states.iter().filter_map(&window_of).min();
                    let Some(wend) = stardust::sim::window_end(next, horizon, lookahead) else {
                        break;
                    };
                    for (s, st) in states.iter_mut().enumerate() {
                        let out = exec_window(s, st, wend);
                        mail.publish(s, out);
                    }
                    for (s, st) in states.iter_mut().enumerate() {
                        deliver(st, wend, mail.take_to(s));
                    }
                }
            }
            let early = states.iter().any(|st| st.early);
            (states.into_iter().map(|st| st.trace).collect(), early)
        };

        let (threaded_traces, threaded_early) = run(true);
        let (inline_traces, inline_early) = run(false);
        assert!(!threaded_early, "item delivered within its send window");
        assert!(!inline_early, "item delivered within its send window");
        assert!(
            threaded_traces.iter().all(|t| !t.is_empty()) && threaded_traces.len() == shards,
            "degenerate case"
        );
        assert_eq!(
            threaded_traces, inline_traces,
            "drain order depended on thread interleaving ({shards} shards)"
        );
    });
}

/// Windows under a per-pair lookahead matrix are never narrower than
/// the scalar windows its smallest bound admits: for random direct
/// matrices (with random unbounded pairs) and random next-event
/// vectors, every shard's matrix window is ≥ the scalar `window_end`,
/// the two agree exactly on a uniform matrix, and the stop condition is
/// identical for every shard.
#[test]
fn matrix_windows_dominate_scalar_windows() {
    use stardust::sim::LookaheadMatrix;
    for_each_case("matrix_windows_dominate_scalar", |rng| {
        let shards = 2 + rng.index(6); // 2..=7
                                       // Random positive direct bounds; ~1/3 of off-diagonal pairs
                                       // unbounded, diagonal never direct (round trips come from the
                                       // closure). Keep at least one bounded pair so min_bound exists.
        let mut direct: Vec<Option<SimDuration>> = vec![None; shards * shards];
        for a in 0..shards {
            for b in 0..shards {
                if a != b && rng.index(3) != 0 {
                    direct[a * shards + b] = Some(SimDuration(1 + rng.below(1_000_000)));
                }
            }
        }
        let (a, b) = (rng.index(shards), 1 + rng.index(shards - 1));
        direct[a * shards + (a + b) % shards] = Some(SimDuration(1 + rng.below(1_000_000)));
        let m = LookaheadMatrix::from_direct(shards, &direct);
        let scalar = m.min_bound().expect("at least one bounded pair");
        let uniform = LookaheadMatrix::uniform(shards, scalar);

        let horizon = SimTime(1_000_000 + rng.below(5_000_000));
        let nexts: Vec<u64> = (0..shards)
            .map(|_| {
                if rng.index(4) == 0 {
                    u64::MAX // idle shard
                } else {
                    rng.below(8_000_000)
                }
            })
            .collect();
        let global = nexts.iter().copied().min().unwrap();
        let scalar_w = stardust::sim::window_end(
            (global != u64::MAX).then_some(SimTime(global)),
            horizon,
            scalar,
        );
        for dst in 0..shards {
            let w = m.window_for(&nexts, dst, horizon);
            // Stop condition agrees with the scalar formula and is the
            // same for every shard.
            assert_eq!(w.is_some(), scalar_w.is_some(), "stop condition diverged");
            if let (Some(w), Some(sw)) = (w, scalar_w) {
                assert!(
                    w >= sw,
                    "shard {dst}: matrix window {w:?} narrower than scalar {sw:?}"
                );
            }
            // The uniform matrix IS the scalar formula.
            assert_eq!(uniform.window_for(&nexts, dst, horizon), scalar_w);
        }
    });
}

/// The relay-network property (see above) on the **matrix** clock
/// protocol with fewer threads than shards: per-pair latencies at least
/// the pair's closed bound, per-shard windows, threads multiplexing
/// shards round-robin. Nothing may be delivered at or before its
/// receiver's executed window, and the per-shard traces must be
/// identical between a multi-threaded run and the single-threaded run
/// of the same protocol.
#[test]
fn matrix_clock_relay_is_safe_and_thread_invariant() {
    use stardust::sim::LookaheadMatrix;
    for_each_case("matrix_clock_relay", |rng| {
        let shards = 2 + rng.index(5); // 2..=6
        let threads = 1 + rng.index(shards); // 1..=shards
        let seeds: Vec<u64> = (0..shards).map(|_| rng.next_u64()).collect();
        // Fully bounded random direct matrix (every ordered pair).
        let mut direct: Vec<Option<SimDuration>> = vec![None; shards * shards];
        for a in 0..shards {
            for b in 0..shards {
                if a != b {
                    direct[a * shards + b] = Some(SimDuration(10_000 + rng.below(500_000)));
                }
            }
        }
        let matrix = LookaheadMatrix::from_direct(shards, &direct);

        type Item = (u64, u32, u8);
        type Trace = Vec<(u64, u32)>;
        let initial = |s: usize| -> Vec<Item> {
            let mut r = DetRng::from_parts(seeds[s], 1);
            (0..3 + r.index(5))
                .map(|i| {
                    (
                        r.below(2_000_000),
                        (s as u32) << 16 | i as u32,
                        1 + r.below(3) as u8,
                    )
                })
                .collect()
        };
        let m = &matrix;
        let relay = |s: usize, it: &Item| -> (usize, Item) {
            let mut r = DetRng::from_parts(seeds[s] ^ it.1 as u64, it.0);
            let dst = r.index(m.shards());
            // Send latency: at least the pair's closed bound (what the
            // engine guarantees for every real emission), plus jitter.
            let base = if dst == s {
                m.bound(s, s).map_or(50_000, |d| d.as_ps())
            } else {
                m.bound(s, dst).expect("fully bounded").as_ps()
            };
            let at = it.0 + base + r.below(2 * base);
            (dst, (at, it.1, it.2 - 1))
        };

        let run = |nthreads: usize,
                   relay: &(dyn Fn(usize, &Item) -> (usize, Item) + Sync)|
         -> (Vec<Trace>, bool) {
            use std::collections::BinaryHeap;
            let clock = ShardClock::with_matrix(matrix.clone(), nthreads);
            let mail: Mailboxes<Item> = Mailboxes::new(shards);
            let horizon = SimTime::from_millis(100);
            struct Shard {
                pending: BinaryHeap<std::cmp::Reverse<Item>>,
                trace: Trace,
                early: bool,
            }
            let states: Vec<std::sync::Mutex<Shard>> = (0..shards)
                .map(|s| {
                    std::sync::Mutex::new(Shard {
                        pending: initial(s).into_iter().map(std::cmp::Reverse).collect(),
                        trace: Vec::new(),
                        early: false,
                    })
                })
                .collect();
            std::thread::scope(|scope| {
                for t in 0..nthreads {
                    let (clock, mail, states) = (&clock, &mail, &states);
                    scope.spawn(move || {
                        let owned: Vec<usize> = (0..shards).filter(|s| s % nthreads == t).collect();
                        // The executed window of each owned shard, saved
                        // from the execute phase: after `finish_window` a
                        // faster thread may already be re-reporting next
                        // round's times, so the clock must not be read
                        // again (same discipline as the engine's window
                        // loop).
                        let mut wends: Vec<u64> = vec![0; owned.len()];
                        loop {
                            for &s in &owned {
                                let st = states[s].lock().unwrap();
                                clock.report(s, st.pending.peek().map(|r| SimTime(r.0 .0)));
                            }
                            clock.sync();
                            if clock.done(SimTime::from_millis(100)) {
                                break;
                            }
                            for (k, &s) in owned.iter().enumerate() {
                                let mut st = states[s].lock().unwrap();
                                let wend = clock.window_for(s, horizon).expect("not done");
                                wends[k] = wend.as_ps();
                                let mut out: Vec<Vec<Item>> =
                                    (0..shards).map(|_| Vec::new()).collect();
                                while st.pending.peek().is_some_and(|r| r.0 .0 <= wend.as_ps()) {
                                    let it = st.pending.pop().unwrap().0;
                                    st.trace.push((it.0, it.1));
                                    if it.2 > 0 {
                                        let (dst, next) = relay(s, &it);
                                        out[dst].push(next);
                                    }
                                }
                                mail.publish_from(s, &mut out);
                            }
                            clock.finish_window();
                            for (k, &s) in owned.iter().enumerate() {
                                let mut st = states[s].lock().unwrap();
                                let mut inbox: Vec<Vec<Item>> =
                                    (0..shards).map(|_| Vec::new()).collect();
                                mail.take_to_into(s, &mut inbox);
                                for b in inbox {
                                    for it in b {
                                        // Conservative bound, per shard:
                                        // nothing lands inside the
                                        // receiver's executed window.
                                        if it.0 <= wends[k] {
                                            st.early = true;
                                        }
                                        st.pending.push(std::cmp::Reverse(it));
                                    }
                                }
                            }
                        }
                    });
                }
            });
            let early = states.iter().any(|st| st.lock().unwrap().early);
            (
                states
                    .into_iter()
                    .map(|st| st.into_inner().unwrap().trace)
                    .collect(),
                early,
            )
        };

        let (multi_traces, multi_early) = run(threads.max(2).min(shards), &relay);
        let (single_traces, single_early) = run(1, &relay);
        assert!(!multi_early, "item delivered within its receiver's window");
        assert!(!single_early, "item delivered within its receiver's window");
        assert_eq!(
            multi_traces, single_traces,
            "matrix-clock traces depended on thread multiplexing \
             ({shards} shards, {threads} threads)"
        );
    });
}

/// The paper's o(fs^-2N) tail approximation is monotone in both
/// arguments.
#[test]
fn md1_paper_tail_monotone() {
    for_each_case("md1_paper_tail_monotone", |rng| {
        let fs = gen_u32(rng, 101, 300) as f64 / 100.0;
        let n = gen_u32(rng, 1, 64);
        let t = md1::paper_tail_approx(fs, n);
        assert!(
            t <= md1::paper_tail_approx(fs, n.saturating_sub(1).max(1)) + 1e-18,
            "fs {fs} n {n}"
        );
        assert!(
            t >= md1::paper_tail_approx(fs + 0.1, n) - 1e-18,
            "fs {fs} n {n}"
        );
    });
}
