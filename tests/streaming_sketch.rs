//! Streaming-scale conformance: the bounded-memory path (lazy flow
//! generation + streaming admission + mergeable FCT sketches) against
//! the exact per-flow tables, at fig10 scale.
//!
//! Three pins:
//!
//! 1. **Sketch accuracy.** On the fig10(b)-style Web mix, every sketch
//!    quantile matches the exact table quantile within the sketch's
//!    documented bound — exact below 64 ps, relative error ≤ 1/64 above
//!    (64 sub-buckets per power of two) — on **both** engine families
//!    (cell fabric and fat-tree transport).
//! 2. **Sharded bit-identity in bounded mode.** A streamed bounded-flows
//!    run is bit-identical across 1/2/4/8 shards, and equal to the
//!    sequential bounded run — the sketch merge is commutative bin-wise
//!    addition, so shard count and merge order cannot show through.
//! 3. **Streamed == eager through failures.** A streamed bounded run
//!    under a mid-run link fail/restore schedule produces exactly the
//!    sketch book an eager exact run converts to — admission windows and
//!    failure interleaving change nothing.

use stardust::fabric::shard::ExecMode;
use stardust::fabric::{FabricConfig, FabricEngine, ShardedFabricEngine};
use stardust::sim::{FlowStats, SimDuration, SimTime};
use stardust::topo::builders::{kary, two_tier, KaryParams, TwoTierParams};
use stardust::topo::LinkId;
use stardust::transport::{Protocol, TransportConfig, TransportSim};
use stardust::workload::{
    FailureSchedule, FlowSizeDist, Scenario, ScenarioKind, TransportFlowEngine,
};

/// The fig10(b) smoke shape: a Poisson Web mix on 16 nodes, sized so the
/// debug-profile suite stays fast while still spreading FCTs across
/// several powers of two (where sketch binning actually matters).
fn web_mix(n_flows: usize) -> Scenario {
    Scenario {
        name: "streaming-sketch-webmix".into(),
        seed: 42,
        kind: ScenarioKind::Mix {
            dist: FlowSizeDist::fb_web(),
            n_flows,
            node_gap: SimDuration::from_micros(400),
        },
    }
}

fn fabric(seed: u64, bounded: bool) -> FabricEngine {
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    FabricEngine::new(
        tt.topo,
        FabricConfig {
            seed,
            bounded_flows: bounded,
            ..FabricConfig::default()
        },
    )
}

/// Assert every quantile of `sketch` is within the sketch's documented
/// error bound of the exact table's quantile.
fn assert_quantiles_within_bound(label: &str, exact: &FlowStats, sketch: &FlowStats) {
    assert!(!sketch.records().is_empty() || sketch.is_sketched());
    for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0] {
        let e = exact.fct_quantile(q).expect("exact quantile").as_ps();
        let s = sketch.fct_quantile(q).expect("sketch quantile").as_ps();
        let bound = if e < 64 { 0 } else { e / 64 + 1 };
        assert!(
            s.abs_diff(e) <= bound,
            "{label}: q={q} sketch {s} ps vs exact {e} ps (bound {bound} ps)"
        );
    }
}

#[test]
fn sketch_quantiles_match_exact_on_both_engine_families() {
    // Fabric: exact table run, then its sketch conversion (same
    // recording order the bounded engine replays).
    let scn = web_mix(120);
    let horizon = SimTime::from_millis(40);
    let mut fab = fabric(42, false);
    let exact = scn.run(&mut fab, horizon);
    assert!(exact.completed() > 100, "workload must mostly complete");
    assert_quantiles_within_bound("fabric", &exact, &exact.sketched());

    // Transport: the k = 4 fat-tree under TCP-over-Stardust.
    let ft = kary(KaryParams {
        k: 4,
        ..KaryParams::paper_6_3()
    });
    let sim = TransportSim::new(ft, TransportConfig::default());
    let mut tra = TransportFlowEngine::new(sim, Protocol::Stardust);
    let exact = scn.run(&mut tra, SimTime::from_millis(100));
    assert!(exact.completed() > 100);
    assert_quantiles_within_bound("transport", &exact, &exact.sketched());
}

#[test]
fn bounded_streamed_run_bit_identical_across_shard_counts() {
    let scn = web_mix(60);
    let horizon = SimTime::from_millis(30);
    let window = SimDuration::from_micros(500);

    let mut seq = fabric(7, true);
    let (seq_flows, _) = scn.run_streamed(&mut seq, &FailureSchedule::default(), horizon, window);
    assert!(seq_flows.is_sketched());
    assert!(seq_flows.completed() > 0);

    for shards in [1u32, 2, 4, 8] {
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let mut sh = ShardedFabricEngine::new(
            tt.topo,
            FabricConfig {
                seed: 7,
                bounded_flows: true,
                ..FabricConfig::default()
            },
            shards,
        );
        sh.set_exec_mode(ExecMode::Inline);
        let (sh_flows, _) = scn.run_streamed(&mut sh, &FailureSchedule::default(), horizon, window);
        assert_eq!(
            seq_flows, sh_flows,
            "{shards}-shard bounded run diverged from sequential"
        );
        assert_eq!(
            seq.stats(),
            &sh.stats(),
            "{shards}-shard FabricStats diverged from sequential"
        );
    }
}

#[test]
fn bounded_streamed_run_equals_eager_exact_run_through_failures() {
    let scn = web_mix(60);
    let horizon = SimTime::from_millis(30);
    let schedule = FailureSchedule::new()
        .fail_at(SimTime::from_micros(800), LinkId(0))
        .restore_at(SimTime::from_micros(2_500), LinkId(0));
    let with_reach = |bounded| {
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let mut cfg = FabricConfig {
            seed: 11,
            bounded_flows: bounded,
            ..FabricConfig::default()
        };
        cfg.reach_interval = Some(SimDuration::from_micros(50));
        FabricEngine::new(tt.topo, cfg)
    };

    let mut eager = with_reach(false);
    let exact = scn.run_with_failures(&mut eager, &schedule, horizon);

    let mut streamed = with_reach(true);
    let (sketch, applied) = scn.run_streamed(
        &mut streamed,
        &schedule,
        horizon,
        SimDuration::from_micros(250),
    );

    assert_eq!(applied, 2, "both link events must reach the fabric");
    assert_eq!(
        exact.sketched(),
        sketch,
        "streamed bounded sketch book diverged from the eager exact run"
    );
}
