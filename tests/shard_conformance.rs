//! Sharded-engine conformance: `ShardedFabricEngine` must be
//! **bit-identical** to the sequential `FabricEngine` — same
//! `FabricStats` (every counter, every histogram bin) and same per-flow
//! `FlowStats` tables — at 1, 2, 4 and 8 shards, on both event cores, on
//! the paper's headline workloads:
//!
//! * the §6.2 permutation scenario (the determinism suite's workload),
//! * the Fig 10 a–c finite-flow scenarios (permutation goodput, Web-mix
//!   FCT, N-to-1 incast),
//! * a fail-link run (static blackhole + §5.10 error process + dynamic
//!   reachability healing).
//!
//! The conformance matrix runs the shards **inline** (single-threaded,
//! same window/exchange algorithm) to keep the suite inside the slow
//! fabric-test budget; `threaded_execution_matches_inline` (here) and
//! the in-crate smoke tests pin the threaded path to the inline one, so
//! equality is transitive to real parallel execution.
//!
//! `STARDUST_SHARDS` (comma-separated, e.g. `2,4`) narrows the shard set
//! — the CI `test-shards` matrix drives one count per job.

use stardust::fabric::shard::ExecMode;
use stardust::fabric::{FabricConfig, FabricEngine, FabricStats, ShardedFabricEngine};
use stardust::sim::{CalendarCore, CoreKind, DetRng, HeapCore, SimDuration, SimTime};
use stardust::topo::builders::{two_tier, TwoTierParams};
use stardust::workload::{permutation, FlowSizeDist, Scenario, ScenarioKind};

/// Shard counts under test (override with `STARDUST_SHARDS=2,4`).
fn shard_counts() -> Vec<u32> {
    match std::env::var("STARDUST_SHARDS") {
        Ok(s) => s
            .split(',')
            .map(|x| x.trim().parse().expect("STARDUST_SHARDS: bad count"))
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn cfg(seed: u64) -> FabricConfig {
    FabricConfig {
        seed,
        host_ports: 2,
        host_port_bps: stardust::sim::units::gbps(40),
        ..FabricConfig::default()
    }
}

/// Apply the §6.2 permutation workload of `tests/determinism.rs` through
/// either engine's identical API surface.
macro_rules! sec62_workload {
    ($e:expr, $seed:expr) => {{
        let num_fa = $e.num_fas();
        let mut rng = DetRng::from_label($seed, "det-regression-workload");
        let perm = permutation(num_fa, &mut rng);
        for src in 0..num_fa as u32 {
            let mut t = 0u64;
            for i in 0..40u32 {
                t += rng.below(2_000);
                let bytes = if i % 4 == 0 {
                    9000
                } else {
                    64 + rng.below(1400) as u32
                };
                $e.inject(
                    SimTime::from_nanos(t),
                    src,
                    perm[src as usize],
                    (i % 2) as u8,
                    0,
                    bytes,
                );
            }
        }
        $e.run_until(SimTime::from_millis(1));
    }};
}

fn sec62_sequential<K: CoreKind>(seed: u64) -> FabricStats {
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let mut e = FabricEngine::<K>::with_core(tt.topo, cfg(seed));
    sec62_workload!(e, seed);
    e.stats().clone()
}

fn sec62_sharded<K: CoreKind>(seed: u64, shards: u32, mode: ExecMode) -> FabricStats
where
    FabricEngine<K>: Send,
{
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let mut e = ShardedFabricEngine::<K>::with_core(tt.topo, cfg(seed), shards);
    e.set_exec_mode(mode);
    sec62_workload!(e, seed);
    e.stats()
}

#[test]
fn sec62_permutation_conformance_calendar_core() {
    let seq = sec62_sequential::<CalendarCore>(0xDC_FA_B0_05);
    assert_eq!(seq.packets_delivered.get(), 16 * 40, "workload sanity");
    assert_eq!(seq.cells_dropped.get(), 0);
    for shards in shard_counts() {
        let sh = sec62_sharded::<CalendarCore>(0xDC_FA_B0_05, shards, ExecMode::Inline);
        assert_eq!(seq, sh, "{shards} shards diverged (calendar core)");
    }
}

#[test]
fn sec62_permutation_conformance_heap_core() {
    let seq = sec62_sequential::<HeapCore>(0xDC_FA_B0_05);
    for shards in shard_counts() {
        let sh = sec62_sharded::<HeapCore>(0xDC_FA_B0_05, shards, ExecMode::Inline);
        assert_eq!(seq, sh, "{shards} shards diverged (heap core)");
    }
    // And the two cores agree with each other, sharded or not.
    assert_eq!(seq, sec62_sequential::<CalendarCore>(0xDC_FA_B0_05));
}

#[test]
fn threaded_execution_matches_inline() {
    // The conformance matrix runs inline for speed; this pins the real
    // OS-thread path (barriers, mailbox publish/take under contention)
    // to it, making the matrix's equality transitive to parallel runs.
    for shards in [2u32, 4, 8] {
        let a = sec62_sharded::<CalendarCore>(7, shards, ExecMode::Threads);
        let b = sec62_sharded::<CalendarCore>(7, shards, ExecMode::Inline);
        assert_eq!(a, b, "{shards}-shard threaded run diverged from inline");
    }
}

// --- Fig 10 a–c scenario conformance -----------------------------------

fn fig10_scenarios() -> Vec<(Scenario, SimTime)> {
    vec![
        (
            Scenario {
                name: "conf-fig10a-perm".into(),
                seed: 42,
                kind: ScenarioKind::Permutation {
                    flow_bytes: 100_000,
                },
            },
            SimTime::from_millis(5),
        ),
        (
            Scenario {
                name: "conf-fig10b-web".into(),
                seed: 42,
                kind: ScenarioKind::Mix {
                    dist: FlowSizeDist::fb_web(),
                    n_flows: 40,
                    node_gap: SimDuration::from_micros(400),
                },
            },
            SimTime::from_millis(8),
        ),
        (
            Scenario {
                name: "conf-fig10c-incast".into(),
                seed: 42,
                kind: ScenarioKind::Incast {
                    backends: 10,
                    response_bytes: 150_000,
                },
            },
            SimTime::from_millis(8),
        ),
    ]
}

fn fig10_conformance_on<K: CoreKind>()
where
    FabricEngine<K>: Send,
{
    for (scn, horizon) in fig10_scenarios() {
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let mut seq_engine = FabricEngine::<K>::with_core(tt.topo, cfg(11));
        let seq_flows = scn.run(&mut seq_engine, horizon);
        assert!(
            seq_flows.completed() > 0,
            "{}: nothing completed — not a real experiment",
            scn.name
        );
        for shards in shard_counts() {
            let tt = two_tier(TwoTierParams::paper_scaled(16));
            let mut sh = ShardedFabricEngine::<K>::with_core(tt.topo, cfg(11), shards);
            sh.set_exec_mode(ExecMode::Inline);
            let sh_flows = scn.run(&mut sh, horizon);
            // Per-flow FCT tables first (sharper failure message)…
            assert_eq!(
                seq_flows, sh_flows,
                "{}: {shards}-shard FCT table diverged",
                scn.name
            );
            // …then the full measurement record.
            assert_eq!(
                seq_engine.stats(),
                &sh.stats(),
                "{}: {shards}-shard FabricStats diverged",
                scn.name
            );
        }
    }
}

#[test]
fn fig10_scenarios_conformance_calendar_core() {
    fig10_conformance_on::<CalendarCore>();
}

#[test]
fn fig10_scenarios_conformance_heap_core() {
    fig10_conformance_on::<HeapCore>();
}

// --- fail-link conformance ---------------------------------------------

/// A failure-heavy run: dynamic reachability on, one uplink hard-failed
/// mid-run and later restored, a second link degraded by a §5.10 error
/// process — message flows and singleton injects riding through all of
/// it. Exercises cross-shard reachability messages, per-direction error
/// streams, burst discard and healing.
macro_rules! fail_link_workload {
    ($e:expr, $fail:expr, $noisy:expr) => {{
        let n = $e.num_fas() as u32;
        // First wave completes cleanly; the second is mid-flight when the
        // link dies, so queued cells drop and some bursts time out.
        for src in 0..n {
            $e.add_message(src, (src + 5) % n, 0, 0, 40_000, SimTime::ZERO);
            $e.add_message(src, (src + 7) % n, 0, 0, 60_000, SimTime::from_micros(95));
        }
        $e.run_until(SimTime::from_micros(100));
        $e.fail_link($fail);
        $e.set_link_error_rate($noisy, 0.3);
        // Injections racing the failure detection: some cells die on the
        // noisy link before the protocol excludes it.
        for src in 0..n {
            for i in 0..30u64 {
                $e.inject(
                    SimTime::from_micros(101) + SimDuration::from_nanos(i * 700),
                    src,
                    (src + 1) % n,
                    1,
                    1,
                    1500,
                );
            }
        }
        $e.run_until(SimTime::from_micros(600));
        $e.restore_link($fail);
        $e.set_link_error_rate($noisy, 0.0);
        $e.run_until(SimTime::from_millis(2));
    }};
}

fn fail_link_conformance_on<K: CoreKind>()
where
    FabricEngine<K>: Send,
{
    let mut c = cfg(3);
    c.reach_interval = Some(SimDuration::from_micros(10));
    c.reach_miss_threshold = 3;
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let fail = tt.topo.up_links(tt.fas[0])[0];
    let noisy = tt.topo.up_links(tt.fas[3])[1];
    let mut seq = FabricEngine::<K>::with_core(tt.topo, c.clone());
    fail_link_workload!(seq, fail, noisy);
    let seq_stats = seq.stats().clone();
    // The run must have actually hurt: cells died on the failed link or
    // to the error process, and the protocol kept the fabric delivering.
    assert!(seq_stats.cells_dropped.get() + seq_stats.cells_corrupted.get() > 0);
    assert!(seq_stats.packets_delivered.get() > 0);
    for shards in shard_counts() {
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let mut sh = ShardedFabricEngine::<K>::with_core(tt.topo, c.clone(), shards);
        sh.set_exec_mode(ExecMode::Inline);
        fail_link_workload!(sh, fail, noisy);
        assert_eq!(
            seq_stats,
            sh.stats(),
            "{shards}-shard fail-link run diverged"
        );
    }
}

#[test]
fn fail_link_conformance_calendar_core() {
    fail_link_conformance_on::<CalendarCore>();
}

#[test]
fn fail_link_conformance_heap_core() {
    fail_link_conformance_on::<HeapCore>();
}

// --- topology-zoo conformance ------------------------------------------

/// The three non-Clos zoo fabrics, built with their route plans. The
/// sharded engine partitions these by the plan's endpoint groups (per
/// router/switch blocks), so conformance here pins the whole
/// plan-driven path: seeding, advert filtering, group partitioning.
fn zoo_built() -> Vec<(&'static str, stardust::topo::Built)> {
    use stardust::topo::{DragonflyParams, ExpanderParams, SpaceShuffleParams, TopologyBuilder};
    vec![
        ("dragonfly", DragonflyParams::zoo().build_fabric()),
        ("space_shuffle", SpaceShuffleParams::zoo(42).build_fabric()),
        ("expander", ExpanderParams::zoo(42).build_fabric()),
    ]
}

#[test]
fn zoo_permutation_conformance_both_cores() {
    for (name, built) in zoo_built() {
        let scn = Scenario {
            name: format!("conf-zoo-{name}"),
            seed: 42,
            kind: ScenarioKind::Permutation {
                flow_bytes: 200_000,
            },
        };
        let horizon = SimTime::from_millis(5);
        let mut seq = FabricEngine::<CalendarCore>::with_plan(
            built.topo.clone(),
            cfg(11),
            built.plan.clone(),
        );
        let seq_flows = scn.run(&mut seq, horizon);
        assert_eq!(
            seq_flows.completed(),
            seq_flows.len(),
            "{name}: permutation must complete"
        );
        assert_eq!(seq.stats().cells_dropped.get(), 0, "{name}: lossless");

        let mut heap =
            FabricEngine::<HeapCore>::with_plan(built.topo.clone(), cfg(11), built.plan.clone());
        let heap_flows = scn.run(&mut heap, horizon);
        assert_eq!(seq_flows, heap_flows, "{name}: heap-core FCTs diverged");
        assert_eq!(
            seq.stats(),
            heap.stats(),
            "{name}: heap-core stats diverged"
        );

        for shards in shard_counts() {
            let mut sh = ShardedFabricEngine::<CalendarCore>::with_plan(
                built.topo.clone(),
                cfg(11),
                built.plan.clone(),
                shards,
            );
            sh.set_exec_mode(ExecMode::Inline);
            let sh_flows = scn.run(&mut sh, horizon);
            assert_eq!(seq_flows, sh_flows, "{name}: {shards}-shard FCTs diverged");
            assert_eq!(
                seq.stats(),
                &sh.stats(),
                "{name}: {shards}-shard stats diverged"
            );
        }
    }
}

#[test]
fn zoo_fail_link_conformance() {
    // The fail-link churn of the Clos conformance run, on every zoo
    // fabric: dynamic reachability, a hard-failed FA uplink, a noisy
    // fabric link, healing — sequential vs sharded, bit for bit.
    for (name, built) in zoo_built() {
        let mut c = cfg(3);
        c.reach_interval = Some(SimDuration::from_micros(10));
        c.reach_miss_threshold = 3;
        let fail = built.topo.node(built.endpoints[0]).links[0];
        let noisy = stardust::topo::LinkId(built.topo.num_links() as u32 - 1);
        let mut seq = FabricEngine::<CalendarCore>::with_plan(
            built.topo.clone(),
            c.clone(),
            built.plan.clone(),
        );
        fail_link_workload!(seq, fail, noisy);
        let seq_stats = seq.stats().clone();
        assert!(
            seq_stats.packets_delivered.get() > 0,
            "{name}: nothing delivered"
        );
        for shards in shard_counts() {
            let mut sh = ShardedFabricEngine::<CalendarCore>::with_plan(
                built.topo.clone(),
                c.clone(),
                built.plan.clone(),
                shards,
            );
            sh.set_exec_mode(ExecMode::Inline);
            fail_link_workload!(sh, fail, noisy);
            assert_eq!(
                seq_stats,
                sh.stats(),
                "{name}: {shards}-shard fail-link run diverged"
            );
        }
    }
}
