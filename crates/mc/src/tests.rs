//! Model-checker self-tests: bounded exploration holds all invariants
//! on the Clos and zoo fabrics, the search actually closes (steady state
//! is a hash fixpoint), and a deliberately-injected spray-eligibility
//! bug is caught by I1 — the mutation test proving the checker has
//! teeth.

use super::*;
use stardust_topo::DragonflyParams;

const SEED: u64 = 11;

fn tiny(links: Vec<LinkId>, depth: usize) -> McConfig {
    McConfig {
        max_depth: depth,
        max_states: 500,
        max_concurrent_failures: 2,
        links,
        warmup_steps: 20,
    }
}

#[test]
fn clos4_smoke_holds_all_invariants() {
    let mc = Mc::new(clos4(), mc_config(SEED), McConfig::smoke());
    let r = mc.explore();
    assert!(r.ok(), "violation: {:?}", r.violation);
    assert!(
        r.distinct_states >= 100,
        "a 7-deep smoke run must visit a real state space, got {}",
        r.distinct_states
    );
    assert!(r.transitions >= r.distinct_states as u64);
}

#[test]
fn exploration_is_deterministic() {
    let mc = Mc::new(clos4(), mc_config(SEED), tiny(vec![LinkId(0)], 6));
    let a = mc.explore();
    let b = mc.explore();
    assert_eq!(a.distinct_states, b.distinct_states);
    assert_eq!(a.transitions, b.transitions);
    assert!(a.ok() && b.ok());
}

#[test]
fn steady_state_is_a_step_fixpoint() {
    // With failures forbidden the only transition is Step, and the
    // relative-time hash must close the loop after a bounded number of
    // quanta instead of chasing the absolute clock to max_depth.
    let cfg = McConfig {
        max_concurrent_failures: 0,
        ..tiny(vec![LinkId(0)], 64)
    };
    let mc = Mc::new(clos4(), mc_config(SEED), cfg);
    let r = mc.explore();
    assert!(r.ok());
    assert!(
        !r.truncated,
        "pure Step chains must dedup into a fixpoint, not run to the depth cap \
         (visited {} states, depth {})",
        r.distinct_states, r.max_depth_reached
    );
}

#[test]
fn dragonfly_zoo_smoke_holds_all_invariants() {
    let built = DragonflyParams::zoo().build_fabric();
    let links = vec![LinkId(0), LinkId(built.topo.num_links() as u32 - 1)];
    let mc = Mc::new(built, mc_config(SEED), tiny(links, 7));
    let r = mc.explore();
    assert!(r.ok(), "violation: {:?}", r.violation);
    assert!(r.distinct_states >= 50, "got {}", r.distinct_states);
}

#[test]
fn injected_spray_eligibility_bug_is_caught_by_i1() {
    // The mutation: a buggy spray layer that keeps offering link 0's
    // a-end direction (dir 0) to every destination that has any
    // eligible direction — i.e. it ignores exclusion and the plan's
    // candidate sets. I1 must refuse it.
    fn buggy(snap: &mut stardust_fabric::EligibilitySnapshot) {
        for per_dst in snap.iter_mut() {
            for dirs in per_dst.iter_mut() {
                if !dirs.is_empty() && !dirs.contains(&0) {
                    dirs.push(0);
                }
            }
        }
    }
    let mut mc = Mc::new(clos4(), mc_config(SEED), tiny(vec![LinkId(0)], 8));
    mc.mutator = Some(buggy);
    let r = mc.explore();
    let v = r.violation.expect("the injected bug must be detected");
    assert_eq!(v.invariant, "I1", "caught by the wrong invariant: {v:?}");
}

#[test]
fn clos8_bounded_run_holds_invariants() {
    let mc = Mc::new(
        clos8(),
        mc_config(SEED),
        tiny(vec![LinkId(0), LinkId(9)], 5),
    );
    let r = mc.explore();
    assert!(r.ok(), "violation: {:?}", r.violation);
}

#[test]
#[ignore = "minutes-scale in debug; CI runs it in release via `stardust mc`"]
fn exhaustive_clos4_exceeds_ten_thousand_states() {
    let mc = Mc::new(clos4(), mc_config(SEED), McConfig::exhaustive());
    let r = mc.explore();
    assert!(r.ok(), "violation: {:?}", r.violation);
    assert!(
        r.distinct_states >= 10_000,
        "exhaustive 4-FA exploration must cover ≥10⁴ states, got {}",
        r.distinct_states
    );
}
