//! # stardust-mc — exhaustive small-scale model checking
//!
//! The conformance suites sample seeds; this crate *enumerates*. On
//! fabrics small enough to close the state space (a 4–8 FA folded Clos,
//! the CI-scale topology-zoo kinds), it drives the deterministic engine
//! through every interleaving of link-failure, link-restore and
//! protocol-step actions up to a bounded depth, and asserts the
//! control-plane invariants after **every** transition:
//!
//! * **I1 — exclusion safety.** No device's spray-eligible direction set
//!   ever contains a direction outside the route plan's candidate set
//!   for that destination, and a link that has been administratively
//!   failed for at least the detection bound (`th` missed reachability
//!   intervals plus a propagation margin) is excluded from every
//!   eligible set in the fabric.
//! * **I2 — reconvergence.** From any reachable state in which every
//!   link has been restored, running the protocol for the settle bound
//!   (revival streak + propagation margin, cf. §5.10 and Appendix E)
//!   returns every eligibility table to the pristine converged view.
//! * **I3 — lookahead discipline.** Every in-flight reachability message
//!   is scheduled strictly in the future and no further out than the
//!   fabric's maximum propagation delay — the protocol never "time
//!   travels" past its one-hop lookahead window.
//!
//! ## Why depth-first replay over the deterministic engine is sound
//!
//! [`stardust_fabric::FabricEngine`] is not cloneable (it owns a live
//! calendar queue), so the checker is *stateless*: a search node is an
//! action sequence, and visiting it rebuilds a fresh engine and replays
//! the sequence. The engine's total event order is a pure function of
//! (topology, config, action sequence) — the workspace's determinism
//! contract, enforced statically by `stardust-lint` and dynamically by
//! the conformance suites — so replaying a prefix always reproduces the
//! exact state first observed for it, and two sequences that fold to the
//! same canonical hash really are the same control-plane state. Visited
//! states are deduplicated by an FNV-1a hash over the *relative-time*
//! view of the state (reachability tables with `now − last_heard`,
//! pending messages with `deliver_at − now`, administrative link state,
//! and the eligibility snapshot), so the converged steady state is a
//! fixpoint under `Step` and the search closes instead of chasing the
//! absolute clock forever.

use std::collections::{BTreeMap, BTreeSet};

use stardust_fabric::{EligibilitySnapshot, FabricConfig, FabricEngine};
use stardust_sim::{SimDuration, SimTime};
use stardust_topo::{Built, LinkId, TopologyBuilder, TwoTierParams};

#[cfg(test)]
mod tests;

/// One transition of the model: an administrative link action, or one
/// reachability quantum (`reach_interval`) of protocol execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Administratively fail a link (both directions).
    Fail(LinkId),
    /// Administratively restore a link (both directions).
    Restore(LinkId),
    /// Run the engine for one reachability interval.
    Step,
}

/// Search bounds for one exploration.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Maximum actions per path.
    pub max_depth: usize,
    /// Budget of distinct canonical states; exploration stops expanding
    /// (and reports `truncated`) once reached.
    pub max_states: usize,
    /// Maximum simultaneously-failed links.
    pub max_concurrent_failures: usize,
    /// Links the checker may fail/restore. Empty = derive from the
    /// topology (every link on small fabrics, a spread of three
    /// otherwise).
    pub links: Vec<LinkId>,
    /// Reachability quanta the pristine engine runs before exploration
    /// starts (must converge the initial tables).
    pub warmup_steps: u64,
}

impl McConfig {
    /// CI-scale bounds: shallow depth, small state budget; finishes in
    /// well under a second per topology even in debug builds.
    pub fn smoke() -> Self {
        McConfig {
            max_depth: 7,
            max_states: 2_000,
            max_concurrent_failures: 2,
            links: Vec::new(),
            warmup_steps: 20,
        }
    }

    /// The full bounded-exhaustive run: deep enough to cover
    /// fail→detect→restore→revive cycles and pairs of overlapping
    /// failures on a 4-FA Clos (≥ 10⁴ distinct states).
    pub fn exhaustive() -> Self {
        McConfig {
            max_depth: 16,
            max_states: 200_000,
            max_concurrent_failures: 2,
            links: Vec::new(),
            warmup_steps: 20,
        }
    }
}

/// A counterexample: which invariant broke, how, and the action
/// sequence (from the converged pristine state) that reaches it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// `"I1"`, `"I2"` or `"I3"`.
    pub invariant: &'static str,
    /// Human-readable description of the broken assertion.
    pub detail: String,
    /// The action sequence reproducing the violation.
    pub trace: Vec<Action>,
}

/// Outcome of one exploration.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Distinct canonical states visited.
    pub distinct_states: usize,
    /// Transitions executed (= search nodes replayed, minus the root).
    pub transitions: u64,
    /// Deepest action sequence reached.
    pub max_depth_reached: usize,
    /// True when a bound (depth or state budget) cut the search before
    /// the reachable space closed.
    pub truncated: bool,
    /// The first invariant violation found, if any (search stops on it).
    pub violation: Option<Violation>,
}

impl McReport {
    /// True when every explored transition upheld all invariants.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

/// The model checker: a fabric, its config, search bounds, and the
/// pristine reference state.
pub struct Mc {
    built: Built,
    cfg: FabricConfig,
    mc: McConfig,
    /// One protocol quantum = the reachability interval.
    quantum: SimDuration,
    /// `Step`s after which a continuously-failed link must be excluded
    /// from every eligible set: `th` missed intervals to detect plus a
    /// propagation margin across the fabric's tiers.
    exclusion_bound_steps: u64,
    /// `Step`-equivalents run when checking I2: the §5.10 revival streak
    /// plus detection and propagation margins.
    settle_steps: u64,
    alphabet: Vec<LinkId>,
    pristine: EligibilitySnapshot,
    /// Test hook: a fault injected into the eligibility snapshot before
    /// the I1 check, simulating a buggy spray-eligibility computation.
    /// The mutation tests prove I1 actually catches such bugs.
    pub mutator: Option<fn(&mut EligibilitySnapshot)>,
}

impl Mc {
    /// Build a checker over `built` with the engine config `cfg` (which
    /// must run the dynamic reachability protocol: `reach_interval` set).
    pub fn new(built: Built, cfg: FabricConfig, mc: McConfig) -> Mc {
        let quantum = cfg
            .reach_interval
            .expect("model checking needs the dynamic protocol: set reach_interval");
        let th = u64::from(cfg.reach_miss_threshold);
        let alphabet = if mc.links.is_empty() {
            let n = built.topo.num_links() as u32;
            if n <= 16 {
                (0..n).map(LinkId).collect()
            } else {
                vec![LinkId(0), LinkId(n / 2), LinkId(n - 1)]
            }
        } else {
            mc.links.clone()
        };
        let mut mc_ = Mc {
            built,
            cfg,
            mc,
            quantum,
            // th+1 intervals until the receiver's expiry fires, plus a
            // margin for the withdrawal to advertise across the tiers.
            exclusion_bound_steps: th + 6,
            // Revival needs th good adverts (§5.10) on top of detection
            // and propagation; 4·th + 8 quanta bounds the whole cycle
            // with slack (the zoo suite converges well inside this).
            settle_steps: 4 * th + 8,
            alphabet,
            pristine: Vec::new(),
            mutator: None,
        };
        let reference = mc_.fresh().eligible_dir_snapshot();
        mc_.pristine = reference;
        mc_
    }

    /// The per-transition protocol quantum.
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// The links the search may fail/restore.
    pub fn alphabet(&self) -> &[LinkId] {
        &self.alphabet
    }

    /// A fresh engine advanced to the converged pristine state.
    fn fresh(&self) -> FabricEngine {
        let mut e: FabricEngine = FabricEngine::with_plan(
            self.built.topo.clone(),
            self.cfg.clone(),
            self.built.plan.clone(),
        );
        e.run_until(SimTime::ZERO + self.quantum * self.mc.warmup_steps);
        e
    }

    /// Apply one action, tracking the admin-down set and the per-link
    /// `Step`s-since-fail ages the I1 exclusion bound needs.
    fn apply(
        &self,
        e: &mut FabricEngine,
        a: Action,
        down: &mut Vec<LinkId>,
        ages: &mut BTreeMap<u32, u64>,
    ) {
        match a {
            Action::Fail(l) => {
                e.fail_link(l);
                down.push(l);
                ages.insert(l.0, 0);
            }
            Action::Restore(l) => {
                e.restore_link(l);
                down.retain(|x| *x != l);
                ages.remove(&l.0);
            }
            Action::Step => {
                e.run_for(self.quantum);
                for v in ages.values_mut() {
                    *v += 1;
                }
            }
        }
    }

    /// Canonical FNV-1a hash of the control-plane state, with every
    /// timestamp made relative to `now` so the converged steady state is
    /// a fixpoint under `Step`.
    fn canon_hash(&self, e: &FabricEngine) -> u64 {
        let now = e.now();
        let mut h = Fnv::new();
        for l in 0..self.built.topo.num_links() as u32 {
            h.u64(u64::from(e.link_up(LinkId(l))));
        }
        for dev in e.reach_snapshot() {
            h.u64(dev.len() as u64);
            for (up, streak, last_heard, fas) in dev {
                h.u64(u64::from(up));
                h.u64(u64::from(streak));
                h.u64(now.saturating_since(last_heard).as_ps());
                h.u64(fas.len() as u64);
                for f in fas {
                    h.u64(u64::from(f));
                }
            }
        }
        for per_dst in e.eligible_dir_snapshot() {
            h.u64(per_dst.len() as u64);
            for dirs in per_dst {
                h.u64(dirs.len() as u64);
                for d in dirs {
                    h.u64(u64::from(d));
                }
            }
        }
        for (at, node, port, faulty, fas) in e.pending_reach_msgs() {
            h.u64(at.saturating_since(now).as_ps());
            h.u64(u64::from(node));
            h.u64(u64::from(port));
            h.u64(u64::from(faulty));
            h.u64(fas.len() as u64);
            for f in fas {
                h.u64(u64::from(f));
            }
        }
        h.finish()
    }

    /// I1: every eligible direction is a plan candidate for its
    /// destination, and links failed at least `exclusion_bound_steps`
    /// ago appear in no eligible set.
    fn check_i1(&self, e: &FabricEngine, ages: &BTreeMap<u32, u64>) -> Option<String> {
        let mut snap = e.eligible_dir_snapshot();
        if let Some(m) = self.mutator {
            m(&mut snap);
        }
        let excluded: Vec<u32> = ages
            .iter()
            .filter(|&(_, &age)| age >= self.exclusion_bound_steps)
            .flat_map(|(&l, _)| [l * 2, l * 2 + 1])
            .collect();
        for (dev, per_dst) in snap.iter().enumerate() {
            for (dst, dirs) in per_dst.iter().enumerate() {
                for &d in dirs {
                    let candidate = self
                        .built
                        .plan
                        .dir_dsts
                        .get(d as usize)
                        .is_some_and(|s| s.contains(dst as u32));
                    if !candidate {
                        return Some(format!(
                            "device {dev} sprays dst {dst} over dir {d}, \
                             not a route-plan candidate"
                        ));
                    }
                    if excluded.contains(&d) {
                        return Some(format!(
                            "device {dev} sprays dst {dst} over dir {d} of link {}, \
                             failed {} quanta ago (bound {})",
                            d / 2,
                            ages[&(d / 2)],
                            self.exclusion_bound_steps
                        ));
                    }
                }
            }
        }
        None
    }

    /// I3: every pending reachability message is strictly in the future
    /// and within one propagation delay of `now`.
    fn check_i3(&self, e: &FabricEngine) -> Option<String> {
        let now = e.now();
        let horizon = now + e.max_prop_delay();
        for (at, node, port, _, _) in e.pending_reach_msgs() {
            if at <= now || at > horizon {
                return Some(format!(
                    "reach msg to node {node} port {port} scheduled at {}ps, \
                     outside ({}ps, {}ps]",
                    at.as_ps(),
                    now.as_ps(),
                    horizon.as_ps()
                ));
            }
        }
        None
    }

    /// Exhaustive DFS over action sequences, deduplicated by canonical
    /// state hash, invariants checked after every transition. Returns on
    /// the first violation.
    pub fn explore(&self) -> McReport {
        let mut visited: BTreeSet<u64> = BTreeSet::new();
        let mut stack: Vec<Vec<Action>> = vec![Vec::new()];
        let mut report = McReport {
            distinct_states: 0,
            transitions: 0,
            max_depth_reached: 0,
            truncated: false,
            violation: None,
        };
        while let Some(prefix) = stack.pop() {
            let depth = prefix.len();
            report.max_depth_reached = report.max_depth_reached.max(depth);
            if depth > 0 {
                report.transitions += 1;
            }
            let mut e = self.fresh();
            let mut down: Vec<LinkId> = Vec::new();
            let mut ages: BTreeMap<u32, u64> = BTreeMap::new();
            for &a in &prefix {
                self.apply(&mut e, a, &mut down, &mut ages);
            }
            // Invariants are path-sensitive (I1's exclusion ages), so
            // check before the visited-state dedup.
            if let Some(detail) = self.check_i1(&e, &ages) {
                report.violation = Some(Violation {
                    invariant: "I1",
                    detail,
                    trace: prefix,
                });
                break;
            }
            if let Some(detail) = self.check_i3(&e) {
                report.violation = Some(Violation {
                    invariant: "I3",
                    detail,
                    trace: prefix,
                });
                break;
            }
            if !visited.insert(self.canon_hash(&e)) {
                continue;
            }
            if visited.len() >= self.mc.max_states || depth >= self.mc.max_depth {
                report.truncated = true;
                continue;
            }
            // Children, pushed in reverse so exploration order follows
            // the alphabet: fail/restore per link, then a protocol step.
            let child = |a: Action| {
                let mut p = prefix.clone();
                p.push(a);
                p
            };
            stack.push(child(Action::Step));
            for &l in self.alphabet.iter().rev() {
                if down.contains(&l) {
                    stack.push(child(Action::Restore(l)));
                } else if down.len() < self.mc.max_concurrent_failures {
                    stack.push(child(Action::Fail(l)));
                }
            }
            // I2, checked at every state the last restore just left
            // all-links-up: settle, then the tables must equal pristine.
            // (Children were generated above from the pre-settle state;
            // each child replays from scratch, so `e` is free to run on.)
            if down.is_empty() && matches!(prefix.last(), Some(Action::Restore(_))) {
                e.run_for(self.quantum * self.settle_steps);
                if e.eligible_dir_snapshot() != self.pristine {
                    report.violation = Some(Violation {
                        invariant: "I2",
                        detail: format!(
                            "tables did not reconverge to the pristine view within \
                             {} quanta of the last restore",
                            self.settle_steps
                        ),
                        trace: prefix,
                    });
                    break;
                }
            }
        }
        report.distinct_states = visited.len();
        report
    }
}

/// A 4-FA two-tier folded Clos, the smallest fabric with genuine
/// aggregation/spine path diversity (2 uplinks per FA, 2+2 FEs).
pub fn clos4() -> Built {
    TwoTierParams {
        num_fa: 4,
        fa_uplinks: 2,
        t1_count: 2,
        t1_down: 4,
        t1_up: 2,
        t2_count: 2,
        t2_down: 2,
        near_meters: 10,
        far_meters: 100,
    }
    .build_fabric()
}

/// An 8-FA two-tier folded Clos (4 aggregation, 2 spine FEs).
pub fn clos8() -> Built {
    TwoTierParams {
        num_fa: 8,
        fa_uplinks: 2,
        t1_count: 4,
        t1_down: 4,
        t1_up: 2,
        t2_count: 2,
        t2_down: 4,
        near_meters: 10,
        far_meters: 100,
    }
    .build_fabric()
}

/// The engine configuration model checking runs under: the dynamic
/// reachability protocol at a 10µs interval, miss threshold 3 (the
/// zoo-suite settings).
pub fn mc_config(seed: u64) -> FabricConfig {
    FabricConfig {
        seed,
        reach_interval: Some(SimDuration::from_micros(10)),
        reach_miss_threshold: 3,
        ..FabricConfig::default()
    }
}

/// FNV-1a, folded 8 bytes at a time; self-contained so the checker adds
/// no dependencies.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}
