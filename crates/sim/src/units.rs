//! Bandwidth and size units used throughout the workspace.
//!
//! The paper quotes link speeds in Gb/s (decimal: 1 Gb/s = 1e9 bit/s) and
//! buffer/cell sizes in bytes; these helpers keep the conversions in one
//! audited place.

use crate::time::{SimDuration, PS_PER_SEC};

/// Bits per second, as used for link and port rates.
pub type BitsPerSec = u64;

/// Convenience constructor: `gbps(50)` is a 50 Gb/s rate.
pub const fn gbps(g: u64) -> BitsPerSec {
    g * 1_000_000_000
}

/// Convenience constructor: `mbps(100)` is a 100 Mb/s rate.
pub const fn mbps(m: u64) -> BitsPerSec {
    m * 1_000_000
}

/// Convenience constructor: `tbps(12)` is a 12 Tb/s rate (device bandwidth).
pub const fn tbps(t: u64) -> BitsPerSec {
    t * 1_000_000_000_000
}

/// Kibibytes → bytes (credit sizes such as 4 KB are binary in the paper's
/// hardware: a 4 KB credit is 4096 B).
pub const fn kib(k: u64) -> u64 {
    k * 1024
}

/// Mebibytes → bytes.
pub const fn mib(m: u64) -> u64 {
    m * 1024 * 1024
}

/// Exact serialization time of `bytes` at `rate` bits/s, in picoseconds.
///
/// Uses 128-bit intermediate math so that multi-gigabyte transfers at
/// tens of Tb/s cannot overflow.
pub fn serialization_time(bytes: u64, rate: BitsPerSec) -> SimDuration {
    assert!(rate > 0, "zero-rate link");
    let bits = (bytes as u128) * 8;
    let ps = bits * (PS_PER_SEC as u128) / (rate as u128);
    SimDuration::from_ps(ps as u64)
}

/// Ethernet on-wire overhead per frame: preamble (7 B) + SFD (1 B) +
/// inter-packet gap (12 B) = 20 B, as used in the paper's Appendix B.
pub const ETHERNET_WIRE_OVERHEAD: u64 = 20;

/// Minimum / maximum standard Ethernet frame payloads referenced throughout
/// the evaluation.
pub const MIN_ETHERNET_FRAME: u64 = 64;
/// Largest jumbo-frame payload used in the evaluation (9 KB).
pub const MAX_JUMBO_FRAME: u64 = 9_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_constructors() {
        assert_eq!(gbps(50), 50_000_000_000);
        assert_eq!(mbps(150), 150_000_000);
        assert_eq!(tbps(12) + gbps(800), 12_800_000_000_000);
        assert_eq!(kib(4), 4096);
        assert_eq!(mib(32), 33_554_432);
    }

    #[test]
    fn serialization_exact_cases() {
        // The motivating case: 256B cell on 50G link = 40.96ns.
        assert_eq!(serialization_time(256, gbps(50)).as_ps(), 40_960);
        // 9000B jumbo at 10G = 7.2us.
        assert_eq!(serialization_time(9_000, gbps(10)).as_micros_f64(), 7.2);
        // 64B at 100G = 5.12ns.
        assert_eq!(serialization_time(64, gbps(100)).as_ps(), 5_120);
    }

    #[test]
    fn serialization_no_overflow_at_scale() {
        // 1 TiB at 12.8 Tb/s must not overflow.
        let t = serialization_time(1 << 40, tbps(12) + gbps(800));
        assert!((t.as_secs_f64() - 0.687) < 0.01);
    }

    #[test]
    #[should_panic(expected = "zero-rate")]
    fn zero_rate_panics() {
        serialization_time(1, 0);
    }
}
