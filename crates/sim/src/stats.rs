//! Measurement collection: histograms, counters and online moments.
//!
//! These are the instruments behind the paper's distribution plots —
//! Figure 9's latency and queue-size probability distributions, and the
//! latency min/avg/max bands of §6.1.2.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A fixed-width-bin histogram over `u64` samples (e.g. queue depth in
/// cells, latency in nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// Samples ≥ `bin_width * bins.len()` land here (and in `max`).
    overflow: u64,
}

impl Histogram {
    /// A histogram of `nbins` bins, each `bin_width` wide. Sample `x` lands
    /// in bin `x / bin_width`.
    pub fn new(bin_width: u64, nbins: usize) -> Self {
        assert!(bin_width > 0 && nbins > 0);
        Histogram {
            bin_width,
            bins: vec![0; nbins],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            overflow: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: u64) {
        self.count += 1;
        self.sum += x as u128;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let idx = (x / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Record `n` identical samples (used when integrating queue occupancy
    /// over time with weight = duration).
    pub fn record_n(&mut self, x: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum += (x as u128) * (n as u128);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let idx = (x / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += n;
        } else {
            self.overflow += n;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }
    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }
    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }
    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Probability mass of bin `i` (fraction of samples).
    pub fn pmf(&self, i: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.bins[i] as f64 / self.count as f64
        }
    }

    /// Fraction of samples at or above `x` (complementary CDF); used for the
    /// paper's tail-probability plots (Fig 9 right, log scale).
    pub fn ccdf(&self, x: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let start = (x / self.bin_width) as usize;
        let mut above: u64 = self.overflow;
        for i in start..self.bins.len() {
            above += self.bins[i];
        }
        // The start bin may contain samples below x; this is a bin-resolution
        // approximation, acceptable for bin_width == 1 (exact) and plots.
        above as f64 / self.count as f64
    }

    /// Approximate quantile by scanning bins; returns a bin lower edge,
    /// except `q = 0.0` which returns the exact recorded minimum (a zero
    /// target would otherwise "satisfy" at bin 0 even when the leading
    /// bins are empty) and all-overflow histograms which return the
    /// recorded maximum (the bins cannot resolve the overflow region).
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        if target == 0 {
            return self.min();
        }
        let mut acc = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return i as u64 * self.bin_width;
            }
        }
        self.max
    }

    /// Iterate `(bin_lower_edge, probability_mass)` over non-empty bins.
    pub fn nonempty_bins(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bin_width, c as f64 / self.count as f64))
    }

    /// Samples that exceeded the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Merge another histogram with identical geometry.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width);
        assert_eq!(self.bins.len(), other.bins.len());
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.overflow += other.overflow;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} mean={:.2} p50={} p99={} max={}",
            self.count,
            self.min(),
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

/// A named monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }
    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Welford online mean/variance over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Minimum sample (NaN when empty).
    pub fn min(&self) -> f64 {
        self.min
    }
    /// Maximum sample (NaN when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// One finite flow (message) in a flow-completion-time experiment: who
/// sent how much to whom, when it started and (if it did) when its last
/// byte left the destination.
///
/// This is the engine-agnostic FCT surface shared by the transport-level
/// fat-tree simulator and the cell-accurate fabric engine, so the Fig 10
/// experiments can report both from one record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Source node index (host or Fabric Adapter, engine-dependent).
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Flow size in bytes.
    pub bytes: u64,
    /// When the flow was offered to the network.
    pub start: SimTime,
    /// When the last byte completed, if it did within the run.
    pub finished: Option<SimTime>,
}

impl FlowRecord {
    /// Flow completion time, if finished.
    pub fn fct(&self) -> Option<SimDuration> {
        self.finished.map(|f| f.since(self.start))
    }
}

/// Per-flow FCT table plus an FCT histogram.
///
/// Derives `PartialEq`/`Eq` so determinism suites can assert two
/// same-seed runs produce **bit-identical** flow measurements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStats {
    records: Vec<FlowRecord>,
    fct_ns: Histogram,
}

impl Default for FlowStats {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowStats {
    /// An empty table. The histogram uses 1 µs bins out to ~65 ms; exact
    /// quantiles come from the per-flow table, the histogram serves
    /// distribution plots and merge-across-runs summaries.
    pub fn new() -> Self {
        FlowStats {
            records: Vec::new(),
            fct_ns: Histogram::new(1_000, 65_536),
        }
    }

    /// Register a flow; returns its index for [`FlowStats::finish`].
    pub fn add(&mut self, src: u32, dst: u32, bytes: u64, start: SimTime) -> u32 {
        self.records.push(FlowRecord {
            src,
            dst,
            bytes,
            start,
            finished: None,
        });
        (self.records.len() - 1) as u32
    }

    /// Mark flow `idx` finished at `at` and record its FCT.
    pub fn finish(&mut self, idx: u32, at: SimTime) {
        let r = &mut self.records[idx as usize];
        debug_assert!(r.finished.is_none(), "flow finished twice");
        r.finished = Some(at);
        self.fct_ns.record(at.since(r.start).as_nanos_f64() as u64);
    }

    /// The per-flow table, in registration order.
    pub fn records(&self) -> &[FlowRecord] {
        &self.records
    }

    /// Number of registered flows.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no flows were registered.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of completed flows.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.finished.is_some()).count()
    }

    /// FCT histogram (nanosecond samples, 1 µs bins).
    pub fn fct_histogram_ns(&self) -> &Histogram {
        &self.fct_ns
    }

    /// Completed FCTs, ascending.
    pub fn fcts_sorted(&self) -> Vec<SimDuration> {
        let mut v: Vec<SimDuration> = self.records.iter().filter_map(|r| r.fct()).collect();
        v.sort_unstable();
        v
    }

    /// Exact FCT quantile over completed flows (`None` when none
    /// completed). `q = 0.0` is the minimum, `q = 1.0` the maximum.
    /// Sorts on every call — when reading many quantiles, sort once with
    /// [`FlowStats::fcts_sorted`] and index via [`quantile_of_sorted`].
    pub fn fct_quantile(&self, q: f64) -> Option<SimDuration> {
        quantile_of_sorted(&self.fcts_sorted(), q)
    }

    /// Merge the finishes of `other` into `self` (sharded-run reduction).
    ///
    /// Both tables must describe the same registered flow list (same
    /// length, same `src`/`dst`/`bytes`/`start` per index — the sharded
    /// fabric registers every flow on every shard, but each flow finishes
    /// on exactly one). Finishes are taken index-wise; the FCT histograms
    /// merge bin-wise, so the absorbed table is bit-identical to the one
    /// a sequential run records.
    pub fn absorb_finishes(&mut self, other: &FlowStats) {
        assert_eq!(
            self.records.len(),
            other.records.len(),
            "absorbing a different flow table"
        );
        for (mine, theirs) in self.records.iter_mut().zip(&other.records) {
            debug_assert_eq!(
                (mine.src, mine.dst, mine.bytes, mine.start),
                (theirs.src, theirs.dst, theirs.bytes, theirs.start),
                "absorbing a different flow table"
            );
            if let Some(f) = theirs.finished {
                assert!(
                    mine.finished.is_none() || mine.finished == Some(f),
                    "flow finished on two shards"
                );
                mine.finished = Some(f);
            }
        }
        self.fct_ns.merge(&other.fct_ns);
    }

    /// Mean FCT over completed flows (`None` when none completed).
    pub fn fct_mean(&self) -> Option<SimDuration> {
        let (mut n, mut sum) = (0u128, 0u128);
        for d in self.records.iter().filter_map(|r| r.fct()) {
            n += 1;
            sum += d.as_ps() as u128;
        }
        if n == 0 {
            return None;
        }
        Some(SimDuration::from_ps((sum / n) as u64))
    }
}

/// Nearest-rank quantile over an ascending slice (`None` when empty):
/// `q = 0.0` is the minimum, `q = 1.0` the maximum. The indexing
/// behind [`FlowStats::fct_quantile`], exposed so callers reading many
/// quantiles can sort once and index repeatedly.
pub fn quantile_of_sorted(sorted: &[SimDuration], q: f64) -> Option<SimDuration> {
    assert!((0.0..=1.0).contains(&q));
    if sorted.is_empty() {
        return None;
    }
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    Some(sorted[idx])
}

/// Time-weighted average of a step function (e.g. queue occupancy over
/// time). Feed it `(time, new_value)` transitions; it integrates value×dt.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_t: u64,
    value: u64,
    integral: u128,
    peak: u64,
}

impl TimeWeighted {
    /// Start tracking at time `t0` with initial `value`.
    pub fn new(t0: u64, value: u64) -> Self {
        TimeWeighted {
            last_t: t0,
            value,
            integral: 0,
            peak: value,
        }
    }

    /// Record that the tracked quantity changed to `value` at time `t`.
    pub fn set(&mut self, t: u64, value: u64) {
        debug_assert!(t >= self.last_t);
        self.integral += (self.value as u128) * ((t - self.last_t) as u128);
        self.last_t = t;
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Time-weighted mean over `[t0, t]`, closing the integral at `t`.
    pub fn mean_until(&self, t: u64, t0: u64) -> f64 {
        if t <= t0 {
            return self.value as f64;
        }
        let closed = self.integral + (self.value as u128) * ((t - self.last_t) as u128);
        closed as f64 / (t - t0) as f64
    }

    /// Peak value observed.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Current value.
    pub fn current(&self) -> u64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic() {
        let mut h = Histogram::new(1, 100);
        for x in [1u64, 2, 2, 3, 10] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert!((h.mean() - 3.6).abs() < 1e-9);
        assert!((h.pmf(2) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn histogram_ccdf_exact_with_unit_bins() {
        let mut h = Histogram::new(1, 32);
        for x in 0..10u64 {
            h.record(x);
        }
        assert!((h.ccdf(0) - 1.0).abs() < 1e-12);
        assert!((h.ccdf(5) - 0.5).abs() < 1e-12);
        assert!((h.ccdf(10) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1, 1000);
        for x in 1..=100u64 {
            h.record(x);
        }
        assert_eq!(h.quantile(0.5), 50);
        assert_eq!(h.quantile(0.99), 99);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn quantile_zero_returns_recorded_min_not_bin_zero() {
        // Leading bins empty: q=0 must report the true minimum, not 0.
        let mut h = Histogram::new(1, 1000);
        for x in [50u64, 60, 70] {
            h.record(x);
        }
        assert_eq!(h.quantile(0.0), 50);
        // And a coarse-binned histogram reports the exact sample minimum,
        // not its bin's lower edge.
        let mut c = Histogram::new(100, 10);
        c.record(250);
        assert_eq!(c.quantile(0.0), 250);
        // Empty histogram stays at 0.
        assert_eq!(Histogram::new(1, 4).quantile(0.0), 0);
    }

    #[test]
    fn quantile_one_with_overflow_returns_max() {
        let mut h = Histogram::new(1, 4);
        h.record(2);
        h.record(100); // overflow
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), 2);
    }

    #[test]
    fn quantile_all_overflow_returns_max() {
        let mut h = Histogram::new(1, 4);
        h.record(100);
        h.record(200);
        assert_eq!(h.quantile(0.0), 100, "q=0 is the recorded min");
        assert_eq!(h.quantile(0.5), 200, "bins cannot resolve overflow");
        assert_eq!(h.quantile(1.0), 200);
    }

    #[test]
    fn histogram_overflow_counted() {
        let mut h = Histogram::new(1, 4);
        h.record(100);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 1);
        assert!((h.ccdf(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(1, 8);
        let mut b = Histogram::new(1, 8);
        a.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 3);
    }

    #[test]
    fn online_stats_matches_closed_form() {
        let mut s = OnlineStats::new();
        for x in 1..=9 {
            s.record(x as f64);
        }
        assert_eq!(s.count(), 9);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance of 1..9 is 60/9.
        assert!((s.variance() - 60.0 / 9.0).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(0, 0);
        tw.set(10, 4); // value 0 for 10 units
        tw.set(20, 0); // value 4 for 10 units
                       // mean over [0,20] = (0*10 + 4*10)/20 = 2
        assert!((tw.mean_until(20, 0) - 2.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 4);
    }

    #[test]
    fn flow_stats_records_and_quantiles() {
        let mut fs = FlowStats::new();
        let a = fs.add(0, 1, 1_000, SimTime::ZERO);
        let b = fs.add(2, 3, 2_000, SimTime::from_micros(5));
        let c = fs.add(4, 5, 3_000, SimTime::ZERO);
        fs.finish(a, SimTime::from_micros(10));
        fs.finish(b, SimTime::from_micros(25)); // fct = 20µs
        assert_eq!(fs.len(), 3);
        assert_eq!(fs.completed(), 2);
        assert_eq!(fs.records()[c as usize].fct(), None);
        assert_eq!(fs.fct_quantile(0.0), Some(SimDuration::from_micros(10)));
        assert_eq!(fs.fct_quantile(1.0), Some(SimDuration::from_micros(20)));
        assert_eq!(fs.fct_mean(), Some(SimDuration::from_micros(15)));
        assert_eq!(fs.fct_histogram_ns().count(), 2);
        // Bit-identical comparison is what determinism suites rely on.
        let clone = fs.clone();
        assert_eq!(fs, clone);
    }

    #[test]
    fn absorb_finishes_reduces_to_the_sequential_table() {
        // One "sequential" table vs the same flows split over two
        // "shards" (each finishing a disjoint subset): absorbing must be
        // bit-identical, histogram included.
        let add_all = |fs: &mut FlowStats| {
            fs.add(0, 1, 1_000, SimTime::ZERO);
            fs.add(1, 0, 2_000, SimTime::from_micros(1));
            fs.add(2, 3, 3_000, SimTime::from_micros(2));
        };
        let mut seq = FlowStats::new();
        add_all(&mut seq);
        seq.finish(0, SimTime::from_micros(10));
        seq.finish(2, SimTime::from_micros(30));
        let mut a = FlowStats::new();
        add_all(&mut a);
        a.finish(0, SimTime::from_micros(10));
        let mut b = FlowStats::new();
        add_all(&mut b);
        b.finish(2, SimTime::from_micros(30));
        a.absorb_finishes(&b);
        assert_eq!(a, seq);
    }

    #[test]
    #[should_panic(expected = "different flow table")]
    fn absorb_rejects_mismatched_tables() {
        let mut a = FlowStats::new();
        a.add(0, 1, 100, SimTime::ZERO);
        let b = FlowStats::new();
        a.absorb_finishes(&b);
    }

    #[test]
    fn empty_flow_stats_yield_none() {
        let fs = FlowStats::new();
        assert!(fs.is_empty());
        assert_eq!(fs.fct_quantile(0.5), None);
        assert_eq!(fs.fct_mean(), None);
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new(2, 16);
        let mut b = Histogram::new(2, 16);
        for _ in 0..7 {
            a.record(5);
        }
        b.record_n(5, 7);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.max(), b.max());
    }
}
