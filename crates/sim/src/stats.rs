//! Measurement collection: histograms, counters and online moments.
//!
//! These are the instruments behind the paper's distribution plots —
//! Figure 9's latency and queue-size probability distributions, and the
//! latency min/avg/max bands of §6.1.2.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A fixed-width-bin histogram over `u64` samples (e.g. queue depth in
/// cells, latency in nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bin_width: u64,
    bins: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    /// Samples ≥ `bin_width * bins.len()` land here (and in `max`).
    overflow: u64,
}

impl Histogram {
    /// A histogram of `nbins` bins, each `bin_width` wide. Sample `x` lands
    /// in bin `x / bin_width`.
    pub fn new(bin_width: u64, nbins: usize) -> Self {
        assert!(bin_width > 0 && nbins > 0);
        Histogram {
            bin_width,
            bins: vec![0; nbins],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            overflow: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: u64) {
        self.count += 1;
        self.sum += x as u128;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let idx = (x / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Record `n` identical samples (used when integrating queue occupancy
    /// over time with weight = duration).
    pub fn record_n(&mut self, x: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.count += n;
        self.sum += (x as u128) * (n as u128);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        let idx = (x / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += n;
        } else {
            self.overflow += n;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }
    /// Smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }
    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }
    /// Arithmetic mean (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Probability mass of bin `i` (fraction of samples).
    pub fn pmf(&self, i: usize) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.bins[i] as f64 / self.count as f64
        }
    }

    /// Fraction of samples at or above `x` (complementary CDF); used for the
    /// paper's tail-probability plots (Fig 9 right, log scale).
    pub fn ccdf(&self, x: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let start = (x / self.bin_width) as usize;
        let mut above: u64 = self.overflow;
        for i in start..self.bins.len() {
            above += self.bins[i];
        }
        // The start bin may contain samples below x; this is a bin-resolution
        // approximation, acceptable for bin_width == 1 (exact) and plots.
        above as f64 / self.count as f64
    }

    /// Approximate quantile by scanning bins, under the same nearest-rank
    /// convention as [`quantile_of_sorted`] (`rank = round(q·(n−1))`): the
    /// result is the inclusive **upper** edge of the bin holding that
    /// rank's sample, clamped to the recorded maximum — the true quantile
    /// is never under-reported (the old lower-edge convention could
    /// under-report by a full bucket). Exceptions: `q = 0.0` returns the
    /// exact recorded minimum, and an all-overflow histogram returns the
    /// recorded maximum (the bins cannot resolve the overflow region).
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0;
        }
        if q == 0.0 {
            return self.min();
        }
        let target = (q * (self.count - 1) as f64).round() as u64 + 1;
        let mut acc = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= target {
                return ((i as u64 + 1) * self.bin_width - 1).min(self.max);
            }
        }
        self.max
    }

    /// Iterate `(bin_lower_edge, probability_mass)` over non-empty bins.
    pub fn nonempty_bins(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(move |(i, &c)| (i as u64 * self.bin_width, c as f64 / self.count as f64))
    }

    /// Samples that exceeded the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Merge another histogram with identical geometry.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bin_width, other.bin_width);
        assert_eq!(self.bins.len(), other.bins.len());
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.overflow += other.overflow;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} mean={:.2} p50={} p99={} max={}",
            self.count,
            self.min(),
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.99),
            self.max
        )
    }
}

/// Sub-bucket resolution of [`QuantileSketch`]: each power-of-two decade
/// splits into `2^SKETCH_SUB_BITS` equal-width bins, bounding relative
/// quantile error at `1 / 2^SKETCH_SUB_BITS`.
const SKETCH_SUB_BITS: u32 = 6;
const SKETCH_SUB: u64 = 1 << SKETCH_SUB_BITS;
/// Total bins: `SKETCH_SUB` exact unit bins for values `< SKETCH_SUB`,
/// then `64 − SKETCH_SUB_BITS` decades of `SKETCH_SUB` sub-bins each,
/// covering all of `u64`.
const SKETCH_NBINS: usize = (SKETCH_SUB as usize) * (64 - SKETCH_SUB_BITS as usize + 1);

/// A fixed-size, mergeable quantile sketch over `u64` samples
/// (picosecond durations in practice), in the HDR-histogram style:
/// log-spaced decades, each split into [`SKETCH_SUB`] linear sub-bins.
///
/// Properties the sharded engines rely on:
/// - **Bounded memory**: always exactly [`SKETCH_NBINS`] `u64` bins
///   (~30 KB), independent of sample count — the bounded-memory
///   [`FlowStats`] mode stores one of these instead of a per-flow table.
/// - **Deterministic & commutative merge**: [`QuantileSketch::merge`] is
///   bin-wise integer addition plus min/max/count/sum folds, so merging
///   shard sketches yields bit-identical state in *any* shard order, and
///   identical to recording all samples into one sketch directly.
/// - **Documented error bound**: values `< SKETCH_SUB` are exact; above
///   that a bin spanning `[lo, hi]` has width `≤ lo / SKETCH_SUB`, so a
///   reported quantile `v` satisfies `exact ≤ v ≤ exact · (1 + 1/64)`
///   (never under-reported, same upper-edge convention as
///   [`Histogram::quantile`]). Min and max are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileSketch {
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
    bins: Vec<u64>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            bins: vec![0; SKETCH_NBINS],
        }
    }

    /// Bin index of value `v`: exact below `SKETCH_SUB`; above, the
    /// decade is `⌊log2 v⌋` and the sub-bin the next `SKETCH_SUB_BITS`
    /// bits of the mantissa.
    fn index(v: u64) -> usize {
        if v < SKETCH_SUB {
            return v as usize;
        }
        let decade = 63 - v.leading_zeros() as u64; // ≥ SKETCH_SUB_BITS
        let g = decade - SKETCH_SUB_BITS as u64;
        (SKETCH_SUB + g * SKETCH_SUB + ((v >> g) - SKETCH_SUB)) as usize
    }

    /// Inclusive upper edge of bin `idx` (the value `quantile` reports).
    fn bin_upper(idx: usize) -> u64 {
        let i = idx as u64;
        if i < SKETCH_SUB {
            return i;
        }
        let g = (i - SKETCH_SUB) / SKETCH_SUB;
        let sub = (i - SKETCH_SUB) % SKETCH_SUB;
        // The top bin's edge is 2^64; wrap to u64::MAX.
        ((SKETCH_SUB + sub + 1) << g).wrapping_sub(1)
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.bins[Self::index(v)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }
    /// Exact smallest sample (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }
    /// Exact largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }
    /// Exact arithmetic mean (0.0 if empty) — `sum` is kept in `u128`.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Quantile under the [`quantile_of_sorted`] nearest-rank convention
    /// (`rank = round(q·(n−1))`), reporting the inclusive upper edge of
    /// the bin holding that rank's sample, clamped to the exact maximum.
    /// `q = 0.0` is the exact minimum. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return None;
        }
        if q == 0.0 {
            return Some(self.min);
        }
        let target = (q * (self.count - 1) as f64).round() as u64 + 1;
        let mut acc = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            if c == 0 {
                continue;
            }
            acc += c;
            if acc >= target {
                return Some(Self::bin_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another sketch: bin-wise addition plus count/sum/min/max
    /// folds. Commutative and associative, hence shard-order independent.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// A named monotonically increasing counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }
    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Welford online mean/variance over `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Minimum sample (NaN when empty).
    pub fn min(&self) -> f64 {
        self.min
    }
    /// Maximum sample (NaN when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// One finite flow (message) in a flow-completion-time experiment: who
/// sent how much to whom, when it started and (if it did) when its last
/// byte left the destination.
///
/// This is the engine-agnostic FCT surface shared by the transport-level
/// fat-tree simulator and the cell-accurate fabric engine, so the Fig 10
/// experiments can report both from one record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// Source node index (host or Fabric Adapter, engine-dependent).
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Flow size in bytes.
    pub bytes: u64,
    /// When the flow was offered to the network.
    pub start: SimTime,
    /// When the last byte completed, if it did within the run.
    pub finished: Option<SimTime>,
}

impl FlowRecord {
    /// Flow completion time, if finished.
    pub fn fct(&self) -> Option<SimDuration> {
        self.finished.map(|f| f.since(self.start))
    }
}

/// Bounded-memory flow bookkeeping: counts, an exact FCT sum, and a
/// [`QuantileSketch`] of picosecond FCTs — fixed size regardless of how
/// many flows the run offers.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SketchBook {
    offered: u64,
    finished: u64,
    fct_sum_ps: u128,
    fct_ps: QuantileSketch,
}

/// The two bookkeeping modes of [`FlowStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
enum Book {
    /// Per-flow table: exact quantiles, O(flows) memory.
    Table(Vec<FlowRecord>),
    /// Counts + sketch: bounded memory, quantiles within the
    /// [`QuantileSketch`] error bound.
    Sketch(SketchBook),
}

/// Per-flow FCT accounting plus an FCT histogram, in one of two modes:
/// the default **table** mode keeps every [`FlowRecord`] (exact
/// quantiles), the **sketch** mode ([`FlowStats::new_sketched`]) keeps
/// only counts and a [`QuantileSketch`] so million-flow streaming runs
/// use bounded memory.
///
/// Derives `PartialEq`/`Eq` so determinism suites can assert two
/// same-seed runs produce **bit-identical** flow measurements — in both
/// modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStats {
    book: Book,
    fct_ns: Histogram,
}

impl Default for FlowStats {
    fn default() -> Self {
        Self::new()
    }
}

impl FlowStats {
    /// An empty table-mode instance. The histogram uses 1 µs bins out to
    /// ~65 ms; exact quantiles come from the per-flow table, the
    /// histogram serves distribution plots and merge-across-runs
    /// summaries.
    pub fn new() -> Self {
        FlowStats {
            book: Book::Table(Vec::new()),
            fct_ns: Histogram::new(1_000, 65_536),
        }
    }

    /// An empty sketch-mode instance: bounded memory, no per-flow
    /// records. Finishes are recorded via [`FlowStats::record_fct`]
    /// instead of [`FlowStats::finish`].
    pub fn new_sketched() -> Self {
        FlowStats {
            book: Book::Sketch(SketchBook {
                offered: 0,
                finished: 0,
                fct_sum_ps: 0,
                fct_ps: QuantileSketch::new(),
            }),
            fct_ns: Histogram::new(1_000, 65_536),
        }
    }

    /// True in bounded-memory sketch mode.
    pub fn is_sketched(&self) -> bool {
        matches!(self.book, Book::Sketch(_))
    }

    /// Register a flow; returns its index for [`FlowStats::finish`]. In
    /// sketch mode only the offered count advances (the index is the
    /// running count, for callers that thread ids through).
    pub fn add(&mut self, src: u32, dst: u32, bytes: u64, start: SimTime) -> u32 {
        match &mut self.book {
            Book::Table(records) => {
                records.push(FlowRecord {
                    src,
                    dst,
                    bytes,
                    start,
                    finished: None,
                });
                (records.len() - 1) as u32
            }
            Book::Sketch(sb) => {
                sb.offered += 1;
                (sb.offered - 1) as u32
            }
        }
    }

    /// Mark flow `idx` finished at `at` and record its FCT. Table mode
    /// only — sketch mode has no per-flow rows; use
    /// [`FlowStats::record_fct`].
    pub fn finish(&mut self, idx: u32, at: SimTime) {
        let Book::Table(records) = &mut self.book else {
            panic!("finish() needs the per-flow table; sketch mode records via record_fct()");
        };
        let r = &mut records[idx as usize];
        debug_assert!(r.finished.is_none(), "flow finished twice");
        r.finished = Some(at);
        self.fct_ns.record(at.since(r.start).as_nanos_f64() as u64);
    }

    /// Record one completed flow's FCT in sketch mode (panics in table
    /// mode, where [`FlowStats::finish`] carries the start time).
    pub fn record_fct(&mut self, fct: SimDuration) {
        let Book::Sketch(sb) = &mut self.book else {
            panic!("record_fct() is sketch-mode only; table mode uses finish()");
        };
        sb.finished += 1;
        sb.fct_sum_ps += fct.as_ps() as u128;
        sb.fct_ps.record(fct.as_ps());
        self.fct_ns.record(fct.as_nanos_f64() as u64);
    }

    /// The per-flow table, in registration order (empty in sketch mode).
    pub fn records(&self) -> &[FlowRecord] {
        match &self.book {
            Book::Table(records) => records,
            Book::Sketch(_) => &[],
        }
    }

    /// Number of registered flows.
    pub fn len(&self) -> usize {
        match &self.book {
            Book::Table(records) => records.len(),
            Book::Sketch(sb) => sb.offered as usize,
        }
    }

    /// True when no flows were registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of completed flows.
    pub fn completed(&self) -> usize {
        match &self.book {
            Book::Table(records) => records.iter().filter(|r| r.finished.is_some()).count(),
            Book::Sketch(sb) => sb.finished as usize,
        }
    }

    /// FCT histogram (nanosecond samples, 1 µs bins).
    pub fn fct_histogram_ns(&self) -> &Histogram {
        &self.fct_ns
    }

    /// The FCT sketch (picosecond samples) in sketch mode, `None` in
    /// table mode.
    pub fn fct_sketch_ps(&self) -> Option<&QuantileSketch> {
        match &self.book {
            Book::Table(_) => None,
            Book::Sketch(sb) => Some(&sb.fct_ps),
        }
    }

    /// Completed FCTs, ascending (empty in sketch mode — the individual
    /// durations are gone by design).
    pub fn fcts_sorted(&self) -> Vec<SimDuration> {
        let mut v: Vec<SimDuration> = self.records().iter().filter_map(|r| r.fct()).collect();
        v.sort_unstable();
        v
    }

    /// FCT quantile over completed flows (`None` when none completed).
    /// `q = 0.0` is the minimum, `q = 1.0` the maximum. Exact in table
    /// mode; within the [`QuantileSketch`] error bound in sketch mode.
    /// Table mode sorts on every call — for many quantiles use
    /// [`FlowStats::fct_quantiles`], which sorts once.
    pub fn fct_quantile(&self, q: f64) -> Option<SimDuration> {
        match &self.book {
            Book::Table(_) => quantile_of_sorted(&self.fcts_sorted(), q),
            Book::Sketch(sb) => sb.fct_ps.quantile(q).map(SimDuration::from_ps),
        }
    }

    /// Many FCT quantiles in one pass: table mode sorts **once** and
    /// indexes per `q` (the old per-call [`FlowStats::fct_quantile`]
    /// loop re-sorted the table for every quantile); sketch mode reads
    /// the sketch. Each entry is `None` when no flow completed.
    pub fn fct_quantiles(&self, qs: &[f64]) -> Vec<Option<SimDuration>> {
        match &self.book {
            Book::Table(_) => {
                let sorted = self.fcts_sorted();
                qs.iter().map(|&q| quantile_of_sorted(&sorted, q)).collect()
            }
            Book::Sketch(sb) => qs
                .iter()
                .map(|&q| sb.fct_ps.quantile(q).map(SimDuration::from_ps))
                .collect(),
        }
    }

    /// Merge the finishes of `other` into `self` (sharded-run reduction).
    ///
    /// **Table mode** (both sides): both tables must describe the same
    /// registered flow list (same length, same `src`/`dst`/`bytes`/`start`
    /// per index — the sharded fabric registers every flow on every shard,
    /// but each flow finishes on exactly one). Finishes are taken
    /// index-wise; the FCT histograms merge bin-wise, so the absorbed
    /// table is bit-identical to the one a sequential run records.
    ///
    /// **Sketch mode** (both sides): counts and sums add, sketch and
    /// histogram merge bin-wise. Every operation is commutative, so the
    /// reduction is bit-identical in any shard order and across shard
    /// counts. Shards hold *partial* books (each flow is offered and
    /// finished on one shard), so no length precondition applies.
    ///
    /// Mixed modes panic — a run picks one mode up front.
    pub fn absorb_finishes(&mut self, other: &FlowStats) {
        match (&mut self.book, &other.book) {
            (Book::Table(mine), Book::Table(theirs)) => {
                assert_eq!(mine.len(), theirs.len(), "absorbing a different flow table");
                for (m, t) in mine.iter_mut().zip(theirs) {
                    debug_assert_eq!(
                        (m.src, m.dst, m.bytes, m.start),
                        (t.src, t.dst, t.bytes, t.start),
                        "absorbing a different flow table"
                    );
                    if let Some(f) = t.finished {
                        assert!(
                            m.finished.is_none() || m.finished == Some(f),
                            "flow finished on two shards"
                        );
                        m.finished = Some(f);
                    }
                }
            }
            (Book::Sketch(mine), Book::Sketch(theirs)) => {
                mine.offered += theirs.offered;
                mine.finished += theirs.finished;
                mine.fct_sum_ps += theirs.fct_sum_ps;
                mine.fct_ps.merge(&theirs.fct_ps);
            }
            _ => panic!("absorbing mismatched flow-stat modes (table vs sketch)"),
        }
        self.fct_ns.merge(&other.fct_ns);
    }

    /// Mean FCT over completed flows (`None` when none completed); exact
    /// in both modes (the sketch book keeps the picosecond sum).
    pub fn fct_mean(&self) -> Option<SimDuration> {
        let (n, sum) = match &self.book {
            Book::Table(records) => {
                let (mut n, mut sum) = (0u128, 0u128);
                for d in records.iter().filter_map(|r| r.fct()) {
                    n += 1;
                    sum += d.as_ps() as u128;
                }
                (n, sum)
            }
            Book::Sketch(sb) => (sb.finished as u128, sb.fct_sum_ps),
        };
        if n == 0 {
            return None;
        }
        Some(SimDuration::from_ps((sum / n) as u64))
    }

    /// A sketch-mode copy of this instance: table rows collapse into
    /// counts + sketch (finished flows recorded in registration order —
    /// though order is immaterial, every sketch operation commutes). Lets
    /// exact-table runs be compared bit-for-bit against bounded-memory
    /// runs of the same scenario. A sketch-mode instance just clones.
    pub fn sketched(&self) -> FlowStats {
        match &self.book {
            Book::Sketch(_) => self.clone(),
            Book::Table(records) => {
                let mut out = FlowStats::new_sketched();
                for r in records {
                    out.add(r.src, r.dst, r.bytes, r.start);
                }
                for d in records.iter().filter_map(|r| r.fct()) {
                    out.record_fct(d);
                }
                out
            }
        }
    }
}

/// Nearest-rank quantile over an ascending slice (`None` when empty):
/// `q = 0.0` is the minimum, `q = 1.0` the maximum. The indexing
/// behind [`FlowStats::fct_quantile`], exposed so callers reading many
/// quantiles can sort once and index repeatedly.
pub fn quantile_of_sorted(sorted: &[SimDuration], q: f64) -> Option<SimDuration> {
    assert!((0.0..=1.0).contains(&q));
    if sorted.is_empty() {
        return None;
    }
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    Some(sorted[idx])
}

/// Time-weighted average of a step function (e.g. queue occupancy over
/// time). Feed it `(time, new_value)` transitions; it integrates value×dt.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_t: u64,
    value: u64,
    integral: u128,
    peak: u64,
}

impl TimeWeighted {
    /// Start tracking at time `t0` with initial `value`.
    pub fn new(t0: u64, value: u64) -> Self {
        TimeWeighted {
            last_t: t0,
            value,
            integral: 0,
            peak: value,
        }
    }

    /// Record that the tracked quantity changed to `value` at time `t`.
    pub fn set(&mut self, t: u64, value: u64) {
        debug_assert!(t >= self.last_t);
        self.integral += (self.value as u128) * ((t - self.last_t) as u128);
        self.last_t = t;
        self.value = value;
        self.peak = self.peak.max(value);
    }

    /// Time-weighted mean over `[t0, t]`, closing the integral at `t`.
    pub fn mean_until(&self, t: u64, t0: u64) -> f64 {
        if t <= t0 {
            return self.value as f64;
        }
        let closed = self.integral + (self.value as u128) * ((t - self.last_t) as u128);
        closed as f64 / (t - t0) as f64
    }

    /// Peak value observed.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Current value.
    pub fn current(&self) -> u64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic() {
        let mut h = Histogram::new(1, 100);
        for x in [1u64, 2, 2, 3, 10] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10);
        assert!((h.mean() - 3.6).abs() < 1e-9);
        assert!((h.pmf(2) - 0.4).abs() < 1e-9);
    }

    #[test]
    fn histogram_ccdf_exact_with_unit_bins() {
        let mut h = Histogram::new(1, 32);
        for x in 0..10u64 {
            h.record(x);
        }
        assert!((h.ccdf(0) - 1.0).abs() < 1e-12);
        assert!((h.ccdf(5) - 0.5).abs() < 1e-12);
        assert!((h.ccdf(10) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1, 1000);
        for x in 1..=100u64 {
            h.record(x);
        }
        // Nearest-rank over 1..=100: rank(0.5) = round(0.5·99) = 50 →
        // the 51st value. Matches `quantile_of_sorted` exactly at width 1.
        assert_eq!(h.quantile(0.5), 51);
        assert_eq!(h.quantile(0.99), 99);
        assert_eq!(h.quantile(1.0), 100);
    }

    #[test]
    fn histogram_quantile_agrees_with_exact_table() {
        // Cross-check the bin-scan convention against the exact
        // nearest-rank table: at unit bins they must agree exactly; at
        // coarse bins the histogram reports the upper edge of the exact
        // value's bin, so `exact ≤ hist < exact_bin_lower + width`.
        let samples: Vec<u64> = (0..500u64).map(|i| (i * 7919) % 10_000).collect();
        let sorted_d: Vec<SimDuration> = {
            let mut v: Vec<SimDuration> =
                samples.iter().map(|&s| SimDuration::from_ps(s)).collect();
            v.sort_unstable();
            v
        };
        let mut unit = Histogram::new(1, 10_000);
        let mut coarse = Histogram::new(100, 100);
        for &s in &samples {
            unit.record(s);
            coarse.record(s);
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = quantile_of_sorted(&sorted_d, q).unwrap().as_ps();
            assert_eq!(unit.quantile(q), exact, "q={q}: unit bins must be exact");
            let c = coarse.quantile(q);
            assert!(
                c >= exact && c < (exact / 100 + 1) * 100,
                "q={q}: coarse {c} vs exact {exact}"
            );
        }
    }

    #[test]
    fn quantile_zero_returns_recorded_min_not_bin_zero() {
        // Leading bins empty: q=0 must report the true minimum, not 0.
        let mut h = Histogram::new(1, 1000);
        for x in [50u64, 60, 70] {
            h.record(x);
        }
        assert_eq!(h.quantile(0.0), 50);
        // And a coarse-binned histogram reports the exact sample minimum,
        // not its bin's lower edge.
        let mut c = Histogram::new(100, 10);
        c.record(250);
        assert_eq!(c.quantile(0.0), 250);
        // Empty histogram stays at 0.
        assert_eq!(Histogram::new(1, 4).quantile(0.0), 0);
    }

    #[test]
    fn quantile_one_with_overflow_returns_max() {
        let mut h = Histogram::new(1, 4);
        h.record(2);
        h.record(100); // overflow
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(h.quantile(0.0), 2);
    }

    #[test]
    fn quantile_all_overflow_returns_max() {
        let mut h = Histogram::new(1, 4);
        h.record(100);
        h.record(200);
        assert_eq!(h.quantile(0.0), 100, "q=0 is the recorded min");
        assert_eq!(h.quantile(0.5), 200, "bins cannot resolve overflow");
        assert_eq!(h.quantile(1.0), 200);
    }

    #[test]
    fn histogram_overflow_counted() {
        let mut h = Histogram::new(1, 4);
        h.record(100);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 1);
        assert!((h.ccdf(2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(1, 8);
        let mut b = Histogram::new(1, 8);
        a.record(1);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 3);
    }

    #[test]
    fn online_stats_matches_closed_form() {
        let mut s = OnlineStats::new();
        for x in 1..=9 {
            s.record(x as f64);
        }
        assert_eq!(s.count(), 9);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance of 1..9 is 60/9.
        assert!((s.variance() - 60.0 / 9.0).abs() < 1e-9);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(0, 0);
        tw.set(10, 4); // value 0 for 10 units
        tw.set(20, 0); // value 4 for 10 units
                       // mean over [0,20] = (0*10 + 4*10)/20 = 2
        assert!((tw.mean_until(20, 0) - 2.0).abs() < 1e-12);
        assert_eq!(tw.peak(), 4);
    }

    #[test]
    fn flow_stats_records_and_quantiles() {
        let mut fs = FlowStats::new();
        let a = fs.add(0, 1, 1_000, SimTime::ZERO);
        let b = fs.add(2, 3, 2_000, SimTime::from_micros(5));
        let c = fs.add(4, 5, 3_000, SimTime::ZERO);
        fs.finish(a, SimTime::from_micros(10));
        fs.finish(b, SimTime::from_micros(25)); // fct = 20µs
        assert_eq!(fs.len(), 3);
        assert_eq!(fs.completed(), 2);
        assert_eq!(fs.records()[c as usize].fct(), None);
        assert_eq!(fs.fct_quantile(0.0), Some(SimDuration::from_micros(10)));
        assert_eq!(fs.fct_quantile(1.0), Some(SimDuration::from_micros(20)));
        assert_eq!(fs.fct_mean(), Some(SimDuration::from_micros(15)));
        assert_eq!(fs.fct_histogram_ns().count(), 2);
        // Bit-identical comparison is what determinism suites rely on.
        let clone = fs.clone();
        assert_eq!(fs, clone);
    }

    #[test]
    fn absorb_finishes_reduces_to_the_sequential_table() {
        // One "sequential" table vs the same flows split over two
        // "shards" (each finishing a disjoint subset): absorbing must be
        // bit-identical, histogram included.
        let add_all = |fs: &mut FlowStats| {
            fs.add(0, 1, 1_000, SimTime::ZERO);
            fs.add(1, 0, 2_000, SimTime::from_micros(1));
            fs.add(2, 3, 3_000, SimTime::from_micros(2));
        };
        let mut seq = FlowStats::new();
        add_all(&mut seq);
        seq.finish(0, SimTime::from_micros(10));
        seq.finish(2, SimTime::from_micros(30));
        let mut a = FlowStats::new();
        add_all(&mut a);
        a.finish(0, SimTime::from_micros(10));
        let mut b = FlowStats::new();
        add_all(&mut b);
        b.finish(2, SimTime::from_micros(30));
        a.absorb_finishes(&b);
        assert_eq!(a, seq);
    }

    #[test]
    #[should_panic(expected = "different flow table")]
    fn absorb_rejects_mismatched_tables() {
        let mut a = FlowStats::new();
        a.add(0, 1, 100, SimTime::ZERO);
        let b = FlowStats::new();
        a.absorb_finishes(&b);
    }

    #[test]
    fn empty_flow_stats_yield_none() {
        let fs = FlowStats::new();
        assert!(fs.is_empty());
        assert_eq!(fs.fct_quantile(0.5), None);
        assert_eq!(fs.fct_mean(), None);
    }

    #[test]
    fn sketch_bins_partition_u64() {
        // Every value maps into range, edges are consistent, and the bin
        // upper edge is the largest value mapping to that bin.
        for v in (0..200u64).chain([
            1_000,
            65_535,
            65_536,
            1 << 20,
            u64::MAX / 3,
            u64::MAX - 1,
            u64::MAX,
        ]) {
            let idx = QuantileSketch::index(v);
            assert!(idx < SKETCH_NBINS, "v={v} idx={idx}");
            let upper = QuantileSketch::bin_upper(idx);
            assert!(v <= upper, "v={v} upper={upper}");
            if upper < u64::MAX {
                assert_eq!(
                    QuantileSketch::index(upper + 1),
                    idx + 1,
                    "v={v}: upper edge {upper} must close the bin"
                );
            }
            assert_eq!(QuantileSketch::index(upper), idx);
        }
        assert_eq!(QuantileSketch::index(u64::MAX), SKETCH_NBINS - 1);
        assert_eq!(QuantileSketch::bin_upper(SKETCH_NBINS - 1), u64::MAX);
    }

    #[test]
    fn sketch_exact_below_sub_and_bounded_above() {
        let mut s = QuantileSketch::new();
        let samples: Vec<u64> = (1..=5_000u64).map(|i| i * i).collect();
        for &v in &samples {
            s.record(v);
        }
        let sorted: Vec<SimDuration> = samples.iter().map(|&v| SimDuration::from_ps(v)).collect();
        for q in [0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = quantile_of_sorted(&sorted, q).unwrap().as_ps();
            let got = s.quantile(q).unwrap();
            assert!(got >= exact, "q={q}: {got} under-reports {exact}");
            let bound = exact + exact / SKETCH_SUB + 1;
            assert!(
                got <= bound,
                "q={q}: {got} above bound {bound} (exact {exact})"
            );
        }
        // Small values are exact.
        let mut t = QuantileSketch::new();
        for v in 0..SKETCH_SUB {
            t.record(v);
        }
        assert_eq!(t.quantile(0.5).unwrap(), SKETCH_SUB / 2);
        assert_eq!(t.min(), 0);
        assert_eq!(t.max(), SKETCH_SUB - 1);
    }

    #[test]
    fn sketch_merge_is_order_independent_and_matches_direct() {
        let samples: Vec<u64> = (0..3_000u64).map(|i| (i * 48_271) % 1_000_000).collect();
        let mut direct = QuantileSketch::new();
        for &v in &samples {
            direct.record(v);
        }
        // Split into 4 "shards", merge in two different orders.
        let shards: Vec<QuantileSketch> = (0..4)
            .map(|s| {
                let mut sk = QuantileSketch::new();
                for &v in samples.iter().skip(s).step_by(4) {
                    sk.record(v);
                }
                sk
            })
            .collect();
        let mut asc = QuantileSketch::new();
        for sh in &shards {
            asc.merge(sh);
        }
        let mut desc = QuantileSketch::new();
        for sh in shards.iter().rev() {
            desc.merge(sh);
        }
        assert_eq!(asc, direct, "sharded merge must equal direct recording");
        assert_eq!(desc, direct, "merge order must not matter");
    }

    #[test]
    fn sketched_flow_stats_bound_memory_and_match_table() {
        let mut table = FlowStats::new();
        let mut sk = FlowStats::new_sketched();
        assert!(sk.is_sketched() && !table.is_sketched());
        for i in 0..50u32 {
            let start = SimTime::from_micros(i as u64);
            let id_t = table.add(i, i + 1, 1_000, start);
            let id_s = sk.add(i, i + 1, 1_000, start);
            assert_eq!(id_t, id_s, "sketch mode must hand out the same ids");
        }
        for i in 0..40u32 {
            let start = SimTime::from_micros(i as u64);
            let end = SimTime::from_micros(i as u64 + 7 + i as u64 % 3);
            table.finish(i, end);
            sk.record_fct(end.since(start));
        }
        assert_eq!(sk.len(), table.len());
        assert_eq!(sk.completed(), table.completed());
        assert_eq!(
            sk.fct_mean(),
            table.fct_mean(),
            "mean is exact in both modes"
        );
        assert_eq!(sk.fct_histogram_ns(), table.fct_histogram_ns());
        assert!(
            sk.records().is_empty(),
            "sketch mode keeps no per-flow rows"
        );
        // `sketched()` collapses a table into the identical sketch book.
        assert_eq!(table.sketched(), sk);
        // Quantiles: FCTs are 7..9 µs in ps — relative bound 1/64.
        for q in [0.0, 0.5, 0.99, 1.0] {
            let exact = table.fct_quantile(q).unwrap().as_ps();
            let got = sk.fct_quantile(q).unwrap().as_ps();
            assert!(got >= exact && got <= exact + exact / 64 + 1, "q={q}");
        }
        // fct_quantiles agrees with the one-at-a-time path in both modes.
        let qs = [0.0, 0.25, 0.5, 1.0];
        for fs in [&table, &sk] {
            let many = fs.fct_quantiles(&qs);
            for (i, &q) in qs.iter().enumerate() {
                assert_eq!(many[i], fs.fct_quantile(q));
            }
        }
    }

    #[test]
    fn sketch_mode_absorb_is_shard_order_independent() {
        // Partial books (disjoint flows per shard) must reduce to the
        // same state in any order — the sharded fabric's guarantee.
        let book = |flows: &[(u32, u64)]| {
            let mut fs = FlowStats::new_sketched();
            for &(src, fct_us) in flows {
                fs.add(src, src + 1, 500, SimTime::ZERO);
                fs.record_fct(SimDuration::from_micros(fct_us));
            }
            fs
        };
        let a = book(&[(0, 10), (1, 20)]);
        let b = book(&[(2, 30)]);
        let c = book(&[(3, 40), (4, 50), (5, 60)]);
        let mut fwd = a.clone();
        fwd.absorb_finishes(&b);
        fwd.absorb_finishes(&c);
        let mut rev = c.clone();
        rev.absorb_finishes(&b);
        rev.absorb_finishes(&a);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.len(), 6);
        assert_eq!(fwd.completed(), 6);
        assert_eq!(fwd.fct_quantile(0.0), Some(SimDuration::from_micros(10)));
    }

    #[test]
    #[should_panic(expected = "mismatched flow-stat modes")]
    fn absorb_rejects_mixed_modes() {
        let mut a = FlowStats::new();
        a.absorb_finishes(&FlowStats::new_sketched());
    }

    #[test]
    #[should_panic(expected = "sketch mode records via record_fct")]
    fn finish_panics_in_sketch_mode() {
        let mut fs = FlowStats::new_sketched();
        fs.add(0, 1, 100, SimTime::ZERO);
        fs.finish(0, SimTime::from_micros(1));
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new(2, 16);
        let mut b = Histogram::new(2, 16);
        for _ in 0..7 {
            a.record(5);
        }
        b.record_n(5, 7);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.max(), b.max());
    }
}
