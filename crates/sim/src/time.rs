//! Picosecond-resolution simulated time.
//!
//! All simulated clocks in Stardust are integer picoseconds. This resolution
//! is dictated by the paper's link technology: the fabric uses independent
//! 50 Gb/s serial links (link bundle of one, §2.2), on which one 256 B cell
//! serializes in exactly 40.96 ns — not representable in integer nanoseconds
//! without accumulating drift across the billions of cells a run transmits.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in picoseconds since t=0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

impl SimTime {
    /// The beginning of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant (used as an "infinite" timeout).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * PS_PER_MS)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }
    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Time expressed in (fractional) nanoseconds.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// Time expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Time expressed in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }
    /// Time expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    /// Duration elapsed since `earlier`; panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }
    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
    /// Saturating addition of a duration (useful near [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The maximum representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }
    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_SEC)
    }
    /// Construct from fractional seconds (rounded to the nearest ps).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite duration");
        SimDuration((s * PS_PER_SEC as f64).round() as u64)
    }
    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Duration in (fractional) nanoseconds.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }
    /// Duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }
    /// Duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }
    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
    /// Multiply by an integer factor, saturating at the maximum.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}
impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}
impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}
impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}
impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ps(self.0))
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}
impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}
impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

/// Render a picosecond count with a human-friendly unit.
fn format_ps(ps: u64) -> String {
    if ps >= PS_PER_SEC {
        format!("{:.3}s", ps as f64 / PS_PER_SEC as f64)
    } else if ps >= PS_PER_MS {
        format!("{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        format!("{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        format!("{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_nanos(5).as_ps(), 5_000);
        assert_eq!(SimTime::from_micros(5).as_ps(), 5_000_000);
        assert_eq!(SimTime::from_millis(5).as_ps(), 5_000_000_000);
        assert_eq!(SimTime::from_secs(5).as_ps(), 5_000_000_000_000);
        assert_eq!(SimDuration::from_nanos(3).as_nanos_f64(), 3.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(40);
        assert_eq!((t + d).as_ps(), 140_000);
        assert_eq!((t - d).as_ps(), 60_000);
        assert_eq!(((t + d) - t).as_ps(), d.as_ps());
        assert_eq!((d * 3).as_nanos_f64(), 120.0);
        assert_eq!((d / 4).as_nanos_f64(), 10.0);
    }

    #[test]
    fn since_and_saturating() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(25);
        assert_eq!(b.since(a).as_ps(), 15_000);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    fn cell_serialization_needs_picoseconds() {
        // 256B at 50Gbps = 40.96ns: the motivating example for ps resolution.
        let bits = 256u64 * 8;
        let ps = bits * PS_PER_SEC / 50_000_000_000;
        assert_eq!(ps, 40_960);
        assert_eq!(SimDuration::from_ps(ps).as_nanos_f64(), 40.96);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_ps(999)), "999ps");
        assert_eq!(format!("{}", SimDuration::from_nanos(41)), "41.000ns");
        assert_eq!(format!("{}", SimDuration::from_micros(13)), "13.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(2)), "2.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_ps(), PS_PER_SEC / 2);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
    }
}
