//! Deterministic random number streams.
//!
//! Every stochastic element of the simulations (arrival jitter, permutation
//! shuffles for cell spraying, flow-size draws) pulls from a [`DetRng`]
//! derived from a master seed plus a stream label. Two properties matter:
//!
//! 1. **Reproducibility** — a run is a pure function of `(config, seed)`.
//! 2. **Stream independence** — adding a consumer of randomness in one
//!    component must not perturb the draws seen by another, so each
//!    component derives its own labelled stream instead of sharing one RNG.

/// A labelled deterministic random stream.
///
/// Backed by a self-contained xoshiro256++ generator (seeded through
/// SplitMix64) so the simulation has **zero external dependencies** and the
/// byte-for-byte output of a run can never drift under a dependency upgrade.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit hash, used to mix stream labels into the master seed.
/// A tiny, dependency-free stable hash is all that is needed here; this is
/// not a cryptographic boundary.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl DetRng {
    /// Seed the xoshiro256++ state from a single mixed 64-bit value.
    fn seed_from_u64(mixed: u64) -> Self {
        let mut sm = mixed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { state }
    }

    /// Derive a stream from a master seed and a textual label.
    pub fn from_label(master_seed: u64, label: &str) -> Self {
        let mixed = master_seed ^ fnv1a(label.as_bytes()).rotate_left(17);
        DetRng::seed_from_u64(mixed)
    }

    /// Derive a stream from a master seed and a numeric component id
    /// (e.g. per-device streams).
    pub fn from_parts(master_seed: u64, stream: u64) -> Self {
        let mixed = master_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(stream.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        DetRng::seed_from_u64(mixed)
    }

    /// Fork an independent child stream (used when a component spawns
    /// sub-components at runtime).
    ///
    /// `fork` **advances** the parent, so the child depends on how many
    /// draws and forks preceded it. When sub-streams must be independent
    /// of creation *order* — per-shard / per-link streams handed out by a
    /// partitioner whose iteration order is an implementation detail —
    /// use [`DetRng::split`] / [`DetRng::split_u64`] instead.
    pub fn fork(&mut self, tag: u64) -> DetRng {
        let s = self.next_u64();
        DetRng::from_parts(s, tag)
    }

    /// Derive a labelled sub-stream **without advancing the parent**.
    ///
    /// The child is a pure function of the parent's current state and the
    /// label: splitting the same parent with the same label always yields
    /// the same stream, regardless of how many other splits happened or
    /// in what order. This is the primitive behind per-shard and per-link
    /// RNGs in the sharded fabric engine, where the set of consumers is
    /// discovered in partition order but the draws must not depend on it.
    pub fn split(&self, label: &str) -> DetRng {
        self.split_u64(fnv1a(label.as_bytes()))
    }

    /// [`DetRng::split`] with a numeric tag (e.g. a link or shard index).
    pub fn split_u64(&self, tag: u64) -> DetRng {
        // Hash-mix the full 256-bit state with the tag through SplitMix64
        // so nearby tags (0, 1, 2, …) land on unrelated streams; the
        // collision property test drives thousands of tags through this.
        let mut acc = tag ^ 0xa076_1d64_78bd_642f;
        for w in self.state {
            acc = acc.wrapping_add(w);
            let mixed = splitmix64(&mut acc);
            acc ^= mixed.rotate_left(29);
        }
        DetRng::seed_from_u64(acc)
    }

    /// Uniform `u64` (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    ///
    /// Unbiased via rejection sampling on the top of the range.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        // Largest multiple of n that fits in u64; reject draws above it.
        let zone = u64::MAX - (u64::MAX % n + 1) % n;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return x % n;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index(0)");
        self.below(n as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponential variate with the given mean (inverse-CDF method).
    ///
    /// Used for Poisson arrival processes, the worst-case arrival model of
    /// the paper's Fabric Element queueing analysis (§4.2.1).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "non-positive mean");
        let u = 1.0 - self.unit(); // (0,1] so ln is finite
        -mean * u.ln()
    }

    /// In-place Fisher–Yates shuffle.
    ///
    /// The Fabric Element traverses its links "in a random permutation
    /// order, that is replaced every few rounds" (§5.3); this is the shuffle
    /// behind that permutation.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_label_same_stream() {
        let mut a = DetRng::from_label(42, "spray");
        let mut b = DetRng::from_label(42, "spray");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = DetRng::from_label(42, "spray");
        let mut b = DetRng::from_label(42, "arrivals");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::from_parts(1, 7);
        let mut b = DetRng::from_parts(2, 7);
        assert_ne!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_in_range() {
        let mut r = DetRng::from_label(7, "t");
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let i = r.index(5);
            assert!(i < 5);
        }
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = DetRng::from_label(7, "exp");
        let n = 200_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < 0.05, "estimated mean {est}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::from_label(9, "shuffle");
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it actually moved things.
        assert_ne!(xs, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_uniformity_rough() {
        // Position of element 0 after shuffling [0..4] should be ~uniform.
        let mut counts = [0usize; 4];
        let mut r = DetRng::from_label(11, "uni");
        for _ in 0..40_000 {
            let mut xs = [0usize, 1, 2, 3];
            r.shuffle(&mut xs);
            let pos = xs.iter().position(|&x| x == 0).unwrap();
            counts[pos] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn fork_streams_differ_from_parent() {
        let mut parent = DetRng::from_label(5, "parent");
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn split_is_pure_and_order_independent() {
        let parent = DetRng::from_label(9, "parent");
        // Same label twice, different split orders in between: identical.
        let a1 = parent.split("err");
        let _other = parent.split_u64(77);
        let a2 = parent.split("err");
        let mut x = a1.clone();
        let mut y = a2.clone();
        for _ in 0..64 {
            assert_eq!(x.next_u64(), y.next_u64());
        }
        // And splitting does not advance the parent.
        let mut p1 = parent.clone();
        let mut p2 = DetRng::from_label(9, "parent");
        assert_eq!(p1.next_u64(), p2.next_u64());
    }

    #[test]
    fn split_streams_do_not_collide() {
        // Thousands of adjacent numeric tags (the per-link-direction use
        // case) must yield pairwise-distinct first draws, and labelled
        // splits must differ from numeric ones and from the parent.
        let parent = DetRng::from_label(0xDC_FA_B0_05, "link-errors");
        let mut seen = std::collections::HashSet::new();
        for tag in 0..4096u64 {
            let mut c = parent.split_u64(tag);
            assert!(seen.insert(c.next_u64()), "tag {tag} collided");
        }
        let mut l = parent.split("some-label");
        assert!(seen.insert(l.next_u64()), "label stream collided");
        let mut p = parent.clone();
        assert!(seen.insert(p.next_u64()), "parent stream collided");
        // Different parents with the same tag diverge too.
        let other = DetRng::from_label(1, "link-errors");
        let mut a = parent.split_u64(3);
        let mut b = other.split_u64(3);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::from_label(5, "chance");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }
}
