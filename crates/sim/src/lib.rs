//! # stardust-sim — discrete-event simulation substrate
//!
//! This crate is the simulation kernel every Stardust experiment runs on.
//! It deliberately contains **no networking policy** — only the mechanics a
//! packet-level / cell-level network simulator needs:
//!
//! * [`SimTime`] / [`SimDuration`] — a picosecond-resolution clock. A 256 B
//!   cell on a 50 Gb/s serial link serializes in 40.96 ns, so integer
//!   nanoseconds are too coarse; `u64` picoseconds cover ~213 days of
//!   simulated time, far beyond any experiment in the paper.
//! * [`EventQueue`] — a deterministic bucketed calendar queue (timing wheel
//!   with a sorted overflow level). Ties in time are broken by insertion
//!   sequence number so runs are bit-reproducible. [`HeapEventQueue`] keeps
//!   the original binary-heap core as an ordering oracle and benchmark
//!   baseline, and engines can be generic over the two via [`CoreKind`].
//! * [`LinkProfile`] / [`LinkClock`] — serialization + propagation modelling
//!   for point-to-point serial links (the paper's non-bundled links).
//! * [`rng`] — seeded, stream-split deterministic random number generation.
//! * [`stats`] — histograms, counters and online moments used to build the
//!   distributions reported in the paper's Figure 9 and Section 6.
//!
//! The design follows the event-driven state-machine style of `smoltcp`
//! rather than an async runtime: a discrete-event simulator is CPU-bound
//! sequential work, exactly the case where the Tokio guide says *not* to use
//! an async runtime. Everything here is synchronous, allocation-conscious
//! and deterministic.

pub mod event;
pub mod link;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod units;

pub use event::{
    CalendarCore, CoreKind, EventCore, EventQueue, HeapCore, HeapEventQueue, ScheduledEvent,
};
pub use link::{LinkClock, LinkProfile};
pub use rng::DetRng;
pub use shard::{window_end, LookaheadMatrix, Mailboxes, ShardClock};
pub use stats::{
    quantile_of_sorted, Counter, FlowRecord, FlowStats, Histogram, OnlineStats, QuantileSketch,
};
pub use time::{SimDuration, SimTime};
