//! Conservative-synchronization primitives for sharded simulations.
//!
//! A deterministic parallel discrete-event simulation partitions its
//! entities into `S` shards, gives each shard its own event calendar, and
//! exchanges cross-shard events through **mailboxes** flushed at a
//! **barrier** every `lookahead` of simulated time — the classic
//! null-message bound: as long as every cross-shard interaction carries at
//! least `lookahead` of latency (a cell's wire propagation, a control
//! message's fabric transit), a shard can safely execute a whole window
//! `[W, W + lookahead)` without hearing from its peers, because anything
//! they might send it is timestamped at or after the window's end.
//!
//! Two pieces live here, both engine-agnostic:
//!
//! * [`ShardClock`] — the barrier protocol: every shard reports its next
//!   pending event time, the clock agrees on the global minimum, and all
//!   shards receive the same window to execute. Two [`std::sync::Barrier`]
//!   crossings per window; the window bounds are a pure function of the
//!   reported times, so every thread computes them identically.
//! * [`Mailboxes`] — an `S × S` grid of cross-shard channels with a
//!   **deterministic drain order**: a receiver always takes its inboxes in
//!   sender-shard order, and each inbox preserves its sender's push order.
//!   Together with content-keyed event scheduling
//!   ([`crate::EventCore::schedule_keyed`]) this makes the merged event
//!   order independent of OS thread scheduling.
//!
//! Determinism does not depend on the thread count: driving the same
//! shards inline on one thread through the same window/exchange sequence
//! produces the same state, which is exactly what the property suite
//! asserts.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Barrier-synchronized window agreement for `S` shard threads.
///
/// Per window, each thread calls [`ShardClock::next_window`] with the
/// timestamp of its earliest pending event (or `None`); every thread
/// receives the same answer: `Some(window_end)` — execute every event at
/// or before `window_end` — or `None` — no shard has work at or before
/// the horizon, stop. After executing and publishing its outgoing events
/// the thread calls [`ShardClock::finish_window`]; mailbox deliveries
/// happen after that barrier and before the next `next_window` call.
///
/// The two-barrier structure makes the shared-minimum registers race-free
/// without locks: minima for window `r` accumulate in register `r % 2`
/// before the first barrier; register `(r + 1) % 2` is reset between the
/// two barriers, strictly before any thread (all of which are still
/// between the same two barriers) can start accumulating window `r + 1`.
#[derive(Debug)]
pub struct ShardClock {
    barrier: Barrier,
    mins: [AtomicU64; 2],
    lookahead: SimDuration,
}

impl ShardClock {
    /// A clock for `shards` participating threads with the given
    /// lookahead (must be positive — a zero lookahead means zero-latency
    /// cross-shard interactions exist and conservative windows are
    /// unsound).
    pub fn new(shards: usize, lookahead: SimDuration) -> Self {
        assert!(shards >= 1);
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative sync needs a positive lookahead"
        );
        ShardClock {
            barrier: Barrier::new(shards),
            mins: [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)],
            lookahead,
        }
    }

    /// The lookahead this clock windows by.
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// Agree on window `round`. `local_next` is this shard's earliest
    /// pending event time (`None` when idle). Returns the window end
    /// (inclusive — execute every event `≤` it, clamped to `horizon`),
    /// or `None` when no shard has an event at or before `horizon`.
    ///
    /// Every thread must call this with the same `round` and `horizon`
    /// sequence; all threads return the same value for a given round.
    pub fn next_window(
        &self,
        round: u64,
        local_next: Option<SimTime>,
        horizon: SimTime,
    ) -> Option<SimTime> {
        let slot = (round % 2) as usize;
        let t = local_next.map_or(u64::MAX, |t| t.as_ps());
        self.mins[slot].fetch_min(t, Ordering::AcqRel);
        self.barrier.wait();
        let next = self.mins[slot].load(Ordering::Acquire);
        // Reset the *other* register for the following round. Every
        // thread stores the same value, and no thread can be past
        // `finish_window` (the second barrier) yet, so nothing races.
        self.mins[1 - slot].store(u64::MAX, Ordering::Release);
        let next = (next != u64::MAX).then_some(SimTime(next));
        window_end(next, horizon, self.lookahead)
    }

    /// The end-of-window barrier: cross after publishing this window's
    /// outgoing events and before collecting the inbound ones.
    pub fn finish_window(&self) {
        self.barrier.wait();
    }
}

/// The conservative window bound both execution styles share: given the
/// globally earliest pending event `next`, the end (inclusive) of the
/// lookahead window starting there, clamped to `horizon` — or `None`
/// when nothing is pending at or before the horizon.
///
/// [`ShardClock::next_window`] computes its agreed bound through this,
/// and single-threaded (inline) shard drivers must use it too: the
/// bit-identity of threaded and inline execution rests on both deriving
/// window bounds from the one formula.
pub fn window_end(
    next: Option<SimTime>,
    horizon: SimTime,
    lookahead: SimDuration,
) -> Option<SimTime> {
    let next = next?;
    if next > horizon {
        return None;
    }
    Some(SimTime(
        next.as_ps()
            .saturating_add(lookahead.as_ps() - 1)
            .min(horizon.as_ps()),
    ))
}

/// An `S × S` grid of cross-shard mailboxes with deterministic exchange.
///
/// Senders [`Mailboxes::publish`] their per-destination batches during a
/// window; receivers [`Mailboxes::take_to`] their inboxes after the
/// window barrier, always in sender-shard order with per-sender FIFO
/// preserved. The barrier protocol guarantees a slot is never written and
/// read concurrently ([`ShardClock`] docs), so the mutexes are
/// uncontended in steady state.
#[derive(Debug)]
pub struct Mailboxes<T> {
    shards: usize,
    /// Slot `src * shards + dst`.
    slots: Vec<Mutex<Vec<T>>>,
}

impl<T> Mailboxes<T> {
    /// An empty grid for `shards` shards.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1);
        Mailboxes {
            shards,
            slots: (0..shards * shards)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Number of shards the grid serves.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Publish `src`'s outgoing batches, one `Vec` per destination shard
    /// (index = destination). Items append behind anything already queued
    /// for that destination, preserving the sender's send order.
    pub fn publish(&self, src: usize, mut per_dst: Vec<Vec<T>>) {
        assert_eq!(per_dst.len(), self.shards, "one batch per destination");
        for (dst, batch) in per_dst.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut slot = self.slots[src * self.shards + dst]
                .lock()
                .expect("mailbox poisoned");
            if slot.is_empty() {
                *slot = std::mem::take(batch);
            } else {
                slot.append(batch);
            }
        }
    }

    /// Drain everything addressed to `dst`, as one `Vec` per source shard
    /// in ascending source order (the deterministic drain order).
    pub fn take_to(&self, dst: usize) -> Vec<Vec<T>> {
        (0..self.shards)
            .map(|src| {
                std::mem::take(
                    &mut *self.slots[src * self.shards + dst]
                        .lock()
                        .expect("mailbox poisoned"),
                )
            })
            .collect()
    }

    /// True when every slot is empty (diagnostics / test invariant).
    pub fn is_empty(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.lock().expect("mailbox poisoned").is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn mailboxes_drain_in_sender_order_with_fifo() {
        let m: Mailboxes<u32> = Mailboxes::new(3);
        m.publish(2, vec![vec![20, 21], vec![], vec![]]);
        m.publish(0, vec![vec![1, 2], vec![3], vec![]]);
        // A second publish from the same sender appends.
        m.publish(0, vec![vec![4], vec![], vec![]]);
        let to0 = m.take_to(0);
        assert_eq!(to0, vec![vec![1, 2, 4], vec![], vec![20, 21]]);
        let to1 = m.take_to(1);
        assert_eq!(to1, vec![vec![3], vec![], vec![]]);
        assert!(m.is_empty());
    }

    #[test]
    fn shard_clock_agrees_on_windows_across_threads() {
        let shards = 4;
        let clock = ShardClock::new(shards, SimDuration::from_nanos(100));
        let mismatches = AtomicUsize::new(0);
        // Each shard has events at i·1µs; every thread must see the same
        // window sequence: min over shards, stepped by windows.
        std::thread::scope(|scope| {
            for i in 0..shards {
                let clock = &clock;
                let mismatches = &mismatches;
                scope.spawn(move || {
                    let mut expected = Vec::new();
                    for t in [i as u64, 10 + i as u64] {
                        expected.push(SimTime::from_micros(t));
                    }
                    let mut pending: Vec<SimTime> = expected;
                    let horizon = SimTime::from_millis(1);
                    let mut round = 0u64;
                    let mut got = Vec::new();
                    loop {
                        let next = pending.first().copied();
                        let Some(wend) = clock.next_window(round, next, horizon) else {
                            break;
                        };
                        got.push(wend);
                        pending.retain(|&t| t > wend);
                        clock.finish_window();
                        round += 1;
                    }
                    // Windows: min = 0µs (shard 0), then 1µs … 3µs, then
                    // 10µs … 13µs — every shard must have recorded the
                    // identical sequence ending with all queues drained.
                    if !pending.is_empty() {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                    let want: Vec<SimTime> = [0u64, 1, 2, 3, 10, 11, 12, 13]
                        .iter()
                        .map(|&us| SimTime::from_micros(us) + SimDuration::from_ps(100_000 - 1))
                        .collect();
                    if got != want {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(mismatches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn window_end_clamps_to_horizon() {
        let clock = ShardClock::new(1, SimDuration::from_micros(1));
        let h = SimTime::from_nanos(500);
        let w = clock.next_window(0, Some(SimTime::from_nanos(100)), h);
        assert_eq!(w, Some(h));
        clock.finish_window();
        // Next event past the horizon: no window.
        let w = clock.next_window(1, Some(SimTime::from_nanos(600)), h);
        assert_eq!(w, None);
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_rejected() {
        let _ = ShardClock::new(2, SimDuration::ZERO);
    }
}
