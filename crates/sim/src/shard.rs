//! Conservative-synchronization primitives for sharded simulations.
//!
//! A deterministic parallel discrete-event simulation partitions its
//! entities into `S` shards, gives each shard its own event calendar, and
//! exchanges cross-shard events through **mailboxes** flushed at a
//! **barrier** between execution windows — the classic null-message
//! bound: as long as every cross-shard interaction carries a known
//! minimum of latency (a cell's wire propagation, a control message's
//! fabric transit), a shard can safely execute a whole window without
//! hearing from its peers, because anything they might send it is
//! timestamped at or after the window's end.
//!
//! Three pieces live here, all engine-agnostic:
//!
//! * [`LookaheadMatrix`] — per-ordered-shard-pair lower bounds on how
//!   much latency any *chain* of cross-shard interactions from shard `a`
//!   needs before it can deliver an event into shard `b` (the min-plus
//!   closure of the direct pair bounds). A scalar lookahead is the
//!   uniform special case; on topologies where non-adjacent shards only
//!   interact through intermediaries, the per-pair bounds are strictly
//!   wider and so are the windows they admit.
//! * [`ShardClock`] — the barrier protocol. The legacy scalar mode
//!   ([`ShardClock::next_window`]) agrees on one global window per round;
//!   the matrix mode ([`ShardClock::report`] / [`ShardClock::sync`] /
//!   [`ShardClock::window_for`]) advances **each shard** to the bound its
//!   actual constrainers admit, so two shards that only interact through
//!   a third stop throttling each other. Both modes compute window
//!   bounds as a pure function of the reported event times, so every
//!   thread derives them identically.
//! * [`Mailboxes`] — an `S × S` grid of cross-shard channels with a
//!   **deterministic drain order**: a receiver always takes its inboxes
//!   in sender-shard order, and each inbox preserves its sender's push
//!   order. Each ordered pair is a fixed-capacity lock-free SPSC ring
//!   (atomics-only publish/take, one `Release` store per batch rather
//!   than per item); overflow spills to a mutex-guarded cold
//!   side-channel, so correctness never depends on ring capacity.
//!   Together with content-keyed event scheduling
//!   ([`crate::EventCore::schedule_keyed`]) this makes the merged event
//!   order independent of OS thread scheduling.
//!
//! Determinism does not depend on the thread count: driving the same
//! shards inline on one thread through the same window/exchange sequence
//! produces the same state, which is exactly what the property suite
//! asserts.

use crate::time::{SimDuration, SimTime};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Barrier;

/// Pads (and aligns) a hot atomic to its own cache line so the producer
/// and consumer cursors of a ring never false-share.
#[derive(Debug)]
#[repr(align(64))]
struct Pad<T>(T);

// ---------------------------------------------------------------------------
// Lookahead matrix
// ---------------------------------------------------------------------------

/// Per-ordered-shard-pair conservative-synchronization bounds.
///
/// Entry `(src, dst)` is a lower bound on the latency **any chain of
/// cross-shard interactions** originating at `src` must accumulate
/// before it can deliver an event into `dst` — including chains through
/// intermediate shards (`src` wakes `k`, whose reaction reaches `dst`)
/// and, on the diagonal, round trips back into `src` itself. Build it
/// with [`LookaheadMatrix::from_direct`], which takes the *direct*
/// single-interaction bounds and computes their min-plus closure
/// (Floyd–Warshall), or [`LookaheadMatrix::uniform`] for the scalar
/// case.
///
/// The conservative guarantee the window formula relies on: if shard
/// `src`'s earliest pending event is at `t`, nothing `src` does — in
/// this window or any later one — can place an event into `dst` earlier
/// than `t + bound(src, dst)`. A pair may be unbounded (`None` from
/// [`LookaheadMatrix::bound`]) when no interaction chain connects it;
/// such a pair simply contributes no window constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookaheadMatrix {
    shards: usize,
    /// Row-major `d[src * shards + dst]`, in picoseconds; `u64::MAX`
    /// encodes "no chain exists" (no constraint).
    d: Vec<u64>,
}

impl LookaheadMatrix {
    /// The uniform matrix: every pair (diagonal included) bounded by one
    /// scalar `lookahead` — exactly the classic global-window bound.
    pub fn uniform(shards: usize, lookahead: SimDuration) -> Self {
        assert!(shards >= 1);
        assert!(
            lookahead > SimDuration::ZERO,
            "conservative sync needs a positive lookahead"
        );
        LookaheadMatrix {
            shards,
            d: vec![lookahead.0; shards * shards],
        }
    }

    /// Build from the **direct** bounds: `direct[src * shards + dst]` is
    /// the smallest latency a single cross-shard interaction from `src`
    /// can deliver into `dst` (`None` when the two never interact
    /// directly). The min-plus closure over intermediate shards is
    /// computed here, so the result accounts for multi-hop chains; the
    /// diagonal becomes each shard's shortest round trip. Every direct
    /// bound must be positive — a zero-latency cross-shard interaction
    /// defeats conservative synchronization.
    pub fn from_direct(shards: usize, direct: &[Option<SimDuration>]) -> Self {
        assert!(shards >= 1);
        assert_eq!(direct.len(), shards * shards, "square matrix required");
        let mut d: Vec<u64> = direct
            .iter()
            .map(|o| match o {
                Some(l) => {
                    assert!(
                        *l > SimDuration::ZERO,
                        "conservative sync needs positive pair lookaheads"
                    );
                    l.0
                }
                None => u64::MAX,
            })
            .collect();
        for k in 0..shards {
            for i in 0..shards {
                let ik = d[i * shards + k];
                if ik == u64::MAX {
                    continue;
                }
                for j in 0..shards {
                    let kj = d[k * shards + j];
                    if kj == u64::MAX {
                        continue;
                    }
                    let via = ik.saturating_add(kj);
                    let e = &mut d[i * shards + j];
                    if via < *e {
                        *e = via;
                    }
                }
            }
        }
        LookaheadMatrix { shards, d }
    }

    /// Number of shards the matrix covers.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The closed bound for `(src, dst)`; `None` when no interaction
    /// chain connects the pair (no constraint).
    pub fn bound(&self, src: usize, dst: usize) -> Option<SimDuration> {
        let b = self.d[src * self.shards + dst];
        (b != u64::MAX).then_some(SimDuration(b))
    }

    /// The smallest finite bound — the scalar lookahead an equivalent
    /// uniform matrix would use. `None` when nothing is bounded (the
    /// single-shard case).
    pub fn min_bound(&self) -> Option<SimDuration> {
        self.d
            .iter()
            .copied()
            .filter(|&b| b != u64::MAX)
            .min()
            .map(SimDuration)
    }

    /// The largest finite off-diagonal bound — what an engine must check
    /// against protocol deadlines that cross-shard handoffs race (e.g. a
    /// reassembly timeout). [`SimDuration::ZERO`] when no pair is
    /// bounded.
    pub fn max_cross_bound(&self) -> SimDuration {
        let mut max = 0u64;
        for src in 0..self.shards {
            for dst in 0..self.shards {
                let b = self.d[src * self.shards + dst];
                if src != dst && b != u64::MAX {
                    max = max.max(b);
                }
            }
        }
        SimDuration(max)
    }

    /// The conservative window end (inclusive) for shard `dst`, given
    /// every shard's earliest pending event time in picoseconds
    /// (`u64::MAX` when idle): the minimum over constraining shards of
    /// `next + bound − 1`, clamped to `horizon` — or `None` when no
    /// shard has an event at or before the horizon (the agreed stop
    /// condition, identical for every `dst`).
    ///
    /// This is the matrix generalization of [`window_end`]; with a
    /// uniform matrix the two formulas agree exactly, which is what
    /// keeps scalar-windowed and matrix-windowed drivers bit-identical
    /// on uniform topologies.
    pub fn window_over(
        &self,
        nexts: impl Iterator<Item = u64>,
        dst: usize,
        horizon: SimTime,
    ) -> Option<SimTime> {
        let mut global = u64::MAX;
        let mut w = horizon.0;
        let mut n = 0usize;
        for (src, next) in nexts.enumerate() {
            n += 1;
            global = global.min(next);
            if next == u64::MAX {
                continue;
            }
            let b = self.d[src * self.shards + dst];
            if b == u64::MAX {
                continue;
            }
            w = w.min(next.saturating_add(b - 1));
        }
        assert_eq!(n, self.shards, "one next-event time per shard");
        (global != u64::MAX && global <= horizon.0).then_some(SimTime(w))
    }

    /// [`LookaheadMatrix::window_over`] on a slice.
    pub fn window_for(&self, nexts: &[u64], dst: usize, horizon: SimTime) -> Option<SimTime> {
        self.window_over(nexts.iter().copied(), dst, horizon)
    }
}

// ---------------------------------------------------------------------------
// Barrier clock
// ---------------------------------------------------------------------------

/// Barrier-synchronized window agreement for shard-driving threads.
///
/// Two protocols share the barrier:
///
/// **Scalar (legacy)** — one thread per shard; per window, each thread
/// calls [`ShardClock::next_window`] with the timestamp of its earliest
/// pending event (or `None`); every thread receives the same answer:
/// `Some(window_end)` — execute every event at or before `window_end` —
/// or `None` — no shard has work at or before the horizon, stop. After
/// executing and publishing its outgoing events the thread calls
/// [`ShardClock::finish_window`]; mailbox deliveries happen after that
/// barrier and before the next `next_window` call.
///
/// **Matrix** — built with [`ShardClock::with_matrix`]; `threads` may be
/// smaller than the shard count, with each thread driving several shards
/// round-robin. Per window each thread [`ShardClock::report`]s every
/// owned shard's earliest event time, crosses [`ShardClock::sync`], then
/// either observes [`ShardClock::done`] (identical for every thread) or
/// reads each owned shard's **own** window from
/// [`ShardClock::window_for`] — the per-pair bound, so only a shard's
/// actual constrainers narrow its window. Publish, cross
/// [`ShardClock::finish_window`], deliver, repeat.
///
/// Race-freedom of the shared state needs no locks in either mode: the
/// scalar mode double-buffers its min registers across rounds, and the
/// matrix mode's per-shard slots are written by exactly one thread per
/// round, with the two barriers separating every round's writes from the
/// next round's reads.
#[derive(Debug)]
pub struct ShardClock {
    barrier: Barrier,
    mins: [AtomicU64; 2],
    lookahead: SimDuration,
    /// Per-shard reported next-event times (matrix protocol).
    slots: Vec<Pad<AtomicU64>>,
    matrix: LookaheadMatrix,
}

impl ShardClock {
    /// A scalar clock for `shards` participating threads with the given
    /// lookahead (must be positive — a zero lookahead means zero-latency
    /// cross-shard interactions exist and conservative windows are
    /// unsound).
    pub fn new(shards: usize, lookahead: SimDuration) -> Self {
        Self::with_matrix(LookaheadMatrix::uniform(shards, lookahead), shards)
    }

    /// A matrix clock for `threads` participating threads (1 ≤ `threads`
    /// ≤ shards) over the given per-pair bounds.
    pub fn with_matrix(matrix: LookaheadMatrix, threads: usize) -> Self {
        assert!((1..=matrix.shards()).contains(&threads));
        ShardClock {
            barrier: Barrier::new(threads),
            mins: [AtomicU64::new(u64::MAX), AtomicU64::new(u64::MAX)],
            lookahead: matrix.min_bound().unwrap_or(SimDuration::MAX),
            slots: (0..matrix.shards())
                .map(|_| Pad(AtomicU64::new(u64::MAX)))
                .collect(),
            matrix,
        }
    }

    /// The scalar lookahead this clock windows by in legacy mode (the
    /// matrix's smallest bound).
    pub fn lookahead(&self) -> SimDuration {
        self.lookahead
    }

    /// The per-pair bounds in force.
    pub fn matrix(&self) -> &LookaheadMatrix {
        &self.matrix
    }

    /// Agree on window `round` (scalar protocol). `local_next` is this
    /// shard's earliest pending event time (`None` when idle). Returns
    /// the window end (inclusive — execute every event `≤` it, clamped
    /// to `horizon`), or `None` when no shard has an event at or before
    /// `horizon`.
    ///
    /// Every thread must call this with the same `round` and `horizon`
    /// sequence; all threads return the same value for a given round.
    pub fn next_window(
        &self,
        round: u64,
        local_next: Option<SimTime>,
        horizon: SimTime,
    ) -> Option<SimTime> {
        let slot = (round % 2) as usize;
        let t = local_next.map_or(u64::MAX, |t| t.as_ps());
        self.mins[slot].fetch_min(t, Ordering::AcqRel);
        self.barrier.wait();
        let next = self.mins[slot].load(Ordering::Acquire);
        // Reset the *other* register for the following round. Every
        // thread stores the same value, and no thread can be past
        // `finish_window` (the second barrier) yet, so nothing races.
        self.mins[1 - slot].store(u64::MAX, Ordering::Release);
        let next = (next != u64::MAX).then_some(SimTime(next));
        window_end(next, horizon, self.lookahead)
    }

    /// Report shard `shard`'s earliest pending event time ahead of
    /// [`ShardClock::sync`] (matrix protocol). A thread driving several
    /// shards reports each of them.
    pub fn report(&self, shard: usize, next: Option<SimTime>) {
        self.slots[shard]
            .0
            .store(next.map_or(u64::MAX, |t| t.as_ps()), Ordering::Release);
    }

    /// The first barrier of the matrix protocol: cross after reporting
    /// every owned shard, before reading [`ShardClock::done`] /
    /// [`ShardClock::window_for`].
    pub fn sync(&self) {
        self.barrier.wait();
    }

    /// After [`ShardClock::sync`]: true when no shard has an event at or
    /// before `horizon`. A pure function of the reported times, so every
    /// thread observes the same verdict and the threads stop in the same
    /// round — any thread that sees `false` must execute the window
    /// (possibly empty) and cross [`ShardClock::finish_window`].
    pub fn done(&self, horizon: SimTime) -> bool {
        let min = self
            .slots
            .iter()
            .map(|s| s.0.load(Ordering::Acquire))
            .min()
            .expect("at least one shard");
        min == u64::MAX || min > horizon.0
    }

    /// After [`ShardClock::sync`]: shard `dst`'s window end under the
    /// per-pair bounds (see [`LookaheadMatrix::window_over`]). `None`
    /// exactly when [`ShardClock::done`] holds.
    pub fn window_for(&self, dst: usize, horizon: SimTime) -> Option<SimTime> {
        self.matrix.window_over(
            self.slots.iter().map(|s| s.0.load(Ordering::Acquire)),
            dst,
            horizon,
        )
    }

    /// The end-of-window barrier (both protocols): cross after
    /// publishing this window's outgoing events and before collecting
    /// the inbound ones.
    pub fn finish_window(&self) {
        self.barrier.wait();
    }
}

/// The conservative window bound the scalar execution styles share:
/// given the globally earliest pending event `next`, the end (inclusive)
/// of the lookahead window starting there, clamped to `horizon` — or
/// `None` when nothing is pending at or before the horizon.
///
/// [`ShardClock::next_window`] computes its agreed bound through this,
/// and single-threaded (inline) scalar drivers must use it too: the
/// bit-identity of threaded and inline execution rests on both deriving
/// window bounds from the one formula. Matrix-windowed drivers use
/// [`LookaheadMatrix::window_over`], which reduces to this formula on a
/// uniform matrix.
pub fn window_end(
    next: Option<SimTime>,
    horizon: SimTime,
    lookahead: SimDuration,
) -> Option<SimTime> {
    let next = next?;
    if next > horizon {
        return None;
    }
    Some(SimTime(
        next.as_ps()
            .saturating_add(lookahead.as_ps() - 1)
            .min(horizon.as_ps()),
    ))
}

// ---------------------------------------------------------------------------
// Mailboxes
// ---------------------------------------------------------------------------

/// Per-ring slot count. Each ring serves one ordered shard pair for one
/// window at a time, so this only needs to cover a typical window's
/// cross-shard traffic; overflow takes the (correct, slower) spill path.
const DEFAULT_RING_CAPACITY: usize = 256;

/// Panicking misuse guard for one side of a ring: each side admits one
/// thread at a time (single producer, single consumer). The flag is
/// uncontended in correct use, so this costs one CAS per batch.
struct Claim<'a>(&'a AtomicBool);

impl<'a> Claim<'a> {
    fn enter(flag: &'a AtomicBool, side: &str) -> Self {
        assert!(
            flag.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok(),
            "concurrent {side} on one mailbox ring violates the SPSC contract"
        );
        Claim(flag)
    }
}

impl Drop for Claim<'_> {
    fn drop(&mut self) {
        self.0.store(false, Ordering::Release);
    }
}

mod ring {
    //! The one `unsafe` island in the workspace: a fixed-capacity SPSC
    //! ring needs `UnsafeCell<MaybeUninit<T>>` slots to move generic
    //! payloads between threads without a lock, which safe Rust cannot
    //! express. The unsafety is confined to this module, every block
    //! carries its invariant, the `Claim` guards turn contract
    //! violations into panics in all builds, and the nightly TSan job
    //! exercises the protocol dynamically.
    #![allow(unsafe_code)]

    use super::{Claim, Pad};
    use std::cell::UnsafeCell;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;

    /// One ordered shard pair's channel: a fixed-capacity lock-free SPSC
    /// ring plus a mutex-guarded cold spill for overflow.
    ///
    /// The producer copies each batch contiguously into the ring and
    /// publishes it with a single `Release` store of the tail cursor —
    /// one atomic per batch, not per item, and consumers never observe a
    /// partially written batch. The consumer mirrors it: read the
    /// published range, then one `Release` store of the head cursor.
    /// Cursors are monotonically increasing (wrapping) counters padded
    /// to separate cache lines.
    ///
    /// FIFO across the spill: within a window the consumer never drains,
    /// so once a batch overflows, the ring stays full and every later
    /// item goes to the spill behind it; the consumer drains
    /// ring-then-spill, which is exactly send order.
    #[derive(Debug)]
    pub(super) struct Ring<T> {
        buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
        mask: usize,
        /// Consumer cursor: everything below it has been taken.
        head: Pad<AtomicU64>,
        /// Producer cursor: everything below it is published.
        tail: Pad<AtomicU64>,
        pub(super) producer: AtomicBool,
        consumer: AtomicBool,
        /// Cold overflow; correctness never depends on ring capacity.
        spill: Mutex<Vec<T>>,
    }

    // SAFETY: the ring hands each `T` from exactly one thread to exactly
    // one other thread (the `Claim` guards panic on contended sides, and
    // the cursor protocol makes published slots exclusive to the
    // consumer and free slots exclusive to the producer), so sharing the
    // ring across threads is sound whenever `T` itself may move between
    // threads.
    unsafe impl<T: Send> Send for Ring<T> {}
    unsafe impl<T: Send> Sync for Ring<T> {}

    impl<T> Ring<T> {
        pub(super) fn new(capacity: usize) -> Self {
            assert!(capacity.is_power_of_two());
            Ring {
                buf: (0..capacity)
                    .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                    .collect(),
                mask: capacity - 1,
                head: Pad(AtomicU64::new(0)),
                tail: Pad(AtomicU64::new(0)),
                producer: AtomicBool::new(false),
                consumer: AtomicBool::new(false),
                spill: Mutex::new(Vec::new()),
            }
        }

        /// Append `items` behind whatever is queued, draining the `Vec`
        /// (its capacity stays with the caller for reuse). Single
        /// producer.
        pub(super) fn push_batch(&self, items: &mut Vec<T>) {
            if items.is_empty() {
                return;
            }
            let _claim = Claim::enter(&self.producer, "publish");
            let tail = self.tail.0.load(Ordering::Relaxed);
            let head = self.head.0.load(Ordering::Acquire);
            let free = self.buf.len() - (tail.wrapping_sub(head)) as usize;
            let take = free.min(items.len());
            for (i, it) in items.drain(..take).enumerate() {
                let slot = (tail.wrapping_add(i as u64)) as usize & self.mask;
                // SAFETY: slots in [tail, head + capacity) are
                // exclusively the producer's, and `_claim` holds the
                // producer side.
                unsafe { (*self.buf[slot].get()).write(it) };
            }
            self.tail
                .0
                .store(tail.wrapping_add(take as u64), Ordering::Release);
            if !items.is_empty() {
                // Ring full: the remainder takes the cold path (see type
                // docs for why FIFO order survives).
                self.spill.lock().expect("spill poisoned").append(items);
            }
        }

        /// Move everything queued into `out`, preserving send order.
        /// Single consumer.
        pub(super) fn drain_into(&self, out: &mut Vec<T>) {
            let _claim = Claim::enter(&self.consumer, "take");
            let tail = self.tail.0.load(Ordering::Acquire);
            let head = self.head.0.load(Ordering::Relaxed);
            out.reserve(tail.wrapping_sub(head) as usize);
            let mut i = head;
            while i != tail {
                // SAFETY: slots in [head, tail) were published by the
                // producer's Release store and are exclusively the
                // consumer's until the head store below.
                out.push(unsafe { (*self.buf[i as usize & self.mask].get()).assume_init_read() });
                i = i.wrapping_add(1);
            }
            self.head.0.store(tail, Ordering::Release);
            let mut spill = self.spill.lock().expect("spill poisoned");
            out.append(&mut spill);
        }

        pub(super) fn is_empty(&self) -> bool {
            self.head.0.load(Ordering::Acquire) == self.tail.0.load(Ordering::Acquire)
                && self.spill.lock().expect("spill poisoned").is_empty()
        }
    }

    impl<T> Drop for Ring<T> {
        fn drop(&mut self) {
            let mut i = *self.head.0.get_mut();
            let tail = *self.tail.0.get_mut();
            while i != tail {
                // SAFETY: [head, tail) holds initialized, un-taken
                // items; we have exclusive access in drop.
                unsafe { (*self.buf[i as usize & self.mask].get()).assume_init_drop() };
                i = i.wrapping_add(1);
            }
        }
    }
}

use ring::Ring;

/// An `S × S` grid of cross-shard mailboxes with deterministic exchange.
///
/// Senders publish their per-destination batches during a window
/// ([`Mailboxes::publish_from`] — drains the caller's buffers so their
/// capacity is reused window after window); receivers take their inboxes
/// after the window barrier ([`Mailboxes::take_to_into`] — appends into
/// caller buffers), always in sender-shard order with per-sender FIFO
/// preserved. Each ordered pair is a lock-free SPSC [`Ring`]; the
/// barrier protocol already guarantees a pair's producer and consumer
/// phases never overlap, and the SPSC protocol is safe even if they did.
///
/// The contract the grid enforces (panicking on violation): at any
/// moment, at most one thread publishes for a given `src` and at most
/// one thread takes for a given `dst`.
#[derive(Debug)]
pub struct Mailboxes<T> {
    shards: usize,
    /// Ring `src * shards + dst`.
    rings: Vec<Ring<T>>,
}

impl<T> Mailboxes<T> {
    /// An empty grid for `shards` shards with the default per-pair ring
    /// capacity.
    pub fn new(shards: usize) -> Self {
        Self::with_ring_capacity(shards, DEFAULT_RING_CAPACITY)
    }

    /// An empty grid with an explicit per-pair ring capacity (a power of
    /// two). Capacity is a performance knob only — overflow spills to
    /// the cold side-channel and keeps FIFO order.
    pub fn with_ring_capacity(shards: usize, capacity: usize) -> Self {
        assert!(shards >= 1);
        Mailboxes {
            shards,
            rings: (0..shards * shards).map(|_| Ring::new(capacity)).collect(),
        }
    }

    /// Number of shards the grid serves.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Publish `src`'s outgoing batches, one `Vec` per destination shard
    /// (index = destination). Items append behind anything already
    /// queued for that destination, preserving the sender's send order.
    /// Every batch is drained in place — capacity stays with the caller.
    pub fn publish_from(&self, src: usize, per_dst: &mut [Vec<T>]) {
        assert_eq!(per_dst.len(), self.shards, "one batch per destination");
        for (dst, batch) in per_dst.iter_mut().enumerate() {
            if !batch.is_empty() {
                self.rings[src * self.shards + dst].push_batch(batch);
            }
        }
    }

    /// [`Mailboxes::publish_from`] taking ownership of the batches (the
    /// allocation-per-window convenience form).
    pub fn publish(&self, src: usize, mut per_dst: Vec<Vec<T>>) {
        self.publish_from(src, &mut per_dst);
    }

    /// Drain everything addressed to `dst` into `out[src]` per source
    /// shard (ascending source order is the deterministic drain order;
    /// items append behind anything already in the buffers). Caller
    /// buffers keep their capacity across windows.
    pub fn take_to_into(&self, dst: usize, out: &mut [Vec<T>]) {
        assert_eq!(out.len(), self.shards, "one buffer per source");
        for (src, buf) in out.iter_mut().enumerate() {
            self.rings[src * self.shards + dst].drain_into(buf);
        }
    }

    /// [`Mailboxes::take_to_into`] into fresh `Vec`s (the
    /// allocation-per-window convenience form).
    pub fn take_to(&self, dst: usize) -> Vec<Vec<T>> {
        let mut out: Vec<Vec<T>> = (0..self.shards).map(|_| Vec::new()).collect();
        self.take_to_into(dst, &mut out);
        out
    }

    /// True when every channel is empty (diagnostics / test invariant).
    pub fn is_empty(&self) -> bool {
        self.rings.iter().all(Ring::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Mutex;

    #[test]
    fn mailboxes_drain_in_sender_order_with_fifo() {
        let m: Mailboxes<u32> = Mailboxes::new(3);
        m.publish(2, vec![vec![20, 21], vec![], vec![]]);
        m.publish(0, vec![vec![1, 2], vec![3], vec![]]);
        // A second publish from the same sender appends.
        m.publish(0, vec![vec![4], vec![], vec![]]);
        let to0 = m.take_to(0);
        assert_eq!(to0, vec![vec![1, 2, 4], vec![], vec![20, 21]]);
        let to1 = m.take_to(1);
        assert_eq!(to1, vec![vec![3], vec![], vec![]]);
        assert!(m.is_empty());
    }

    #[test]
    fn ring_overflow_spills_and_keeps_fifo() {
        // Capacity 4: a 10-item batch splits 4 into the ring + 6 into
        // the spill; a follow-up batch lands entirely behind them.
        let m: Mailboxes<u32> = Mailboxes::with_ring_capacity(2, 4);
        let first: Vec<u32> = (0..10).collect();
        m.publish(0, vec![vec![], first]);
        m.publish(0, vec![vec![], vec![10, 11]]);
        assert!(!m.is_empty());
        let got = m.take_to(1);
        assert_eq!(got[0], (0..12).collect::<Vec<u32>>());
        assert!(m.is_empty());
        // The drained ring is reusable and stays FIFO.
        m.publish(0, vec![vec![], vec![99, 100]]);
        assert_eq!(m.take_to(1)[0], vec![99, 100]);
    }

    #[test]
    fn mailboxes_recycle_caller_buffers() {
        let m: Mailboxes<u64> = Mailboxes::new(2);
        let mut out = vec![vec![1u64, 2], vec![3]];
        let caps: Vec<usize> = out.iter().map(Vec::capacity).collect();
        m.publish_from(0, &mut out);
        // Batches drained in place, capacity retained for the next window.
        assert!(out.iter().all(Vec::is_empty));
        assert_eq!(out.iter().map(Vec::capacity).collect::<Vec<_>>(), caps);
        let mut inbox = vec![Vec::new(), Vec::new()];
        m.take_to_into(0, &mut inbox);
        m.take_to_into(1, &mut inbox);
        assert_eq!(inbox[0], vec![1, 2, 3]);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "SPSC contract")]
    fn concurrent_publish_for_one_source_panics() {
        let m: Mailboxes<u32> = Mailboxes::new(2);
        // Simulate a second in-flight publisher by claiming the producer
        // side directly.
        let _held = Claim::enter(&m.rings[1].producer, "publish");
        m.publish(0, vec![vec![], vec![7]]);
    }

    #[test]
    fn shard_clock_agrees_on_windows_across_threads() {
        let shards = 4;
        let clock = ShardClock::new(shards, SimDuration::from_nanos(100));
        let mismatches = AtomicUsize::new(0);
        // Each shard has events at i·1µs; every thread must see the same
        // window sequence: min over shards, stepped by windows.
        std::thread::scope(|scope| {
            for i in 0..shards {
                let clock = &clock;
                let mismatches = &mismatches;
                scope.spawn(move || {
                    let mut expected = Vec::new();
                    for t in [i as u64, 10 + i as u64] {
                        expected.push(SimTime::from_micros(t));
                    }
                    let mut pending: Vec<SimTime> = expected;
                    let horizon = SimTime::from_millis(1);
                    let mut round = 0u64;
                    let mut got = Vec::new();
                    loop {
                        let next = pending.first().copied();
                        let Some(wend) = clock.next_window(round, next, horizon) else {
                            break;
                        };
                        got.push(wend);
                        pending.retain(|&t| t > wend);
                        clock.finish_window();
                        round += 1;
                    }
                    // Windows: min = 0µs (shard 0), then 1µs … 3µs, then
                    // 10µs … 13µs — every shard must have recorded the
                    // identical sequence ending with all queues drained.
                    if !pending.is_empty() {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                    let want: Vec<SimTime> = [0u64, 1, 2, 3, 10, 11, 12, 13]
                        .iter()
                        .map(|&us| SimTime::from_micros(us) + SimDuration::from_ps(100_000 - 1))
                        .collect();
                    if got != want {
                        mismatches.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(mismatches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn window_end_clamps_to_horizon() {
        let clock = ShardClock::new(1, SimDuration::from_micros(1));
        let h = SimTime::from_nanos(500);
        let w = clock.next_window(0, Some(SimTime::from_nanos(100)), h);
        assert_eq!(w, Some(h));
        clock.finish_window();
        // Next event past the horizon: no window.
        let w = clock.next_window(1, Some(SimTime::from_nanos(600)), h);
        assert_eq!(w, None);
    }

    #[test]
    #[should_panic(expected = "positive lookahead")]
    fn zero_lookahead_rejected() {
        let _ = ShardClock::new(2, SimDuration::ZERO);
    }

    #[test]
    fn matrix_closure_accounts_for_chains() {
        // 3 shards on a line: 0 ↔ 1 at 100 ns, 1 ↔ 2 at 300 ns; 0 and 2
        // never interact directly. The closed bound 0 → 2 is the 400 ns
        // chain through 1, and the diagonal is each shard's shortest
        // round trip.
        let ns = |n: u64| Some(SimDuration::from_nanos(n));
        let direct = vec![
            None,
            ns(100),
            None, // from 0
            ns(100),
            None,
            ns(300), // from 1
            None,
            ns(300),
            None, // from 2
        ];
        let m = LookaheadMatrix::from_direct(3, &direct);
        assert_eq!(m.bound(0, 2), Some(SimDuration::from_nanos(400)));
        assert_eq!(m.bound(2, 0), Some(SimDuration::from_nanos(400)));
        assert_eq!(m.bound(0, 1), Some(SimDuration::from_nanos(100)));
        assert_eq!(m.bound(0, 0), Some(SimDuration::from_nanos(200)));
        assert_eq!(m.bound(2, 2), Some(SimDuration::from_nanos(600)));
        assert_eq!(m.min_bound(), Some(SimDuration::from_nanos(100)));
        assert_eq!(m.max_cross_bound(), SimDuration::from_nanos(400));
    }

    #[test]
    fn matrix_windows_never_narrower_than_scalar() {
        // On any matrix, every per-shard window must be at least the
        // scalar window the matrix's min bound admits — the matrix can
        // only widen windows, never narrow them (the satellite property;
        // the randomized suite in tests/properties.rs stresses it too).
        let ns = |n: u64| Some(SimDuration::from_nanos(n));
        let direct = vec![
            None,
            ns(50),
            ns(50),
            None,
            None,
            ns(200),
            ns(90),
            ns(200),
            None,
        ];
        let m = LookaheadMatrix::from_direct(3, &direct);
        let scalar = m.min_bound().unwrap();
        let horizon = SimTime::from_millis(1);
        let nexts = [7_000u64, u64::MAX, 12_345];
        let global = SimTime(*nexts.iter().min().unwrap());
        let scalar_w = window_end(Some(global), horizon, scalar).unwrap();
        for dst in 0..3 {
            let w = m.window_for(&nexts, dst, horizon).unwrap();
            assert!(w >= scalar_w, "shard {dst}: {w:?} < scalar {scalar_w:?}");
        }
        // The uniform matrix reproduces the scalar formula exactly.
        let u = LookaheadMatrix::uniform(3, scalar);
        for dst in 0..3 {
            assert_eq!(u.window_for(&nexts, dst, horizon), Some(scalar_w));
        }
    }

    #[test]
    fn matrix_clock_multiplexes_threads_deterministically() {
        // 4 shards on 2 threads: both threads must agree on `done`, and
        // each shard's window sequence must equal the single-threaded
        // (1-thread clock) run of the same formula.
        let ns = |n: u64| Some(SimDuration::from_nanos(n));
        #[rustfmt::skip]
        let direct = vec![
            None,    ns(100), ns(500), ns(500),
            ns(100), None,    ns(500), ns(500),
            ns(500), ns(500), None,    ns(100),
            ns(500), ns(500), ns(100), None,
        ];
        let matrix = LookaheadMatrix::from_direct(4, &direct);
        let horizon = SimTime::from_micros(40);
        // Static event lists: shard s has events at s·3µs and 20+s µs.
        let events = |s: usize| {
            vec![
                SimTime::from_micros(3 * s as u64),
                SimTime::from_micros(20 + s as u64),
            ]
        };
        let run = |threads: usize| -> Vec<Vec<SimTime>> {
            let clock = ShardClock::with_matrix(matrix.clone(), threads);
            let windows: Vec<Mutex<Vec<SimTime>>> =
                (0..4).map(|_| Mutex::new(Vec::new())).collect();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let clock = &clock;
                    let windows = &windows;
                    scope.spawn(move || {
                        let owned: Vec<usize> = (0..4).filter(|s| s % threads == t).collect();
                        let mut pending: Vec<Vec<SimTime>> =
                            owned.iter().map(|&s| events(s)).collect();
                        loop {
                            for (k, &s) in owned.iter().enumerate() {
                                clock.report(s, pending[k].first().copied());
                            }
                            clock.sync();
                            if clock.done(horizon) {
                                break;
                            }
                            for (k, &s) in owned.iter().enumerate() {
                                let w = clock.window_for(s, horizon).expect("not done");
                                windows[s].lock().unwrap().push(w);
                                pending[k].retain(|&e| e > w);
                            }
                            clock.finish_window();
                        }
                    });
                }
            });
            windows
                .into_iter()
                .map(|w| w.into_inner().unwrap())
                .collect()
        };
        let two = run(2);
        let one = run(1);
        assert_eq!(two, one, "window sequences depend on thread count");
        // Far pairs (bound 500 ns) must not pin near pairs to the 100 ns
        // scalar: shard 0's first window is bounded by its neighbor
        // shard 1, not by shards 2/3.
        assert!(two[0][0] >= SimTime(SimTime::from_micros(0).0 + 100_000 - 1));
    }
}
