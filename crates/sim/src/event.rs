//! Deterministic event calendars.
//!
//! Two interchangeable discrete-event calendars live here, both ordered on
//! `(time, key, sequence)` — `key` is an optional content-derived priority
//! ([`EventCore::schedule_keyed`], 0 for plain `schedule`) and `sequence`
//! the monotonic insertion index — so the pop order of simultaneous events
//! is deterministic: push order for unkeyed users, canonical content order
//! for keyed ones (what the sharded fabric engine relies on to make
//! parallel execution bit-reproducible):
//!
//! * [`EventQueue`] — the production calendar: a bucketed **calendar queue**
//!   (timing wheel with a sorted overflow level). Near-future events land in
//!   fixed-width time buckets and are sorted lazily one bucket at a time;
//!   far-future events wait in a binary-heap overflow level and migrate into
//!   the wheel when it advances. Scheduling and popping are O(1) amortized
//!   for the dense near-horizon traffic that dominates a fabric run, instead
//!   of the O(log n) of a global heap.
//! * [`HeapEventQueue`] — the reference calendar: a plain binary min-heap.
//!   It is kept for differential tests (the property suite asserts the two
//!   produce identical pop orders) and as the baseline of the old-vs-new
//!   micro-benchmarks.
//!
//! The shared surface is the [`EventCore`] trait; engines that want to run
//! on either implementation (for A/B determinism tests) are generic over a
//! [`CoreKind`], which maps a marker type ([`CalendarCore`], [`HeapCore`])
//! to its queue type.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled at an absolute simulated time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Content-derived priority within a timestamp (see
    /// [`EventCore::schedule_keyed`]); plain [`EventCore::schedule`] uses 0.
    pub key: u64,
    /// Monotonic insertion index; breaks `(time, key)` ties
    /// deterministically (FIFO).
    pub seq: u64,
    /// The simulator-defined payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}
impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        (other.at, other.key, other.seq).cmp(&(self.at, self.key, self.seq))
    }
}

/// The operations every event calendar offers.
///
/// Both [`EventQueue`] (calendar queue) and [`HeapEventQueue`] (binary
/// heap) implement this; simulation engines that want to be generic over
/// the calendar implementation bound on it via [`CoreKind`].
pub trait EventCore<E> {
    /// Create an empty calendar with the clock at zero.
    fn new() -> Self
    where
        Self: Sized;

    /// Current simulated time: the timestamp of the most recently popped
    /// event, or the horizon of the last [`EventCore::advance_clock`],
    /// whichever is later (zero initially).
    fn now(&self) -> SimTime;

    /// Number of events waiting in the calendar.
    fn len(&self) -> usize;

    /// True when no events are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events executed (popped) so far.
    fn events_executed(&self) -> u64;

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a simulator bug; implementations panic
    /// (in debug and release) rather than silently reordering causality.
    fn schedule(&mut self, at: SimTime, payload: E);

    /// Schedule `payload` at `at` with a **content-derived ordering key**.
    ///
    /// Events sharing a timestamp pop in ascending `(key, seq)` order.
    /// Plain [`EventCore::schedule`] is `schedule_keyed(at, 0, payload)`,
    /// so key-free users keep pure FIFO tie-breaking. Keyed scheduling is
    /// what makes a sharded simulation reproducible: when the key is a
    /// pure function of the event's *content* (not of insertion order),
    /// the pop order of simultaneous events is independent of which
    /// execution path scheduled them first — a sequential run and a
    /// barrier-synchronized parallel run agree on it by construction.
    fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E);

    /// Timestamp of the next event without removing it.
    fn peek_time(&self) -> Option<SimTime>;

    /// Remove and return the earliest event, advancing the clock to it.
    fn pop(&mut self) -> Option<ScheduledEvent<E>>;

    /// Remove and return the earliest event only if it fires at or before
    /// `horizon`. The clock never advances past `horizon` via this method.
    fn pop_until(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>>;

    /// Drain **every** event sharing the earliest pending timestamp into
    /// `out` (cleared first), provided that timestamp is at or before
    /// `horizon`. Returns the number of events drained (0 when nothing is
    /// due). Events appear in `out` in deterministic FIFO (sequence)
    /// order, and the clock advances to their shared timestamp.
    ///
    /// Engines use this to dispatch same-timestamp event groups without a
    /// peek/pop round trip per event.
    fn pop_batch_until(&mut self, horizon: SimTime, out: &mut Vec<ScheduledEvent<E>>) -> usize;

    /// Advance the clock to `to` without popping anything (no-op if the
    /// clock is already at or past `to`).
    ///
    /// This is how `run_until(h)` commits the horizon once every event at
    /// or before `h` has been dispatched, so that a following `run_for(d)`
    /// covers exactly `d` more simulated time instead of restarting from
    /// the last popped event. Panics if an event strictly earlier than
    /// `to` is still pending — that would rewind causality.
    fn advance_clock(&mut self, to: SimTime);

    /// Visit every pending event `(at, key, payload)` without disturbing
    /// the calendar. The visit order is implementation-internal — **not**
    /// time order — but deterministic for a given schedule/pop history;
    /// callers needing a canonical view (e.g. a state hash) must collect
    /// and sort. This is a read-only inspection hook for verification
    /// layers; engines never dispatch through it.
    fn visit_pending(&self, f: &mut dyn FnMut(SimTime, u64, &E));

    /// Drop every pending event (the clock is retained).
    fn clear(&mut self);
}

/// Maps a core marker type to its queue implementation for any payload.
///
/// Engines take `K: CoreKind` and store a `K::Queue<Ev>`; picking
/// [`CalendarCore`] or [`HeapCore`] swaps the entire event core without
/// touching engine logic — which is exactly what the old-vs-new
/// determinism regression does.
pub trait CoreKind {
    /// The calendar implementation this core provides.
    type Queue<E>: EventCore<E>;
}

/// Marker for the production calendar-queue core ([`EventQueue`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct CalendarCore;

/// Marker for the reference binary-heap core ([`HeapEventQueue`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct HeapCore;

impl CoreKind for CalendarCore {
    type Queue<E> = EventQueue<E>;
}
impl CoreKind for HeapCore {
    type Queue<E> = HeapEventQueue<E>;
}

/// Default bucket width: 2^15 ps = 32.768 ns, about one 256 B cell
/// serialization time on a 50 Gb/s link — the natural spacing of the
/// hot events in a fabric run.
const DEFAULT_BUCKET_BITS: u32 = 15;

/// Default wheel size (must be a power of two): 2048 buckets × 32.768 ns
/// ≈ 67 µs of near-future span. Control latencies, credit ticks and
/// reachability intervals all land in the wheel; only long timers
/// (reassembly timeouts, ~1 ms) take the overflow path.
const DEFAULT_NUM_BUCKETS: usize = 2048;

/// A deterministic discrete-event calendar queue.
///
/// Three levels, earliest first:
///
/// 1. **`cur`** — the bucket currently being drained, sorted by
///    `(time, seq)` descending so the earliest event pops off the back in
///    O(1). Newly scheduled events that fall at or before the drained
///    bucket's horizon are merge-inserted here, preserving total order.
/// 2. **the wheel** — `N` fixed-width buckets covering the ticks
///    `[win_end - N, win_end)`; an event lands in bucket
///    `tick & (N - 1)` unsorted, O(1). A bucket is sorted only when the
///    wheel reaches it. A bitmap tracks occupancy so skipping empty
///    buckets costs a few word scans.
/// 3. **overflow** — a binary min-heap of everything at or beyond
///    `win_end`. When the wheel runs dry it re-bases onto the earliest
///    overflow event and migrates the next window's worth of events into
///    the buckets.
///
/// Pop order is globally `(time, key, seq)` — bit-identical to
/// [`HeapEventQueue`] — because `(time, key, seq)` is a unique total key
/// and every level respects it.
///
/// ```
/// use stardust_sim::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// q.schedule(SimTime::from_nanos(10), "early-second");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// The bucket being drained: sorted by `(at, seq)` **descending**
    /// (earliest at the back). Holds every pending event whose tick is
    /// strictly below `cur_horizon_tick`.
    cur: Vec<ScheduledEvent<E>>,
    /// The wheel: unsorted buckets, one per tick in the current window.
    buckets: Vec<Vec<ScheduledEvent<E>>>,
    /// One bit per bucket: set iff the bucket is non-empty.
    occ: Vec<u64>,
    /// log2 of the bucket width in picoseconds.
    bucket_bits: u32,
    /// Ticks strictly below this are in `cur` (or already popped).
    cur_horizon_tick: u64,
    /// The wheel covers ticks `[win_end_tick - N, win_end_tick)`; events
    /// at or beyond `win_end_tick` wait in `overflow`.
    win_end_tick: u64,
    /// Far-future events, min-first.
    overflow: BinaryHeap<ScheduledEvent<E>>,
    len: usize,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty calendar with the clock at zero and the default
    /// geometry (32.768 ns buckets, 2048-bucket wheel).
    pub fn new() -> Self {
        Self::with_geometry(DEFAULT_BUCKET_BITS, DEFAULT_NUM_BUCKETS)
    }

    /// Create an empty calendar with `2^bucket_bits` ps buckets and a
    /// wheel of `num_buckets` (must be a power of two ≥ 64).
    pub fn with_geometry(bucket_bits: u32, num_buckets: usize) -> Self {
        assert!(num_buckets.is_power_of_two() && num_buckets >= 64);
        assert!(bucket_bits < 40, "bucket width out of range");
        EventQueue {
            cur: Vec::new(),
            buckets: (0..num_buckets).map(|_| Vec::new()).collect(),
            occ: vec![0; num_buckets / 64],
            bucket_bits,
            cur_horizon_tick: 0,
            win_end_tick: num_buckets as u64,
            overflow: BinaryHeap::new(),
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event or the last committed horizon (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the calendar.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events executed (popped) so far.
    pub fn events_executed(&self) -> u64 {
        self.popped
    }

    #[inline]
    fn tick_of(&self, at: SimTime) -> u64 {
        at.as_ps() >> self.bucket_bits
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a simulator bug; this panics (in debug
    /// and release) rather than silently reordering causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        self.schedule_keyed(at, 0, payload);
    }

    /// Schedule with a content-derived same-timestamp ordering key (see
    /// [`EventCore::schedule_keyed`]).
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let tick = self.tick_of(at);
        if self.len == 0 {
            // Re-base an idle wheel around the event so near-future
            // events use buckets rather than churning the overflow heap.
            self.cur_horizon_tick = tick;
            self.win_end_tick = tick + self.buckets.len() as u64;
        }
        self.len += 1;
        let ev = ScheduledEvent {
            at,
            key,
            seq,
            payload,
        };
        if tick < self.cur_horizon_tick {
            // Belongs at or before the bucket being drained: merge into
            // `cur`, keeping descending (at, key, seq) order. The new
            // event has the largest seq, so among equal (at, key) it
            // sorts latest.
            let pos = self
                .cur
                .partition_point(|e| (e.at, e.key, e.seq) > (at, key, seq));
            self.cur.insert(pos, ev);
        } else if tick < self.win_end_tick {
            let slot = (tick as usize) & (self.buckets.len() - 1);
            self.buckets[slot].push(ev);
            self.occ[slot >> 6] |= 1u64 << (slot & 63);
        } else {
            self.overflow.push(ev);
        }
    }

    /// Tick of the next non-empty wheel bucket at or after
    /// `cur_horizon_tick`, if any.
    fn next_occupied_tick(&self) -> Option<u64> {
        let n = self.buckets.len();
        let mask = n - 1;
        let start = self.cur_horizon_tick;
        let span = (self.win_end_tick - start) as usize;
        let mut scanned = 0usize;
        while scanned < span {
            let slot = (start as usize).wrapping_add(scanned) & mask;
            let bit = slot & 63;
            // Bits examinable in this word: bounded by the word, by the
            // remaining span, and by the wheel wrap point.
            let avail = (64 - bit).min(span - scanned).min(n - slot);
            let m = if avail == 64 {
                !0u64
            } else {
                ((1u64 << avail) - 1) << bit
            };
            let w = self.occ[slot >> 6] & m;
            if w != 0 {
                let adv = w.trailing_zeros() as usize - bit;
                return Some(start + (scanned + adv) as u64);
            }
            scanned += avail;
        }
        None
    }

    /// Refill `cur` from the next non-empty bucket, re-basing the window
    /// from the overflow level when the wheel is dry. Returns false iff
    /// the queue is empty. `cur` must be empty on entry.
    fn refill(&mut self) -> bool {
        debug_assert!(self.cur.is_empty());
        if self.len == 0 {
            return false;
        }
        loop {
            if let Some(tick) = self.next_occupied_tick() {
                let slot = (tick as usize) & (self.buckets.len() - 1);
                std::mem::swap(&mut self.cur, &mut self.buckets[slot]);
                self.occ[slot >> 6] &= !(1u64 << (slot & 63));
                self.cur
                    .sort_unstable_by_key(|e| Reverse((e.at, e.key, e.seq)));
                self.cur_horizon_tick = tick + 1;
                return true;
            }
            // Wheel dry: everything pending is in the overflow level.
            debug_assert!(!self.overflow.is_empty());
            let n = self.buckets.len() as u64;
            let first = self.tick_of(self.overflow.peek().expect("len > 0").at);
            self.cur_horizon_tick = first;
            self.win_end_tick = first + n;
            while let Some(e) = self.overflow.peek() {
                let t = self.tick_of(e.at);
                if t >= self.win_end_tick {
                    break;
                }
                let e = self.overflow.pop().expect("peeked");
                let slot = (t as usize) & (self.buckets.len() - 1);
                self.buckets[slot].push(e);
                self.occ[slot >> 6] |= 1u64 << (slot & 63);
            }
        }
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(e) = self.cur.last() {
            return Some(e.at);
        }
        if self.len == 0 {
            return None;
        }
        // Cold path (`cur` drained and not yet refilled): the earliest
        // event is the minimum of the next occupied bucket, else the
        // overflow head. Wheel events always precede overflow events.
        if let Some(tick) = self.next_occupied_tick() {
            let slot = (tick as usize) & (self.buckets.len() - 1);
            return self.buckets[slot].iter().map(|e| e.at).min();
        }
        self.overflow.peek().map(|e| e.at)
    }

    /// Remove and return the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        if self.cur.is_empty() && !self.refill() {
            return None;
        }
        let ev = self.cur.pop().expect("refill left cur non-empty");
        debug_assert!(ev.at >= self.now, "calendar went backwards");
        self.now = ev.at;
        self.popped += 1;
        self.len -= 1;
        Some(ev)
    }

    /// Remove and return the earliest event only if it fires at or before
    /// `horizon`. The clock never advances past `horizon` via this method.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        if self.cur.is_empty() && !self.refill() {
            return None;
        }
        if self.cur.last().expect("refilled").at <= horizon {
            self.pop()
        } else {
            None
        }
    }

    /// See [`EventCore::pop_batch_until`].
    pub fn pop_batch_until(&mut self, horizon: SimTime, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        out.clear();
        if self.cur.is_empty() && !self.refill() {
            return 0;
        }
        let t0 = self.cur.last().expect("refilled").at;
        if t0 > horizon {
            return 0;
        }
        // Same-tick implies same-bucket, so every event at t0 is in `cur`.
        while let Some(e) = self.cur.last() {
            if e.at != t0 {
                break;
            }
            out.push(self.cur.pop().expect("peeked"));
        }
        self.len -= out.len();
        self.popped += out.len() as u64;
        self.now = t0;
        out.len()
    }

    /// See [`EventCore::advance_clock`].
    pub fn advance_clock(&mut self, to: SimTime) {
        if to <= self.now {
            return;
        }
        if let Some(t) = self.peek_time() {
            assert!(
                t >= to,
                "advance_clock({to:?}) would skip a pending event at {t:?}"
            );
        }
        self.now = to;
    }

    /// See [`EventCore::visit_pending`]: `cur`, then the wheel buckets,
    /// then the overflow heap — each in its internal storage order.
    pub fn visit_pending(&self, f: &mut dyn FnMut(SimTime, u64, &E)) {
        for e in &self.cur {
            f(e.at, e.key, &e.payload);
        }
        for b in &self.buckets {
            for e in b {
                f(e.at, e.key, &e.payload);
            }
        }
        for e in &self.overflow {
            f(e.at, e.key, &e.payload);
        }
    }

    /// Drop every pending event (the clock is retained).
    pub fn clear(&mut self) {
        self.cur.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        for w in &mut self.occ {
            *w = 0;
        }
        self.overflow.clear();
        self.len = 0;
    }
}

impl<E> EventCore<E> for EventQueue<E> {
    fn new() -> Self {
        EventQueue::new()
    }
    fn now(&self) -> SimTime {
        EventQueue::now(self)
    }
    fn len(&self) -> usize {
        EventQueue::len(self)
    }
    fn events_executed(&self) -> u64 {
        EventQueue::events_executed(self)
    }
    fn schedule(&mut self, at: SimTime, payload: E) {
        EventQueue::schedule(self, at, payload);
    }
    fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        EventQueue::schedule_keyed(self, at, key, payload);
    }
    fn peek_time(&self) -> Option<SimTime> {
        EventQueue::peek_time(self)
    }
    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        EventQueue::pop(self)
    }
    fn pop_until(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        EventQueue::pop_until(self, horizon)
    }
    fn pop_batch_until(&mut self, horizon: SimTime, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        EventQueue::pop_batch_until(self, horizon, out)
    }
    fn advance_clock(&mut self, to: SimTime) {
        EventQueue::advance_clock(self, to);
    }
    fn visit_pending(&self, f: &mut dyn FnMut(SimTime, u64, &E)) {
        EventQueue::visit_pending(self, f);
    }
    fn clear(&mut self) {
        EventQueue::clear(self);
    }
}

/// The reference event calendar: a deterministic binary min-heap keyed on
/// `(time, sequence)`.
///
/// This is the event core the workspace originally ran on. It is retained
/// as the ordering oracle for the calendar queue (see the property suite)
/// and as the baseline of the old-vs-new event-core micro-benchmarks; new
/// code should use [`EventQueue`].
#[derive(Debug, Clone)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for HeapEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapEventQueue<E> {
    /// Create an empty calendar with the clock at zero.
    pub fn new() -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current simulated time (see [`EventQueue::now`]).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the calendar.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events executed (popped) so far.
    pub fn events_executed(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` at `at`; panics on past times (simulator bug).
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        self.schedule_keyed(at, 0, payload);
    }

    /// Schedule with a content-derived same-timestamp ordering key (see
    /// [`EventCore::schedule_keyed`]).
    pub fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            at,
            key,
            seq,
            payload,
        });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Remove and return the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "calendar went backwards");
        self.now = ev.at;
        self.popped += 1;
        Some(ev)
    }

    /// Remove the earliest event if it fires at or before `horizon`.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// See [`EventCore::pop_batch_until`].
    pub fn pop_batch_until(&mut self, horizon: SimTime, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        out.clear();
        let Some(t0) = self.peek_time() else {
            return 0;
        };
        if t0 > horizon {
            return 0;
        }
        while let Some(e) = self.heap.peek() {
            if e.at != t0 {
                break;
            }
            out.push(self.heap.pop().expect("peeked"));
        }
        self.popped += out.len() as u64;
        self.now = t0;
        out.len()
    }

    /// See [`EventCore::advance_clock`].
    pub fn advance_clock(&mut self, to: SimTime) {
        if to <= self.now {
            return;
        }
        if let Some(t) = self.peek_time() {
            assert!(
                t >= to,
                "advance_clock({to:?}) would skip a pending event at {t:?}"
            );
        }
        self.now = to;
    }

    /// See [`EventCore::visit_pending`]: the heap's internal array order.
    pub fn visit_pending(&self, f: &mut dyn FnMut(SimTime, u64, &E)) {
        for e in &self.heap {
            f(e.at, e.key, &e.payload);
        }
    }

    /// Drop every pending event (the clock is retained).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> EventCore<E> for HeapEventQueue<E> {
    fn new() -> Self {
        HeapEventQueue::new()
    }
    fn now(&self) -> SimTime {
        HeapEventQueue::now(self)
    }
    fn len(&self) -> usize {
        HeapEventQueue::len(self)
    }
    fn events_executed(&self) -> u64 {
        HeapEventQueue::events_executed(self)
    }
    fn schedule(&mut self, at: SimTime, payload: E) {
        HeapEventQueue::schedule(self, at, payload);
    }
    fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        HeapEventQueue::schedule_keyed(self, at, key, payload);
    }
    fn peek_time(&self) -> Option<SimTime> {
        HeapEventQueue::peek_time(self)
    }
    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        HeapEventQueue::pop(self)
    }
    fn pop_until(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        HeapEventQueue::pop_until(self, horizon)
    }
    fn pop_batch_until(&mut self, horizon: SimTime, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        HeapEventQueue::pop_batch_until(self, horizon, out)
    }
    fn advance_clock(&mut self, to: SimTime) {
        HeapEventQueue::advance_clock(self, to);
    }
    fn visit_pending(&self, f: &mut dyn FnMut(SimTime, u64, &E)) {
        HeapEventQueue::visit_pending(self, f);
    }
    fn clear(&mut self) {
        HeapEventQueue::clear(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use crate::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
        assert_eq!(q.events_executed(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop_until(SimTime::from_nanos(15)).unwrap().payload, 1);
        assert!(q.pop_until(SimTime::from_nanos(15)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        // Two identical runs must produce identical traces.
        let run = || {
            let mut q = EventQueue::new();
            let mut trace = Vec::new();
            q.schedule(SimTime::from_nanos(1), 0u64);
            while let Some(ev) = q.pop() {
                trace.push((ev.at, ev.payload));
                if ev.payload < 50 {
                    q.schedule(ev.at + SimDuration::from_nanos(2), ev.payload + 1);
                    q.schedule(ev.at + SimDuration::from_nanos(2), ev.payload + 100);
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn far_future_events_take_the_overflow_path_and_come_back() {
        // Default window is ~67 µs; a 1 ms event must sit in overflow and
        // still pop in order, including after wheel re-basing.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 3);
        q.schedule(SimTime::from_nanos(100), 1);
        q.schedule(SimTime::from_micros(500), 2);
        q.schedule(SimTime::from_millis(2), 4);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3, 4]);
    }

    #[test]
    fn wheel_wraps_across_many_windows() {
        // March far past the wheel span, scheduling as we go: every event
        // must come back in order across many re-basings.
        let mut q = EventQueue::with_geometry(10, 64); // ~1 ns buckets, tiny wheel
        let mut expect = Vec::new();
        for i in 0..500u64 {
            let t = SimTime::from_nanos(i * 37);
            q.schedule(t, i);
            expect.push((t, i));
        }
        let got: Vec<(SimTime, u64)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.at, e.payload))).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn schedule_at_now_lands_after_earlier_same_time_events() {
        // An event scheduled *while draining* its own timestamp must run
        // after the already-queued events of that timestamp (FIFO by seq).
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(10);
        q.schedule(t, 1);
        q.schedule(t, 2);
        assert_eq!(q.pop().unwrap().payload, 1);
        q.schedule(t, 3); // at == now, mid-drain
        assert_eq!(q.pop().unwrap().payload, 2);
        assert_eq!(q.pop().unwrap().payload, 3);
    }

    #[test]
    fn pop_batch_drains_exactly_one_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(10);
        q.schedule(t, 1);
        q.schedule(t, 2);
        q.schedule(SimTime::from_nanos(20), 3);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch_until(SimTime::from_nanos(50), &mut out), 2);
        assert_eq!(
            out.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(q.now(), t);
        assert_eq!(q.len(), 1);
        assert_eq!(q.events_executed(), 2);
        // Beyond the horizon: nothing drained, nothing lost.
        assert_eq!(q.pop_batch_until(SimTime::from_nanos(15), &mut out), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn advance_clock_commits_the_horizon() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.advance_clock(SimTime::from_micros(1));
        assert_eq!(q.now(), SimTime::from_micros(1));
        // No-op when earlier than now.
        q.advance_clock(SimTime::from_nanos(20));
        assert_eq!(q.now(), SimTime::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "would skip a pending event")]
    fn advance_clock_cannot_skip_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.advance_clock(SimTime::from_nanos(11));
    }

    #[test]
    fn calendar_matches_heap_on_random_workload() {
        // Differential test: identical schedule/pop interleavings on both
        // cores must produce identical traces, across time scales that
        // exercise cur-merge, wheel and overflow paths.
        let mut rng = DetRng::from_label(42, "event-core-diff");
        let mut cal: EventQueue<u64> = EventQueue::with_geometry(12, 64);
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut payload = 0u64;
        for _ in 0..20_000 {
            if rng.chance(0.6) || cal.is_empty() {
                let magnitude = 1u64 << rng.index(30);
                let delta = rng.below(magnitude);
                let at = cal.now() + SimDuration::from_ps(delta);
                cal.schedule(at, payload);
                heap.schedule(at, payload);
                payload += 1;
            } else {
                let a = cal.pop().expect("non-empty");
                let b = heap.pop().expect("mirrored");
                assert_eq!((a.at, a.seq, a.payload), (b.at, b.seq, b.payload));
                assert_eq!(cal.now(), heap.now());
            }
        }
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            match (a, b) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!((a.at, a.seq, a.payload), (b.at, b.seq, b.payload));
                }
                _ => panic!("queues drained at different lengths"),
            }
        }
    }

    #[test]
    fn keyed_events_order_by_key_within_a_timestamp() {
        // Insertion order 3,1,2 — pop order must follow the keys, with
        // seq breaking a key tie FIFO, on both calendars.
        fn drive<Q: EventCore<&'static str>>(mut q: Q) {
            let t = SimTime::from_nanos(10);
            q.schedule_keyed(t, 3, "c");
            q.schedule_keyed(t, 1, "a");
            q.schedule_keyed(t, 2, "b1");
            q.schedule_keyed(t, 2, "b2");
            q.schedule_keyed(SimTime::from_nanos(5), 9, "early");
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            assert_eq!(order, vec!["early", "a", "b1", "b2", "c"]);
        }
        drive(EventQueue::new());
        drive(HeapEventQueue::new());
    }

    #[test]
    fn keyed_pop_order_is_insertion_order_independent() {
        // Two queues fed the same keyed event set in different insertion
        // orders must pop identically (the sharded-engine property: key
        // is content-derived, so which shard path scheduled first cannot
        // matter). Same-(time,key) events keep their relative FIFO order.
        let t = SimTime::from_nanos(64);
        let evs = [(7u64, "g"), (2, "b"), (5, "e"), (2, "b' "), (1, "a")];
        let mut fwd: EventQueue<&'static str> = EventQueue::new();
        for &(k, p) in &evs {
            fwd.schedule_keyed(t, k, p);
        }
        let mut rev: EventQueue<&'static str> = EventQueue::new();
        // Reversed insertion — except the (2, _) pair, which models two
        // sends from one source and therefore keeps its FIFO order.
        for &(k, p) in &[(1u64, "a"), (5, "e"), (2, "b"), (2, "b' "), (7, "g")] {
            rev.schedule_keyed(t, k, p);
        }
        let a: Vec<&str> = std::iter::from_fn(|| fwd.pop().map(|e| e.payload)).collect();
        let b: Vec<&str> = std::iter::from_fn(|| rev.pop().map(|e| e.payload)).collect();
        assert_eq!(a, b);
        assert_eq!(a, vec!["a", "b", "b' ", "e", "g"]);
    }

    #[test]
    fn keyed_merge_into_current_bucket_respects_keys() {
        // Schedule-at-now while draining a timestamp: the keyed merge
        // into `cur` must slot by (at, key, seq), not just append.
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(10);
        q.schedule_keyed(t, 5, 50);
        q.schedule_keyed(t, 1, 10);
        assert_eq!(q.pop().unwrap().payload, 10);
        q.schedule_keyed(t, 3, 30); // mid-drain, smaller key than pending 5
        q.schedule_keyed(t, 9, 90);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![30, 50, 90]);
    }

    #[test]
    fn visit_pending_sees_every_level_on_both_cores() {
        // One event merged into `cur` (scheduled at now mid-drain), one in
        // the wheel, one in the overflow — a sorted collection must see
        // all three, on both calendars, without disturbing pop order.
        fn drive<Q: EventCore<u64>>(mut q: Q) {
            let t = SimTime::from_nanos(10);
            q.schedule(t, 1);
            q.schedule(t, 2);
            assert_eq!(q.pop().unwrap().payload, 1);
            q.schedule(t, 3); // at == now: merges into the drain buffer
            q.schedule(SimTime::from_micros(5), 4); // wheel
            q.schedule(SimTime::from_millis(3), 5); // overflow
            let mut seen: Vec<(SimTime, u64)> = Vec::new();
            q.visit_pending(&mut |at, _key, p| seen.push((at, *p)));
            seen.sort_unstable();
            assert_eq!(
                seen,
                vec![
                    (t, 2),
                    (t, 3),
                    (SimTime::from_micros(5), 4),
                    (SimTime::from_millis(3), 5),
                ]
            );
            // Inspection is read-only: the queue still pops everything.
            let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
            assert_eq!(order, vec![2, 3, 4, 5]);
        }
        drive(EventQueue::<u64>::new());
        drive(HeapEventQueue::<u64>::new());
    }

    #[test]
    fn clear_retains_clock_and_seq_monotonicity() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        q.pop();
        q.schedule(SimTime::from_nanos(20), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_nanos(10));
        q.schedule(SimTime::from_nanos(30), 3);
        assert_eq!(q.pop().unwrap().payload, 3);
    }
}
