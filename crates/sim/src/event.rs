//! Deterministic event calendar.
//!
//! The calendar is a binary min-heap keyed on `(time, sequence)`. The
//! sequence number makes the pop order of simultaneous events equal to their
//! push order, which makes every simulation in this workspace
//! bit-reproducible for a given seed — a property the paper's own
//! proprietary simulator relied on when sweeping utilization levels.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event of payload type `E` scheduled at an absolute simulated time.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic insertion index; breaks ties deterministically (FIFO).
    pub seq: u64,
    /// The simulator-defined payload.
    pub payload: E,
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for ScheduledEvent<E> {}
impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event calendar.
///
/// ```
/// use stardust_sim::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&'static str> = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// q.schedule(SimTime::from_nanos(10), "early-second");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty calendar with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
        }
    }

    /// Current simulated time: the timestamp of the most recently popped
    /// event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the calendar.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events executed (popped) so far.
    pub fn events_executed(&self) -> u64 {
        self.popped
    }

    /// Schedule `payload` to fire at absolute time `at`.
    ///
    /// Scheduling in the past is a simulator bug; this panics (in debug and
    /// release) rather than silently reordering causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, payload });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Remove and return the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "calendar went backwards");
        self.now = ev.at;
        self.popped += 1;
        Some(ev)
    }

    /// Remove and return the earliest event only if it fires at or before
    /// `horizon`. The clock never advances past `horizon` via this method.
    pub fn pop_until(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        match self.peek_time() {
            Some(t) if t <= horizon => self.pop(),
            _ => None,
        }
    }

    /// Drop every pending event (the clock is retained).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(7));
        assert_eq!(q.events_executed(), 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop_until(SimTime::from_nanos(15)).unwrap().payload, 1);
        assert!(q.pop_until(SimTime::from_nanos(15)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_deterministic() {
        // Two identical runs must produce identical traces.
        let run = || {
            let mut q = EventQueue::new();
            let mut trace = Vec::new();
            q.schedule(SimTime::from_nanos(1), 0u64);
            while let Some(ev) = q.pop() {
                trace.push((ev.at, ev.payload));
                if ev.payload < 50 {
                    q.schedule(ev.at + crate::SimDuration::from_nanos(2), ev.payload + 1);
                    q.schedule(ev.at + crate::SimDuration::from_nanos(2), ev.payload + 100);
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
