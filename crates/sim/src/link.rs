//! Point-to-point serial link modelling.
//!
//! Stardust's fabric uses *independent* serial links rather than bundles
//! (§2.2) — each link is a single serialization resource with a fixed
//! propagation delay. [`LinkProfile`] captures the static parameters;
//! [`LinkClock`] tracks when the transmitter is next free, which is how the
//! engines model store-and-forward output queues without simulating
//! individual symbols.

use crate::time::{SimDuration, SimTime};
use crate::units::{serialization_time, BitsPerSec};

/// Static parameters of a serial link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkProfile {
    /// Line rate in bits per second (e.g. 50 Gb/s fabric links).
    pub rate: BitsPerSec,
    /// One-way propagation delay. The paper uses 100 m fiber = 500 ns
    /// (§5.6: "every 100m of fiber translates to a half microsecond").
    pub propagation: SimDuration,
}

/// Propagation delay of `meters` of fiber at ~2/3 c (5 ns/m), matching the
/// paper's 100 m = 0.5 µs rule of thumb.
pub fn fiber_delay(meters: u64) -> SimDuration {
    SimDuration::from_nanos(5 * meters)
}

impl LinkProfile {
    /// A link with the given rate and propagation delay.
    pub fn new(rate: BitsPerSec, propagation: SimDuration) -> Self {
        LinkProfile { rate, propagation }
    }

    /// A link with the given rate and `meters` of fiber.
    pub fn with_fiber(rate: BitsPerSec, meters: u64) -> Self {
        LinkProfile {
            rate,
            propagation: fiber_delay(meters),
        }
    }

    /// Time to clock `bytes` onto the wire.
    pub fn serialize(&self, bytes: u64) -> SimDuration {
        serialization_time(bytes, self.rate)
    }

    /// Store-and-forward delivery latency for a frame of `bytes`:
    /// serialization plus propagation.
    pub fn delivery(&self, bytes: u64) -> SimDuration {
        self.serialize(bytes) + self.propagation
    }
}

/// Transmitter occupancy tracker for one link.
///
/// `depart(now, bytes)` answers: if a frame of `bytes` is handed to the
/// transmitter at `now`, when does its last bit leave, and it advances the
/// busy horizon accordingly. Queueing *policy* (who gets to transmit next,
/// drops, FCI marking) lives in the engines; this type only enforces the
/// serialization constraint.
#[derive(Debug, Clone, Copy)]
pub struct LinkClock {
    profile: LinkProfile,
    /// Time at which the transmitter finishes its current backlog.
    free_at: SimTime,
}

impl LinkClock {
    /// New idle transmitter.
    pub fn new(profile: LinkProfile) -> Self {
        LinkClock {
            profile,
            free_at: SimTime::ZERO,
        }
    }

    /// The static link parameters.
    pub fn profile(&self) -> LinkProfile {
        self.profile
    }

    /// When the transmitter next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Is the transmitter idle at `now`?
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Current backlog (how long until the transmitter drains), zero if idle.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.free_at.saturating_since(now)
    }

    /// Enqueue a frame of `bytes` at time `now`; returns the time the last
    /// bit has been serialized (start of propagation).
    pub fn depart(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = if self.free_at > now {
            self.free_at
        } else {
            now
        };
        let done = start + self.profile.serialize(bytes);
        self.free_at = done;
        done
    }

    /// Enqueue a frame and return its full arrival time at the far end
    /// (serialization completion + propagation).
    pub fn deliver(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.depart(now, bytes) + self.profile.propagation
    }

    /// Forget any backlog (used when a link is torn down / reset).
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::gbps;

    fn link50() -> LinkProfile {
        LinkProfile::with_fiber(gbps(50), 100)
    }

    #[test]
    fn fiber_rule_of_thumb() {
        assert_eq!(fiber_delay(100).as_nanos_f64(), 500.0);
        assert_eq!(fiber_delay(10).as_nanos_f64(), 50.0);
    }

    #[test]
    fn idle_link_serializes_immediately() {
        let mut c = LinkClock::new(link50());
        let t0 = SimTime::from_nanos(100);
        let done = c.depart(t0, 256);
        assert_eq!(done.since(t0).as_ps(), 40_960);
        assert!(!c.is_idle(t0));
        assert!(c.is_idle(done));
    }

    #[test]
    fn busy_link_queues_back_to_back() {
        let mut c = LinkClock::new(link50());
        let t0 = SimTime::from_nanos(0);
        let d1 = c.depart(t0, 256);
        let d2 = c.depart(t0, 256);
        // Second cell starts exactly when the first finishes.
        assert_eq!(d2.since(d1).as_ps(), 40_960);
        assert_eq!(c.backlog(t0).as_ps(), 2 * 40_960);
    }

    #[test]
    fn delivery_adds_propagation() {
        let mut c = LinkClock::new(link50());
        let arr = c.deliver(SimTime::ZERO, 256);
        assert_eq!(arr.as_ps(), 40_960 + 500_000);
    }

    #[test]
    fn gap_between_frames_leaves_idle_time() {
        let mut c = LinkClock::new(link50());
        c.depart(SimTime::ZERO, 256);
        // Arrive long after the link drained: departs immediately.
        let late = SimTime::from_micros(10);
        let done = c.depart(late, 256);
        assert_eq!(done.since(late).as_ps(), 40_960);
    }

    #[test]
    fn reset_clears_backlog() {
        let mut c = LinkClock::new(link50());
        c.depart(SimTime::ZERO, 1_000_000);
        c.reset();
        assert!(c.is_idle(SimTime::ZERO));
    }
}
