//! The transport-level discrete-event simulator (Fig 10 a–c).

use crate::config::{Protocol, TransportConfig};
use stardust_sim::link::fiber_delay;
use stardust_sim::units::serialization_time;
use stardust_sim::{Counter, EventQueue, FlowStats, SimDuration, SimTime};
use stardust_topo::builders::Kary;
use stardust_topo::{NodeId, Topology};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Index of a flow in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub u32);

/// A data segment (or its retransmission) in flight.
#[derive(Debug, Clone, Copy)]
struct Pkt {
    flow: u32,
    sub: u8,
    seq: u64,
    bytes: u32,
    ecn: bool,
    /// Index of the path element this packet currently occupies.
    hop: u8,
}

#[derive(Debug, Clone)]
enum Ev {
    FlowStart {
        flow: u32,
    },
    QTx {
        dir: u32,
    },
    QArr {
        dir: u32,
        pkt: Pkt,
    },
    Ack {
        flow: u32,
        sub: u8,
        ackno: u64,
        ecn: bool,
    },
    Rto {
        flow: u32,
        sub: u8,
        gen: u64,
    },
    /// DCQCN paced transmission opportunity.
    Paced {
        flow: u32,
    },
    /// DCQCN rate-increase timer.
    RateTimer {
        flow: u32,
    },
    /// Stardust credit tick for one destination port (= host).
    SdTick {
        dst_host: u32,
    },
    /// Stardust credit grant arriving at a flow's ingress VOQ.
    SdGrant {
        flow: u32,
    },
    /// Stardust packet leaving the fabric toward the destination port.
    SdOut {
        pkt: Pkt,
    },
}

/// One link direction: FIFO with byte cap and optional ECN marking.
#[derive(Debug)]
struct Dir {
    rate_bps: u64,
    prop: SimDuration,
    q: VecDeque<Pkt>,
    bytes: u64,
    in_service: Option<Pkt>,
}

impl Dir {
    fn depth_bytes(&self) -> u64 {
        self.bytes + self.in_service.map_or(0, |p| p.bytes as u64)
    }
}

/// Per-subflow sender + receiver state (TCP-like protocols; DCQCN reuses
/// the sequence/RTO machinery with rate pacing instead of a window).
#[derive(Debug)]
struct Sub {
    /// Bytes this subflow must deliver.
    size: u64,
    path: Vec<u32>,
    ret_delay: SimDuration,
    // sender
    cwnd: f64,
    ssthresh: f64,
    next_seq: u64,
    snd_una: u64,
    dup_acks: u32,
    in_fr: bool,
    recover: u64,
    rto: SimDuration,
    rto_gen: u64,
    // RTT estimation (one timed segment at a time, Karn's rule).
    // Integer picoseconds: the estimator is an accumulator over the whole
    // flow lifetime, and f64 EWMAs drift (det-lint rule D2).
    srtt_ps: u64,
    rttvar_ps: u64,
    rtt_pending: bool,
    rtt_seq: u64,
    rtt_sent: SimTime,
    // DCTCP
    alpha: f64,
    win_end: u64,
    acked_win: u64,
    marked_win: u64,
    // DCQCN
    rate_bps: f64,
    last_cnp: SimTime,
    cnp_since_timer: bool,
    paced_armed: bool,
    // receiver
    recv_next: u64,
    ooo: BTreeMap<u64, u32>,
    done: bool,
}

impl Sub {
    fn outstanding(&self) -> u64 {
        self.next_seq.saturating_sub(self.snd_una)
    }
}

/// Public view of a flow.
#[derive(Debug, Clone)]
pub struct FlowStatus {
    /// Transport protocol driving the flow.
    pub proto: Protocol,
    /// Sending host index.
    pub src_host: u32,
    /// Receiving host index.
    pub dst_host: u32,
    /// Flow size in bytes.
    pub size: u64,
    /// When the flow was started.
    pub start: SimTime,
    /// Completion time, once the last byte is acknowledged.
    pub finished: Option<SimTime>,
    /// Total bytes cumulatively acknowledged across subflows.
    pub acked: u64,
}

impl FlowStatus {
    /// Flow completion time, if finished.
    pub fn fct(&self) -> Option<SimDuration> {
        self.finished.map(|f| f.since(self.start))
    }
}

struct Flow {
    status: FlowStatus,
    subs: Vec<Sub>,
}

/// Stardust ingress VOQ. The paper's §6.3 htsim model — which this crate
/// reproduces — schedules "a simple round robin between all flows" at the
/// egress Fabric Adapter, so the transport-level VOQ is per *flow*; the
/// hardware-accurate per-(FA, port, TC) granularity lives in
/// `stardust-fabric`.
#[derive(Debug, Default)]
struct SdVoq {
    q: VecDeque<Pkt>,
    bytes: u64,
    balance: i64,
}

/// Stardust per-destination-port credit scheduler.
#[derive(Debug)]
struct SdPort {
    ring: VecDeque<u32>,
    // det-lint: allow(unordered-iter, keyed access only; grant order is driven by the ring, never by this map)
    pending: HashMap<u32, i64>,
    armed: bool,
    interval: SimDuration,
    /// The edge→host direction this port drains into (for backpressure).
    final_dir: u32,
}

/// Aggregate drop/mark counters.
#[derive(Debug, Default)]
pub struct NetCounters {
    /// Drops inside the network (fabric queues and destination ToR egress).
    pub drops: Counter,
    /// Drops at the sending host's own NIC queue (hop 0) — TCP bursting
    /// into its local uplink, not a fabric property.
    pub host_drops: Counter,
    /// ECN marks applied by switch queues.
    pub ecn_marks: Counter,
    /// Fast retransmissions.
    pub retransmits: Counter,
    /// Retransmission timeouts fired.
    pub rtos: Counter,
    /// Stardust scheduler credits issued (TCP-over-Stardust only).
    pub sd_credits: Counter,
}

/// The §6.3 transport simulator over a k-ary fat-tree.
pub struct TransportSim {
    cfg: TransportConfig,
    topo: Topology,
    hosts: Vec<NodeId>,
    reach: Vec<Vec<NodeId>>,
    dirs: Vec<Dir>,
    flows: Vec<Flow>,
    events: EventQueue<Ev>,
    /// Scratch buffer for batched same-timestamp dispatch in `run_until`.
    batch: Vec<stardust_sim::ScheduledEvent<Ev>>,
    // det-lint: allow(unordered-iter, keyed by flow id via entry/get_mut only; drain order comes from SdPort rings)
    voqs: HashMap<u32, SdVoq>,
    sd_ports: Vec<SdPort>,
    /// Aggregate drop/mark counters for the run.
    pub counters: NetCounters,
}

impl TransportSim {
    /// Build over a k-ary fat-tree from `stardust-topo`.
    pub fn new(ft: Kary, cfg: TransportConfig) -> Self {
        cfg.validate();
        let Kary { topo, hosts, .. } = ft;
        let mut dirs = Vec::with_capacity(topo.num_links() * 2);
        for l in topo.link_ids() {
            let link = topo.link(l);
            for from_end in 0..2u8 {
                let _ = link.dst_of(from_end); // direction endpoint implied by paths
                dirs.push(Dir {
                    rate_bps: cfg.link_bps,
                    prop: fiber_delay(link.meters as u64),
                    q: VecDeque::new(),
                    bytes: 0,
                    in_service: None,
                });
            }
        }
        let reach = topo.downward_edge_reach();
        // One Stardust port scheduler per host: paced at link_bps×(1+s).
        let interval = SimDuration::from_ps(
            (cfg.sd_credit_bytes as f64 * 8.0 * 1e12
                / (cfg.link_bps as f64 * (1.0 + cfg.sd_speedup)))
                .round() as u64,
        );
        let sd_ports = hosts
            .iter()
            .map(|&h| {
                // The host's single link; direction edge→host.
                let l = topo.node(h).links[0];
                let edge_end = topo.link(l).end_of(topo.peer(h, l));
                SdPort {
                    ring: VecDeque::new(),
                    pending: HashMap::new(),
                    armed: false,
                    interval,
                    final_dir: l.0 * 2 + edge_end as u32,
                }
            })
            .collect();
        TransportSim {
            cfg,
            topo,
            hosts,
            reach,
            dirs,
            flows: Vec::new(),
            events: EventQueue::new(),
            batch: Vec::new(),
            voqs: HashMap::new(),
            sd_ports,
            counters: NetCounters::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Number of hosts.
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Status of a flow.
    pub fn flow(&self, id: FlowId) -> &FlowStatus {
        &self.flows[id.0 as usize].status
    }

    /// Statuses of all flows.
    pub fn flow_statuses(&self) -> impl Iterator<Item = &FlowStatus> {
        self.flows.iter().map(|f| &f.status)
    }

    /// The engine-agnostic FCT surface over all flows: the same
    /// [`FlowStats`] record type the cell-accurate fabric engine fills,
    /// so Fig 10 experiments report both engines through one table.
    pub fn flow_stats(&self) -> FlowStats {
        self.flow_stats_for((0..self.flows.len() as u32).map(FlowId))
    }

    /// [`FlowStats`] restricted to `ids` (e.g. a scenario's foreground
    /// flows, excluding background load).
    pub fn flow_stats_for(&self, ids: impl IntoIterator<Item = FlowId>) -> FlowStats {
        let mut fs = FlowStats::new();
        for id in ids {
            let st = &self.flows[id.0 as usize].status;
            let idx = fs.add(st.src_host, st.dst_host, st.size, st.start);
            if let Some(f) = st.finished {
                fs.finish(idx, f);
            }
        }
        fs
    }

    /// Deterministic per-hop ECMP hash (splitmix64 avalanche — weak mixing
    /// here correlates path choices across hops and artificially collapses
    /// the ECMP path set).
    fn ecmp_hash(seed: u64, flow: u32, sub: u8, node: NodeId) -> u64 {
        fn splitmix(mut x: u64) -> u64 {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^ (x >> 31)
        }
        let a = splitmix(seed ^ ((flow as u64) << 8) ^ sub as u64);
        splitmix(a ^ ((node.0 as u64) << 1))
    }

    /// Compute a flow-pinned ECMP path from `src_host` to `dst_host`, as a
    /// sequence of direction indices.
    fn compute_path(&self, flow: u32, sub: u8, src_host: u32, dst_host: u32) -> Vec<u32> {
        let src = self.hosts[src_host as usize];
        let dst = self.hosts[dst_host as usize];
        let dst_edge = {
            let l = self.topo.node(dst).links[0];
            self.topo.peer(dst, l)
        };
        let mut path = Vec::with_capacity(6);
        // Host uplink.
        let l0 = self.topo.node(src).links[0];
        path.push(l0.0 * 2 + self.topo.link(l0).end_of(src) as u32);
        let mut node = self.topo.peer(src, l0);
        while node != dst_edge {
            let candidates = self.topo.forward_links(node, dst_edge, &self.reach);
            debug_assert!(!candidates.is_empty());
            let h = Self::ecmp_hash(self.cfg.seed, flow, sub, node);
            let link = candidates[(h % candidates.len() as u64) as usize];
            path.push(link.0 * 2 + self.topo.link(link).end_of(node) as u32);
            node = self.topo.peer(node, link);
        }
        // Edge → destination host.
        let lh = self.topo.node(dst).links[0];
        path.push(lh.0 * 2 + self.topo.link(lh).end_of(dst_edge) as u32);
        path
    }

    /// Add a flow of `size` bytes (use `u64::MAX / 2` for a long-running
    /// flow) starting at `start`. Returns its id.
    pub fn add_flow(
        &mut self,
        proto: Protocol,
        src_host: u32,
        dst_host: u32,
        size: u64,
        start: SimTime,
    ) -> FlowId {
        assert_ne!(src_host, dst_host);
        let id = self.flows.len() as u32;
        let nsubs = if proto == Protocol::Mptcp {
            self.cfg.subflows
        } else {
            1
        };
        let mss = self.cfg.mss as f64;
        let share = size / nsubs as u64;
        let mut subs = Vec::with_capacity(nsubs as usize);
        for s in 0..nsubs {
            let sub_size = if s == nsubs - 1 {
                size - share * (nsubs as u64 - 1)
            } else {
                share
            };
            let path = match proto {
                Protocol::Stardust => {
                    let up = self.compute_path(id, s, src_host, dst_host);
                    // Keep only host-uplink and final edge→host hops; the
                    // fabric in between is the scheduled cell fabric.
                    vec![up[0], *up.last().unwrap()]
                }
                _ => self.compute_path(id, s, src_host, dst_host),
            };
            let mut ret_delay: SimDuration = path
                .iter()
                .map(|&d| self.dirs[d as usize].prop)
                .fold(SimDuration::ZERO, |a, b| a + b);
            if proto == Protocol::Stardust {
                ret_delay += self.cfg.sd_fabric_latency;
            }
            subs.push(Sub {
                size: sub_size,
                path,
                ret_delay,
                cwnd: self.cfg.init_cwnd_mss as f64 * mss,
                ssthresh: self.cfg.init_ssthresh_mss as f64 * mss,
                next_seq: 0,
                snd_una: 0,
                dup_acks: 0,
                in_fr: false,
                recover: 0,
                rto: self.cfg.min_rto,
                rto_gen: 0,
                srtt_ps: 0,
                rttvar_ps: 0,
                rtt_pending: false,
                rtt_seq: 0,
                rtt_sent: SimTime::ZERO,
                alpha: 0.0,
                win_end: 0,
                acked_win: 0,
                marked_win: 0,
                rate_bps: self.cfg.link_bps as f64,
                last_cnp: SimTime::ZERO,
                cnp_since_timer: false,
                paced_armed: false,
                recv_next: 0,
                ooo: BTreeMap::new(),
                done: sub_size == 0,
            });
        }
        self.flows.push(Flow {
            status: FlowStatus {
                proto,
                src_host,
                dst_host,
                size,
                start,
                finished: None,
                acked: 0,
            },
            subs,
        });
        self.events.schedule(start, Ev::FlowStart { flow: id });
        FlowId(id)
    }

    /// Run until `horizon`, draining same-timestamp events in batches,
    /// then advance the clock to `horizon` (unless it is
    /// [`SimTime::MAX`], which means "run to exhaustion") so back-to-back
    /// windowed runs cover exactly their span.
    pub fn run_until(&mut self, horizon: SimTime) {
        let mut batch = std::mem::take(&mut self.batch);
        while self.events.pop_batch_until(horizon, &mut batch) > 0 {
            for ev in batch.drain(..) {
                self.dispatch(ev.at, ev.payload);
            }
        }
        self.batch = batch;
        if horizon < SimTime::MAX {
            self.events.advance_clock(horizon);
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::FlowStart { flow } => self.on_flow_start(now, flow),
            Ev::QTx { dir } => self.on_qtx(now, dir),
            Ev::QArr { dir, pkt } => self.on_qarr(now, dir, pkt),
            Ev::Ack {
                flow,
                sub,
                ackno,
                ecn,
            } => self.on_ack(now, flow, sub, ackno, ecn),
            Ev::Rto { flow, sub, gen } => self.on_rto(now, flow, sub, gen),
            Ev::Paced { flow } => self.on_paced(now, flow),
            Ev::RateTimer { flow } => self.on_rate_timer(now, flow),
            Ev::SdTick { dst_host } => self.on_sd_tick(now, dst_host),
            Ev::SdGrant { flow } => self.on_sd_grant(now, flow),
            Ev::SdOut { pkt } => self.on_sd_out(now, pkt),
        }
    }

    fn on_flow_start(&mut self, now: SimTime, flow: u32) {
        let proto = self.flows[flow as usize].status.proto;
        if proto == Protocol::Dcqcn {
            // Rate-paced: arm the pacing and increase timers.
            self.flows[flow as usize].subs[0].paced_armed = true;
            self.events.schedule(now, Ev::Paced { flow });
            self.events
                .schedule(now + self.cfg.dcqcn_timer, Ev::RateTimer { flow });
        } else {
            for s in 0..self.flows[flow as usize].subs.len() {
                self.send_available(now, flow, s as u8);
            }
        }
    }

    // --- queue mechanics ---

    fn enqueue(&mut self, now: SimTime, dir_idx: u32, mut pkt: Pkt) {
        let cap = self.cfg.queue_bytes();
        let proto = self.flows[pkt.flow as usize].status.proto;
        let mark = matches!(proto, Protocol::Dctcp | Protocol::Dcqcn);
        let ecn_th = self.cfg.ecn_bytes();
        let d = &mut self.dirs[dir_idx as usize];
        let depth = d.depth_bytes();
        if depth + pkt.bytes as u64 > cap {
            if pkt.hop == 0 {
                self.counters.host_drops.inc();
            } else {
                self.counters.drops.inc();
            }
            return;
        }
        if mark && depth >= ecn_th {
            pkt.ecn = true;
            self.counters.ecn_marks.inc();
        }
        if d.in_service.is_none() {
            let t = serialization_time(pkt.bytes as u64, d.rate_bps);
            d.in_service = Some(pkt);
            self.events.schedule(now + t, Ev::QTx { dir: dir_idx });
        } else {
            d.bytes += pkt.bytes as u64;
            d.q.push_back(pkt);
        }
    }

    fn on_qtx(&mut self, now: SimTime, dir_idx: u32) {
        let d = &mut self.dirs[dir_idx as usize];
        let pkt = d.in_service.take().expect("QTx without packet");
        self.events
            .schedule(now + d.prop, Ev::QArr { dir: dir_idx, pkt });
        if let Some(next) = d.q.pop_front() {
            d.bytes -= next.bytes as u64;
            let t = serialization_time(next.bytes as u64, d.rate_bps);
            d.in_service = Some(next);
            self.events.schedule(now + t, Ev::QTx { dir: dir_idx });
        }
    }

    fn on_qarr(&mut self, now: SimTime, _dir_idx: u32, mut pkt: Pkt) {
        let f = &self.flows[pkt.flow as usize];
        let sub = &f.subs[pkt.sub as usize];
        let last_hop = sub.path.len() as u8 - 1;
        if pkt.hop == last_hop {
            self.recv_data(now, pkt);
            return;
        }
        if f.status.proto == Protocol::Stardust && pkt.hop == 0 {
            // Arrived at the source ToR: enter the VOQ.
            self.sd_ingress(now, pkt);
            return;
        }
        pkt.hop += 1;
        let next_dir = self.flows[pkt.flow as usize].subs[pkt.sub as usize].path[pkt.hop as usize];
        self.enqueue(now, next_dir, pkt);
    }

    // --- receiver ---

    fn recv_data(&mut self, now: SimTime, pkt: Pkt) {
        let ret = {
            let sub = &mut self.flows[pkt.flow as usize].subs[pkt.sub as usize];
            if pkt.seq == sub.recv_next {
                sub.recv_next += pkt.bytes as u64;
                // Drain contiguous out-of-order segments.
                while let Some((&s, &b)) = sub.ooo.first_key_value() {
                    if s <= sub.recv_next {
                        sub.ooo.remove(&s);
                        let end = s + b as u64;
                        if end > sub.recv_next {
                            sub.recv_next = end;
                        }
                    } else {
                        break;
                    }
                }
            } else if pkt.seq > sub.recv_next {
                sub.ooo.insert(pkt.seq, pkt.bytes);
            }
            (sub.recv_next, sub.ret_delay)
        };
        self.events.schedule(
            now + ret.1,
            Ev::Ack {
                flow: pkt.flow,
                sub: pkt.sub,
                ackno: ret.0,
                ecn: pkt.ecn,
            },
        );
    }

    // --- TCP-family sender ---

    fn arm_rto(&mut self, now: SimTime, flow: u32, sub: u8) {
        let s = &mut self.flows[flow as usize].subs[sub as usize];
        s.rto_gen += 1;
        let gen = s.rto_gen;
        let at = now + s.rto;
        self.events.schedule(at, Ev::Rto { flow, sub, gen });
    }

    fn send_segment(&mut self, now: SimTime, flow: u32, sub: u8, seq: u64, retx: bool) {
        let (bytes, dir) = {
            let s = &self.flows[flow as usize].subs[sub as usize];
            let bytes = (s.size - seq).min(self.cfg.mss as u64) as u32;
            (bytes, s.path[0])
        };
        if retx {
            self.counters.retransmits.inc();
        }
        let pkt = Pkt {
            flow,
            sub,
            seq,
            bytes,
            ecn: false,
            hop: 0,
        };
        self.enqueue(now, dir, pkt);
    }

    fn send_available(&mut self, now: SimTime, flow: u32, sub: u8) {
        let max_cwnd = self.cfg.max_cwnd_bytes as f64;
        loop {
            let (seq, can) = {
                let s = &self.flows[flow as usize].subs[sub as usize];
                let cwnd = s.cwnd.min(max_cwnd);
                let can = s.next_seq < s.size
                    && s.outstanding() as f64 + self.cfg.mss as f64 / 2.0 < cwnd;
                (s.next_seq, can)
            };
            if !can {
                break;
            }
            self.send_segment(now, flow, sub, seq, false);
            let s = &mut self.flows[flow as usize].subs[sub as usize];
            let bytes = (s.size - seq).min(self.cfg.mss as u64);
            s.next_seq += bytes;
            if !s.rtt_pending {
                // Time this segment for the RTT estimator (Karn's rule:
                // only fresh transmissions are timed).
                s.rtt_pending = true;
                s.rtt_seq = s.next_seq;
                s.rtt_sent = now;
            }
        }
        let outstanding = self.flows[flow as usize].subs[sub as usize].outstanding();
        if outstanding > 0 {
            self.arm_rto(now, flow, sub);
        }
    }

    /// LIA coupling factor: increase per ACK is
    /// `min(a · acked · mss / cwnd_total, acked · mss / cwnd_sub)` with
    /// `a = cwnd_total · max_r(w_r) / (Σ w_r)²` (equal-RTT simplification,
    /// exact for the uniform fat-tree where all subflow RTTs match).
    fn lia_increase(&self, flow: u32, sub: u8, newly: f64) -> f64 {
        let f = &self.flows[flow as usize];
        let total: f64 = f.subs.iter().map(|s| s.cwnd).sum();
        let maxw = f.subs.iter().map(|s| s.cwnd).fold(0.0, f64::max);
        let a = total * maxw / (total * total);
        let mss = self.cfg.mss as f64;
        let own = f.subs[sub as usize].cwnd;
        (a * newly * mss / total).min(newly * mss / own)
    }

    fn on_ack(&mut self, now: SimTime, flow: u32, sub: u8, ackno: u64, ecn: bool) {
        let proto = self.flows[flow as usize].status.proto;
        if proto == Protocol::Dcqcn {
            self.dcqcn_ack(now, flow, ackno, ecn);
            return;
        }
        let mss = self.cfg.mss as f64;
        let mut lia_newly = 0.0f64;
        {
            let s = &mut self.flows[flow as usize].subs[sub as usize];
            if ackno > s.snd_una {
                let newly = (ackno - s.snd_una) as f64;
                s.snd_una = ackno;
                // A straggler ACK (data in flight across a go-back-N
                // timeout) can overtake the rewound next_seq.
                if s.next_seq < s.snd_una {
                    s.next_seq = s.snd_una;
                }
                s.dup_acks = 0;
                // RTT sample → adaptive RTO (Jacobson/Karels), floored at
                // min_rto. Essential for TCP-over-Stardust, where a deep
                // ingress VOQ legitimately stretches the RTT.
                if s.rtt_pending && ackno >= s.rtt_seq {
                    let sample_ps = now.since(s.rtt_sent).as_ps();
                    if s.srtt_ps == 0 {
                        s.srtt_ps = sample_ps;
                        s.rttvar_ps = sample_ps / 2;
                    } else {
                        // RFC 6298 gains (1/8, 1/4) in integer ps: exact,
                        // drift-free, and identical on every platform.
                        let err = sample_ps as i64 - s.srtt_ps as i64;
                        s.srtt_ps = (s.srtt_ps as i64 + err / 8).max(0) as u64;
                        s.rttvar_ps = (s.rttvar_ps as i64 + (err.abs() - s.rttvar_ps as i64) / 4)
                            .max(0) as u64;
                    }
                    s.rtt_pending = false;
                }
                let adaptive = SimDuration::from_ps(s.srtt_ps.saturating_add(4 * s.rttvar_ps));
                s.rto = adaptive.max(self.cfg.min_rto);
                // Invalidate the pending RTO; after_progress / the send
                // path re-arms it if data remains outstanding.
                s.rto_gen += 1;
                // DCTCP bookkeeping (per-packet echo).
                if proto == Protocol::Dctcp {
                    s.acked_win += newly as u64;
                    if ecn {
                        s.marked_win += newly as u64;
                    }
                    if s.snd_una >= s.win_end {
                        if s.acked_win > 0 {
                            let f_frac = s.marked_win as f64 / s.acked_win as f64;
                            let g = self.cfg.ewma_g;
                            s.alpha = (1.0 - g) * s.alpha + g * f_frac;
                            if s.marked_win > 0 {
                                s.cwnd = (s.cwnd * (1.0 - s.alpha / 2.0)).max(2.0 * mss);
                            }
                        }
                        s.acked_win = 0;
                        s.marked_win = 0;
                        s.win_end = s.next_seq;
                    }
                }
                if s.in_fr {
                    if ackno >= s.recover {
                        s.in_fr = false;
                        s.cwnd = s.ssthresh;
                    } else {
                        // NewReno partial ACK: retransmit the next hole.
                        s.cwnd = (s.cwnd - newly + mss).max(2.0 * mss);
                        let seq = s.snd_una;
                        let _ = seq; // retransmitted below, outside the borrow
                    }
                } else if s.cwnd < s.ssthresh {
                    s.cwnd += newly; // slow start
                } else if proto == Protocol::Mptcp {
                    lia_newly = newly;
                } else {
                    s.cwnd += mss * newly / s.cwnd; // congestion avoidance
                }
            } else if s.outstanding() > 0 {
                s.dup_acks += 1;
                if s.dup_acks == 3 && !s.in_fr {
                    let flight = s.outstanding() as f64;
                    s.ssthresh = (flight / 2.0).max(2.0 * mss);
                    s.cwnd = s.ssthresh + 3.0 * mss;
                    s.in_fr = true;
                    s.recover = s.next_seq;
                } else if s.in_fr {
                    s.cwnd += mss; // window inflation
                }
            }
        }
        if lia_newly > 0.0 {
            let inc = self.lia_increase(flow, sub, lia_newly);
            self.flows[flow as usize].subs[sub as usize].cwnd += inc;
        }
        // Retransmissions decided above, executed here (borrow discipline).
        let (need_fast_rtx, need_partial_rtx, una) = {
            let s = &self.flows[flow as usize].subs[sub as usize];
            (
                s.dup_acks == 3 && s.in_fr && s.recover == s.next_seq,
                s.in_fr && ackno > 0 && ackno == s.snd_una && ackno < s.recover && s.dup_acks == 0,
                s.snd_una,
            )
        };
        if (need_fast_rtx || need_partial_rtx)
            && una < self.flows[flow as usize].subs[sub as usize].size
        {
            self.send_segment(now, flow, sub, una, true);
        }
        self.after_progress(now, flow, sub);
    }

    fn dcqcn_ack(&mut self, now: SimTime, flow: u32, ackno: u64, ecn: bool) {
        let g = self.cfg.ewma_g;
        {
            let s = &mut self.flows[flow as usize].subs[0];
            if ackno > s.snd_una {
                s.snd_una = ackno;
                if s.next_seq < s.snd_una {
                    s.next_seq = s.snd_una;
                }
            }
            if ecn {
                // CNP: at most one rate cut per 50µs window.
                let hold = SimDuration::from_micros(50);
                if now.saturating_since(s.last_cnp) >= hold {
                    s.last_cnp = now;
                    s.alpha = (1.0 - g) * s.alpha + g;
                    s.rate_bps = (s.rate_bps * (1.0 - s.alpha / 2.0)).max(1e7);
                    s.cnp_since_timer = true;
                }
            }
        }
        self.after_progress(now, flow, 0);
    }

    fn on_paced(&mut self, now: SimTime, flow: u32) {
        let mss = self.cfg.mss as u64;
        let (can, seq, gap) = {
            let s = &self.flows[flow as usize].subs[0];
            // Bound in-flight data to keep loss recovery sane (RoCE would
            // use PFC; our queues can drop).
            let cap = 64 * mss;
            let can = s.next_seq < s.size && s.outstanding() < cap;
            let gap = SimDuration::from_ps((mss as f64 * 8.0 * 1e12 / s.rate_bps).round() as u64);
            (can, s.next_seq, gap)
        };
        if can {
            self.send_segment(now, flow, 0, seq, false);
            let s = &mut self.flows[flow as usize].subs[0];
            let bytes = (s.size - seq).min(mss);
            s.next_seq += bytes;
        }
        let s = &mut self.flows[flow as usize].subs[0];
        if s.snd_una < s.size {
            self.events.schedule(now + gap, Ev::Paced { flow });
            let out = self.flows[flow as usize].subs[0].outstanding();
            if out > 0 {
                self.arm_rto(now, flow, 0);
            }
        } else {
            self.flows[flow as usize].subs[0].paced_armed = false;
        }
    }

    fn on_rate_timer(&mut self, now: SimTime, flow: u32) {
        let link = self.cfg.link_bps as f64;
        let rai = self.cfg.dcqcn_rai_bps as f64;
        let g = self.cfg.ewma_g;
        let done = {
            let s = &mut self.flows[flow as usize].subs[0];
            if !s.cnp_since_timer {
                s.alpha *= 1.0 - g;
                s.rate_bps = (s.rate_bps + rai).min(link);
            }
            s.cnp_since_timer = false;
            s.snd_una >= s.size
        };
        if !done {
            self.events
                .schedule(now + self.cfg.dcqcn_timer, Ev::RateTimer { flow });
        }
    }

    fn on_rto(&mut self, now: SimTime, flow: u32, sub: u8, gen: u64) {
        let proto = self.flows[flow as usize].status.proto;
        let mss = self.cfg.mss as f64;
        let fire = {
            let s = &self.flows[flow as usize].subs[sub as usize];
            gen == s.rto_gen && s.outstanding() > 0 && !s.done
        };
        if !fire {
            return;
        }
        self.counters.rtos.inc();
        {
            let s = &mut self.flows[flow as usize].subs[sub as usize];
            s.ssthresh = (s.outstanding() as f64 / 2.0).max(2.0 * mss);
            s.cwnd = mss;
            s.in_fr = false;
            s.dup_acks = 0;
            // Karn: abandon any in-flight RTT sample on timeout.
            s.rtt_pending = false;
            // Go-back-N.
            s.next_seq = s.snd_una;
            s.rto = (s.rto * 2).min(SimDuration::from_millis(100));
            if proto == Protocol::Dcqcn {
                s.rate_bps = (s.rate_bps / 2.0).max(1e7);
            }
        }
        if proto != Protocol::Dcqcn {
            self.send_available(now, flow, sub);
        }
        // DCQCN's pacing chain keeps running and resends from snd_una.
    }

    /// Post-ACK housekeeping: completion detection and further sends.
    fn after_progress(&mut self, now: SimTime, flow: u32, sub: u8) {
        let proto = self.flows[flow as usize].status.proto;
        // Update aggregate acked bytes.
        let acked: u64 = self.flows[flow as usize]
            .subs
            .iter()
            .map(|s| s.snd_una)
            .sum();
        self.flows[flow as usize].status.acked = acked;
        let sub_done = {
            let s = &mut self.flows[flow as usize].subs[sub as usize];
            if s.snd_una >= s.size && !s.done {
                s.done = true;
            }
            s.done
        };
        if sub_done && self.flows[flow as usize].status.finished.is_none() {
            let all = self.flows[flow as usize].subs.iter().all(|s| s.done);
            if all {
                self.flows[flow as usize].status.finished = Some(now);
            }
        }
        if !sub_done && proto != Protocol::Dcqcn {
            self.send_available(now, flow, sub);
            // send_available arms the RTO only when it sent something; if
            // the window is closed but data is outstanding, keep a timer.
            if self.flows[flow as usize].subs[sub as usize].outstanding() > 0 {
                self.arm_rto(now, flow, sub);
            }
        }
        // Re-arm pacing if DCQCN stalled with data left.
        if proto == Protocol::Dcqcn {
            let s = &mut self.flows[flow as usize].subs[0];
            if !s.done && !s.paced_armed {
                s.paced_armed = true;
                self.events.schedule(now, Ev::Paced { flow });
            }
        }
    }

    // --- Stardust scheduled-fabric network ---

    fn sd_ingress(&mut self, now: SimTime, pkt: Pkt) {
        let dst = self.flows[pkt.flow as usize].status.dst_host;
        let bytes = pkt.bytes as u64;
        let voq = self.voqs.entry(pkt.flow).or_default();
        voq.bytes += bytes;
        voq.q.push_back(pkt);
        let port = &mut self.sd_ports[dst as usize];
        match port.pending.get_mut(&pkt.flow) {
            Some(p) => *p += bytes as i64,
            None => {
                port.pending.insert(pkt.flow, bytes as i64);
                port.ring.push_back(pkt.flow);
            }
        }
        if !port.armed {
            port.armed = true;
            self.events.schedule(now, Ev::SdTick { dst_host: dst });
        }
    }

    fn on_sd_tick(&mut self, now: SimTime, dst_host: u32) {
        let credit = self.cfg.sd_credit_bytes as i64;
        let ctrl = self.cfg.sd_ctrl_latency;
        // Egress backpressure (§4.1): hold credits while the port's
        // egress queue is more than half full.
        let hiwat = self.cfg.queue_bytes() / 2;
        let final_dir = self.sd_ports[dst_host as usize].final_dir;
        let backlogged = self.dirs[final_dir as usize].depth_bytes() > hiwat;
        let port = &mut self.sd_ports[dst_host as usize];
        if backlogged {
            // Try again one interval later without granting.
            let at = now + port.interval;
            self.events.schedule(at, Ev::SdTick { dst_host });
            return;
        }
        let mut granted = None;
        while let Some(fl) = port.ring.pop_front() {
            let Some(p) = port.pending.get_mut(&fl) else {
                continue;
            };
            *p -= credit;
            if *p > 0 {
                port.ring.push_back(fl);
            } else {
                port.pending.remove(&fl);
            }
            granted = Some(fl);
            break;
        }
        match granted {
            Some(fl) => {
                self.counters.sd_credits.inc();
                let interval = port.interval;
                self.events.schedule(now + ctrl, Ev::SdGrant { flow: fl });
                self.events
                    .schedule(now + interval, Ev::SdTick { dst_host });
            }
            None => {
                port.armed = false;
            }
        }
    }

    fn on_sd_grant(&mut self, now: SimTime, flow: u32) {
        let credit = self.cfg.sd_credit_bytes as i64;
        let fabric = self.cfg.sd_fabric_latency;
        let Some(voq) = self.voqs.get_mut(&flow) else {
            return;
        };
        let mut budget = credit + voq.balance;
        let mut out = Vec::new();
        while budget > 0 {
            match voq.q.pop_front() {
                Some(p) => {
                    budget -= p.bytes as i64;
                    voq.bytes -= p.bytes as u64;
                    out.push(p);
                }
                None => break,
            }
        }
        voq.balance = budget.min(credit);
        for p in out {
            self.events.schedule(now + fabric, Ev::SdOut { pkt: p });
        }
    }

    fn on_sd_out(&mut self, now: SimTime, mut pkt: Pkt) {
        let s = &self.flows[pkt.flow as usize].subs[pkt.sub as usize];
        pkt.hop = s.path.len() as u8 - 1;
        let dir = *s.path.last().unwrap();
        self.enqueue(now, dir, pkt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_topo::builders::{kary, KaryParams};

    fn k4() -> Kary {
        kary(KaryParams {
            k: 4,
            ..KaryParams::paper_6_3()
        })
    }

    fn cfg() -> TransportConfig {
        TransportConfig::default()
    }

    fn goodput_gbps(sim: &TransportSim, id: FlowId, window: SimDuration) -> f64 {
        sim.flow(id).acked as f64 * 8.0 / window.as_secs_f64() / 1e9
    }

    #[test]
    fn single_tcp_flow_reaches_line_rate() {
        let mut sim = TransportSim::new(k4(), cfg());
        // Cross-pod pair so the flow traverses the core.
        let id = sim.add_flow(Protocol::Tcp, 0, 15, u64::MAX / 2, SimTime::ZERO);
        sim.run_until(SimTime::from_millis(20));
        let g = goodput_gbps(&sim, id, SimDuration::from_millis(20));
        assert!(g > 8.5, "goodput {g} Gbps");
        // The fabric itself is clean; a saturating TCP may tail-drop at
        // its own NIC queue when the window probes past the path capacity.
        assert_eq!(sim.counters.drops.get(), 0);
        assert!(sim.counters.host_drops.get() < 10);
    }

    #[test]
    fn finite_tcp_flow_completes() {
        let mut sim = TransportSim::new(k4(), cfg());
        let id = sim.add_flow(Protocol::Tcp, 0, 5, 1_000_000, SimTime::ZERO);
        sim.run_until(SimTime::from_millis(50));
        let st = sim.flow(id);
        assert!(st.finished.is_some(), "flow did not finish");
        let fct = st.fct().unwrap();
        // 1MB at ~10G is ~0.8ms plus slow start.
        assert!(fct < SimDuration::from_millis(10), "fct {fct}");
        assert!(fct > SimDuration::from_micros(800), "fct {fct}");
    }

    #[test]
    fn stardust_flow_reaches_line_rate_and_completes() {
        let mut sim = TransportSim::new(k4(), cfg());
        let long = sim.add_flow(Protocol::Stardust, 0, 15, u64::MAX / 2, SimTime::ZERO);
        let short = sim.add_flow(Protocol::Stardust, 1, 14, 450_000, SimTime::ZERO);
        sim.run_until(SimTime::from_millis(20));
        let g = goodput_gbps(&sim, long, SimDuration::from_millis(20));
        assert!(g > 8.5, "stardust goodput {g} Gbps");
        assert!(sim.flow(short).finished.is_some());
        assert_eq!(
            sim.counters.drops.get(),
            0,
            "scheduled fabric must not drop"
        );
        assert!(sim.counters.host_drops.get() < 10);
        assert!(sim.counters.sd_credits.get() > 100);
    }

    #[test]
    fn dctcp_flow_completes_with_marks_under_contention() {
        let mut sim = TransportSim::new(k4(), cfg());
        // Two flows into the same destination: queue builds, ECN marks.
        let a = sim.add_flow(Protocol::Dctcp, 0, 12, 20_000_000, SimTime::ZERO);
        let b = sim.add_flow(Protocol::Dctcp, 5, 12, 20_000_000, SimTime::ZERO);
        sim.run_until(SimTime::from_millis(100));
        assert!(sim.flow(a).finished.is_some());
        assert!(sim.flow(b).finished.is_some());
        assert!(sim.counters.ecn_marks.get() > 0, "DCTCP should see marks");
        // Fair-ish split: both finish within 2x of each other.
        let fa = sim.flow(a).fct().unwrap().as_secs_f64();
        let fb = sim.flow(b).fct().unwrap().as_secs_f64();
        assert!(fa / fb < 2.0 && fb / fa < 2.0, "fa={fa} fb={fb}");
    }

    #[test]
    fn tcp_incast_drops_but_stardust_does_not() {
        let run = |proto: Protocol| {
            let mut sim = TransportSim::new(k4(), cfg());
            let ids: Vec<FlowId> = (0..12u32)
                .map(|s| sim.add_flow(proto, s, 15, 450_000, SimTime::ZERO))
                .collect();
            sim.run_until(SimTime::from_millis(200));
            let unfinished = ids
                .iter()
                .filter(|&&i| sim.flow(i).finished.is_none())
                .count();
            (
                sim.counters.drops.get() + sim.counters.host_drops.get(),
                unfinished,
            )
        };
        let (tcp_drops, tcp_unfinished) = run(Protocol::Tcp);
        let (sd_drops, sd_unfinished) = run(Protocol::Stardust);
        assert!(tcp_drops > 0, "TCP incast should overflow the ToR queue");
        assert_eq!(sd_drops, 0, "Stardust absorbs incast at the ingress");
        assert_eq!(tcp_unfinished, 0);
        assert_eq!(sd_unfinished, 0);
    }

    #[test]
    fn stardust_incast_is_fair() {
        // §5.4: credits are distributed evenly, so first ≈ last FCT.
        let mut sim = TransportSim::new(k4(), cfg());
        let ids: Vec<FlowId> = (0..8u32)
            .map(|s| sim.add_flow(Protocol::Stardust, s, 15, 450_000, SimTime::ZERO))
            .collect();
        sim.run_until(SimTime::from_millis(100));
        let fcts: Vec<f64> = ids
            .iter()
            .map(|&i| sim.flow(i).fct().expect("unfinished").as_secs_f64())
            .collect();
        let first = fcts.iter().cloned().fold(f64::INFINITY, f64::min);
        let last = fcts.iter().cloned().fold(0.0, f64::max);
        assert!(last / first < 1.5, "first {first} last {last}");
    }

    #[test]
    fn mptcp_uses_multiple_paths() {
        let mut sim = TransportSim::new(k4(), cfg());
        let id = sim.add_flow(Protocol::Mptcp, 0, 15, u64::MAX / 2, SimTime::ZERO);
        // All subflows make progress.
        sim.run_until(SimTime::from_millis(20));
        let f = &sim.flows[id.0 as usize];
        assert_eq!(f.subs.len(), 8);
        let active = f.subs.iter().filter(|s| s.snd_una > 0).count();
        assert!(active >= 6, "only {active} subflows progressed");
        let g = goodput_gbps(&sim, id, SimDuration::from_millis(20));
        assert!(g > 8.0, "mptcp goodput {g}");
    }

    #[test]
    fn dcqcn_flow_completes_and_reacts_to_marks() {
        let mut sim = TransportSim::new(k4(), cfg());
        let a = sim.add_flow(Protocol::Dcqcn, 0, 12, 10_000_000, SimTime::ZERO);
        let b = sim.add_flow(Protocol::Dcqcn, 5, 12, 10_000_000, SimTime::ZERO);
        sim.run_until(SimTime::from_millis(200));
        assert!(sim.flow(a).finished.is_some(), "dcqcn a unfinished");
        assert!(sim.flow(b).finished.is_some(), "dcqcn b unfinished");
        assert!(sim.counters.ecn_marks.get() > 0);
        // Rates fell below line rate at some point: total FCT longer than
        // the no-contention bound of 8ms for 10MB at 10G.
        assert!(sim.flow(a).fct().unwrap() > SimDuration::from_millis(14));
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let mut sim = TransportSim::new(k4(), cfg());
            for s in 0..8u32 {
                sim.add_flow(Protocol::Dctcp, s, 15 - s, 2_000_000, SimTime::ZERO);
            }
            sim.run_until(SimTime::from_millis(50));
            let fcts: Vec<Option<u64>> = (0..8)
                .map(|i| sim.flow(FlowId(i)).fct().map(|d| d.as_ps()))
                .collect();
            (fcts, sim.counters.drops.get(), sim.counters.ecn_marks.get())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn flow_stats_mirror_flow_statuses() {
        let mut sim = TransportSim::new(k4(), cfg());
        let a = sim.add_flow(Protocol::Tcp, 0, 5, 1_000_000, SimTime::ZERO);
        let b = sim.add_flow(Protocol::Tcp, 1, 6, u64::MAX / 2, SimTime::ZERO);
        sim.run_until(SimTime::from_millis(50));
        let fs = sim.flow_stats();
        assert_eq!(fs.len(), 2);
        assert_eq!(
            fs.completed(),
            1,
            "the finite flow finishes, the long one runs on"
        );
        assert_eq!(fs.records()[a.0 as usize].fct(), sim.flow(a).fct());
        assert!(fs.records()[b.0 as usize].fct().is_none());
        // Restriction to foreground ids drops the background flow.
        let only_a = sim.flow_stats_for([a]);
        assert_eq!((only_a.len(), only_a.completed()), (1, 1));
    }

    #[test]
    fn ecmp_paths_are_flow_stable_but_vary_across_flows() {
        let sim = TransportSim::new(k4(), cfg());
        let p1 = sim.compute_path(1, 0, 0, 15);
        let p1b = sim.compute_path(1, 0, 0, 15);
        assert_eq!(p1, p1b);
        let distinct = (0..32)
            .map(|f| sim.compute_path(f, 0, 0, 15))
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(
            distinct > 2,
            "ECMP should spread flows, got {distinct} paths"
        );
    }

    #[test]
    fn same_tor_pair_short_path() {
        let sim = TransportSim::new(k4(), cfg());
        // Hosts 0 and 1 share an edge switch in k=4.
        let p = sim.compute_path(0, 0, 0, 1);
        assert_eq!(p.len(), 2, "host→edge→host");
    }
}
