//! # stardust-transport — host transports over simulated fabrics (§6.3)
//!
//! An htsim-style packet-level simulator reproducing the paper's
//! comparison of Stardust against MPTCP, DCTCP and DCQCN on a k-ary
//! fat-tree (432 nodes at k = 12):
//!
//! * **TCP NewReno** — slow start, congestion avoidance, fast
//!   retransmit/fast recovery, RTO. The paper runs *unmodified* TCP over
//!   Stardust ("the least favorable scenario").
//! * **DCTCP** — per-packet ECN echo, fractional window reduction via the
//!   standard α EWMA.
//! * **MPTCP** — N subflows on distinct ECMP paths with LIA-coupled
//!   congestion avoidance.
//! * **DCQCN (simplified)** — rate-based: multiplicative decrease on CNP
//!   (ECN feedback), DCQCN-style byte-counter-free additive/hyper
//!   increase timers are reduced to a single additive-increase timer.
//!   The paper itself omits DCQCN from the incast figure for artifact
//!   reasons; our simplification is recorded in DESIGN.md.
//! * **Stardust** — the scheduled fabric as the network: ingress VOQs at
//!   the source ToR, per-destination-port credit schedulers pacing at
//!   port rate × (1+3%), lossless fixed-latency fabric transit (the cell
//!   layer's queueing contributes microseconds, §6.2, and is simulated in
//!   detail by `stardust-fabric`; at host-transport altitude it is a
//!   near-constant).
//!
//! Ethernet-path networks use per-link output queues with tail drop and
//! optional ECN marking; flows are pinned to ECMP paths by hash (the
//! collision dynamics behind DCTCP/DCQCN's ~50% permutation utilization
//! in Fig 10(a)). ACKs return after the reverse path's propagation delay
//! without queueing — data dominates the forward direction and ACK
//! bandwidth is < 1% at 9000 B MSS (recorded in DESIGN.md).

pub mod config;
pub mod sim;

pub use config::{Protocol, TransportConfig};
pub use sim::{FlowId, FlowStatus, TransportSim};
