//! Transport-simulation configuration (defaults follow §6.3 / Appendix G).

use stardust_sim::{units, SimDuration};

/// The transport protocols compared in Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP NewReno over the Ethernet fat-tree.
    Tcp,
    /// DCTCP (ECN) over the Ethernet fat-tree.
    Dctcp,
    /// MPTCP with LIA coupling over ECMP subflow paths.
    Mptcp,
    /// Simplified DCQCN (rate-based ECN) over the Ethernet fat-tree.
    Dcqcn,
    /// Unmodified TCP over the Stardust scheduled fabric.
    Stardust,
}

impl Protocol {
    /// Legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::Tcp => "TCP",
            Protocol::Dctcp => "DCTCP",
            Protocol::Mptcp => "MPTCP",
            Protocol::Dcqcn => "DCQCN",
            Protocol::Stardust => "Stardust",
        }
    }
}

/// All knobs of the §6.3 environment.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Link rate everywhere (Appendix G: "All links in the system are of
    /// 10Gbps").
    pub link_bps: u64,
    /// MSS for the Ethernet-path protocols (Appendix G: 9000 B).
    pub mss: u32,
    /// Output-queue capacity in packets (Appendix G: "100 packet output
    /// queues").
    pub queue_pkts: u32,
    /// ECN marking threshold in packets (DCTCP K; htsim uses ~a third of
    /// the buffer at 9000 B MSS).
    pub ecn_k_pkts: u32,
    /// Initial congestion window in MSS.
    pub init_cwnd_mss: u32,
    /// Initial slow-start threshold in MSS (a finite value, as htsim-style
    /// setups use, keeps the first slow-start overshoot from dumping a
    /// hundred segments into a 100-packet queue at once).
    pub init_ssthresh_mss: u32,
    /// Congestion-window cap in bytes (stands in for the receive window;
    /// bounds ingress VOQ growth for TCP-over-Stardust).
    pub max_cwnd_bytes: u64,
    /// Minimum retransmission timeout.
    pub min_rto: SimDuration,
    /// MPTCP subflow count (htsim's standard permutation setup uses 8).
    pub subflows: u8,
    /// DCQCN additive increase per timer period, bits/s.
    pub dcqcn_rai_bps: u64,
    /// DCQCN increase-timer period.
    pub dcqcn_timer: SimDuration,
    /// DCQCN/DCTCP EWMA gain g.
    pub ewma_g: f64,
    /// Stardust credit size (§6.3: 4 KB).
    pub sd_credit_bytes: u32,
    /// Stardust credit speedup (§6.3: 3%).
    pub sd_speedup: f64,
    /// Stardust one-way fabric transit latency (cells: a few µs, §6.2).
    pub sd_fabric_latency: SimDuration,
    /// Stardust control-message latency (request/credit).
    pub sd_ctrl_latency: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            link_bps: units::gbps(10),
            mss: 9_000,
            queue_pkts: 100,
            ecn_k_pkts: 32,
            init_cwnd_mss: 10,
            init_ssthresh_mss: 100,
            max_cwnd_bytes: 12 * 1024 * 1024,
            min_rto: SimDuration::from_millis(1),
            subflows: 8,
            dcqcn_rai_bps: units::mbps(100),
            dcqcn_timer: SimDuration::from_micros(55),
            ewma_g: 1.0 / 16.0,
            sd_credit_bytes: 4_096,
            sd_speedup: 0.03,
            sd_fabric_latency: SimDuration::from_micros(3),
            sd_ctrl_latency: SimDuration::from_micros(2),
            seed: 0x5D_7A,
        }
    }
}

impl TransportConfig {
    /// Sanity checks.
    pub fn validate(&self) {
        assert!(self.mss >= 64);
        assert!(self.queue_pkts >= 4);
        assert!(self.ecn_k_pkts < self.queue_pkts);
        assert!(self.subflows >= 1);
        assert!(self.sd_speedup >= 0.0 && self.sd_speedup < 0.5);
        assert!((0.0..=1.0).contains(&self.ewma_g));
    }

    /// Queue capacity in bytes.
    pub fn queue_bytes(&self) -> u64 {
        self.queue_pkts as u64 * self.mss as u64
    }

    /// ECN threshold in bytes.
    pub fn ecn_bytes(&self) -> u64 {
        self.ecn_k_pkts as u64 * self.mss as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        TransportConfig::default().validate();
    }

    #[test]
    fn derived_sizes() {
        let c = TransportConfig::default();
        assert_eq!(c.queue_bytes(), 900_000);
        assert_eq!(c.ecn_bytes(), 288_000);
    }

    #[test]
    fn labels() {
        assert_eq!(Protocol::Stardust.label(), "Stardust");
        assert_eq!(Protocol::Dcqcn.label(), "DCQCN");
    }
}
