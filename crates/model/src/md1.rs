//! §4.2.1 — the M/D/1 queue law bounding Fabric Element link queues.
//!
//! The paper models a last-stage Fabric Element link queue as M/D/1: cells
//! arrive from many Fabric Adapters as (at worst) a Poisson process with
//! rate `1/fs` per fabric cell time (`fs` = fabric speedup), and drain
//! deterministically at one cell per cell time. The paper approximates
//! the tail as `P(queue ≥ N) = o(fs^(−2N))` and validates by simulation
//! (§6.2): queue-size probability falls exponentially with slope set by
//! utilization.
//!
//! We implement the **exact** stationary distribution of the embedded
//! Markov chain at departure epochs (numerically, by power iteration of
//! the transition operator — stable for any utilization < 1, unlike the
//! classical alternating-sign closed form) plus the paper's geometric
//! approximation for comparison.

/// Poisson pmf values `e^-λ λ^k / k!` for `k = 0..=kmax`, computed stably.
fn poisson_pmf(lambda: f64, kmax: usize) -> Vec<f64> {
    let mut v = Vec::with_capacity(kmax + 1);
    let mut p = (-lambda).exp();
    v.push(p);
    for k in 1..=kmax {
        p *= lambda / k as f64;
        v.push(p);
    }
    v
}

/// Stationary queue-length distribution of M/D/1 at departure epochs
/// (equal, by PASTA-style arguments, to the time-stationary distribution
/// of the number in system for M/D/1).
///
/// `rho` is utilization (< 1), `nmax` the truncation point. Returns
/// `p[n] = P(N = n)` for `n = 0..=nmax`; the tail mass beyond `nmax` is
/// folded into `p[nmax]`.
pub fn queue_length_distribution(rho: f64, nmax: usize) -> Vec<f64> {
    assert!((0.0..1.0).contains(&rho), "need 0 <= rho < 1, got {rho}");
    assert!(nmax >= 1);
    if rho == 0.0 {
        let mut p = vec![0.0; nmax + 1];
        p[0] = 1.0;
        return p;
    }
    // Arrivals during one deterministic service: Poisson(rho).
    let a = poisson_pmf(rho, nmax + 1);

    // Standard stable M/G/1 embedded-chain recursion: from the balance
    // equation π_j = π_0·a_j + Σ_{k=1..j+1} π_k·a_{j+1−k}, solve forward:
    //   π_{j+1} = (π_j − π_0·a_j − Σ_{k=1..j} π_k·a_{j+1−k}) / a_0.
    let mut p = vec![0.0; nmax + 1];
    p[0] = 1.0 - rho;
    for j in 0..nmax {
        let mut s = p[j] - p[0] * a[j];
        for k in 1..=j {
            s -= p[k] * a[j + 1 - k];
        }
        // Floating-point cancellation deep in the tail can nudge values
        // slightly negative; clamp — the mass involved is ≤ 1e-15.
        p[j + 1] = (s / a[0]).max(0.0);
    }
    // Fold the untruncated tail into the last bin so the vector sums to 1.
    let sum: f64 = p.iter().sum();
    if sum < 1.0 {
        p[nmax] += 1.0 - sum;
    }
    p
}

/// `P(N ≥ n)` from a distribution vector.
pub fn ccdf(dist: &[f64], n: usize) -> f64 {
    if n >= dist.len() {
        return 0.0;
    }
    dist[n..].iter().sum()
}

/// Mean queue length from a distribution vector.
pub fn mean(dist: &[f64]) -> f64 {
    dist.iter().enumerate().map(|(n, p)| n as f64 * p).sum()
}

/// The exact M/D/1 mean number in system (Pollaczek–Khinchine):
/// `L = rho + rho² / (2(1 − rho))`.
pub fn md1_mean_in_system(rho: f64) -> f64 {
    assert!((0.0..1.0).contains(&rho));
    rho + rho * rho / (2.0 * (1.0 - rho))
}

/// The paper's tail approximation: `P(queue ≥ N) ≈ fs^(−2N) = rho^(2N)`
/// for a fabric speedup `fs = 1/rho` (§4.2.1: "the probability of queue
/// build-up on a link of size N can be approximated by o(fs^−2N)").
pub fn paper_tail_approx(fs: f64, n: u32) -> f64 {
    assert!(fs >= 1.0, "speedup below 1 means oversubscription");
    fs.powi(-2 * n as i32)
}

/// §6.2's egress-memory extrapolation: with a per-link queue bound of
/// `max_queue_cells` cells of `cell_bytes` each across `links` links, the
/// Fabric Adapter egress memory needed to absorb in-flight cells.
/// (Paper: 128 cells × 256 B × 256 links = 8 MB.)
pub fn egress_memory_bytes(max_queue_cells: u64, cell_bytes: u64, links: u64) -> u64 {
    max_queue_cells * cell_bytes * links
}

/// Worst-case added latency within one Fabric Element for a queue of
/// `cells` cells of `cell_bytes` on a `link_bps` link, in seconds.
/// (Paper: 128 × 256 B at 50 Gb/s → "at most 5 µs".)
pub fn queue_latency_secs(cells: u64, cell_bytes: u64, link_bps: u64) -> f64 {
    (cells * cell_bytes * 8) as f64 / link_bps as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_to_one() {
        for rho in [0.1, 0.5, 0.66, 0.8, 0.92, 0.95] {
            let d = queue_length_distribution(rho, 200);
            let s: f64 = d.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "rho={rho} sum={s}");
        }
    }

    #[test]
    fn empty_probability_is_one_minus_rho() {
        // For M/D/1 (and any M/G/1), P(N=0) = 1 − rho.
        for rho in [0.3, 0.66, 0.9] {
            let d = queue_length_distribution(rho, 300);
            assert!((d[0] - (1.0 - rho)).abs() < 1e-6, "rho={rho} p0={}", d[0]);
        }
    }

    #[test]
    fn mean_matches_pollaczek_khinchine() {
        for rho in [0.3, 0.5, 0.8, 0.9] {
            let d = queue_length_distribution(rho, 400);
            let m = mean(&d);
            let pk = md1_mean_in_system(rho);
            assert!((m - pk).abs() < 1e-3, "rho={rho}: {m} vs {pk}");
        }
    }

    #[test]
    fn tail_is_exponential_in_n() {
        // log P(N >= n) should be ~linear in n: ratio of successive tails
        // roughly constant.
        let d = queue_length_distribution(0.9, 400);
        let r1 = ccdf(&d, 20) / ccdf(&d, 10);
        let r2 = ccdf(&d, 30) / ccdf(&d, 20);
        assert!((r1 / r2 - 1.0).abs() < 0.05, "r1={r1} r2={r2}");
    }

    #[test]
    fn higher_load_fatter_tail() {
        let d66 = queue_length_distribution(0.66, 200);
        let d95 = queue_length_distribution(0.95, 200);
        assert!(ccdf(&d95, 20) > 100.0 * ccdf(&d66, 20));
    }

    #[test]
    fn paper_approx_bounds_exact_tail() {
        // The o(fs^-2N) approximation should upper-bound the exact tail
        // decay rate region for moderate N (it is an asymptotic bound).
        for fs in [1.25f64, 1.5] {
            let rho = 1.0 / fs;
            let d = queue_length_distribution(rho, 300);
            for n in [10usize, 20, 40] {
                let exact = ccdf(&d, n);
                let approx = paper_tail_approx(fs, n as u32);
                // Same order of decay: within a few orders of magnitude,
                // and the approximation decays at least as fast as claimed.
                assert!(exact < approx * 1e3, "fs={fs} n={n}: {exact} vs {approx}");
            }
        }
    }

    #[test]
    fn paper_memory_extrapolation() {
        // "for a cell size of 256B and a speed up of 1.05 the respective
        // memory will be 128 × 256B × 256, i.e. only 8MB".
        assert_eq!(egress_memory_bytes(128, 256, 256), 8 * 1024 * 1024);
        // "Given the 50Gbps links, this stands for at most 5µs latency
        // within the Fabric Element."
        let lat = queue_latency_secs(128, 256, 50_000_000_000);
        assert!((lat - 5.24e-6).abs() < 0.3e-6, "lat={lat}");
    }

    #[test]
    fn speedup_1_05_queue_128_is_effectively_never_exceeded() {
        // Justifies §6.2's extrapolation: at fs=1.05 a queue of 128 cells
        // has vanishing probability under M/D/1.
        let tail = paper_tail_approx(1.05, 128);
        assert!(tail < 1e-5, "tail={tail}");
    }

    #[test]
    fn zero_load_is_empty() {
        let d = queue_length_distribution(0.0, 10);
        assert_eq!(d[0], 1.0);
        assert!(ccdf(&d, 1) == 0.0);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rejects_overload() {
        queue_length_distribution(1.2, 10);
    }
}
