//! Figure 11 / Appendix D / Table 3 — cost and power of a Stardust DCN
//! relative to fat-tree networks.
//!
//! The cost model prices a fully provisioned network out of the Table 3
//! component list (list prices, Colfax/FS, September 2018) and compares
//! Stardust (25G serial links, Fabric Element boxes at the silicon-area
//! cost ratio 0.67) against fat-trees built from the same switch platform
//! with link bundles L ∈ {1, 2, 4}. The power model (Fig 11b) uses the
//! Figure 2 device family (12.8 Tb/s, L ∈ {1, 2, 4, 8}) and the Fig 10(d)
//! power ratio 0.648 for Fabric Elements.

use crate::fattree::FatTreeParams;

/// Table 3 — indicative component costs, in US cents (integer math).
// Constants are written as dollars_cents (435_00 = $435.00), which clippy
// misreads as inconsistent digit grouping.
#[allow(clippy::inconsistent_digit_grouping)]
pub mod prices {
    /// Edgecore AS7816-64X, 64×100GE (used as ToR/FA and FT switch).
    pub const SWITCH_PLATFORM: u64 = 16_200_00;
    /// Passive copper cable (DAC), 100GbE 2 m — server attach.
    pub const DAC_CABLE: u64 = 84_00;
    /// 100G QSFP28 short-range optical module.
    pub const OPT_100G: u64 = 435_00;
    /// 50G QSFP28 short-range optical module (estimated in the paper).
    pub const OPT_50G: u64 = 280_00;
    /// 25G SFP28 short-range optical module.
    pub const OPT_25G: u64 = 125_00;
    /// 10 m fiber.
    pub const FIBER_10M: u64 = 8_00;
    /// 100 m fiber.
    pub const FIBER_100M: u64 = 62_00;
}

/// Appendix D assumptions.
pub const HOSTS_PER_TOR: u64 = 40;
/// Silicon-area ratio used as the Fabric Element platform cost indicator.
pub const FE_PLATFORM_COST_RATIO: f64 = 0.67;
/// Fig 10(d) power ratio for Fabric Element devices.
pub const FE_POWER_RATIO: f64 = 0.648;

/// Optical module price for a given port speed in Gb/s.
pub fn optic_price(port_gbps: u64) -> u64 {
    match port_gbps {
        25 => prices::OPT_25G,
        50 => prices::OPT_50G,
        100 => prices::OPT_100G,
        other => panic!("no Table 3 price for {other}G optics"),
    }
}

/// A buildable network technology point for the Fig 11(a) cost comparison.
#[derive(Debug, Clone, Copy)]
pub struct CostConfig {
    /// Legend label.
    pub label: &'static str,
    /// Port speed in Gb/s (25 × bundle).
    pub port_gbps: u64,
    /// Switch radix in ports (same 6.4 Tb/s platform throughout).
    pub ports: u64,
    /// Serial links per bundle.
    pub bundle: u64,
    /// Stardust (Fabric Element fabric) or plain fat-tree.
    pub stardust: bool,
}

/// The Figure 11(a) fat-tree configurations (6.4 Tb/s, 25G lanes).
pub const FIG11A_FT: [CostConfig; 3] = [
    CostConfig {
        label: "FT, 100Gx64 Port (L=4)",
        port_gbps: 100,
        ports: 64,
        bundle: 4,
        stardust: false,
    },
    CostConfig {
        label: "FT, 50Gx128 Port (L=2)",
        port_gbps: 50,
        ports: 128,
        bundle: 2,
        stardust: false,
    },
    CostConfig {
        label: "FT, 25Gx256 Port (L=1)",
        port_gbps: 25,
        ports: 256,
        bundle: 1,
        stardust: false,
    },
];

/// The Stardust configuration priced against them.
pub const FIG11A_STARDUST: CostConfig = CostConfig {
    label: "Stardust, 25Gx256 (L=1)",
    port_gbps: 25,
    ports: 256,
    bundle: 1,
    stardust: true,
};

/// Itemized bill of materials for a network of `hosts` end hosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BillOfMaterials {
    /// Number of switching tiers.
    pub tiers: u32,
    /// ToR (or Fabric Adapter) count.
    pub tors: u64,
    /// Fabric switch (or Fabric Element) count.
    pub fabric_switches: u64,
    /// Cost in cents.
    pub tor_cost: u64,
    /// Fabric switch cost in cents.
    pub fabric_cost: u64,
    /// Server-cabling cost in cents.
    pub server_cabling: u64,
    /// Transceiver cost in cents.
    pub transceivers: u64,
    /// Fiber cost in cents.
    pub fibers: u64,
}

impl BillOfMaterials {
    /// Total network cost in cents.
    pub fn total(&self) -> u64 {
        self.tor_cost + self.fabric_cost + self.server_cabling + self.transceivers + self.fibers
    }
    /// Total in dollars.
    pub fn total_usd(&self) -> f64 {
        self.total() as f64 / 100.0
    }
}

impl CostConfig {
    /// ToR uplink port count: 40 servers × 25G = 1 Tb/s of uplink.
    pub fn tor_uplinks(&self) -> u64 {
        HOSTS_PER_TOR * 25 / self.port_gbps
    }

    /// Fat-tree parameters of this technology point.
    pub fn fattree(&self) -> FatTreeParams {
        FatTreeParams::new(self.ports, self.tor_uplinks(), self.bundle)
    }

    /// Per-bundle transceiver cost at both ends.
    ///
    /// A fat-tree must use the bundle's native optic. Stardust devices are
    /// "oblivious to whether bundling was used in the transceiver"
    /// (Appendix D), so Stardust buys the cheapest per-lane option among
    /// Table 3 and breaks it out.
    pub fn transceiver_cost_per_bundle(&self) -> u64 {
        if self.stardust {
            // Cheapest per-25G-lane choice: min(125, 280/2, 435/4) = 108.75.
            let per_lane = [
                prices::OPT_25G as f64,
                prices::OPT_50G as f64 / 2.0,
                prices::OPT_100G as f64 / 4.0,
            ]
            .into_iter()
            .fold(f64::INFINITY, f64::min);
            (per_lane * self.bundle as f64 * 2.0).round() as u64
        } else {
            optic_price(self.port_gbps) * 2
        }
    }

    /// Price a network of `hosts` end hosts. Returns `None` when the
    /// technology point cannot reach that scale within 4 tiers.
    pub fn bill(&self, hosts: u64) -> Option<BillOfMaterials> {
        let ft = self.fattree();
        let tiers = ft.tiers_for_hosts(hosts, HOSTS_PER_TOR, 4)?;
        let tors = FatTreeParams::tors_for_hosts(hosts, HOSTS_PER_TOR);
        let switches = ft.switches_for_tors(tiers, tors);

        let fabric_unit = if self.stardust {
            (prices::SWITCH_PLATFORM as f64 * FE_PLATFORM_COST_RATIO).round() as u64
        } else {
            prices::SWITCH_PLATFORM
        };

        // Link layers: the ToR-facing layers use 10 m fiber; the top tier
        // uses 100 m fiber (except in a 1-tier network). Bundles are spread
        // evenly across the `tiers` layers (equal aggregate bandwidth per
        // layer in a fully provisioned fat-tree).
        let bundles = ft.bundles_for_tors(tiers, tors);
        let bundles_last = if tiers >= 2 {
            bundles / tiers as u64
        } else {
            0
        };
        let bundles_near = bundles - bundles_last;
        let fibers = bundles_near * self.bundle * prices::FIBER_10M
            + bundles_last * self.bundle * prices::FIBER_100M;

        Some(BillOfMaterials {
            tiers,
            tors,
            fabric_switches: switches,
            tor_cost: tors * prices::SWITCH_PLATFORM,
            fabric_cost: switches * fabric_unit,
            server_cabling: hosts * prices::DAC_CABLE,
            transceivers: bundles * self.transceiver_cost_per_bundle(),
            fibers,
        })
    }

    /// Figure 11(a): Stardust cost as a percentage of this configuration's
    /// cost at the same host count.
    pub fn stardust_relative_cost_pct(&self, hosts: u64) -> Option<f64> {
        let ft = self.bill(hosts)?;
        let sd = FIG11A_STARDUST.bill(hosts)?;
        Some(100.0 * sd.total() as f64 / ft.total() as f64)
    }
}

// ---------------------------------------------------------------------------
// Power model (Figure 11b)
// ---------------------------------------------------------------------------

/// A power-comparison configuration of the 12.8 Tb/s device family.
#[derive(Debug, Clone, Copy)]
pub struct PowerConfig {
    /// Human-readable row label, as in Fig 11(b).
    pub label: &'static str,
    /// Per-port speed in Gb/s.
    pub port_gbps: u64,
    /// Port count per device.
    pub ports: u64,
    /// Links bundled per logical port.
    pub bundle: u64,
}

/// The Figure 11(b) fat-tree configurations.
pub const FIG11B_FT: [PowerConfig; 4] = [
    PowerConfig {
        label: "FT, 400Gx32 Port (L=8)",
        port_gbps: 400,
        ports: 32,
        bundle: 8,
    },
    PowerConfig {
        label: "FT, 200Gx64 Port (L=4)",
        port_gbps: 200,
        ports: 64,
        bundle: 4,
    },
    PowerConfig {
        label: "FT, 100Gx128 Port (L=2)",
        port_gbps: 100,
        ports: 128,
        bundle: 2,
    },
    PowerConfig {
        label: "FT, 50Gx256 Port (L=1)",
        port_gbps: 50,
        ports: 256,
        bundle: 1,
    },
];

/// Nominal switch platform power in watts (the paper quotes a 150–310 W
/// vendor range; the relative result is insensitive to the absolute value).
pub const SWITCH_POWER_W: f64 = 230.0;
/// Per-serial-link (both ends) power in watts — transceivers and serdes.
pub const LINK_POWER_W: f64 = 3.0;
/// Figure 11(b) edge assumption, as in Figure 2.
pub const POWER_HOSTS_PER_TOR: u64 = 40;
/// Figure 11(b) edge assumption: 100 Gb/s per server.
pub const POWER_HOST_GBPS: u64 = 100;

impl PowerConfig {
    fn fattree(&self) -> FatTreeParams {
        let t = POWER_HOSTS_PER_TOR * POWER_HOST_GBPS / self.port_gbps;
        FatTreeParams::new(self.ports, t, self.bundle)
    }

    /// Total network power in watts for `hosts` end hosts, either as a
    /// plain fat-tree (`stardust = false`) or with the fabric switches
    /// replaced by Fabric Elements at the 0.648 power ratio.
    pub fn network_power_w(&self, hosts: u64, stardust: bool) -> Option<f64> {
        let ft = self.fattree();
        let tiers = ft.tiers_for_hosts(hosts, POWER_HOSTS_PER_TOR, 4)?;
        let tors = FatTreeParams::tors_for_hosts(hosts, POWER_HOSTS_PER_TOR);
        let switches = ft.switches_for_tors(tiers, tors);
        let links = ft.links_for_tors(tiers, tors);
        let fabric_ratio = if stardust { FE_POWER_RATIO } else { 1.0 };
        Some(
            tors as f64 * SWITCH_POWER_W
                + switches as f64 * SWITCH_POWER_W * fabric_ratio
                + links as f64 * LINK_POWER_W,
        )
    }

    /// Fabric-only power (excludes ToRs and links), for the paper's "78%
    /// saving within the network fabric" claim.
    pub fn fabric_power_w(&self, hosts: u64, stardust: bool) -> Option<f64> {
        let ft = self.fattree();
        let tiers = ft.tiers_for_hosts(hosts, POWER_HOSTS_PER_TOR, 4)?;
        let tors = FatTreeParams::tors_for_hosts(hosts, POWER_HOSTS_PER_TOR);
        let switches = ft.switches_for_tors(tiers, tors);
        let ratio = if stardust { FE_POWER_RATIO } else { 1.0 };
        Some(switches as f64 * SWITCH_POWER_W * ratio)
    }

    /// Figure 11(b): Stardust (50G×256 + FE power ratio) power as a
    /// percentage of this fat-tree configuration's power.
    pub fn stardust_relative_power_pct(&self, hosts: u64) -> Option<f64> {
        let stardust_cfg = PowerConfig {
            label: "Stardust",
            port_gbps: 50,
            ports: 256,
            bundle: 1,
        };
        let sd = stardust_cfg.network_power_w(hosts, true)?;
        let ft = self.network_power_w(hosts, false)?;
        Some(100.0 * sd / ft)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stardust_transceivers_use_cheapest_per_lane() {
        // min(125, 140, 108.75) = 108.75 per lane, ×2 ends.
        assert_eq!(FIG11A_STARDUST.transceiver_cost_per_bundle(), 21_750);
        // Fat-tree L=4 must buy 100G optics: 435 × 2.
        assert_eq!(FIG11A_FT[0].transceiver_cost_per_bundle(), 87_000);
    }

    #[test]
    fn bill_components_all_positive_at_scale() {
        let b = FIG11A_STARDUST.bill(100_000).unwrap();
        assert!(b.tor_cost > 0 && b.fabric_cost > 0);
        assert!(b.transceivers > 0 && b.fibers > 0 && b.server_cabling > 0);
        assert_eq!(b.tors, 2500);
        assert_eq!(
            b.total(),
            b.tor_cost + b.fabric_cost + b.server_cabling + b.transceivers + b.fibers
        );
    }

    #[test]
    fn fig11a_stardust_always_cheapest() {
        // "Stardust is always the most cost effective solution."
        for hosts in [2_000u64, 10_000, 50_000, 200_000, 1_000_000] {
            for cfg in FIG11A_FT {
                if let Some(pct) = cfg.stardust_relative_cost_pct(hosts) {
                    assert!(pct < 100.0, "{} at {hosts}: {pct}%", cfg.label);
                }
            }
        }
    }

    #[test]
    fn fig11a_large_scale_cost_cut_toward_half() {
        // "The cost of a large scale DCN can be cut in half using Stardust"
        // — against the worst fat-tree configuration at ~1M hosts. Our BOM
        // lands at ~65% rather than ~50% because identical ToR platforms
        // and server cabling are a large shared baseline in our itemization
        // (recorded in EXPERIMENTS.md); the ordering and trend match.
        let worst = FIG11A_FT
            .iter()
            .filter_map(|c| c.stardust_relative_cost_pct(1_000_000))
            .fold(f64::INFINITY, f64::min);
        assert!(worst < 70.0, "best relative cost {worst}%");
        // The curves are sawtooth-shaped (each tier crossing on either
        // side steps the ratio), so no monotonicity is asserted — only
        // that a deep-saving point exists at both small and large scale.
        let small = FIG11A_FT[0].stardust_relative_cost_pct(5_000).unwrap();
        assert!(small < 70.0, "small-scale relative cost {small}%");
    }

    #[test]
    fn fig11b_power_saving_small_networks() {
        // "The biggest power saving is in networks of up to ten thousand
        // nodes: up to 25% of the entire network's power".
        let best = FIG11B_FT
            .iter()
            .filter_map(|c| c.stardust_relative_power_pct(10_000))
            .fold(f64::INFINITY, f64::min);
        assert!(best < 85.0, "best relative power {best}%");
        assert!(best > 55.0, "implausibly large saving {best}%");
    }

    #[test]
    fn fabric_only_saving_is_much_larger() {
        // "78% saving within the network fabric" for small networks:
        // Stardust needs fewer tiers *and* cheaper watts per device.
        let ft = FIG11B_FT[1]; // 200G×64, needs 2 tiers at 10K hosts
        let sd_cfg = PowerConfig {
            label: "sd",
            port_gbps: 50,
            ports: 256,
            bundle: 1,
        };
        let sd = sd_cfg.fabric_power_w(10_000, true).unwrap();
        let base = ft.fabric_power_w(10_000, false).unwrap();
        let saving = 1.0 - sd / base;
        assert!(saving > 0.70, "fabric saving {saving}");
    }

    #[test]
    fn relative_power_never_above_100() {
        for hosts in [2_000u64, 20_000, 200_000, 900_000] {
            for cfg in FIG11B_FT {
                if let Some(pct) = cfg.stardust_relative_power_pct(hosts) {
                    assert!(pct <= 100.5, "{} at {hosts}: {pct}%", cfg.label);
                }
            }
        }
    }

    #[test]
    fn more_tiers_cost_more() {
        // Crossing a tier boundary jumps the cost per host.
        let c = FIG11A_FT[0]; // L=4: 1-tier max = 64 ToRs = 2560 hosts.
        let b1 = c.bill(2_500).unwrap();
        let b2 = c.bill(2_600).unwrap();
        assert_eq!(b1.tiers, 1);
        assert_eq!(b2.tiers, 2);
        let per_host1 = b1.total() as f64 / 2_500.0;
        let per_host2 = b2.total() as f64 / 2_600.0;
        assert!(per_host2 > per_host1 * 1.2);
    }

    #[test]
    fn out_of_range_scale_returns_none() {
        let c = FIG11A_FT[0];
        // 4-tier max for L=4 (k=64, 40 hosts/ToR) is 40·64⁴/8 ≈ 83.9M.
        assert!(c.bill(100_000_000).is_none());
    }

    #[test]
    #[should_panic(expected = "no Table 3 price")]
    fn unknown_optic_panics() {
        optic_price(400);
    }
}
