//! Figure 3 / Appendix B — required parallel processing in a switch.
//!
//! Appendix B defines, for a switch of bandwidth `B` bits/s, packet size
//! `S` bytes, wire gap `G` bytes (preamble + SFD + IPG = 20 B), pipeline
//! clock `f` Hz and `c` clocks per pipeline stage:
//!
//! ```text
//! R = B / (8·(S+G))      packets/s arriving
//! r = f / c              packets/s one pipeline can handle
//! P = R / r              pipelines (parallelism) required
//! ```
//!
//! Figure 3 additionally accounts for the data-path *bus*: a packet of `S`
//! bytes occupies `ceil(S/W)` cycles of a `W`-byte-wide bus, so a standard
//! packet switch needs `P(S) = ceil(S/W) · B / (8·(S+G)·f)` parallel buses,
//! producing the sawtooth of the figure. A Stardust Fabric Element receives
//! optimally packed cells that fill every bus word, so its requirement is
//! the flat line `B / (8·W·f)`.

/// Ethernet wire overhead per packet (preamble 7 + SFD 1 + IPG 12).
pub const WIRE_GAP_BYTES: u64 = 20;

/// Parameters of the Figure 3 device.
#[derive(Debug, Clone, Copy)]
pub struct DeviceParams {
    /// Device bandwidth in bits/s (Figure 3 uses 12.8 Tb/s).
    pub bandwidth_bps: u64,
    /// Data-path width in bytes (Figure 3 uses 256 B).
    pub bus_width_bytes: u64,
    /// Pipeline clock in Hz (Figure 3 uses 1 GHz).
    pub clock_hz: u64,
    /// Clocks per pipeline stage (optimal designs achieve 1).
    pub clocks_per_stage: u64,
}

impl DeviceParams {
    /// The exact device of Figure 3: 12.8 Tb/s, 256 B bus, 1 GHz, c = 1.
    pub fn fig3() -> Self {
        DeviceParams {
            bandwidth_bps: 12_800_000_000_000,
            bus_width_bytes: 256,
            clock_hz: 1_000_000_000,
            clocks_per_stage: 1,
        }
    }

    /// Appendix B Equation 1: arriving packet rate `R` (packets/s) at full
    /// line rate for `S`-byte packets.
    pub fn packet_rate(&self, packet_bytes: u64) -> f64 {
        self.bandwidth_bps as f64 / (8.0 * (packet_bytes + WIRE_GAP_BYTES) as f64)
    }

    /// Appendix B Equation 2: packets/s a single pipeline processes.
    pub fn pipeline_rate(&self) -> f64 {
        self.clock_hz as f64 / self.clocks_per_stage as f64
    }

    /// Appendix B Equation 3: `P = R / r`, ignoring bus-width effects.
    /// This is the "number of packets processed in parallel" of §2.3
    /// (19.05 for 64 B packets at 12.8 Tb/s).
    pub fn required_parallelism_packets(&self, packet_bytes: u64) -> f64 {
        self.packet_rate(packet_bytes) / self.pipeline_rate()
    }

    /// Bus cycles one packet of `S` bytes occupies on a `W`-byte bus.
    pub fn bus_cycles(&self, packet_bytes: u64) -> u64 {
        packet_bytes.div_ceil(self.bus_width_bytes)
    }

    /// Figure 3, "Standard Switch" curve: parallel buses required when each
    /// packet occupies `ceil(S/W)` bus cycles.
    pub fn standard_switch_parallelism(&self, packet_bytes: u64) -> f64 {
        self.required_parallelism_packets(packet_bytes) * self.bus_cycles(packet_bytes) as f64
    }

    /// Figure 3, "Stardust Fabric Element" curve: cells perfectly fill the
    /// bus, so the requirement is flat at `B / (8·W·f)` regardless of the
    /// original packet size.
    pub fn stardust_fe_parallelism(&self) -> f64 {
        self.bandwidth_bps as f64 / (8.0 * self.bus_width_bytes as f64 * self.pipeline_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_b_worked_example() {
        // "packet size S = 64B, switch bandwidth of B = 12.8Tbps, gap
        // G = 20B, clock f = 1GHz, c = 1 → parallelism required is 19.047".
        let d = DeviceParams::fig3();
        let p = d.required_parallelism_packets(64);
        assert!((p - 19.047).abs() < 0.01, "got {p}");
        // Appendix B states "a packet size of 256B will require P = 6.06",
        // which corresponds to G = 8 B (preamble+SFD without IPG); §2.3 of
        // the same paper quotes 5.8 Gpps for 256 B, which is G = 20 B. The
        // two sections disagree; we use G = 20 B consistently (5.797) and
        // note the appendix figure here.
        let p256 = d.required_parallelism_packets(256);
        assert!((p256 - 5.797).abs() < 0.01, "got {p256}");
    }

    #[test]
    fn section_2_3_packet_rates() {
        // "equivalent to ... 19.05Gpps for 64B packets, and 5.8Gpps for
        // 256B packets".
        let d = DeviceParams::fig3();
        assert!((d.packet_rate(64) / 1e9 - 19.05).abs() < 0.01);
        assert!((d.packet_rate(256) / 1e9 - 5.8).abs() < 0.01);
    }

    #[test]
    fn stardust_fe_is_flat_at_6_25() {
        let d = DeviceParams::fig3();
        assert!((d.stardust_fe_parallelism() - 6.25).abs() < 1e-9);
    }

    #[test]
    fn fig3_ratios_from_the_paper_text() {
        let d = DeviceParams::fig3();
        let sd = d.stardust_fe_parallelism();
        // "a design optimally packing data outperforms a packet-based
        // design by a factor of ×4" for small packets (64B region):
        // the standard curve peaks ≥ 3× the Stardust flat line there.
        assert!(d.standard_switch_parallelism(64) / sd > 3.0);
        // "Packing data provides 41% improvement for 513B packets":
        let r513 = d.standard_switch_parallelism(513) / sd;
        assert!((r513 - 1.44).abs() < 0.05, "got {r513}");
        // "...and 18% for 1025B packets":
        let r1025 = d.standard_switch_parallelism(1025) / sd;
        assert!((r1025 - 1.22).abs() < 0.06, "got {r1025}");
    }

    #[test]
    fn sawtooth_peaks_just_past_bus_multiples() {
        let d = DeviceParams::fig3();
        // Crossing a 256B boundary adds a bus cycle: 257B costs more
        // parallelism than 256B.
        assert!(d.standard_switch_parallelism(257) > d.standard_switch_parallelism(256) * 1.5);
        assert!(d.standard_switch_parallelism(513) > d.standard_switch_parallelism(512) * 1.3);
    }

    #[test]
    fn standard_tracks_or_exceeds_stardust() {
        // Exactly at bus-width multiples the standard switch amortizes its
        // wire gap over a full bus occupancy and can sit a few percent
        // below the Stardust flat line (the curves touch in Figure 3);
        // everywhere S is unaligned the standard switch needs strictly
        // more parallelism.
        let d = DeviceParams::fig3();
        let sd = d.stardust_fe_parallelism();
        for s in (64..=2500).step_by(7) {
            let std = d.standard_switch_parallelism(s);
            assert!(std >= sd * 0.92, "at {s}B standard fell far below stardust");
            if s % 256 >= 1 && s % 256 <= 128 && s > 256 {
                assert!(
                    std > sd,
                    "at {s}B (unaligned) standard should exceed stardust"
                );
            }
        }
    }

    #[test]
    fn more_than_one_packet_per_clock_even_at_1500b() {
        // §2.3: "Even for 1500B packets, more than a single packet needs to
        // be processed every clock cycle."
        let d = DeviceParams::fig3();
        assert!(d.required_parallelism_packets(1500) > 1.0);
    }

    #[test]
    fn wider_bus_helps_large_packets_not_small() {
        // §2.3: "Increasing the data path width eases the requirements for
        // large packets, but not for small ones."
        let narrow = DeviceParams::fig3();
        let wide = DeviceParams {
            bus_width_bytes: 512,
            ..DeviceParams::fig3()
        };
        // Large packets: fewer parallel buses needed with a wider bus.
        assert!(wide.standard_switch_parallelism(2048) < narrow.standard_switch_parallelism(2048));
        // Small packets: the per-packet rate dominates; no improvement.
        assert_eq!(
            wide.standard_switch_parallelism(64),
            narrow.standard_switch_parallelism(64)
        );
    }
}
