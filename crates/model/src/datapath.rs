//! Figure 8 — the NetFPGA-style device data-path micro-model.
//!
//! The paper demonstrates packet packing on a NetFPGA SUME 4×10GE platform
//! clocked down to 150 MHz: a 32 B (256-bit) data path with a 2-clock table
//! lookup. Four designs share that substrate:
//!
//! * **Reference switch** — forwards whole packets; a packet of `S` bytes
//!   occupies `max(ceil(S/32), 2)` bus cycles (the 2-cycle lookup bounds
//!   minimum occupancy), wasting the tail of the last bus word.
//! * **NDP switch** — reference behaviour plus one extra cycle per packet
//!   for NDP trimming/header work; loses line rate at small sizes (the
//!   paper observed 65 B, 97 B, 129 B failing even at 200 MHz).
//! * **Cells, non-packed** — every packet is chopped into 64 B cells with a
//!   4 B in-band header (60 B payload per cell); the last cell is padded,
//!   so sizes just above a cell multiple nearly halve throughput.
//! * **Stardust packed cells** — packets of a burst are packed back to back
//!   into 64 B cells with the header carried out of band (NetFPGA's AXIS
//!   sideband); every bus word is full.
//!
//! Throughput is reported **on the wire** (including 20 B preamble + IPG),
//! which is how the figure's 40 Gb/s line rate is defined.
//!
//! *Model note:* at 150 MHz the 32 B bus moves 38.4 Gb/s of payload, which
//! is ~2.7% below the 39.5 Gb/s of payload that 4×10GE carries at 1514 B
//! packets; our Stardust curve therefore sits within 3% of line rate at the
//! largest sizes rather than exactly on it. The published claim (full line
//! rate at all sizes) relies on hardware details of the SUME MAC the paper
//! does not specify; the *comparative* shape — Stardust flat, others dipping
//! 15–49% — is preserved exactly. Recorded in EXPERIMENTS.md.

/// Wire overhead per Ethernet packet: preamble + SFD + IPG.
pub const WIRE_GAP: u64 = 20;

/// The four designs of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// NetFPGA 4×10GE reference switch (release 1.7.1).
    ReferenceSwitch,
    /// NDP switch from Handley et al., built on the reference switch.
    NdpSwitch,
    /// Stardust data path fed with non-packed cells.
    CellsNonPacked,
    /// Stardust data path with packet packing.
    StardustPacked,
}

/// All designs, in the order plotted.
pub const ALL_DESIGNS: [Design; 4] = [
    Design::ReferenceSwitch,
    Design::NdpSwitch,
    Design::CellsNonPacked,
    Design::StardustPacked,
];

impl Design {
    /// Display label matching the paper's legend.
    pub fn label(&self) -> &'static str {
        match self {
            Design::ReferenceSwitch => "Reference Switch",
            Design::NdpSwitch => "NDP Switch",
            Design::CellsNonPacked => "Switch - Cells",
            Design::StardustPacked => "Stardust - Packed Cells",
        }
    }
}

/// Platform parameters (NetFPGA SUME as configured in §6.1.1).
#[derive(Debug, Clone, Copy)]
pub struct Platform {
    /// Data-path clock in Hz (paper: 150 MHz; reference reaches line rate
    /// at 180 MHz).
    pub clock_hz: u64,
    /// Bus width in bytes (SUME: 32 B).
    pub bus_bytes: u64,
    /// Clock cycles per table lookup (SUME: 2).
    pub lookup_cycles: u64,
    /// Number of front-panel ports.
    pub ports: u64,
    /// Port rate in bits/s.
    pub port_bps: u64,
    /// Cell size used by the cell-based designs (paper: 64 B, because the
    /// data path is 32 B wide with a 2-cycle lookup).
    pub cell_bytes: u64,
    /// In-band cell header for the non-packed design.
    pub cell_header_bytes: u64,
}

impl Platform {
    /// The exact §6.1.1 configuration.
    pub fn netfpga_150mhz() -> Self {
        Platform {
            clock_hz: 150_000_000,
            bus_bytes: 32,
            lookup_cycles: 2,
            ports: 4,
            port_bps: 10_000_000_000,
            cell_bytes: 64,
            cell_header_bytes: 4,
        }
    }

    /// Same platform at a different clock (used for the 180/200 MHz claims).
    pub fn at_clock(self, hz: u64) -> Self {
        Platform {
            clock_hz: hz,
            ..self
        }
    }

    /// Aggregate line rate on the wire (bits/s, includes IPG/preamble).
    pub fn line_rate_bps(&self) -> u64 {
        self.ports * self.port_bps
    }

    /// Offered packet rate at full line rate for `S`-byte packets.
    pub fn offered_pps(&self, s: u64) -> f64 {
        self.line_rate_bps() as f64 / (8.0 * (s + WIRE_GAP) as f64)
    }

    /// Bus cycles one `S`-byte packet consumes in the given design.
    pub fn cycles_per_packet(&self, design: Design, s: u64) -> f64 {
        let words = s.div_ceil(self.bus_bytes);
        match design {
            Design::ReferenceSwitch => words.max(self.lookup_cycles) as f64,
            // NDP adds one cycle of trim/priority processing per packet.
            Design::NdpSwitch => (words.max(self.lookup_cycles) + 1) as f64,
            Design::CellsNonPacked => {
                // Each packet becomes ceil(S / payload-per-cell) padded cells.
                let payload = self.cell_bytes - self.cell_header_bytes;
                let cells = s.div_ceil(payload);
                (cells * (self.cell_bytes / self.bus_bytes)) as f64
            }
            Design::StardustPacked => {
                // Packing is continuous: S bytes occupy exactly S/bus_bytes
                // bus words amortized across the burst (headers out of band).
                s as f64 / self.bus_bytes as f64
            }
        }
    }

    /// Sustainable packet rate of the design for `S`-byte packets.
    pub fn capacity_pps(&self, design: Design, s: u64) -> f64 {
        self.clock_hz as f64 / self.cycles_per_packet(design, s)
    }

    /// Figure 8(a): achieved on-wire throughput in bits/s at packet size `S`
    /// under full 4×10GE load.
    pub fn throughput_bps(&self, design: Design, s: u64) -> f64 {
        let pps = self.offered_pps(s).min(self.capacity_pps(design, s));
        pps * 8.0 * (s + WIRE_GAP) as f64
    }

    /// Achieved throughput as a fraction of line rate in `[0, 1]`.
    pub fn relative_throughput(&self, design: Design, s: u64) -> f64 {
        self.throughput_bps(design, s) / self.line_rate_bps() as f64
    }

    /// Figure 8(b): throughput fraction for a packet-size mix, given as
    /// `(size, weight)` pairs (weights need not be normalized; they weight
    /// *packets*, not bytes, as a trace replays packets).
    pub fn trace_throughput(&self, design: Design, mix: &[(u64, f64)]) -> f64 {
        assert!(!mix.is_empty());
        // Each packet size contributes its wire time share; the achieved
        // fraction is limited by the slowest per-size bottleneck when the
        // trace is replayed at line rate. We model the device as a shared
        // pipeline: total cycles needed per byte-on-wire vs available.
        let mut wire_bits = 0.0;
        let mut cycles = 0.0;
        for &(s, w) in mix {
            wire_bits += w * 8.0 * (s + WIRE_GAP) as f64;
            cycles += w * self.cycles_per_packet(design, s);
        }
        // Time to receive at line rate vs time to process.
        let recv_s = wire_bits / self.line_rate_bps() as f64;
        let proc_s = cycles / self.clock_hz as f64;
        (recv_s / proc_s).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> Platform {
        Platform::netfpga_150mhz()
    }

    #[test]
    fn line_rate_is_40g() {
        assert_eq!(p().line_rate_bps(), 40_000_000_000);
    }

    #[test]
    fn stardust_full_line_rate_small_and_medium() {
        for s in [64u64, 65, 97, 129, 256, 480] {
            let r = p().relative_throughput(Design::StardustPacked, s);
            assert!(r > 0.999, "stardust at {s}B: {r}");
        }
    }

    #[test]
    fn stardust_within_3pct_at_all_sizes() {
        for s in 64..=1514 {
            let r = p().relative_throughput(Design::StardustPacked, s);
            assert!(r > 0.97, "stardust at {s}B: {r}");
        }
    }

    #[test]
    fn reference_dips_about_15pct() {
        // The worst reference dip should be ~15% below line rate
        // ("up to 15% better than the Reference Switch").
        let worst = (64..=1514)
            .map(|s| p().relative_throughput(Design::ReferenceSwitch, s))
            .fold(1.0f64, f64::min);
        assert!(worst < 0.88, "worst={worst}");
        assert!(worst > 0.78, "worst={worst}");
    }

    #[test]
    fn ndp_dips_more_than_reference() {
        // "up to 30% better than NDP" — NDP's worst dip exceeds reference's.
        let worst_ndp = (64..=1514)
            .map(|s| p().relative_throughput(Design::NdpSwitch, s))
            .fold(1.0f64, f64::min);
        let worst_ref = (64..=1514)
            .map(|s| p().relative_throughput(Design::ReferenceSwitch, s))
            .fold(1.0f64, f64::min);
        assert!(worst_ndp < worst_ref);
        assert!(worst_ndp < 0.72, "worst_ndp={worst_ndp}");
    }

    #[test]
    fn ndp_fails_at_the_published_sizes() {
        // 65B, 97B, 129B are NDP's published failure sizes.
        for s in [65u64, 97, 129] {
            assert!(p().relative_throughput(Design::NdpSwitch, s) < 0.95);
        }
    }

    #[test]
    fn nonpacked_cells_are_the_worst_design() {
        // "up to ... 49% better than ... non-packed cells".
        let worst = (64..=1514)
            .map(|s| p().relative_throughput(Design::CellsNonPacked, s))
            .fold(1.0f64, f64::min);
        assert!(worst < 0.70, "worst={worst}");
        // Dip location: just above a cell-payload multiple.
        let at_61 = p().relative_throughput(Design::CellsNonPacked, 61);
        let at_60 = p().relative_throughput(Design::CellsNonPacked, 60);
        assert!(at_61 < at_60);
    }

    #[test]
    fn reference_reaches_line_rate_at_180mhz() {
        // "The Reference Switch achieves full line rate for all packet
        // sizes only at a clock frequency of 180MHz."
        let p180 = p().at_clock(180_000_000);
        for s in 64..=1514 {
            assert!(
                p180.relative_throughput(Design::ReferenceSwitch, s) > 0.99,
                "reference at 180MHz, {s}B"
            );
        }
        // And at 150 MHz it does not.
        let any_below =
            (64..=1514).any(|s| p().relative_throughput(Design::ReferenceSwitch, s) < 0.99);
        assert!(any_below);
    }

    #[test]
    fn stardust_beats_everyone_everywhere() {
        for s in (64..=1514).step_by(3) {
            let sd = p().relative_throughput(Design::StardustPacked, s);
            for d in [
                Design::ReferenceSwitch,
                Design::NdpSwitch,
                Design::CellsNonPacked,
            ] {
                assert!(
                    sd >= p().relative_throughput(d, s) - 1e-9,
                    "{d:?} beats stardust at {s}B"
                );
            }
        }
    }

    #[test]
    fn trace_throughput_ordering_matches_fig8b() {
        // Small-packet-heavy mix: Stardust > Switch > Cells.
        let web = [(64u64, 0.3), (128, 0.3), (256, 0.2), (1514, 0.2)];
        let sd = p().trace_throughput(Design::StardustPacked, &web);
        let sw = p().trace_throughput(Design::ReferenceSwitch, &web);
        let cell = p().trace_throughput(Design::CellsNonPacked, &web);
        assert!(sd > sw && sw > cell, "sd={sd} sw={sw} cell={cell}");
        assert!(sd > 0.99);
    }

    #[test]
    fn trace_throughput_bounded() {
        let mix = [(1514u64, 1.0)];
        for d in ALL_DESIGNS {
            let v = p().trace_throughput(d, &mix);
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
