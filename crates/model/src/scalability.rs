//! Figure 2 — DCN scalability of a 12.8 Tb/s switch under link bundling.
//!
//! The figure compares four ways to spend the same 12.8 Tb/s of device
//! bandwidth: 32×400G (bundle 8), 64×200G (bundle 4), 128×100G (bundle 2)
//! and Stardust's 256×50G (bundle 1), with 40 servers per edge device
//! attached at 100G. Three views are produced:
//!
//! * 2(a): number of attachable end hosts vs number of tiers,
//! * 2(b): number of network devices needed for a given host count,
//! * 2(c): number of serial links needed for a given host count.

use crate::fattree::FatTreeParams;

/// One link-bundling configuration of a fixed-bandwidth switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BundleConfig {
    /// Human-readable label, e.g. "FT, 400Gx32 Port (L=8)".
    pub label: &'static str,
    /// Port speed in Gb/s.
    pub port_gbps: u64,
    /// Number of ports (switch radix k).
    pub ports: u64,
    /// Serial links per port (bundle l).
    pub bundle: u64,
}

/// The four configurations plotted in Figure 2 (12.8 Tb/s device,
/// 50 Gb/s serdes lanes).
pub const FIG2_CONFIGS: [BundleConfig; 4] = [
    BundleConfig {
        label: "FT, 400Gx32 Port (L=8)",
        port_gbps: 400,
        ports: 32,
        bundle: 8,
    },
    BundleConfig {
        label: "FT, 200Gx64 Port (L=4)",
        port_gbps: 200,
        ports: 64,
        bundle: 4,
    },
    BundleConfig {
        label: "FT, 100Gx128 Port (L=2)",
        port_gbps: 100,
        ports: 128,
        bundle: 2,
    },
    BundleConfig {
        label: "Stardust, 50Gx256 Port (L=1)",
        port_gbps: 50,
        ports: 256,
        bundle: 1,
    },
];

/// Figure 2's edge assumption: 40 servers per ToR, each at 100 Gb/s.
pub const HOSTS_PER_TOR: u64 = 40;
/// Figure 2's edge assumption: each server connects at 100 Gb/s.
pub const HOST_LINK_GBPS: u64 = 100;

impl BundleConfig {
    /// Device bandwidth in Gb/s (should be 12.8 Tb/s for all Fig 2 rows).
    pub fn device_gbps(&self) -> u64 {
        self.port_gbps * self.ports
    }

    /// ToR uplink port count for a non-blocking edge: uplink bandwidth must
    /// match the 40×100G host bandwidth.
    pub fn tor_uplinks(&self) -> u64 {
        HOSTS_PER_TOR * HOST_LINK_GBPS / self.port_gbps
    }

    /// The fat-tree parameters implied by this configuration.
    pub fn fattree(&self) -> FatTreeParams {
        FatTreeParams::new(self.ports, self.tor_uplinks(), self.bundle)
    }

    /// Figure 2(a): maximum end hosts in an `n`-tier network.
    pub fn max_hosts(&self, tiers: u32) -> u64 {
        self.fattree().max_hosts(tiers, HOSTS_PER_TOR)
    }

    /// Figure 2(b): total network devices (ToRs + fabric switches) required
    /// to attach `hosts` end hosts, using the minimum viable tier count.
    /// Returns `None` if the topology cannot reach that size in ≤ 4 tiers.
    pub fn devices_for_hosts(&self, hosts: u64) -> Option<u64> {
        let ft = self.fattree();
        let n = ft.tiers_for_hosts(hosts, HOSTS_PER_TOR, 4)?;
        let tors = FatTreeParams::tors_for_hosts(hosts, HOSTS_PER_TOR);
        Some(tors + ft.switches_for_tors(n, tors))
    }

    /// Figure 2(c): total serial links (fabric side) required to attach
    /// `hosts` end hosts at the minimum viable tier count.
    pub fn links_for_hosts(&self, hosts: u64) -> Option<u64> {
        let ft = self.fattree();
        let n = ft.tiers_for_hosts(hosts, HOSTS_PER_TOR, 4)?;
        let tors = FatTreeParams::tors_for_hosts(hosts, HOSTS_PER_TOR);
        Some(ft.links_for_tors(n, tors))
    }

    /// Minimum tiers to attach `hosts` end hosts (≤ 4), if feasible.
    pub fn tiers_for_hosts(&self, hosts: u64) -> Option<u32> {
        self.fattree().tiers_for_hosts(hosts, HOSTS_PER_TOR, 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configs_are_12_8_tbps() {
        for c in FIG2_CONFIGS {
            assert_eq!(c.device_gbps(), 12_800, "{}", c.label);
        }
    }

    #[test]
    fn tor_uplinks_match_host_bandwidth() {
        // 4 Tb/s of hosts → 10×400G, 20×200G, 40×100G, 80×50G.
        let ups: Vec<u64> = FIG2_CONFIGS.iter().map(|c| c.tor_uplinks()).collect();
        assert_eq!(ups, vec![10, 20, 40, 80]);
    }

    #[test]
    fn fig2a_host_counts() {
        let sd = FIG2_CONFIGS[3];
        let l8 = FIG2_CONFIGS[0];
        assert_eq!(sd.max_hosts(1), 10_240);
        assert_eq!(l8.max_hosts(1), 1_280);
        assert_eq!(l8.max_hosts(2), 20_480);
        assert_eq!(sd.max_hosts(2), 1_310_720);
        // Monotone in tiers, and bundle-1 dominates at every tier.
        for n in 1..=4 {
            assert!(sd.max_hosts(n) >= l8.max_hosts(n) * 8u64.pow(n.min(3)) / 8);
            for c in FIG2_CONFIGS {
                if n > 1 {
                    assert!(c.max_hosts(n) > c.max_hosts(n - 1));
                }
            }
        }
    }

    #[test]
    fn fig2a_tier_advantage_is_8_to_the_n() {
        // §5.1: "the nth tier of a Stardust based network can support ×8^n
        // more ToR devices than a typical DCN" (vs the 400GE bundle).
        let sd = FIG2_CONFIGS[3].fattree();
        let l8 = FIG2_CONFIGS[0].fattree();
        for n in 1..=4u32 {
            assert_eq!(sd.max_tors(n) / l8.max_tors(n), 8u64.pow(n));
        }
    }

    #[test]
    fn fig2b_stardust_needs_fewest_devices() {
        for hosts in [100_000u64, 400_000, 1_000_000] {
            let devs: Vec<Option<u64>> = FIG2_CONFIGS
                .iter()
                .map(|c| c.devices_for_hosts(hosts))
                .collect();
            let sd = devs[3].unwrap();
            for (i, d) in devs.iter().enumerate().take(3) {
                if let Some(d) = d {
                    assert!(sd <= *d, "hosts={hosts} config={i}: stardust {sd} vs {d}");
                }
            }
        }
    }

    #[test]
    fn fig2b_tier_steps_show_in_device_counts() {
        // The 400G config needs 3 tiers well before Stardust does.
        let l8 = FIG2_CONFIGS[0];
        let sd = FIG2_CONFIGS[3];
        assert_eq!(l8.tiers_for_hosts(100_000), Some(3));
        assert_eq!(sd.tiers_for_hosts(100_000), Some(2));
        assert_eq!(sd.tiers_for_hosts(1_000_000), Some(2));
    }

    #[test]
    fn fig2c_stardust_needs_fewest_links() {
        for hosts in [200_000u64, 600_000, 1_000_000] {
            let links: Vec<Option<u64>> = FIG2_CONFIGS
                .iter()
                .map(|c| c.links_for_hosts(hosts))
                .collect();
            let sd = links[3].unwrap();
            for l in links.iter().take(3).flatten() {
                assert!(sd <= *l, "hosts={hosts}");
            }
        }
    }

    #[test]
    fn devices_scale_linearly_with_hosts_within_a_tier() {
        let sd = FIG2_CONFIGS[3];
        let d1 = sd.devices_for_hosts(200_000).unwrap();
        let d2 = sd.devices_for_hosts(400_000).unwrap();
        let ratio = d2 as f64 / d1 as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }
}
