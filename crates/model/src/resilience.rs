//! Appendix E / Table 4 — reachability propagation and failure recovery.
//!
//! Stardust's self-healing relies on periodic hardware reachability
//! messages. Appendix E derives, for a device clocked at `f` Hz emitting a
//! message every `c` cycles per link:
//!
//! ```text
//! t'            = c / f                        time between messages
//! M             = ceil(N / (h·b))              messages for a full table
//! t             = t' · M · (2n − 1)            one full propagation
//! recovery      = Σ_{i=1..2n−1} (t' + pd_i) · M · th
//! bw overhead   = B·8·f / (c·s)
//! ```
//!
//! with `N` hosts, `h` hosts per Fabric Adapter, `b` reachability bits per
//! message, `n` tiers, `th` confirmation threshold, `pd_i` per-hop
//! propagation delays, `B` message bytes and `s` link speed. The worked
//! example (Table 4's values) yields a 652 µs recovery and 0.04% bandwidth
//! overhead.

/// Parameters of the reachability protocol (Table 4 names).
#[derive(Debug, Clone)]
pub struct ResilienceParams {
    /// Core frequency `f` in Hz.
    pub core_hz: u64,
    /// Cycles between messages per link, `c`.
    pub cycles_between_msgs: u64,
    /// Reachability bitmap size per message, `b` (Fabric Adapters covered).
    pub bitmap_bits: u64,
    /// Reachability message size `B` in bytes.
    pub msg_bytes: u64,
    /// Hosts per Fabric Adapter, `h`.
    pub hosts_per_fa: u64,
    /// Hosts connected to the DCN, `N`.
    pub hosts: u64,
    /// Network tiers, `n`.
    pub tiers: u32,
    /// Confirmation threshold `th` (consecutive updates before a status
    /// change is accepted).
    pub threshold: u64,
    /// Per-hop propagation delays `pd_i` in seconds, length `2n − 1`.
    pub hop_propagation_s: Vec<f64>,
    /// Link speed `s` in bits/s.
    pub link_bps: u64,
}

impl ResilienceParams {
    /// The Table 4 worked example: f = 1 GHz, c = 10 000, b = 128,
    /// B = 24 B, h = 40, N = 32 000, n = 2, th = 3, s = 50 Gb/s, with hop
    /// delays of 50 ns (10 m) except one 500 ns (100 m) last-tier hop.
    pub fn table4_example() -> Self {
        ResilienceParams {
            core_hz: 1_000_000_000,
            cycles_between_msgs: 10_000,
            bitmap_bits: 128,
            msg_bytes: 24,
            hosts_per_fa: 40,
            hosts: 32_000,
            tiers: 2,
            threshold: 3,
            // 2n−1 = 3 hops; Appendix E notes the difference from §5.9's
            // illustrative 630µs is the propagation delay on the links.
            // Matching the 652µs figure requires two 100 m (500 ns) hops —
            // the spine-facing links in both directions — plus one 10 m
            // (50 ns) FA-facing hop: 630µs + (1.05µs × 7 × 3) = 652.05µs.
            hop_propagation_s: vec![500e-9, 500e-9, 50e-9],
            link_bps: 50_000_000_000,
        }
    }

    /// `t'` — time between successive reachability messages on a link.
    pub fn msg_interval_s(&self) -> f64 {
        self.cycles_between_msgs as f64 / self.core_hz as f64
    }

    /// `M` — messages required to advertise the full reachability table.
    pub fn msgs_per_table(&self) -> u64 {
        self.hosts.div_ceil(self.hosts_per_fa * self.bitmap_bits)
    }

    /// Worst-case hop count for an update: `2n − 1`.
    pub fn hops(&self) -> u32 {
        2 * self.tiers - 1
    }

    /// `t` — one full propagation of the reachability table across the
    /// network, ignoring propagation delay.
    pub fn propagation_s(&self) -> f64 {
        self.msg_interval_s() * self.msgs_per_table() as f64 * self.hops() as f64
    }

    /// Recovery time including per-hop propagation delays and the
    /// `th`-confirmation rule (the Appendix E refined formula).
    pub fn recovery_s(&self) -> f64 {
        assert_eq!(
            self.hop_propagation_s.len(),
            self.hops() as usize,
            "need 2n−1 per-hop delays"
        );
        let m = self.msgs_per_table() as f64;
        let th = self.threshold as f64;
        self.hop_propagation_s
            .iter()
            .map(|pd| (self.msg_interval_s() + pd) * m * th)
            .sum()
    }

    /// Fraction of link bandwidth consumed by reachability messages:
    /// `B·8·f / (c·s)`.
    pub fn bandwidth_overhead(&self) -> f64 {
        (self.msg_bytes * 8) as f64 * self.core_hz as f64
            / (self.cycles_between_msgs as f64 * self.link_bps as f64)
    }

    /// §5.9's illustrative recovery (no propagation delay, no threshold
    /// scaling formula difference): `t'·M·(2n−1)·th`.
    pub fn simple_recovery_s(&self) -> f64 {
        self.propagation_s() * self.threshold as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_and_message_count() {
        let p = ResilienceParams::table4_example();
        assert!((p.msg_interval_s() - 10e-6).abs() < 1e-12);
        // "It takes the Fabric Element seven messages to report the status
        // of a network connecting 32K hosts (40 hosts per Fabric Adapter)."
        assert_eq!(p.msgs_per_table(), 7);
        assert_eq!(p.hops(), 3);
    }

    #[test]
    fn section_5_9_illustration_630us() {
        // 10µs × 7 × 3 = 210µs per table; ×3 confirmations ≈ 630µs.
        let p = ResilienceParams::table4_example();
        assert!((p.propagation_s() - 210e-6).abs() < 1e-9);
        assert!((p.simple_recovery_s() - 630e-6).abs() < 1e-9);
    }

    #[test]
    fn appendix_e_652us_with_propagation() {
        // "the time it takes to recover from a failed link ... is 652µs."
        let p = ResilienceParams::table4_example();
        let r = p.recovery_s();
        assert!((r - 652e-6).abs() < 2e-6, "recovery {r}");
    }

    #[test]
    fn appendix_e_bandwidth_overhead() {
        // "the overhead of reachability updates is 0.04% of the bandwidth".
        let p = ResilienceParams::table4_example();
        let o = p.bandwidth_overhead();
        assert!((o - 0.000384).abs() < 1e-6, "overhead {o}");
        assert!(o < 0.0005);
    }

    #[test]
    fn recovery_scales_with_message_count() {
        // Recovery is linear in M = ceil(N/(h·b)): doubling the hosts takes
        // M from 7 to ceil(12.5) = 13, so recovery grows by exactly 13/7.
        let mut p = ResilienceParams::table4_example();
        let r1 = p.recovery_s();
        p.hosts *= 2;
        assert_eq!(p.msgs_per_table(), 13);
        let r2 = p.recovery_s();
        assert!((r2 / r1 - 13.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn faster_messages_recover_faster_but_cost_bandwidth() {
        let mut p = ResilienceParams::table4_example();
        let (r1, o1) = (p.recovery_s(), p.bandwidth_overhead());
        p.cycles_between_msgs /= 10;
        let (r2, o2) = (p.recovery_s(), p.bandwidth_overhead());
        assert!(r2 < r1 / 5.0);
        assert!((o2 / o1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn more_tiers_more_hops() {
        let mut p = ResilienceParams::table4_example();
        p.tiers = 3;
        p.hop_propagation_s = vec![500e-9, 50e-9, 50e-9, 50e-9, 50e-9];
        assert_eq!(p.hops(), 5);
        assert!(p.recovery_s() > ResilienceParams::table4_example().recovery_s());
    }

    #[test]
    #[should_panic(expected = "2n−1")]
    fn wrong_hop_delay_vector_panics() {
        let mut p = ResilienceParams::table4_example();
        p.hop_propagation_s = vec![50e-9];
        p.recovery_s();
    }
}
