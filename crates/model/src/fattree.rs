//! Appendix A / Table 2 — the math behind network size.
//!
//! The paper describes a fully provisioned, folded-Clos fat-tree with:
//!
//! * `k` — switch radix, counted in *ports* (= link bundles);
//! * `t` — number of uplink ports on each ToR;
//! * `l` — number of serial links per link bundle (a 400GE port built from
//!   8×50G lanes has `l = 8`).
//!
//! Table 2 of the paper gives, per tier count `n`:
//!
//! | Tiers | Max ToRs        | Max switches                | Link bundles        | Links per ToR |
//! |-------|-----------------|-----------------------------|---------------------|---------------|
//! | 1     | k               | t·k/k = t                   | t·k                 | t·l           |
//! | 2     | k²/2            | 3/2·t·k                     | t·k²                | 2·t·l         |
//! | 3     | k³/4            | 5/4·t·k²                    | 3/4·t·k³            | 3·t·l         |
//! | 4     | k⁴/8            | 7/8·t·k³                    | 7/8·t·k⁴            | 7·t·l         |
//! | n     | kⁿ/2ⁿ⁻¹         | (2n−1)/2ⁿ⁻¹·t·kⁿ⁻¹          | see note            | see note      |
//!
//! **A note on the paper's Table 2 link columns.** The printed general-n
//! formula `(1−1/2^(n−1))·t·kⁿ` matches the printed rows for n = 3 and
//! n = 4 but *not* for n = 2 (where the table prints `t·k²`, i.e. the
//! "n equal link layers" derivation `n·t·kⁿ/2ⁿ⁻¹`, which in turn disagrees
//! with the printed n = 4 row). The two derivations coincide at n = 3. We
//! reproduce the table *as printed* for n ≤ 4 — those are the values behind
//! Figure 2(c) and Figure 11 — and use the paper's general-n closed form
//! for n > 4. The discrepancy is documented here and in `DESIGN.md` rather
//! than silently "fixed".

/// Parameters of a fat-tree built from one switch model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTreeParams {
    /// Switch radix: number of ports (link bundles) per fabric switch.
    pub k: u64,
    /// Number of uplink ports per ToR.
    pub t: u64,
    /// Serial links per link bundle.
    pub l: u64,
}

impl FatTreeParams {
    /// Construct and sanity-check parameters.
    pub fn new(k: u64, t: u64, l: u64) -> Self {
        assert!(k >= 2, "switch radix must be at least 2");
        assert!(t >= 1, "ToRs need at least one uplink");
        assert!(l >= 1, "a bundle has at least one serial link");
        FatTreeParams { k, t, l }
    }

    /// Maximum number of ToRs in an `n`-tier network: `kⁿ / 2ⁿ⁻¹`.
    pub fn max_tors(&self, n: u32) -> u64 {
        assert!(n >= 1);
        self.k.pow(n) >> (n - 1)
    }

    /// Maximum number of fabric switches in an `n`-tier network:
    /// `(2n−1)/2ⁿ⁻¹ · t · kⁿ⁻¹`.
    pub fn max_switches(&self, n: u32) -> u64 {
        assert!(n >= 1);
        ((2 * n as u64 - 1) * self.t * self.k.pow(n - 1)) >> (n - 1)
    }

    /// Fabric switches needed *per ToR*: `(2n−1) · t / k` (as a ratio; use
    /// [`FatTreeParams::switches_for_tors`] for integer provisioning).
    pub fn switches_per_tor(&self, n: u32) -> f64 {
        (2.0 * n as f64 - 1.0) * self.t as f64 / self.k as f64
    }

    /// Total link bundles in a fully provisioned `n`-tier network, per the
    /// printed Table 2 (see module docs for the n = 2 vs general-formula
    /// discrepancy).
    pub fn link_bundles(&self, n: u32) -> u64 {
        let (t, k) = (self.t as u128, self.k as u128);
        let v: u128 = match n {
            0 => 0,
            1 => t * k,
            2 => t * k * k,
            3 => 3 * t * k * k * k / 4,
            4 => 7 * t * k * k * k * k / 8,
            // General-n closed form from the paper: (1 − 1/2^(n−1))·t·kⁿ.
            n => {
                let pow = k.pow(n);
                t * pow - t * pow / (1u128 << (n - 1))
            }
        };
        u64::try_from(v).expect("link bundle count overflows u64")
    }

    /// Serial links per ToR (excluding ToR↔host downlinks), per the printed
    /// Table 2: `t·l`, `2·t·l`, `3·t·l`, `7·t·l`, then `(2ⁿ⁻¹−1)·t·l`.
    pub fn links_per_tor(&self, n: u32) -> u64 {
        let f = match n {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 3,
            4 => 7,
            n => (1u64 << (n - 1)) - 1,
        };
        f * self.t * self.l
    }

    /// Total serial links in a fully provisioned `n`-tier network
    /// (bundles × links-per-bundle).
    pub fn total_links(&self, n: u32) -> u64 {
        self.link_bundles(n) * self.l
    }

    /// Maximum number of end hosts with `d` downlink ports per ToR:
    /// `d · kⁿ / 2ⁿ⁻¹` (Appendix A).
    pub fn max_hosts(&self, n: u32, d: u64) -> u64 {
        d.saturating_mul(self.max_tors(n))
    }

    /// Smallest tier count whose capacity reaches `hosts` end hosts with
    /// `d` hosts per ToR; `None` if not reachable within `max_tiers`.
    pub fn tiers_for_hosts(&self, hosts: u64, d: u64, max_tiers: u32) -> Option<u32> {
        (1..=max_tiers).find(|&n| self.max_hosts(n, d) >= hosts)
    }

    /// Number of ToRs required to attach `hosts` end hosts, `d` per ToR.
    pub fn tors_for_hosts(hosts: u64, d: u64) -> u64 {
        hosts.div_ceil(d)
    }

    /// Fabric switches needed to serve `tors` ToRs in an `n`-tier network:
    /// pro-rated `(2n−1)·t/k` per ToR, rounded up.
    pub fn switches_for_tors(&self, n: u32, tors: u64) -> u64 {
        ((2 * n as u64 - 1) * self.t * tors).div_ceil(self.k)
    }

    /// Serial links (fabric side) to serve `tors` ToRs in `n` tiers.
    pub fn links_for_tors(&self, n: u32, tors: u64) -> u64 {
        self.links_per_tor(n) * tors
    }

    /// Link bundles (fabric side) to serve `tors` ToRs in `n` tiers.
    pub fn bundles_for_tors(&self, n: u32, tors: u64) -> u64 {
        self.links_for_tors(n, tors) / self.l
    }

    /// Oversubscribed variant (Appendix A, final paragraph): with `u` uplink
    /// ports per fabric switch in a 2-tier network, the maximum ToRs become
    /// `k·(k−u)` and switch count `t·(k+u)`.
    pub fn max_tors_oversub_2tier(&self, u: u64) -> u64 {
        assert!(u < self.k);
        self.k * (self.k - u)
    }

    /// Switch count of the oversubscribed 2-tier variant: `t·(k+u)`.
    pub fn max_switches_oversub_2tier(&self, u: u64) -> u64 {
        assert!(u < self.k);
        self.t * (self.k + u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 2 Stardust configuration: 12.8 Tb/s device as 256×50G.
    fn stardust() -> FatTreeParams {
        // ToR: 40 hosts × 100G = 4 Tb/s downlink, 4 Tb/s uplink = 80×50G.
        FatTreeParams::new(256, 80, 1)
    }

    /// 32×400G configuration (l = 8).
    fn ft400() -> FatTreeParams {
        FatTreeParams::new(32, 10, 8)
    }

    #[test]
    fn table2_max_tors_rows() {
        let p = FatTreeParams::new(16, 4, 1);
        assert_eq!(p.max_tors(1), 16);
        assert_eq!(p.max_tors(2), 16 * 16 / 2);
        assert_eq!(p.max_tors(3), 16 * 16 * 16 / 4);
        assert_eq!(p.max_tors(4), 16u64.pow(4) / 8);
    }

    #[test]
    fn table2_max_switches_rows() {
        let p = FatTreeParams::new(16, 4, 1);
        assert_eq!(p.max_switches(1), 4); // t
        assert_eq!(p.max_switches(2), 3 * 4 * 16 / 2); // 3/2·t·k
        assert_eq!(p.max_switches(3), 5 * 4 * 16 * 16 / 4); // 5/4·t·k²
        assert_eq!(p.max_switches(4), 7 * 4 * 16 * 16 * 16 / 8); // 7/8·t·k³
    }

    #[test]
    fn table2_link_bundles_rows() {
        let p = FatTreeParams::new(16, 4, 1);
        assert_eq!(p.link_bundles(1), 4 * 16);
        assert_eq!(p.link_bundles(2), 4 * 16 * 16);
        assert_eq!(p.link_bundles(3), 3 * 4 * 16u64.pow(3) / 4);
        assert_eq!(p.link_bundles(4), 7 * 4 * 16u64.pow(4) / 8);
    }

    #[test]
    fn table2_links_per_tor_rows() {
        let p = FatTreeParams::new(16, 4, 2);
        assert_eq!(p.links_per_tor(1), 4 * 2);
        assert_eq!(p.links_per_tor(2), 2 * 4 * 2);
        assert_eq!(p.links_per_tor(3), 3 * 4 * 2);
        assert_eq!(p.links_per_tor(4), 7 * 4 * 2);
        assert_eq!(p.links_per_tor(5), 15 * 4 * 2);
    }

    #[test]
    fn general_n_closed_form_matches_printed_table_for_3_and_4() {
        let p = FatTreeParams::new(16, 4, 1);
        let closed = |n: u32| {
            let pow = (p.k as u128).pow(n);
            let t = p.t as u128;
            (t * pow - t * pow / (1u128 << (n - 1))) as u64
        };
        assert_eq!(p.link_bundles(3), closed(3));
        assert_eq!(p.link_bundles(4), closed(4));
        // ...and documents the known n=2 discrepancy:
        assert_ne!(p.link_bundles(2), closed(2));
    }

    #[test]
    fn paper_examples_section_2_2() {
        // "A link bundle of one enables a 1-Tier network of over ten
        // thousand servers" — 256 ports × 40 hosts = 10240.
        assert_eq!(stardust().max_hosts(1, 40), 10_240);
        // "a 1-Tier network with a link bundle of eight is limited to an
        // eighth of this number of hosts" — 32 × 40 = 1280.
        assert_eq!(ft400().max_hosts(1, 40), 1_280);
        assert_eq!(stardust().max_hosts(1, 40) / ft400().max_hosts(1, 40), 8);
        // "For a 2-Tier network, a link bundle of eight allows connecting
        // only 20K hosts" — 40·32²/2 = 20480.
        assert_eq!(ft400().max_hosts(2, 40), 20_480);
        // "...compared with ×64 the number of hosts using a link bundle of
        // one" — 40·256²/2 = 1,310,720 = 64 × 20,480.
        assert_eq!(stardust().max_hosts(2, 40), 64 * ft400().max_hosts(2, 40));
    }

    #[test]
    fn n_tier_scaling_order() {
        // "The maximum size of a network of n tiers using a switch with
        // port radix k is O((k/2)^n)" — per-tier growth factor is k/2.
        let p = FatTreeParams::new(64, 32, 1);
        for n in 1..4 {
            assert_eq!(p.max_tors(n + 1) / p.max_tors(n), p.k / 2);
        }
    }

    #[test]
    fn tiers_for_hosts_selects_minimum() {
        let p = stardust();
        assert_eq!(p.tiers_for_hosts(10_000, 40, 4), Some(1));
        assert_eq!(p.tiers_for_hosts(10_241, 40, 4), Some(2));
        assert_eq!(p.tiers_for_hosts(1_310_720, 40, 4), Some(2));
        assert_eq!(p.tiers_for_hosts(1_310_721, 40, 4), Some(3));
        // Tiny radix cannot reach a million hosts in 2 tiers.
        let small = FatTreeParams::new(4, 2, 1);
        assert_eq!(small.tiers_for_hosts(1_000_000, 40, 2), None);
    }

    #[test]
    fn provisioning_is_pro_rata() {
        let p = stardust();
        // Half the ToRs need half the switches (up to rounding).
        let full = p.max_switches(2);
        let half = p.switches_for_tors(2, p.max_tors(2) / 2);
        assert!(half <= full / 2 + 1);
        assert!(half >= full / 2 - 1);
    }

    #[test]
    fn oversubscription_trades_tors_for_switches() {
        let p = FatTreeParams::new(16, 4, 1);
        // u = k/2 is the fully provisioned case.
        assert_eq!(p.max_tors_oversub_2tier(8), p.max_tors(2));
        assert_eq!(p.max_switches_oversub_2tier(8), p.max_switches(2));
        // Fewer uplinks => more ToRs, fewer switches.
        assert!(p.max_tors_oversub_2tier(4) > p.max_tors(2));
        assert!(p.max_switches_oversub_2tier(4) < p.max_switches(2));
    }

    #[test]
    fn links_count_includes_bundle_multiplier() {
        let p = FatTreeParams::new(32, 10, 8);
        assert_eq!(p.total_links(2), p.link_bundles(2) * 8);
        assert_eq!(p.links_for_tors(2, 10), 2 * 10 * 8 * 10);
    }
}
