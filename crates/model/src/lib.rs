//! # stardust-model — the paper's analytic models
//!
//! Every closed-form result in *Stardust: Divide and Conquer in the Data
//! Center Network* (NSDI'19) lives here, implemented directly from the
//! paper's equations and appendices:
//!
//! * [`fattree`] — Appendix A / Table 2: element counts of multi-tier
//!   fat-tree networks as a function of switch radix `k`, ToR uplinks `t`
//!   and link bundle `l`.
//! * [`scalability`] — Figure 2: end-hosts vs tiers, devices vs hosts and
//!   serial links vs hosts for 12.8 Tb/s devices under different bundling.
//! * [`parallelism`] — Figure 3 / Appendix B: the number of parallel
//!   processing pipelines a switch needs at each packet size, and why cell
//!   packing flattens it.
//! * [`datapath`] — Figure 8: the NetFPGA-style device micro-model
//!   comparing a reference packet switch, an NDP switch, unpacked cells and
//!   Stardust packed cells at a fixed clock.
//! * [`md1`] — §4.2.1: the M/D/1 queue law bounding Fabric Element queues,
//!   and the paper's `o(fs^-2N)` tail approximation.
//! * [`silicon`] — Figure 10(d) / Appendix C: relative die area and power of
//!   a Fabric Element vs a standard Ethernet switch, plus the
//!   reachability-vs-routing table size comparison.
//! * [`cost`] — Figure 11 / Appendix D / Table 3: list-price cost model and
//!   the relative power model of Stardust vs fat-tree DCNs.
//! * [`resilience`] — Appendix E / Table 4: reachability-message propagation
//!   and failure recovery time.

pub mod cost;
pub mod datapath;
pub mod fattree;
pub mod md1;
pub mod parallelism;
pub mod resilience;
pub mod scalability;
pub mod silicon;

pub use fattree::FatTreeParams;
