//! Figure 10(d) / Appendix C — relative silicon area and power.
//!
//! The paper compares two shipping Broadcom devices manufactured in the
//! same process: device **A**, a standard Ethernet ToR switch (12.8 Tb/s
//! class), and device **B**, a Fabric Element (BCM88790, 9.6 Tb/s). The
//! published per-component B/A ratios are:
//!
//! | Component          | B/A    |
//! |--------------------|--------|
//! | Header processing  | 13%    |
//! | Network interface  | 30%    |
//! | Other logic        | 60%    |
//! | I/O                | 87.5%  |
//! | **Area/Tbps**      | 66.6%  |
//! | **Power/Tbps**     | 64.8%  |
//!
//! The paper does not publish device A's component *weights*; we calibrate
//! a plausible breakdown (documented below) such that the weighted ratios
//! reproduce the published bottom-line 66.6% / 64.8% numbers, and expose
//! both the component table and the calibration so ablations can vary it.
//! Appendix C's table-size and VOQ-memory comparisons are implemented
//! exactly.

/// Published per-component area ratios (device B / device A), Fig 10(d).
#[derive(Debug, Clone, Copy)]
pub struct ComponentRatios {
    /// Header-processing (parser/match-action) area ratio.
    pub header_processing: f64,
    /// Network-interface (MAC/PCS) area ratio.
    pub network_interface: f64,
    /// Remaining logic (buffers, scheduling, control) area ratio.
    pub other_logic: f64,
    /// I/O (serdes ring) area ratio.
    pub io: f64,
}

/// The published Figure 10(d) area ratios.
pub const FIG10D_AREA_RATIOS: ComponentRatios = ComponentRatios {
    header_processing: 0.13,
    network_interface: 0.30,
    other_logic: 0.60,
    io: 0.875,
};

/// Power ratios: the paper publishes only the bottom line (64.8%/Tbps).
/// I/O (serdes) power scales closer to bandwidth than area does, so its
/// effective ratio is slightly less favorable than the 87.5% area ratio;
/// 0.835 calibrates the bottom line. All other components inherit the
/// area ratios (logic power tracks logic area in the same process).
pub const POWER_RATIOS: ComponentRatios = ComponentRatios {
    header_processing: 0.13,
    network_interface: 0.30,
    other_logic: 0.60,
    io: 0.835,
};

/// Calibrated component weights of device A (fractions of die area).
/// Chosen so the weighted Fig 10(d) ratios reproduce the published
/// area/Tbps of 66.6% given the 12.8 → 9.6 Tb/s bandwidth difference:
/// I/O-heavy (serdes ring ~27%), substantial forwarding logic, and a
/// programmable header processor consistent with the RMT-style area
/// breakdowns the paper cites.
#[derive(Debug, Clone, Copy)]
pub struct ComponentWeights {
    /// Header-processing share of the die.
    pub header_processing: f64,
    /// Network-interface (MAC/PCS) share of the die.
    pub network_interface: f64,
    /// Remaining-logic share of the die.
    pub other_logic: f64,
    /// I/O (serdes ring) share of the die.
    pub io: f64,
}

/// Default calibration (sums to 1.0).
pub const DEVICE_A_WEIGHTS: ComponentWeights = ComponentWeights {
    header_processing: 0.16,
    network_interface: 0.335,
    other_logic: 0.235,
    io: 0.27,
};

/// Device bandwidths used for the per-Tbps normalization.
pub const DEVICE_A_TBPS: f64 = 12.8;
/// Device B bandwidth (Tb/s), Fig 10(d).
pub const DEVICE_B_TBPS: f64 = 9.6;

impl ComponentWeights {
    /// The weights must form a partition of the die.
    pub fn total(&self) -> f64 {
        self.header_processing + self.network_interface + self.other_logic + self.io
    }

    /// Weighted B/A ratio: device B's area (or power) as a fraction of
    /// device A's, before bandwidth normalization.
    pub fn weighted_ratio(&self, r: &ComponentRatios) -> f64 {
        self.header_processing * r.header_processing
            + self.network_interface * r.network_interface
            + self.other_logic * r.other_logic
            + self.io * r.io
    }

    /// Relative area (or power) per Tbps: `(B/A) / (bw_B/bw_A)`.
    pub fn relative_per_tbps(&self, r: &ComponentRatios, bw_a: f64, bw_b: f64) -> f64 {
        self.weighted_ratio(r) / (bw_b / bw_a)
    }
}

/// The headline Figure 10(d) number: Fabric Element area per Tbps relative
/// to a standard switch (paper: 66.6%).
pub fn fe_relative_area_per_tbps() -> f64 {
    DEVICE_A_WEIGHTS.relative_per_tbps(&FIG10D_AREA_RATIOS, DEVICE_A_TBPS, DEVICE_B_TBPS)
}

/// The headline power number (paper: 64.8%).
pub fn fe_relative_power_per_tbps() -> f64 {
    DEVICE_A_WEIGHTS.relative_per_tbps(&POWER_RATIOS, DEVICE_A_TBPS, DEVICE_B_TBPS)
}

/// Appendix C: exact-match IPv4 table size of a standard switch, in bits:
/// `N × (32 + log2 k)` for `N` end hosts and radix `k`.
pub fn tor_route_table_bits(hosts: u64, radix: u64) -> u64 {
    hosts * (32 + (radix as f64).log2().ceil() as u64)
}

/// Appendix C: Fabric Element reachability table size, in bits:
/// `(N / hosts_per_rack) × log2 k`.
pub fn fe_reachability_table_bits(hosts: u64, hosts_per_rack: u64, radix: u64) -> u64 {
    hosts.div_ceil(hosts_per_rack) * (radix as f64).log2().ceil() as u64
}

/// Appendix C: VOQ state memory. "128K VOQs consume roughly 4MB" →
/// 32 B of state per VOQ.
pub const VOQ_STATE_BYTES: u64 = 32;

/// Memory consumed by `n` VOQs.
pub fn voq_memory_bytes(n: u64) -> u64 {
    n * VOQ_STATE_BYTES
}

/// Appendix C: the Stardust-specific functionality of a Fabric Adapter
/// (cell generation, load balancing, credit generation) costs about 8% of
/// the device area, "largely compensated by the saving on network-fabric
/// facing interfaces, a gain of 70% per port" — so FA area ≈ ToR area.
pub const FA_STARDUST_LOGIC_FRACTION: f64 = 0.08;
/// Appendix C: per-port area gain on fabric-facing interfaces (70%).
pub const FABRIC_FACING_PORT_AREA_GAIN: f64 = 0.70;

/// Rough net FA area relative to a ToR: the Stardust logic added, minus
/// the per-port MAC savings applied to the fabric-facing share of the
/// network-interface area. The paper states the net is ≈ 1.0.
pub fn fa_relative_area(fabric_port_fraction: f64) -> f64 {
    let ni_weight = DEVICE_A_WEIGHTS.network_interface;
    1.0 + FA_STARDUST_LOGIC_FRACTION
        - ni_weight * fabric_port_fraction * FABRIC_FACING_PORT_AREA_GAIN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_partition_the_die() {
        assert!((DEVICE_A_WEIGHTS.total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn area_per_tbps_matches_published_66_6() {
        let v = fe_relative_area_per_tbps();
        assert!((v - 0.666).abs() < 0.01, "got {v}");
    }

    #[test]
    fn power_per_tbps_matches_published_64_8() {
        let v = fe_relative_power_per_tbps();
        assert!((v - 0.648).abs() < 0.01, "got {v}");
    }

    #[test]
    fn fe_is_smaller_in_every_component() {
        let r = FIG10D_AREA_RATIOS;
        for v in [
            r.header_processing,
            r.network_interface,
            r.other_logic,
            r.io,
        ] {
            assert!(v < 1.0);
        }
    }

    #[test]
    fn reachability_table_two_orders_smaller() {
        // §4.2: "the size of the table can be two orders of magnitude
        // smaller than a typical routing table".
        let hosts = 100_000;
        let tor = tor_route_table_bits(hosts, 256);
        let fe = fe_reachability_table_bits(hosts, 40, 256);
        let ratio = tor as f64 / fe as f64;
        assert!(ratio > 100.0, "ratio {ratio}");
    }

    #[test]
    fn appendix_c_worked_table_sizes() {
        // N hosts, 40 per rack, radix k: A needs N×(32+log2 k),
        // B needs (N/40)×log2 k.
        let bits_a = tor_route_table_bits(32_000, 256);
        assert_eq!(bits_a, 32_000 * 40);
        let bits_b = fe_reachability_table_bits(32_000, 40, 256);
        assert_eq!(bits_b, 800 * 8);
    }

    #[test]
    fn voq_memory_matches_appendix_c() {
        // "128K VOQs consume roughly 4MB".
        assert_eq!(voq_memory_bytes(128 * 1024), 4 * 1024 * 1024);
    }

    #[test]
    fn fa_area_is_close_to_tor() {
        // "The overall area of the Fabric Adapter is very similar to
        // device A" — with ~40% of NI ports facing the fabric.
        let v = fa_relative_area(0.4);
        assert!((v - 1.0).abs() < 0.05, "got {v}");
    }

    #[test]
    fn per_tbps_normalization_direction() {
        // Without normalization B looks even smaller (it is also a lower
        // bandwidth device); per-Tbps is the fair metric and must be
        // larger than the raw ratio.
        let raw = DEVICE_A_WEIGHTS.weighted_ratio(&FIG10D_AREA_RATIOS);
        assert!(fe_relative_area_per_tbps() > raw);
    }
}
