//! `det-lint` allow-directives.
//!
//! A finding is suppressed by an explicit, **reason-carrying** directive:
//!
//! ```text
//! // det-lint: allow(unordered-iter, keyed access only; never iterated)
//! voqs: HashMap<VoqKey, Voq>,
//! ```
//!
//! The directive covers the line it sits on (trailing-comment form) or,
//! when the line holds nothing but the comment, the **next line that
//! carries code** — doc comments and blank lines in between are skipped,
//! so the directive can sit above a documented field.
//!
//! The reason is mandatory: an allow without a written justification is
//! itself a diagnostic (`D0(bad-directive)`), as is a rule name the
//! auditor does not know. "We silenced it" must never be cheaper than
//! "we explained it".

use crate::rules::Rule;
use crate::Diagnostic;
use std::collections::BTreeSet;
use std::path::Path;

/// The marker that introduces a directive inside a `//` comment.
const MARKER: &str = "det-lint:";

/// Parsed allow-directives for one file: the set of `(line, rule)` pairs
/// that are excused, plus the diagnostics for malformed directives.
#[derive(Debug, Default)]
pub struct Directives {
    allowed: BTreeSet<(u32, Rule)>,
    /// Malformed-directive diagnostics (never themselves allowable).
    pub errors: Vec<Diagnostic>,
}

impl Directives {
    /// Is a finding of `rule` on `line` excused?
    pub fn allows(&self, line: u32, rule: Rule) -> bool {
        self.allowed.contains(&(line, rule))
    }
}

/// Scan `src` for directives. `code_lines` must hold the 1-based numbers
/// of every line that carries at least one token (the tokenizer's view),
/// so a comment-line directive can find the declaration it covers.
pub fn parse(path: &Path, src: &str, code_lines: &BTreeSet<u32>) -> Directives {
    let mut out = Directives::default();
    let last_line = src.lines().count() as u32;
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        // The directive must live in a `//` comment.
        let Some(comment_at) = raw.find("//") else {
            continue;
        };
        let comment = &raw[comment_at..];
        let Some(m) = comment.find(MARKER) else {
            continue;
        };
        let body = comment[m + MARKER.len()..].trim();
        let Some(args) = body
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('('))
            .and_then(|r| r.rfind(')').map(|end| &r[..end]))
        else {
            out.errors.push(Diagnostic::bad_directive(
                path,
                lineno,
                "expected `det-lint: allow(<rule>, <reason>)`".into(),
            ));
            continue;
        };
        let (rule_name, reason) = match args.split_once(',') {
            Some((r, why)) => (r.trim(), why.trim()),
            None => (args.trim(), ""),
        };
        let Some(rule) = Rule::by_name(rule_name) else {
            out.errors.push(Diagnostic::bad_directive(
                path,
                lineno,
                format!(
                    "unknown rule {rule_name:?}; known: {}",
                    Rule::ALL
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            ));
            continue;
        };
        if reason.is_empty() {
            out.errors.push(Diagnostic::bad_directive(
                path,
                lineno,
                format!(
                    "allow({}) needs a reason: `det-lint: allow({}, <why this cannot break determinism>)`",
                    rule.name(),
                    rule.name()
                ),
            ));
            continue;
        }
        // Trailing-comment form covers its own line; a comment-only line
        // covers the next line that carries code.
        let has_code_before = !raw[..comment_at].trim().is_empty();
        let target = if has_code_before {
            Some(lineno)
        } else {
            (lineno + 1..=last_line).find(|l| code_lines.contains(l))
        };
        if let Some(t) = target {
            out.allowed.insert((t, rule));
        }
        // A directive at EOF with nothing after it covers nothing; that
        // is harmless (it suppresses nothing), so it is not an error.
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lines_of(src: &str) -> BTreeSet<u32> {
        crate::token::tokenize(src).iter().map(|t| t.line).collect()
    }

    fn parse_src(src: &str) -> Directives {
        parse(&PathBuf::from("x.rs"), src, &lines_of(src))
    }

    #[test]
    fn trailing_comment_covers_own_line() {
        let src = "let m: u32 = 1; // det-lint: allow(unordered-iter, keyed only)\n";
        let d = parse_src(src);
        assert!(d.errors.is_empty());
        assert!(d.allows(1, Rule::UnorderedIter));
        assert!(!d.allows(2, Rule::UnorderedIter));
    }

    #[test]
    fn comment_line_covers_next_code_line_through_docs() {
        let src = "\
// det-lint: allow(float-time-accum, test fixture)
/// A doc comment in between.

let x = 1;
";
        let d = parse_src(src);
        assert!(d.errors.is_empty());
        assert!(d.allows(4, Rule::FloatTimeAccum));
    }

    #[test]
    fn reason_is_mandatory() {
        let d = parse_src("// det-lint: allow(unordered-iter)\nlet x = 1;\n");
        assert_eq!(d.errors.len(), 1);
        assert!(d.errors[0].message.contains("needs a reason"));
        assert!(!d.allows(2, Rule::UnorderedIter));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let d = parse_src("// det-lint: allow(no-such-rule, because)\nlet x = 1;\n");
        assert_eq!(d.errors.len(), 1);
        assert!(d.errors[0].message.contains("unknown rule"));
    }

    #[test]
    fn rule_ids_work_as_aliases() {
        let d = parse_src("// det-lint: allow(D1, keyed only)\nlet x = 1;\n");
        assert!(d.errors.is_empty());
        assert!(d.allows(2, Rule::UnorderedIter));
    }

    #[test]
    fn malformed_shape_is_an_error() {
        let d = parse_src("// det-lint: deny(unordered-iter, x)\nlet x = 1;\n");
        assert_eq!(d.errors.len(), 1);
    }
}
