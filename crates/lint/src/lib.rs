//! `stardust-lint`: a static determinism auditor for the Stardust
//! reproduction workspace.
//!
//! The repo's headline claim — bit-identical results across engines,
//! shard counts, and streaming windows — is checked *dynamically* by the
//! conformance suites, which can only sample seeds. This crate enforces
//! the underlying invariants *statically*, so the recurring hazard
//! classes (hash-iteration order leaks, f64 time drift, ambient
//! nondeterminism, RNG stream collisions, floats behind `Eq`) fail CI
//! instead of waiting for an unlucky seed. See `DESIGN.md`
//! ("Determinism invariants") for the rule catalogue.
//!
//! The crate is self-contained by design: the container has no crates.io
//! access, so it ships its own minimal Rust tokenizer ([`token`]) rather
//! than depending on `syn`.

pub mod directives;
pub mod rules;
pub mod token;

pub use rules::Rule;

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One diagnostic: a rule finding that no allow-directive excuses, or a
/// malformed directive (`D0`).
#[derive(Debug)]
pub struct Diagnostic {
    /// Source file the diagnostic points at.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// A malformed-directive diagnostic (rule `D0`, never allowable).
    pub fn bad_directive(path: &Path, line: u32, message: String) -> Self {
        Diagnostic {
            file: path.to_path_buf(),
            line,
            rule: Rule::BadDirective,
            message,
        }
    }

    /// `file:line: D1(unordered-iter): message` — the grep-able one-line
    /// form printed by the binary.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}({}): {}",
            self.file.display(),
            self.line,
            self.rule.id(),
            self.rule.name(),
            self.message
        )
    }
}

/// Lint one file's source text. Returns only the diagnostics that no
/// reason-carrying allow-directive excuses (plus directive errors).
pub fn lint_source(path: &Path, src: &str) -> Vec<Diagnostic> {
    let toks = token::tokenize(src);
    let code_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
    let mut dirs = directives::parse(path, src, &code_lines);
    let stripped = rules::strip_test_items(&toks);
    let mut out = std::mem::take(&mut dirs.errors);
    for f in rules::run_all(&stripped) {
        if !dirs.allows(f.line, f.rule) {
            out.push(Diagnostic {
                file: path.to_path_buf(),
                line: f.line,
                rule: f.rule,
                message: f.message,
            });
        }
    }
    out.sort_by_key(|d| (d.line, d.rule));
    out
}

/// The source roots the determinism rules apply to, relative to the
/// workspace root. Engine crates only: the bench/CLI layer is *supposed*
/// to read clocks, environment variables, and filesystems.
pub const ENGINE_ROOTS: [&str; 8] = [
    "crates/sim/src",
    "crates/topo/src",
    "crates/fabric/src",
    "crates/baseline/src",
    "crates/transport/src",
    "crates/workload/src",
    "crates/mc/src",
    "src",
];

/// Is this file exempt wholesale? Separate test modules (`shard_tests.rs`
/// and friends) are included via `#[cfg(test)] mod …;` from their parent,
/// which in-file attribute scanning cannot see — so test-named files are
/// skipped at the walk level.
fn test_file(path: &Path) -> bool {
    path.file_stem()
        .and_then(|s| s.to_str())
        .is_some_and(|s| s == "tests" || s.ends_with("_tests"))
}

/// Outcome of linting a workspace tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned (exempt test files not counted).
    pub files_scanned: usize,
    /// All diagnostics, ordered by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when nothing fired.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Recursively collect `.rs` files under `dir`, sorted by path so the
/// auditor's own output order is deterministic.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") && !test_file(&p) {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint every engine-crate source file under `root` (the workspace
/// root). Errors if `root` contains none of the expected source trees —
/// the usual sign of a wrong `--root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    let mut found_any_root = false;
    for rel in ENGINE_ROOTS {
        let dir = root.join(rel);
        if dir.is_dir() {
            found_any_root = true;
            collect_rs(&dir, &mut files)?;
        }
    }
    if !found_any_root {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!(
                "no engine source roots under {:?} (expected e.g. crates/sim/src); \
                 pass the workspace root via --root",
                root
            ),
        ));
    }
    let mut report = Report::default();
    for path in files {
        let src = std::fs::read_to_string(&path)?;
        // Report paths relative to the workspace root: stable across
        // machines, and what CI annotations expect.
        let display = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        report.diagnostics.extend(lint_source(&display, &src));
        report.files_scanned += 1;
    }
    report
        .diagnostics
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_source_yields_no_diagnostics() {
        let src = "pub fn add(a: u64, b: u64) -> u64 { a + b }\n";
        assert!(lint_source(Path::new("x.rs"), src).is_empty());
    }

    #[test]
    fn allowed_finding_is_suppressed_but_directive_errors_are_not() {
        let src = "\
// det-lint: allow(unordered-iter, keyed access only)
pub struct S { m: std::collections::HashMap<u32, u32> }
// det-lint: allow(unordered-iter)
pub struct T { n: std::collections::HashMap<u32, u32> }
";
        let diags = lint_source(Path::new("x.rs"), src);
        // Line 2 is excused; line 3's directive is malformed (no reason),
        // so it produces D0 *and* fails to excuse line 4's D1.
        let ids: Vec<(&str, u32)> = diags.iter().map(|d| (d.rule.id(), d.line)).collect();
        assert_eq!(ids, vec![("D0", 3), ("D1", 4)]);
    }

    #[test]
    fn test_named_files_are_exempt() {
        assert!(test_file(Path::new("crates/fabric/src/shard_tests.rs")));
        assert!(test_file(Path::new("src/tests.rs")));
        assert!(!test_file(Path::new("crates/fabric/src/engine.rs")));
        assert!(!test_file(Path::new("src/contests.rs")));
    }

    #[test]
    fn render_is_grepable() {
        let d = Diagnostic {
            file: PathBuf::from("a/b.rs"),
            line: 7,
            rule: Rule::FloatTimeAccum,
            message: "m".into(),
        };
        assert_eq!(d.render(), "a/b.rs:7: D2(float-time-accum): m");
    }
}
