//! A minimal Rust tokenizer — just enough lexical fidelity for the
//! determinism rules.
//!
//! The workspace builds with no crates.io access, so `syn` is not an
//! option. The rules in [`crate::rules`] need identifiers, literals and
//! punctuation with **correct line numbers**, and they need comments and
//! string contents to never masquerade as code. That is exactly what this
//! lexer provides; it does not attempt full Rust grammar (no token trees,
//! no keyword table beyond what the rules match on by name).
//!
//! Handled faithfully:
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals with escapes, raw strings (`r"…"`, `r#"…"#`, any
//!   `#` count), byte strings (`b"…"`, `br#"…"#`),
//! * char literals (including escapes) vs. lifetimes (`'a`),
//! * numeric literals (hex/octal/binary, underscores, floats, exponents,
//!   type suffixes) — with the `0..n` range ambiguity resolved the same
//!   way rustc does (a `.` only joins the number when a digit follows),
//! * multi-char operators the rules care about (`::`, `+=`, `-=`, `->`,
//!   `=>`), everything else as single-character punctuation.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rules match keywords by text).
    Ident,
    /// String literal (cooked or raw; `text` is the **contents**, without
    /// quotes or raw-string hashes).
    Str,
    /// Char literal (contents without quotes).
    Char,
    /// Numeric literal (verbatim, underscores and suffix included).
    Num,
    /// Lifetime (`text` is the name without the leading `'`).
    Lifetime,
    /// Punctuation: single character, or one of `::`, `+=`, `-=`, `->`,
    /// `=>`.
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme class.
    pub kind: TokKind,
    /// Lexeme text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Is this token the exact punctuation `p`?
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// Is this token the exact identifier/keyword `id`?
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// Tokenize `src`. Unterminated constructs (running off the end of the
/// file inside a string or comment) terminate the token stream quietly —
/// the linter's job is pattern matching, not syntax validation; rustc
/// reports the real error.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    // Advance over `b[i]`, tracking newlines. Returns the consumed char.
    macro_rules! bump {
        () => {{
            let c = b[i];
            if c == '\n' {
                line += 1;
            }
            i += 1;
            c
        }};
    }

    while i < n {
        let c = b[i];
        let tok_line = line;
        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n {
            if b[i + 1] == '/' {
                while i < n && b[i] != '\n' {
                    bump!();
                }
                continue;
            }
            if b[i + 1] == '*' {
                bump!();
                bump!();
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        bump!();
                        bump!();
                        depth += 1;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        bump!();
                        bump!();
                        depth -= 1;
                    } else {
                        bump!();
                    }
                }
                continue;
            }
        }
        // Raw / byte strings: r"…", r#"…"#, b"…", br#"…"#, rb not valid.
        if (c == 'r' || c == 'b') && {
            let mut j = i;
            if b[j] == 'b' && j + 1 < n && b[j + 1] == 'r' {
                j += 1;
            }
            let mut k = j + 1;
            while k < n && b[k] == '#' {
                k += 1;
            }
            (b[j] == 'r' && k < n && b[k] == '"') || (j == i && b[j] == 'b' && b[j + 1] == '"')
        } {
            // Re-parse the prefix precisely.
            let mut raw = false;
            if b[i] == 'b' {
                bump!();
            }
            if i < n && b[i] == 'r' {
                raw = true;
                bump!();
            }
            let mut hashes = 0usize;
            while raw && i < n && b[i] == '#' {
                hashes += 1;
                bump!();
            }
            debug_assert!(i < n && b[i] == '"');
            bump!(); // opening quote
            let mut text = String::new();
            while i < n {
                if raw {
                    if b[i] == '"' {
                        // Need `hashes` trailing #s to close.
                        let mut k = i + 1;
                        let mut seen = 0usize;
                        while k < n && b[k] == '#' && seen < hashes {
                            k += 1;
                            seen += 1;
                        }
                        if seen == hashes {
                            bump!(); // closing quote
                            for _ in 0..hashes {
                                bump!();
                            }
                            break;
                        }
                    }
                    text.push(bump!());
                } else if b[i] == '\\' && i + 1 < n {
                    bump!();
                    text.push(bump!());
                } else if b[i] == '"' {
                    bump!();
                    break;
                } else {
                    text.push(bump!());
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text,
                line: tok_line,
            });
            continue;
        }
        // Cooked strings.
        if c == '"' {
            bump!();
            let mut text = String::new();
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    bump!();
                    text.push(bump!());
                } else if b[i] == '"' {
                    bump!();
                    break;
                } else {
                    text.push(bump!());
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text,
                line: tok_line,
            });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // A char literal is '<one char or escape>' — anything else
            // after the quote is a lifetime.
            let is_char = if i + 1 < n && b[i + 1] == '\\' {
                true // escape sequence: always a char literal
            } else {
                i + 2 < n && b[i + 2] == '\''
            };
            if is_char {
                bump!(); // '
                let mut text = String::new();
                while i < n {
                    if b[i] == '\\' && i + 1 < n {
                        bump!();
                        text.push(bump!());
                        // \u{…}: consume through the closing brace.
                        if text.ends_with('u') && i < n && b[i] == '{' {
                            while i < n && b[i] != '}' {
                                text.push(bump!());
                            }
                            if i < n {
                                text.push(bump!());
                            }
                        }
                    } else if b[i] == '\'' {
                        bump!();
                        break;
                    } else {
                        text.push(bump!());
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line: tok_line,
                });
            } else {
                bump!(); // '
                let mut text = String::new();
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    text.push(bump!());
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line: tok_line,
                });
            }
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut text = String::new();
            text.push(bump!());
            // Hex/octal/binary prefix consumes alphanumerics wholesale.
            let radix_prefixed =
                text == "0" && i < n && matches!(b[i], 'x' | 'X' | 'o' | 'O' | 'b' | 'B');
            while i < n {
                let d = b[i];
                if d.is_alphanumeric() || d == '_' {
                    // Exponent sign: 1e-12 / 2.5E+6.
                    if !radix_prefixed
                        && (d == 'e' || d == 'E')
                        && i + 1 < n
                        && (b[i + 1] == '+' || b[i + 1] == '-')
                        && i + 2 < n
                        && b[i + 2].is_ascii_digit()
                    {
                        text.push(bump!()); // e
                        text.push(bump!()); // sign
                        continue;
                    }
                    text.push(bump!());
                } else if d == '.' && i + 1 < n && b[i + 1].is_ascii_digit() && !radix_prefixed {
                    // 1.5 joins; 0..n does not (next char is '.').
                    if !text.contains('.') {
                        text.push(bump!());
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text,
                line: tok_line,
            });
            continue;
        }
        // Identifiers / keywords.
        if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                text.push(bump!());
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: tok_line,
            });
            continue;
        }
        // Punctuation, joining the few multi-char operators the rules use.
        let two: Option<&str> = if i + 1 < n {
            match (c, b[i + 1]) {
                (':', ':') => Some("::"),
                ('+', '=') => Some("+="),
                ('-', '=') => Some("-="),
                ('-', '>') => Some("->"),
                ('=', '>') => Some("=>"),
                _ => None,
            }
        } else {
            None
        };
        if let Some(op) = two {
            bump!();
            bump!();
            toks.push(Tok {
                kind: TokKind::Punct,
                text: op.to_string(),
                line: tok_line,
            });
        } else {
            bump!();
            toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line: tok_line,
            });
        }
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_disappear_and_lines_advance() {
        let toks = tokenize("// top\nlet x = 1; /* a /* nested */ b */\nlet y;");
        assert_eq!(toks[0].text, "let");
        assert_eq!(toks[0].line, 2);
        let y = toks.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.line, 3);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = texts(r#"let s = "for x in &map // not code";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t.contains("for x in")));
        // Nothing inside the string leaks as an identifier.
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "map"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = texts(r##"let s = r#"quote " inside"#; let b = b"bytes";"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == r#"quote " inside"#));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "bytes"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = texts("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Char && t == "x"));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = texts(r"let c = '\n'; let q = '\''; let u = '\u{1F600}';");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Char).count(),
            3,
            "{toks:?}"
        );
    }

    #[test]
    fn numbers_ranges_and_exponents() {
        let toks = texts("0..n 1.5 2.5e-6 0xDC_FA 1e12 4096f64");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(
            nums,
            vec!["0", "1.5", "2.5e-6", "0xDC_FA", "1e12", "4096f64"]
        );
    }

    #[test]
    fn compound_operators_join() {
        let toks = texts("a += b; c::d; e -> f; g => h; i -= j;");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"-="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"->"));
        assert!(puncts.contains(&"=>"));
    }

    #[test]
    fn shift_right_stays_split_for_generics() {
        // Vec<Vec<u64>> must not lex `>>` as one token, or nothing —
        // the rules scan `HashMap` followed by `<`, and depth tracking
        // would desync.
        let toks = texts("x: Vec<Vec<u64>>");
        let gt = toks.iter().filter(|(_, t)| t == ">").count();
        assert_eq!(gt, 2);
    }
}
