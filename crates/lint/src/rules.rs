//! The determinism rules (D1–D5).
//!
//! Each rule is a token-level pass. The passes are deliberately
//! *syntactic*: with no type information available (no crates.io, so no
//! `syn`/rustc integration), every rule anchors on patterns that are
//! cheap to state and hard to evade — a `HashMap` is recognized at its
//! declaration and tracked by name, a float accumulator by its declared
//! type and time-like name, an RNG stream label by its literal. False
//! negatives are possible (aliasing through a function boundary hides a
//! map); the dynamic conformance suites remain the backstop for those.
//! False positives are paid down with reason-carrying allow-directives,
//! which is the point: every hash container and float accumulator in an
//! engine crate either disappears or carries a written justification.

use crate::token::{Tok, TokKind};

/// A determinism rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Malformed `det-lint` directive (missing reason, unknown rule).
    BadDirective,
    /// D1: order-sensitive use of `HashMap`/`HashSet` in engine code.
    UnorderedIter,
    /// D2: `+=`/`-=` accumulation on an `f64` simulated-time variable.
    FloatTimeAccum,
    /// D3: wall clock / ambient nondeterminism (`Instant`, `SystemTime`,
    /// `RandomState`, `std::env`).
    AmbientNondet,
    /// D4: duplicated `DetRng::split`/`split_u64`/`from_label` stream
    /// label within one constructing scope.
    RngLabelDup,
    /// D5: `f64`/`f32` field on a type whose `Eq` backs bit-identity
    /// assertions.
    FloatEqField,
}

impl Rule {
    /// Every allowable rule (excludes [`Rule::BadDirective`], which can
    /// never be suppressed).
    pub const ALL: [Rule; 5] = [
        Rule::UnorderedIter,
        Rule::FloatTimeAccum,
        Rule::AmbientNondet,
        Rule::RngLabelDup,
        Rule::FloatEqField,
    ];

    /// Stable short id (`D1`…`D5`; `D0` for directive errors).
    pub fn id(self) -> &'static str {
        match self {
            Rule::BadDirective => "D0",
            Rule::UnorderedIter => "D1",
            Rule::FloatTimeAccum => "D2",
            Rule::AmbientNondet => "D3",
            Rule::RngLabelDup => "D4",
            Rule::FloatEqField => "D5",
        }
    }

    /// Human name, as used in allow-directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::BadDirective => "bad-directive",
            Rule::UnorderedIter => "unordered-iter",
            Rule::FloatTimeAccum => "float-time-accum",
            Rule::AmbientNondet => "ambient-nondet",
            Rule::RngLabelDup => "rng-label-dup",
            Rule::FloatEqField => "float-eq-field",
        }
    }

    /// Look a rule up by directive name or short id (case-insensitive
    /// for the id form).
    pub fn by_name(s: &str) -> Option<Rule> {
        let s = s.trim();
        Rule::ALL
            .iter()
            .copied()
            .find(|r| r.name() == s || r.id().eq_ignore_ascii_case(s))
    }
}

/// One raw rule finding (pre-directive-filtering).
#[derive(Debug)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Run every rule over a token stream (already stripped of test items).
pub fn run_all(toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    unordered_iter(toks, &mut out);
    float_time_accum(toks, &mut out);
    ambient_nondet(toks, &mut out);
    rng_label_dup(toks, &mut out);
    float_eq_field(toks, &mut out);
    out.sort_by_key(|f| (f.line, f.rule));
    out
}

// --- shared helpers ---------------------------------------------------------

/// Index of the token *after* the previous statement boundary (`;`, `{`,
/// `}`) — i.e. where the statement containing `i` begins.
fn stmt_start(toks: &[Tok], i: usize) -> usize {
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            break;
        }
        j -= 1;
    }
    j
}

/// Strip every `#[test]` / `#[cfg(test)]`-gated item from the stream.
///
/// Engine crates keep their unit tests inline; tests legitimately use
/// `HashSet` scratch space, duplicate RNG labels to prove stream
/// equality, and so on. The rules therefore see only non-test code.
/// (`#[cfg(not(test))]` is *kept*: `not` defuses the `test` marker.)
pub fn strip_test_items(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            // Parse the attribute to its closing `]`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut idents: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                let t = &toks[j];
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                } else if t.kind == TokKind::Ident {
                    idents.push(&t.text);
                }
                j += 1;
            }
            let test_gated = idents.contains(&"test") && !idents.contains(&"not");
            if test_gated {
                // Skip this attribute, any further attributes, then the
                // item itself (through its `;` or its outer brace block).
                i = j;
                while i + 1 < toks.len() && toks[i].is_punct("#") && toks[i + 1].is_punct("[") {
                    let mut d = 0i32;
                    while i < toks.len() {
                        if toks[i].is_punct("[") {
                            d += 1;
                        } else if toks[i].is_punct("]") {
                            d -= 1;
                            if d == 0 {
                                i += 1;
                                break;
                            }
                        }
                        i += 1;
                    }
                }
                let mut d = 0i32;
                while i < toks.len() {
                    let t = &toks[i];
                    if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                        d += 1;
                    } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                        d -= 1;
                        if d == 0 && toks[i].is_punct("}") {
                            i += 1;
                            break;
                        }
                    } else if t.is_punct(";") && d == 0 {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
            // Not test-gated: emit the attribute tokens verbatim.
            out.extend(toks[i..j].iter().cloned());
            i = j;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

// --- D1: unordered iteration ------------------------------------------------

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

fn unordered_iter(toks: &[Tok], out: &mut Vec<Finding>) {
    // Pass 1: find hash-container declarations. A type-position use
    // (`: HashMap<…>`, `-> HashMap<…>`, `::<HashSet<_>>`) is itself a
    // finding — key order can leak through *any* later iteration, so the
    // declaration is where the justification belongs. Bindings
    // initialized from `HashMap::new()`-style constructors register the
    // name for pass 2 without a declaration finding (a keyed-only local
    // is harmless until something iterates it).
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // `use std::collections::{HashMap, …}` — imports are not uses.
        let s = stmt_start(toks, i);
        if toks[s].is_ident("use") || (toks[s].is_ident("pub") && toks[s + 1].is_ident("use")) {
            continue;
        }
        let next = toks.get(i + 1);
        if next.is_some_and(|n| n.is_punct("<")) {
            // Type position. Recover the declared name when the pattern
            // is `name: [path::]HashMap<…>`.
            let mut j = i;
            while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].kind == TokKind::Ident {
                j -= 2;
            }
            let declared =
                (j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident)
                    .then(|| toks[j - 2].text.clone());
            if let Some(name) = &declared {
                names.push(name.clone());
            }
            let subject = declared
                .map(|n| format!("`{n}: {}<…>`", t.text))
                .unwrap_or_else(|| format!("`{}<…>` in type position", t.text));
            out.push(Finding {
                rule: Rule::UnorderedIter,
                line: t.line,
                message: format!(
                    "{subject}: {} iteration order is nondeterministic and may differ \
                     across shards — use BTreeMap/BTreeSet, iterate via sorted keys, \
                     or annotate why key order cannot leak into results",
                    t.text
                ),
            });
        } else if next.is_some_and(|n| n.is_punct("::")) {
            // Constructor form: register `let [mut] name = …HashMap::new()`.
            if toks[s].is_ident("let") {
                let mut k = s + 1;
                if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                if toks.get(k).is_some_and(|t| t.kind == TokKind::Ident)
                    && toks.get(k + 1).is_some_and(|t| t.is_punct("="))
                {
                    names.push(toks[k].text.clone());
                }
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    let is_tracked = |t: &Tok| t.kind == TokKind::Ident && names.binary_search(&t.text).is_ok();

    // Pass 2: iteration over a tracked name.
    for i in 0..toks.len() {
        let t = &toks[i];
        // `map.iter()` / `map.drain(..)` / …
        if is_tracked(t)
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(i + 2).is_some_and(|m| {
                m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str())
            })
            && toks.get(i + 3).is_some_and(|p| p.is_punct("("))
        {
            out.push(Finding {
                rule: Rule::UnorderedIter,
                line: toks[i + 2].line,
                message: format!(
                    "`{}.{}()` iterates a hash-ordered container — visit order is \
                     nondeterministic; sort first, use a BTree container, or annotate",
                    t.text,
                    toks[i + 2].text
                ),
            });
        }
        // `for x in [&[mut]] path.to.map { … }`
        if t.is_ident("for") {
            let mut j = i + 1;
            let mut depth = 0i32;
            // Find the `in` of this `for` (patterns may contain parens).
            while j < toks.len() {
                let p = &toks[j];
                if p.is_punct("(") || p.is_punct("[") {
                    depth += 1;
                } else if p.is_punct(")") || p.is_punct("]") {
                    depth -= 1;
                } else if depth == 0 && p.is_ident("in") {
                    break;
                } else if depth == 0 && (p.is_punct("{") || p.is_punct(";")) {
                    j = toks.len(); // not a `for … in` (e.g. `impl … for`)
                }
                j += 1;
            }
            if j >= toks.len() {
                continue;
            }
            // Expression tokens up to the body `{`.
            let mut k = j + 1;
            let mut expr: Vec<&Tok> = Vec::new();
            while k < toks.len() && !toks[k].is_punct("{") {
                expr.push(&toks[k]);
                k += 1;
            }
            let mut e = expr.as_slice();
            while e
                .first()
                .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
            {
                e = &e[1..];
            }
            // Only plain paths (`self.fas.voqs`, `map`): anything with
            // calls or indexing already matched pass-2 method form or is
            // out of scope for a syntactic pass.
            let plain = !e.is_empty()
                && e.iter()
                    .all(|t| t.kind == TokKind::Ident || t.is_punct("."));
            if plain && e.last().is_some_and(|t| is_tracked(t)) {
                out.push(Finding {
                    rule: Rule::UnorderedIter,
                    line: toks[i].line,
                    message: format!(
                        "`for … in {}{}` iterates a hash-ordered container — visit \
                         order is nondeterministic; sort first, use a BTree container, \
                         or annotate",
                        if expr.len() != e.len() { "&" } else { "" },
                        e.last().unwrap().text
                    ),
                });
            }
        }
    }
}

// --- D2: float time accumulation --------------------------------------------

/// Does `name` look like it holds simulated time / an arrival offset?
fn time_like(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    const STEMS: [&str; 9] = [
        "time", "arrival", "offset", "delay", "latency", "deadline", "elapsed", "rtt", "stamp",
    ];
    const SUFFIXES: [&str; 7] = ["_s", "_ns", "_us", "_ms", "_ps", "_sec", "_secs"];
    STEMS.iter().any(|s| lower.contains(s)) || SUFFIXES.iter().any(|s| lower.ends_with(s))
}

/// Is this numeric literal a float?
fn float_literal(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    if lower.starts_with("0x") || lower.starts_with("0b") || lower.starts_with("0o") {
        return false;
    }
    lower.contains('.') || lower.ends_with("f64") || lower.ends_with("f32") || lower.contains('e')
}

fn float_time_accum(toks: &[Tok], out: &mut Vec<Finding>) {
    // Pass 1: names with a declared float type, or `let`-bound to a
    // float literal.
    let mut names: Vec<String> = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("f64") || t.is_ident("f32") {
            // `name: f64` (fields, params, lets; `&f64` / `mut` allowed).
            let mut j = i;
            while j >= 1 && (toks[j - 1].is_punct("&") || toks[j - 1].is_ident("mut")) {
                j -= 1;
            }
            if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokKind::Ident {
                names.push(toks[j - 2].text.clone());
            }
        }
        if t.kind == TokKind::Num && float_literal(&t.text) && i >= 2 && toks[i - 1].is_punct("=") {
            // `let [mut] name = 0.0;`
            let s = stmt_start(toks, i);
            if toks[s].is_ident("let") {
                let mut k = s + 1;
                if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                if k + 1 == i - 1 && toks[k].kind == TokKind::Ident {
                    names.push(toks[k].text.clone());
                }
            }
        }
    }
    names.sort_unstable();
    names.dedup();

    // Pass 2: accumulation on a float, time-like name.
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && time_like(&t.text)
            && names.binary_search(&t.text).is_ok()
            && toks
                .get(i + 1)
                .is_some_and(|op| op.is_punct("+=") || op.is_punct("-="))
        {
            out.push(Finding {
                rule: Rule::FloatTimeAccum,
                line: t.line,
                message: format!(
                    "`{} {}= …` accumulates simulated time in floating point — repeated \
                     f64 accumulation drifts (the PR 6 arrival-offset bug class); hold \
                     integer picoseconds and convert at the edges, or annotate",
                    t.text,
                    &toks[i + 1].text[..1],
                ),
            });
        }
    }
}

// --- D3: ambient nondeterminism ---------------------------------------------

fn ambient_nondet(toks: &[Tok], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let what: Option<&str> = match t.text.as_str() {
            "Instant" => Some("std::time::Instant (wall clock)"),
            "SystemTime" => Some("std::time::SystemTime (wall clock)"),
            "RandomState" => Some("RandomState (per-process random hash seed)"),
            "env" => {
                // `std::env` / `env::var(…)` — but not the compile-time
                // `env!(…)` macro, which is a constant.
                let prev_std = i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("std");
                let next_path = toks.get(i + 1).is_some_and(|n| n.is_punct("::"));
                let is_macro = toks.get(i + 1).is_some_and(|n| n.is_punct("!"));
                (!is_macro && (prev_std || next_path)).then_some("std::env (process environment)")
            }
            _ => None,
        };
        if let Some(what) = what {
            out.push(Finding {
                rule: Rule::AmbientNondet,
                line: t.line,
                message: format!(
                    "{what} in an engine crate — runs must be a pure function of \
                     (config, seed); read such inputs in the bench/CLI layer and pass \
                     them in, or annotate"
                ),
            });
        }
    }
}

// --- D4: RNG stream-label collisions ----------------------------------------

fn rng_label_dup(toks: &[Tok], out: &mut Vec<Finding>) {
    // A "constructing scope" is a `fn` body (top-level code counts as one
    // scope per file). Within a scope, a repeated literal label handed to
    // `split` / `split_u64` / `from_label` constructs the *same* stream
    // twice — the hazard PR 4's collision tests probe dynamically.
    struct Scope {
        body_depth: i32,
        labels: std::collections::BTreeMap<String, u32>,
    }
    let mut scopes = vec![Scope {
        body_depth: -1, // file scope, never popped
        labels: Default::default(),
    }];
    let mut depth = 0i32;
    let mut pending_fn = false;

    let mut record = |scopes: &mut Vec<Scope>, label: String, pretty: &str, line: u32| {
        let scope = scopes.last_mut().expect("file scope");
        match scope.labels.get(&label) {
            Some(first) => out.push(Finding {
                rule: Rule::RngLabelDup,
                line,
                message: format!(
                    "DetRng stream label {pretty} already constructed in this scope \
                     (line {first}) — equal labels yield identical streams (the PR 4 \
                     collision hazard); make labels unique per scope, or annotate"
                ),
            }),
            None => {
                scope.labels.insert(label, line);
            }
        }
    };

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_ident("fn") {
            pending_fn = true;
        } else if t.is_punct(";") {
            // `fn f();` in a trait: no body arrived.
            pending_fn = false;
        } else if t.is_punct("{") {
            depth += 1;
            if pending_fn {
                scopes.push(Scope {
                    body_depth: depth,
                    labels: Default::default(),
                });
                pending_fn = false;
            }
        } else if t.is_punct("}") {
            if scopes.last().is_some_and(|s| s.body_depth == depth) {
                scopes.pop();
            }
            depth -= 1;
        } else if t.kind == TokKind::Ident {
            match t.text.as_str() {
                // `.split("label")`
                "split"
                    if i >= 1
                        && toks[i - 1].is_punct(".")
                        && toks.get(i + 1).is_some_and(|p| p.is_punct("("))
                        && toks.get(i + 2).is_some_and(|s| s.kind == TokKind::Str)
                        && toks.get(i + 3).is_some_and(|p| p.is_punct(")")) =>
                {
                    let lit = &toks[i + 2];
                    record(
                        &mut scopes,
                        format!("s:{}", lit.text),
                        &format!("\"{}\"", lit.text),
                        lit.line,
                    );
                }
                // `.split_u64(42)`
                "split_u64"
                    if toks.get(i + 1).is_some_and(|p| p.is_punct("("))
                        && toks.get(i + 2).is_some_and(|s| s.kind == TokKind::Num)
                        && toks.get(i + 3).is_some_and(|p| p.is_punct(")")) =>
                {
                    let lit = &toks[i + 2];
                    let norm = lit.text.replace('_', "").to_ascii_lowercase();
                    record(
                        &mut scopes,
                        format!("n:{norm}"),
                        &lit.text.clone(),
                        lit.line,
                    );
                }
                // `DetRng::from_label(seed, "label")` — the label is the
                // last string literal in the argument list.
                "from_label" if toks.get(i + 1).is_some_and(|p| p.is_punct("(")) => {
                    let mut j = i + 2;
                    let mut d = 1i32;
                    let mut last_str: Option<&Tok> = None;
                    while j < toks.len() && d > 0 {
                        let p = &toks[j];
                        if p.is_punct("(") {
                            d += 1;
                        } else if p.is_punct(")") {
                            d -= 1;
                        } else if p.kind == TokKind::Str {
                            last_str = Some(p);
                        }
                        j += 1;
                    }
                    if let Some(lit) = last_str {
                        record(
                            &mut scopes,
                            format!("s:{}", lit.text),
                            &format!("\"{}\"", lit.text),
                            lit.line,
                        );
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

// --- D5: float fields behind Eq ---------------------------------------------

fn float_eq_field(toks: &[Tok], out: &mut Vec<Finding>) {
    // Structs with any f64/f32 field, by name.
    struct FloatField {
        field: String,
        line: u32,
    }
    let mut float_fields: std::collections::BTreeMap<String, Vec<FloatField>> = Default::default();
    let mut derives_eq: std::collections::BTreeMap<String, bool> = Default::default();

    let mut pending_derive_eq = false;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("#") && toks.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            // Record whether a derive(… Eq …) is pending for the next item.
            let mut j = i + 2;
            let mut d = 1i32;
            let mut idents: Vec<&str> = Vec::new();
            while j < toks.len() && d > 0 {
                let p = &toks[j];
                if p.is_punct("[") {
                    d += 1;
                } else if p.is_punct("]") {
                    d -= 1;
                } else if p.kind == TokKind::Ident {
                    idents.push(&p.text);
                }
                j += 1;
            }
            if idents.first() == Some(&"derive") && idents.contains(&"Eq") {
                pending_derive_eq = true;
            }
            i = j;
            continue;
        }
        if t.is_ident("struct") {
            let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                i += 1;
                continue;
            };
            let name = name_tok.text.clone();
            derives_eq.insert(name.clone(), pending_derive_eq);
            pending_derive_eq = false;
            // Skip generics to the body.
            let mut j = i + 2;
            if toks.get(j).is_some_and(|t| t.is_punct("<")) {
                let mut d = 0i32;
                while j < toks.len() {
                    if toks[j].is_punct("<") {
                        d += 1;
                    } else if toks[j].is_punct(">") {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            let fields = float_fields.entry(name).or_default();
            match toks.get(j) {
                // Record struct: fields are `name: Type,` at depth 1.
                Some(t) if t.is_punct("{") => {
                    let mut d = 1i32;
                    let mut k = j + 1;
                    while k < toks.len() && d > 0 {
                        let p = &toks[k];
                        if p.is_punct("{") || p.is_punct("(") {
                            d += 1;
                        } else if p.is_punct("}") || p.is_punct(")") {
                            d -= 1;
                        } else if d == 1
                            && (p.is_ident("f64") || p.is_ident("f32"))
                            && k >= 1
                            && !toks[k - 1].is_punct("<")
                        {
                            // Find the field name: scan back to the `:`
                            // that opened this field's type.
                            let mut b = k;
                            while b > j && !toks[b].is_punct(":") {
                                b -= 1;
                            }
                            if b > j && toks[b - 1].kind == TokKind::Ident {
                                fields.push(FloatField {
                                    field: toks[b - 1].text.clone(),
                                    line: p.line,
                                });
                            }
                        } else if d == 2
                            && (p.is_ident("f64") || p.is_ident("f32"))
                            && k >= 1
                            && toks[k - 1].is_punct("<")
                        {
                            // `Vec<f64>` — the `<` bumped depth? No:
                            // angles are not tracked. Handled below.
                        }
                        k += 1;
                    }
                    // Also catch floats nested in generic args at depth 1
                    // (`hist: Vec<f64>`): the loop above already matches
                    // them unless directly preceded by `<`; include those
                    // too — a float anywhere in an Eq field is a hazard.
                    let mut d2 = 1i32;
                    let mut k2 = j + 1;
                    while k2 < toks.len() && d2 > 0 {
                        let p = &toks[k2];
                        if p.is_punct("{") || p.is_punct("(") {
                            d2 += 1;
                        } else if p.is_punct("}") || p.is_punct(")") {
                            d2 -= 1;
                        } else if d2 == 1
                            && (p.is_ident("f64") || p.is_ident("f32"))
                            && k2 >= 1
                            && toks[k2 - 1].is_punct("<")
                        {
                            let mut b = k2;
                            while b > j && !toks[b].is_punct(":") {
                                b -= 1;
                            }
                            if b > j && toks[b - 1].kind == TokKind::Ident {
                                fields.push(FloatField {
                                    field: toks[b - 1].text.clone(),
                                    line: p.line,
                                });
                            }
                        }
                        k2 += 1;
                    }
                }
                // Tuple struct: `struct X(f64);`
                Some(t) if t.is_punct("(") => {
                    let mut d = 1i32;
                    let mut k = j + 1;
                    while k < toks.len() && d > 0 {
                        let p = &toks[k];
                        if p.is_punct("(") {
                            d += 1;
                        } else if p.is_punct(")") {
                            d -= 1;
                        } else if p.is_ident("f64") || p.is_ident("f32") {
                            fields.push(FloatField {
                                field: format!(".{}", 0), // positional
                                line: p.line,
                            });
                        }
                        k += 1;
                    }
                }
                _ => {}
            }
            i = j;
            continue;
        }
        // Manual `impl Eq for Name`.
        if t.is_ident("impl") {
            let mut j = i + 1;
            // Skip generics.
            if toks.get(j).is_some_and(|t| t.is_punct("<")) {
                let mut d = 0i32;
                while j < toks.len() {
                    if toks[j].is_punct("<") {
                        d += 1;
                    } else if toks[j].is_punct(">") {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            if toks.get(j).is_some_and(|t| t.is_ident("Eq"))
                && toks.get(j + 1).is_some_and(|t| t.is_ident("for"))
            {
                if let Some(name) = toks.get(j + 2).filter(|t| t.kind == TokKind::Ident) {
                    derives_eq.insert(name.text.clone(), true);
                }
            }
        }
        if t.kind == TokKind::Ident && t.text != "struct" {
            pending_derive_eq =
                pending_derive_eq && matches!(t.text.as_str(), "pub" | "crate" | "super" | "in");
        }
        i += 1;
    }

    for (name, fields) in &float_fields {
        if !derives_eq.get(name).copied().unwrap_or(false) {
            continue;
        }
        for f in fields {
            out.push(Finding {
                rule: Rule::FloatEqField,
                line: f.line,
                message: format!(
                    "struct `{name}` is `Eq` (it backs bit-identity assertions) but field \
                     `{}` holds a float — floats break `Eq` semantics and make \
                     \"bit-identical\" claims meaningless; store scaled integers, or \
                     annotate",
                    f.field
                ),
            });
        }
    }
}
