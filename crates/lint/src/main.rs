//! `stardust-lint` — static determinism auditor for the workspace.
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error.
//! (The `stardust lint` CLI subcommand wraps this same library and adds
//! `--json` output in the bench emitter's conventions.)

use std::path::PathBuf;
use std::process::ExitCode;

use stardust_lint::lint_workspace;

const USAGE: &str = "\
stardust-lint: static determinism auditor (rules D1-D5)

USAGE:
    stardust-lint [--root <workspace-root>] [--json]

OPTIONS:
    --root <dir>   Workspace root to scan (default: .)
    --json         Emit machine-readable JSON instead of file:line text

Scans the engine crates (crates/{sim,topo,fabric,baseline,transport,
workload} and src/) for determinism hazards. Suppress a finding with a
reason-carrying directive on or above the offending line:

    // det-lint: allow(unordered-iter, keyed access only; never iterated)
";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("error: --root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument {other:?}\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stardust-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        // Tiny hand-rolled emitter: this binary must not depend on the
        // bench crate (bench depends on this crate for the subcommand).
        let findings: Vec<String> = report
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    "{{\"file\":{},\"line\":{},\"rule\":{},\"name\":{},\"message\":{}}}",
                    json_str(&d.file.display().to_string()),
                    d.line,
                    json_str(d.rule.id()),
                    json_str(d.rule.name()),
                    json_str(&d.message)
                )
            })
            .collect();
        println!(
            "{{\"tool\":\"stardust-lint\",\"root\":{},\"files_scanned\":{},\"findings\":[{}],\"clean\":{}}}",
            json_str(&root.display().to_string()),
            report.files_scanned,
            findings.join(","),
            report.clean()
        );
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render());
        }
        if report.clean() {
            println!(
                "stardust-lint: clean ({} files scanned)",
                report.files_scanned
            );
        } else {
            eprintln!(
                "stardust-lint: {} finding(s) in {} scanned files",
                report.diagnostics.len(),
                report.files_scanned
            );
        }
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
