//! Fixture corpus: one known-bad and one allow-annotated snippet per
//! rule, asserting exact rule IDs and line numbers.

use std::path::{Path, PathBuf};

use stardust_lint::lint_source;

/// Lint a fixture, returning `(rule_id, line)` pairs in report order.
fn lint_fixture(name: &str) -> Vec<(&'static str, u32)> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {name}: {e}"));
    lint_source(Path::new(name), &src)
        .into_iter()
        .map(|d| (d.rule.id(), d.line))
        .collect()
}

#[test]
fn d1_bad_flags_declaration_and_both_iteration_forms() {
    assert_eq!(
        lint_fixture("d1_bad.rs"),
        vec![("D1", 5), ("D1", 10), ("D1", 13)]
    );
}

#[test]
fn d1_allowed_is_clean() {
    assert_eq!(lint_fixture("d1_allowed.rs"), vec![]);
}

#[test]
fn d2_bad_flags_float_time_accumulation() {
    assert_eq!(lint_fixture("d2_bad.rs"), vec![("D2", 5)]);
}

#[test]
fn d2_allowed_is_clean() {
    assert_eq!(lint_fixture("d2_allowed.rs"), vec![]);
}

#[test]
fn d3_bad_flags_wall_clock_and_env() {
    assert_eq!(lint_fixture("d3_bad.rs"), vec![("D3", 3), ("D3", 8)]);
}

#[test]
fn d3_allowed_is_clean() {
    assert_eq!(lint_fixture("d3_allowed.rs"), vec![]);
}

#[test]
fn d4_bad_flags_each_duplicated_label_form() {
    assert_eq!(
        lint_fixture("d4_bad.rs"),
        vec![("D4", 4), ("D4", 6), ("D4", 9)]
    );
}

#[test]
fn d4_allowed_is_clean() {
    assert_eq!(lint_fixture("d4_allowed.rs"), vec![]);
}

#[test]
fn d5_bad_flags_float_field_behind_eq() {
    assert_eq!(lint_fixture("d5_bad.rs"), vec![("D5", 5)]);
}

#[test]
fn d5_allowed_is_clean() {
    assert_eq!(lint_fixture("d5_allowed.rs"), vec![]);
}

/// The auditor's reason for existing: the real workspace must stay clean.
/// This is the same check CI gates on, reachable from plain `cargo test`.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = stardust_lint::lint_workspace(&root).expect("walk workspace");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.clean(),
        "determinism findings in the workspace:\n{}",
        rendered.join("\n")
    );
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
}
