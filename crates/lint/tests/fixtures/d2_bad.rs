//! D2 fixture: f64 accumulation of a simulated-time variable.
pub fn schedule(gaps: &[f64]) -> f64 {
    let mut arrival_time_s = 0.0;
    for g in gaps {
        arrival_time_s += g;
    }
    arrival_time_s
}
