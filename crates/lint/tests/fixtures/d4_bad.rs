//! D4 fixture: duplicated DetRng stream labels in one scope.
pub fn build(rng: &mut DetRng, seed: u64) -> (DetRng, DetRng, DetRng) {
    let a = rng.split("flows");
    let b = rng.split("flows");
    let c = DetRng::from_label(seed, "flows-v2");
    let d = DetRng::from_label(seed, "flows-v2");
    let _ = (c, d);
    let e = rng.split_u64(7);
    let f = rng.split_u64(7);
    (a, b, e.mix(f))
}
