//! D1 fixture: same container, excused with a reason-carrying directive.
use std::collections::HashMap;

pub struct Book {
    // det-lint: allow(unordered-iter, keyed access only; never iterated)
    voqs: HashMap<u32, u64>,
}
