//! D4 fixture: duplicate label, excused (intentional stream equality).
pub fn prove_equal(rng: &DetRng) -> (DetRng, DetRng) {
    let a = rng.split("flows");
    // det-lint: allow(rng-label-dup, intentionally equal streams to assert split() is order-independent)
    let b = rng.split("flows");
    (a, b)
}
