//! D3 fixture: wall clock and process environment in engine code.
pub fn profile() -> u128 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis()
}

pub fn seed_override() -> Option<String> {
    std::env::var("STARDUST_SEED").ok()
}
