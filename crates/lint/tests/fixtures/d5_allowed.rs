//! D5 fixture: the same field, excused with a written reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricStats {
    pub cells_delivered: u64,
    // det-lint: allow(float-eq-field, derived from integer counters at the end of the run; equality is exact)
    pub mean_occupancy: f64,
}
