//! D1 fixture: hash-ordered container declared and iterated, no allows.
use std::collections::HashMap;

pub struct Book {
    voqs: HashMap<u32, u64>,
}

pub fn total(b: &Book) -> u64 {
    let mut sum = 0;
    for (_k, v) in &b.voqs {
        sum += v;
    }
    for v in b.voqs.values() {
        sum += v;
    }
    sum
}
