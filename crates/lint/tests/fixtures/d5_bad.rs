//! D5 fixture: a float field on an Eq-deriving bit-identity type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricStats {
    pub cells_delivered: u64,
    pub mean_occupancy: f64,
}
