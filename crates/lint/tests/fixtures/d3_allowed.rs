//! D3 fixture: ambient read, excused (e.g. a debug-only trace path).
pub fn seed_override() -> Option<String> {
    // det-lint: allow(ambient-nondet, debug tracing knob; never read on the simulation path)
    std::env::var("STARDUST_TRACE").ok()
}
