//! D2 fixture: the same accumulation, excused with a written reason.
pub fn schedule(gaps: &[f64]) -> f64 {
    let mut arrival_time_s = 0.0;
    for g in gaps {
        arrival_time_s += g; // det-lint: allow(float-time-accum, display-only aggregate; never fed back into event times)
    }
    arrival_time_s
}
