//! CI-style negative test: a seeded violation must make the binary exit
//! non-zero, with the rule ID and line in its output.

use std::path::PathBuf;
use std::process::Command;

/// Build a throwaway fake workspace containing one engine source file.
fn fake_workspace(tag: &str, src: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("lint-cli-{tag}"));
    let dir = root.join("crates/sim/src");
    std::fs::create_dir_all(&dir).expect("mkdir fake workspace");
    std::fs::write(dir.join("lib.rs"), src).expect("write fixture");
    root
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stardust-lint"))
        .args(args)
        .output()
        .expect("spawn stardust-lint");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn seeded_violation_exits_nonzero_with_rule_and_line() {
    let root = fake_workspace(
        "bad",
        "use std::collections::HashMap;\npub struct S { m: HashMap<u32, u32> }\n",
    );
    let (code, stdout, stderr) = run(&["--root", root.to_str().unwrap()]);
    assert_eq!(code, 1, "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("lib.rs:2: D1(unordered-iter)"),
        "missing rule/line in: {stdout}"
    );
}

#[test]
fn annotated_workspace_exits_zero() {
    let root = fake_workspace(
        "ok",
        "use std::collections::HashMap;\n\
         pub struct S {\n\
         \x20   // det-lint: allow(unordered-iter, keyed access only)\n\
         \x20   m: HashMap<u32, u32>,\n\
         }\n",
    );
    let (code, stdout, _) = run(&["--root", root.to_str().unwrap()]);
    assert_eq!(code, 0, "stdout: {stdout}");
    assert!(stdout.contains("clean"));
}

#[test]
fn reasonless_allow_still_fails() {
    let root = fake_workspace(
        "noreason",
        "use std::collections::HashMap;\n\
         // det-lint: allow(unordered-iter)\n\
         pub struct S { m: HashMap<u32, u32> }\n",
    );
    let (code, stdout, _) = run(&["--root", root.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert!(stdout.contains("D0(bad-directive)"), "stdout: {stdout}");
    assert!(stdout.contains("D1(unordered-iter)"), "stdout: {stdout}");
}

#[test]
fn json_output_carries_findings_and_clean_flag() {
    let root = fake_workspace(
        "json",
        "use std::collections::HashMap;\npub struct S { m: HashMap<u32, u32> }\n",
    );
    let (code, stdout, _) = run(&["--root", root.to_str().unwrap(), "--json"]);
    assert_eq!(code, 1);
    assert!(stdout.contains("\"tool\":\"stardust-lint\""));
    assert!(stdout.contains("\"rule\":\"D1\""));
    assert!(stdout.contains("\"line\":2"));
    assert!(stdout.contains("\"clean\":false"));
}

#[test]
fn bad_root_exits_two() {
    let empty = fake_workspace("empty", "");
    // Point --root below the fake workspace: no engine roots there.
    let (code, _, stderr) = run(&["--root", empty.join("crates").to_str().unwrap()]);
    assert_eq!(code, 2);
    assert!(
        stderr.contains("no engine source roots"),
        "stderr: {stderr}"
    );
}

#[test]
fn unknown_flag_exits_two() {
    let (code, _, stderr) = run(&["--frobnicate"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("USAGE"));
}
