//! Topology builders: the paper's evaluation shapes plus the "topology
//! zoo" rivals (dragonfly, Space Shuffle, random regular expander) used
//! to test the divide-and-conquer claim on structurally different
//! fabrics. Every `*Params` type implements
//! [`TopologyBuilder`](crate::route::TopologyBuilder).

use crate::graph::{NodeId, NodeKind, Topology};
use crate::route::{Built, RoutePlan, TopologyBuilder};
use stardust_sim::DetRng;

/// Parameters of the §6.2 two-tier fabric.
///
/// Fabric Adapters (level 1) connect `fa_uplinks` links into the
/// aggregation tier (level 2); aggregation Fabric Elements split their
/// radix half down / half up; spine Fabric Elements (level 3) face down
/// with their whole radix. Fabric Adapters are grouped into pods: each pod
/// of FAs shares a group of aggregation FEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoTierParams {
    /// Number of Fabric Adapters.
    pub num_fa: u32,
    /// Uplinks per Fabric Adapter (the paper's `t`, 32 in §6.2).
    pub fa_uplinks: u32,
    /// Aggregation-tier Fabric Element count.
    pub t1_count: u32,
    /// Down (FA-facing) links per aggregation FE.
    pub t1_down: u32,
    /// Up (spine-facing) links per aggregation FE.
    pub t1_up: u32,
    /// Spine-tier Fabric Element count.
    pub t2_count: u32,
    /// Down links per spine FE.
    pub t2_down: u32,
    /// Fiber length of FA↔aggregation links, meters.
    pub near_meters: u32,
    /// Fiber length of aggregation↔spine links, meters.
    pub far_meters: u32,
}

impl TwoTierParams {
    /// The exact §6.2 configuration: 256 FAs × 32 uplinks, 128 aggregation
    /// FEs (64 down / 64 up), 64 spine FEs (128 down), 100 m links.
    pub fn paper_6_2() -> Self {
        TwoTierParams {
            num_fa: 256,
            fa_uplinks: 32,
            t1_count: 128,
            t1_down: 64,
            t1_up: 64,
            t2_count: 64,
            t2_down: 128,
            near_meters: 100,
            far_meters: 100,
        }
    }

    /// A proportionally scaled-down variant: divides every population by
    /// `factor` while keeping the structure (pods, speedup exposure)
    /// intact. `factor` must divide the paper's populations.
    pub fn paper_scaled(factor: u32) -> Self {
        let p = Self::paper_6_2();
        assert!(factor >= 1);
        assert!(
            p.num_fa.is_multiple_of(factor)
                && p.fa_uplinks.is_multiple_of(factor)
                && p.t1_count.is_multiple_of(factor)
                && p.t1_down.is_multiple_of(factor)
                && p.t1_up.is_multiple_of(factor)
                && p.t2_count.is_multiple_of(factor)
                && p.t2_down.is_multiple_of(factor),
            "factor {factor} does not divide the paper populations"
        );
        TwoTierParams {
            num_fa: p.num_fa / factor,
            fa_uplinks: p.fa_uplinks / factor,
            t1_count: p.t1_count / factor,
            t1_down: p.t1_down / factor,
            t1_up: p.t1_up / factor,
            t2_count: p.t2_count / factor,
            t2_down: p.t2_down / factor,
            near_meters: p.near_meters,
            far_meters: p.far_meters,
        }
    }

    /// Structural consistency checks (port-count conservation).
    pub fn validate(&self) {
        assert_eq!(
            self.num_fa as u64 * self.fa_uplinks as u64,
            self.t1_count as u64 * self.t1_down as u64,
            "FA uplinks must equal aggregation down ports"
        );
        assert_eq!(
            self.t1_count as u64 * self.t1_up as u64,
            self.t2_count as u64 * self.t2_down as u64,
            "aggregation up ports must equal spine down ports"
        );
        assert_eq!(
            self.t2_down % self.t1_count,
            0,
            "spine down ports must spread evenly over aggregation FEs"
        );
        assert_eq!(
            self.t1_down % self.pod_fa_count(),
            0,
            "pod FAs must spread evenly over their aggregation FEs"
        );
    }

    /// Number of pods (groups of FAs sharing aggregation FEs).
    pub fn pods(&self) -> u32 {
        // Each FA reaches `fa_uplinks` aggregation FEs; pods partition the
        // aggregation tier into groups of that size.
        assert_eq!(self.t1_count % self.fa_uplinks, 0);
        self.t1_count / self.fa_uplinks
    }

    /// FAs per pod.
    pub fn pod_fa_count(&self) -> u32 {
        assert_eq!(self.num_fa % self.pods(), 0);
        self.num_fa / self.pods()
    }
}

/// The two-tier build result: topology plus the node-id ranges.
#[derive(Debug, Clone)]
pub struct TwoTier {
    /// The built link-level topology.
    pub topo: Topology,
    /// The parameters the build used.
    pub params: TwoTierParams,
    /// Fabric Adapter node ids, in FA-index order.
    pub fas: Vec<NodeId>,
    /// Aggregation-tier Fabric Element node ids.
    pub t1: Vec<NodeId>,
    /// Spine-tier Fabric Element node ids.
    pub t2: Vec<NodeId>,
}

/// Build the §6.2-style two-tier fabric.
pub fn two_tier(params: TwoTierParams) -> TwoTier {
    params.validate();
    let mut topo = Topology::new();
    let fas: Vec<NodeId> = (0..params.num_fa)
        .map(|_| topo.add_node(NodeKind::Edge, 1))
        .collect();
    let t1: Vec<NodeId> = (0..params.t1_count)
        .map(|_| topo.add_node(NodeKind::Fabric, 2))
        .collect();
    let t2: Vec<NodeId> = (0..params.t2_count)
        .map(|_| topo.add_node(NodeKind::Fabric, 3))
        .collect();

    // FA ↔ aggregation: pod p's FAs connect one or more links to each of
    // pod p's aggregation FEs.
    let pods = params.pods();
    let pod_fas = params.pod_fa_count();
    let agg_per_pod = params.t1_count / pods;
    let links_per_pair = params.fa_uplinks / agg_per_pod;
    for (i, &fa) in fas.iter().enumerate() {
        let pod = i as u32 / pod_fas;
        for a in 0..agg_per_pod {
            let agg = t1[(pod * agg_per_pod + a) as usize];
            for _ in 0..links_per_pair {
                topo.add_link(fa, agg, params.near_meters);
            }
        }
    }

    // Aggregation ↔ spine: each spine FE spreads its down links evenly
    // over all aggregation FEs.
    let links_per_spine_pair = params.t2_down / params.t1_count;
    for &sp in &t2 {
        for &agg in &t1 {
            for _ in 0..links_per_spine_pair {
                topo.add_link(agg, sp, params.far_meters);
            }
        }
    }

    TwoTier {
        topo,
        params,
        fas,
        t1,
        t2,
    }
}

/// Parameters of a three-tier fabric (§5.1: additional tiers extend the
/// network; Stardust saves tiers through non-bundled links, but a 3-tier
/// build is still the shape of very large deployments).
///
/// Level layout: FAs (1) → tier-1 FEs (2, half down/half up) → tier-2 FEs
/// (3, half/half) → tier-3 spine FEs (4, all down). Pods group FAs under
/// tier-1 FEs, and super-pods group tier-1 FEs under tier-2 FEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreeTierParams {
    /// Number of Fabric Adapters.
    pub num_fa: u32,
    /// Uplinks per Fabric Adapter.
    pub fa_uplinks: u32,
    /// Tier-1 Fabric Element count.
    pub t1_count: u32,
    /// Down (FA-facing) links per tier-1 FE.
    pub t1_down: u32,
    /// Up (tier-2-facing) links per tier-1 FE.
    pub t1_up: u32,
    /// Tier-2 Fabric Element count.
    pub t2_count: u32,
    /// Down links per tier-2 FE.
    pub t2_down: u32,
    /// Up (spine-facing) links per tier-2 FE.
    pub t2_up: u32,
    /// Tier-3 (spine) Fabric Element count.
    pub t3_count: u32,
    /// Down links per spine FE.
    pub t3_down: u32,
    /// Fiber length of intra-pod links, meters.
    pub near_meters: u32,
    /// Fiber length of spine-facing links, meters.
    pub far_meters: u32,
}

impl ThreeTierParams {
    /// A compact test-scale 3-tier fabric: 16 FAs × 2 uplinks, 8+8+4 FEs.
    pub fn small() -> Self {
        ThreeTierParams {
            num_fa: 16,
            fa_uplinks: 2,
            t1_count: 8,
            t1_down: 4,
            t1_up: 4,
            t2_count: 8,
            t2_down: 4,
            t2_up: 4,
            t3_count: 4,
            t3_down: 8,
            near_meters: 10,
            far_meters: 100,
        }
    }

    /// Structural consistency checks.
    pub fn validate(&self) {
        assert_eq!(
            self.num_fa as u64 * self.fa_uplinks as u64,
            self.t1_count as u64 * self.t1_down as u64,
            "FA uplinks must equal tier-1 down ports"
        );
        assert_eq!(
            self.t1_count as u64 * self.t1_up as u64,
            self.t2_count as u64 * self.t2_down as u64,
            "tier-1 up must equal tier-2 down"
        );
        assert_eq!(
            self.t2_count as u64 * self.t2_up as u64,
            self.t3_count as u64 * self.t3_down as u64,
            "tier-2 up must equal tier-3 down"
        );
    }
}

/// The three-tier build result.
#[derive(Debug, Clone)]
pub struct ThreeTier {
    /// The built link-level topology.
    pub topo: Topology,
    /// The parameters the build used.
    pub params: ThreeTierParams,
    /// Fabric Adapter node ids, in FA-index order.
    pub fas: Vec<NodeId>,
    /// Tier-1 Fabric Element node ids.
    pub t1: Vec<NodeId>,
    /// Tier-2 Fabric Element node ids.
    pub t2: Vec<NodeId>,
    /// Tier-3 (spine) Fabric Element node ids.
    pub t3: Vec<NodeId>,
}

/// Build a three-tier folded Clos. FAs are grouped into pods (one pod per
/// tier-1 group); tier-1 FEs into super-pods (one per tier-2 group); the
/// tier-3 spine connects every tier-2 FE.
pub fn three_tier(params: ThreeTierParams) -> ThreeTier {
    params.validate();
    let mut topo = Topology::new();
    let fas: Vec<NodeId> = (0..params.num_fa)
        .map(|_| topo.add_node(NodeKind::Edge, 1))
        .collect();
    let t1: Vec<NodeId> = (0..params.t1_count)
        .map(|_| topo.add_node(NodeKind::Fabric, 2))
        .collect();
    let t2: Vec<NodeId> = (0..params.t2_count)
        .map(|_| topo.add_node(NodeKind::Fabric, 3))
        .collect();
    let t3: Vec<NodeId> = (0..params.t3_count)
        .map(|_| topo.add_node(NodeKind::Fabric, 4))
        .collect();

    // FA ↔ tier-1: pods of FAs fan out over their pod's tier-1 group.
    let pods = params.t1_count / params.fa_uplinks;
    let pod_fas = params.num_fa / pods;
    let t1_per_pod = params.t1_count / pods;
    for (i, &fa) in fas.iter().enumerate() {
        let pod = i as u32 / pod_fas;
        for a in 0..params.fa_uplinks {
            let fe = t1[(pod * t1_per_pod + a % t1_per_pod) as usize];
            topo.add_link(fa, fe, params.near_meters);
        }
    }
    // Tier-1 ↔ tier-2: super-pods.
    let spods = params.t2_count / params.t1_up;
    let t1_per_spod = params.t1_count / spods;
    let t2_per_spod = params.t2_count / spods;
    for (i, &fe1) in t1.iter().enumerate() {
        let spod = i as u32 / t1_per_spod;
        for u in 0..params.t1_up {
            let fe2 = t2[(spod * t2_per_spod + u % t2_per_spod) as usize];
            topo.add_link(fe1, fe2, params.near_meters);
        }
    }
    // Tier-2 ↔ tier-3: full spread.
    let per = params.t3_down / params.t2_count;
    for &fe3 in &t3 {
        for &fe2 in &t2 {
            for _ in 0..per {
                topo.add_link(fe2, fe3, params.far_meters);
            }
        }
    }
    ThreeTier {
        topo,
        params,
        fas,
        t1,
        t2,
        t3,
    }
}

/// Parameters of the §6.1.2 single-tier system.
#[derive(Debug, Clone, Copy)]
pub struct SingleTierParams {
    /// Number of Fabric Adapters.
    pub num_fa: u32,
    /// Uplinks per FA; must be a multiple of `fe_count`.
    pub fa_uplinks: u32,
    /// Fabric Element count.
    pub fe_count: u32,
    /// Fiber length of FA↔FE links, meters.
    pub meters: u32,
}

impl SingleTierParams {
    /// The §6.1.2 test platform: 24 Fabric Adapters, 12 Fabric Elements
    /// (Arista 7500E scale), 36 uplinks per FA (3 per FE).
    pub fn paper_6_1() -> Self {
        SingleTierParams {
            num_fa: 24,
            fa_uplinks: 36,
            fe_count: 12,
            meters: 2,
        }
    }
}

/// The single-tier build result.
#[derive(Debug, Clone)]
pub struct SingleTier {
    /// The built link-level topology.
    pub topo: Topology,
    /// The parameters the build used.
    pub params: SingleTierParams,
    /// Fabric Adapter node ids, in FA-index order.
    pub fas: Vec<NodeId>,
    /// Fabric Element node ids.
    pub fes: Vec<NodeId>,
}

/// Build a single-tier (FA — FE — FA) system: every FA spreads its uplinks
/// evenly over every FE.
pub fn single_tier(params: SingleTierParams) -> SingleTier {
    assert_eq!(
        params.fa_uplinks % params.fe_count,
        0,
        "uplinks must spread evenly over FEs"
    );
    let mut topo = Topology::new();
    let fas: Vec<NodeId> = (0..params.num_fa)
        .map(|_| topo.add_node(NodeKind::Edge, 1))
        .collect();
    let fes: Vec<NodeId> = (0..params.fe_count)
        .map(|_| topo.add_node(NodeKind::Fabric, 2))
        .collect();
    let per = params.fa_uplinks / params.fe_count;
    for &fa in &fas {
        for &fe in &fes {
            for _ in 0..per {
                topo.add_link(fa, fe, params.meters);
            }
        }
    }
    SingleTier {
        topo,
        params,
        fas,
        fes,
    }
}

/// Parameters of a k-ary fat-tree with hosts (Al-Fares).
#[derive(Debug, Clone, Copy)]
pub struct KaryParams {
    /// Switch radix `k` (even). Hosts: k³/4; k = 12 gives the 432-node
    /// topology of §6.3.
    pub k: u32,
    /// Fiber length of host↔edge links, meters.
    pub host_meters: u32,
    /// Fiber length of edge↔aggregation links, meters.
    pub edge_agg_meters: u32,
    /// Fiber length of aggregation↔core links, meters.
    pub agg_core_meters: u32,
}

impl KaryParams {
    /// The §6.3 / htsim 432-node fat-tree (k = 12).
    pub fn paper_6_3() -> Self {
        KaryParams {
            k: 12,
            host_meters: 2,
            edge_agg_meters: 10,
            agg_core_meters: 100,
        }
    }
}

/// The k-ary build result.
#[derive(Debug, Clone)]
pub struct Kary {
    /// The built link-level topology.
    pub topo: Topology,
    /// The parameters the build used.
    pub params: KaryParams,
    /// Host node ids.
    pub hosts: Vec<NodeId>,
    /// Edge (ToR) switch node ids.
    pub edges: Vec<NodeId>,
    /// Aggregation switch node ids.
    pub aggs: Vec<NodeId>,
    /// Core switch node ids.
    pub cores: Vec<NodeId>,
}

/// Build a k-ary fat-tree: k pods, each with k/2 edge and k/2 aggregation
/// switches; (k/2)² cores; k²·k/4 hosts.
pub fn kary(params: KaryParams) -> Kary {
    let k = params.k;
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even");
    let half = k / 2;
    let mut topo = Topology::new();

    let hosts: Vec<NodeId> = (0..k * half * half)
        .map(|_| topo.add_node(NodeKind::Host, 0))
        .collect();
    let edges: Vec<NodeId> = (0..k * half)
        .map(|_| topo.add_node(NodeKind::Edge, 1))
        .collect();
    let aggs: Vec<NodeId> = (0..k * half)
        .map(|_| topo.add_node(NodeKind::Fabric, 2))
        .collect();
    let cores: Vec<NodeId> = (0..half * half)
        .map(|_| topo.add_node(NodeKind::Fabric, 3))
        .collect();

    // Hosts to edges: half hosts per edge switch.
    for (i, &h) in hosts.iter().enumerate() {
        let e = edges[i / half as usize];
        topo.add_link(h, e, params.host_meters);
    }
    // Edges to aggs within a pod: full bipartite per pod.
    for pod in 0..k {
        for e in 0..half {
            for a in 0..half {
                topo.add_link(
                    edges[(pod * half + e) as usize],
                    aggs[(pod * half + a) as usize],
                    params.edge_agg_meters,
                );
            }
        }
    }
    // Aggs to cores: agg `a` of each pod connects to cores [a·k/2, (a+1)·k/2).
    for pod in 0..k {
        for a in 0..half {
            for c in 0..half {
                topo.add_link(
                    aggs[(pod * half + a) as usize],
                    cores[(a * half + c) as usize],
                    params.agg_core_meters,
                );
            }
        }
    }

    Kary {
        topo,
        params,
        hosts,
        edges,
        aggs,
        cores,
    }
}

/// Parameters of a balanced dragonfly (Kim et al., ISCA '08): groups of
/// `a` fully-meshed routers, `h` global links per router, palmtree
/// global wiring over `g = a·h + 1` groups, `p` Fabric Adapters per
/// router. Flat fabric: all routers are level-2 Fabric Elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DragonflyParams {
    /// Routers per group (`a`).
    pub routers_per_group: u32,
    /// Global links per router (`h`); groups `g = a·h + 1`.
    pub globals_per_router: u32,
    /// Fabric Adapters attached per router (`p`).
    pub fas_per_router: u32,
    /// Fiber length of FA↔router links, meters.
    pub host_meters: u32,
    /// Fiber length of intra-group links, meters.
    pub local_meters: u32,
    /// Fiber length of global (inter-group) links, meters.
    pub global_meters: u32,
}

impl DragonflyParams {
    /// The CI-scale zoo configuration: a=4, h=1, p=1 → 5 groups,
    /// 20 routers, 20 FAs, router radix 5.
    pub fn zoo() -> Self {
        DragonflyParams {
            routers_per_group: 4,
            globals_per_router: 1,
            fas_per_router: 1,
            host_meters: 2,
            local_meters: 5,
            global_meters: 100,
        }
    }

    /// Number of groups (balanced: `g = a·h + 1`).
    pub fn groups(&self) -> u32 {
        self.routers_per_group * self.globals_per_router + 1
    }

    /// Structural sanity checks.
    pub fn validate(&self) {
        assert!(
            self.routers_per_group >= 1,
            "need at least one router per group"
        );
        assert!(
            self.globals_per_router >= 1,
            "need at least one global link per router"
        );
        assert!(self.fas_per_router >= 1, "need at least one FA per router");
    }
}

/// The dragonfly build result.
#[derive(Debug, Clone)]
pub struct Dragonfly {
    /// The built link-level topology.
    pub topo: Topology,
    /// The parameters the build used.
    pub params: DragonflyParams,
    /// Fabric Adapter node ids, in FA-index order.
    pub fas: Vec<NodeId>,
    /// Router node ids, group-major.
    pub routers: Vec<NodeId>,
}

/// Build a balanced dragonfly with palmtree global wiring: group `i`'s
/// global channel `k` (router `k / h`) connects to group
/// `(i + k + 1) mod g`, whose matching channel is `a·h − k − 1` — a
/// standard symmetric assignment with exactly `h` globals per router.
pub fn dragonfly(params: DragonflyParams) -> Dragonfly {
    params.validate();
    let (a, h, p) = (
        params.routers_per_group,
        params.globals_per_router,
        params.fas_per_router,
    );
    let g = params.groups();
    let mut topo = Topology::new();
    let fas: Vec<NodeId> = (0..g * a * p)
        .map(|_| topo.add_node(NodeKind::Edge, 1))
        .collect();
    let routers: Vec<NodeId> = (0..g * a)
        .map(|_| topo.add_node(NodeKind::Fabric, 2))
        .collect();

    // FAs: p per router, FA index router-major.
    for (i, &fa) in fas.iter().enumerate() {
        let r = routers[i / p as usize];
        topo.add_link(fa, r, params.host_meters);
    }
    // Intra-group complete graph.
    for grp in 0..g {
        for i in 0..a {
            for j in (i + 1)..a {
                topo.add_link(
                    routers[(grp * a + i) as usize],
                    routers[(grp * a + j) as usize],
                    params.local_meters,
                );
            }
        }
    }
    // Palmtree global wiring; each unordered group pair gets exactly one
    // link, added from the lower-numbered group's side.
    for i in 0..g {
        for k in 0..a * h {
            let j = (i + k + 1) % g;
            if i < j {
                let k_peer = a * h - k - 1;
                topo.add_link(
                    routers[(i * a + k / h) as usize],
                    routers[(j * a + k_peer / h) as usize],
                    params.global_meters,
                );
            }
        }
    }
    Dragonfly {
        topo,
        params,
        fas,
        routers,
    }
}

/// Parameters of a Space Shuffle fabric (Yu et al., arXiv:1405.4697):
/// every switch gets a coordinate in `spaces` independent ring
/// permutations; the physical graph is the union of the ring
/// adjacencies; greedy routing forwards to any neighbor strictly closer
/// in the *best* space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceShuffleParams {
    /// Number of switches (≥ 3).
    pub switches: u32,
    /// Number of ring spaces (≥ 1).
    pub spaces: u32,
    /// Fabric Adapters per switch.
    pub fas_per_switch: u32,
    /// Master seed for the ring permutations.
    pub seed: u64,
    /// Fiber length of FA↔switch links, meters.
    pub host_meters: u32,
    /// Fiber length of switch↔switch links, meters.
    pub ring_meters: u32,
}

impl SpaceShuffleParams {
    /// The CI-scale zoo configuration: 16 switches × 3 spaces × 1 FA.
    pub fn zoo(seed: u64) -> Self {
        SpaceShuffleParams {
            switches: 16,
            spaces: 3,
            fas_per_switch: 1,
            seed,
            host_meters: 2,
            ring_meters: 50,
        }
    }

    /// Structural sanity checks.
    pub fn validate(&self) {
        assert!(self.switches >= 3, "need at least 3 switches for rings");
        assert!(self.spaces >= 1, "need at least one ring space");
        assert!(self.fas_per_switch >= 1, "need at least one FA per switch");
    }
}

/// The Space Shuffle build result.
#[derive(Debug, Clone)]
pub struct SpaceShuffle {
    /// The built link-level topology.
    pub topo: Topology,
    /// The parameters the build used.
    pub params: SpaceShuffleParams,
    /// Fabric Adapter node ids, in FA-index order.
    pub fas: Vec<NodeId>,
    /// Switch node ids, in switch-index order.
    pub switches: Vec<NodeId>,
    /// `positions[space][switch]` = ring position of the switch.
    pub positions: Vec<Vec<u32>>,
}

impl SpaceShuffle {
    /// The greedy-routing potential: an FA's own node is 0; a switch is
    /// `1 + min over spaces of circular ring distance` to the
    /// destination's switch; other FAs are unreachable (∞). Greedy is
    /// live: in the arg-min space, the ring neighbor along the shorter
    /// arc is strictly closer, so every candidate set is non-empty.
    pub fn plan(&self) -> RoutePlan {
        let n = self.params.switches as u64;
        let p = self.params.fas_per_switch as usize;
        let positions = &self.positions;
        let switches = &self.switches;
        let fas = &self.fas;
        RoutePlan::from_potential(&self.topo, |topo, dst, phi| {
            phi.clear();
            phi.resize(topo.num_nodes(), u64::MAX);
            phi[dst.0 as usize] = 0;
            let dst_sw = fas.iter().position(|&f| f == dst).unwrap() / p;
            for (s, &sw) in switches.iter().enumerate() {
                let best = positions
                    .iter()
                    .map(|pos| {
                        let d = pos[s].abs_diff(pos[dst_sw]) as u64;
                        d.min(n - d)
                    })
                    .min()
                    .unwrap();
                phi[sw.0 as usize] = 1 + best;
            }
        })
    }
}

/// Build a Space Shuffle fabric: seeded ring permutations, deduplicated
/// union of ring adjacencies, `fas_per_switch` FAs per switch.
pub fn space_shuffle(params: SpaceShuffleParams) -> SpaceShuffle {
    params.validate();
    let n = params.switches;
    let mut topo = Topology::new();
    let fas: Vec<NodeId> = (0..n * params.fas_per_switch)
        .map(|_| topo.add_node(NodeKind::Edge, 1))
        .collect();
    let switches: Vec<NodeId> = (0..n).map(|_| topo.add_node(NodeKind::Fabric, 2)).collect();
    for (i, &fa) in fas.iter().enumerate() {
        topo.add_link(
            fa,
            switches[i / params.fas_per_switch as usize],
            params.host_meters,
        );
    }

    let base = DetRng::from_label(params.seed, "space-shuffle-rings");
    let mut positions: Vec<Vec<u32>> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for space in 0..params.spaces {
        let mut rng = base.split_u64(space as u64);
        let mut perm: Vec<u32> = (0..n).collect();
        rng.shuffle(&mut perm);
        // Ring adjacency; skip pairs an earlier space already wired.
        for i in 0..n as usize {
            let (s, t) = (perm[i], perm[(i + 1) % n as usize]);
            let pair = (s.min(t), s.max(t));
            if seen.insert(pair) {
                topo.add_link(
                    switches[s as usize],
                    switches[t as usize],
                    params.ring_meters,
                );
            }
        }
        let mut pos = vec![0u32; n as usize];
        for (i, &s) in perm.iter().enumerate() {
            pos[s as usize] = i as u32;
        }
        positions.push(pos);
    }
    SpaceShuffle {
        topo,
        params,
        fas,
        switches,
        positions,
    }
}

/// Parameters of a random regular expander: `degree / 2` seeded
/// Hamiltonian cycles superposed over `switches` nodes (duplicate pairs
/// skipped, so switch degree is ≤ `degree` and usually exactly it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpanderParams {
    /// Number of switches (≥ 3).
    pub switches: u32,
    /// Target switch degree (even, `2 ≤ degree < switches`).
    pub degree: u32,
    /// Fabric Adapters per switch.
    pub fas_per_switch: u32,
    /// Master seed for the cycle permutations.
    pub seed: u64,
    /// Fiber length of FA↔switch links, meters.
    pub host_meters: u32,
    /// Fiber length of switch↔switch links, meters.
    pub mesh_meters: u32,
}

impl ExpanderParams {
    /// The CI-scale zoo configuration: 16 switches, degree 4, 1 FA each.
    pub fn zoo(seed: u64) -> Self {
        ExpanderParams {
            switches: 16,
            degree: 4,
            fas_per_switch: 1,
            seed,
            host_meters: 2,
            mesh_meters: 50,
        }
    }

    /// Structural sanity checks.
    pub fn validate(&self) {
        assert!(self.switches >= 3, "need at least 3 switches");
        assert!(
            self.degree >= 2 && self.degree.is_multiple_of(2),
            "degree must be even and at least 2"
        );
        assert!(
            self.degree < self.switches,
            "degree must be below the switch count"
        );
        assert!(self.fas_per_switch >= 1, "need at least one FA per switch");
    }
}

/// The expander build result.
#[derive(Debug, Clone)]
pub struct Expander {
    /// The built link-level topology.
    pub topo: Topology,
    /// The parameters the build used.
    pub params: ExpanderParams,
    /// Fabric Adapter node ids, in FA-index order.
    pub fas: Vec<NodeId>,
    /// Switch node ids, in switch-index order.
    pub switches: Vec<NodeId>,
}

/// Build a random regular expander from superposed seeded Hamiltonian
/// cycles (each cycle is connected, so the union always is).
pub fn expander(params: ExpanderParams) -> Expander {
    params.validate();
    let n = params.switches;
    let mut topo = Topology::new();
    let fas: Vec<NodeId> = (0..n * params.fas_per_switch)
        .map(|_| topo.add_node(NodeKind::Edge, 1))
        .collect();
    let switches: Vec<NodeId> = (0..n).map(|_| topo.add_node(NodeKind::Fabric, 2)).collect();
    for (i, &fa) in fas.iter().enumerate() {
        topo.add_link(
            fa,
            switches[i / params.fas_per_switch as usize],
            params.host_meters,
        );
    }
    let base = DetRng::from_label(params.seed, "expander-cycles");
    let mut seen = std::collections::BTreeSet::new();
    for cycle in 0..params.degree / 2 {
        let mut rng = base.split_u64(cycle as u64);
        let mut perm: Vec<u32> = (0..n).collect();
        rng.shuffle(&mut perm);
        for i in 0..n as usize {
            let (s, t) = (perm[i], perm[(i + 1) % n as usize]);
            let pair = (s.min(t), s.max(t));
            if seen.insert(pair) {
                topo.add_link(
                    switches[s as usize],
                    switches[t as usize],
                    params.mesh_meters,
                );
            }
        }
    }
    Expander {
        topo,
        params,
        fas,
        switches,
    }
}

impl TopologyBuilder for TwoTierParams {
    fn build_fabric(&self) -> Built {
        Built::shortest_path(two_tier(*self).topo)
    }
}

impl TopologyBuilder for ThreeTierParams {
    fn build_fabric(&self) -> Built {
        Built::shortest_path(three_tier(*self).topo)
    }
}

impl TopologyBuilder for SingleTierParams {
    fn build_fabric(&self) -> Built {
        Built::shortest_path(single_tier(*self).topo)
    }
}

impl TopologyBuilder for KaryParams {
    fn build_fabric(&self) -> Built {
        Built::shortest_path(kary(*self).topo)
    }
}

impl TopologyBuilder for DragonflyParams {
    fn build_fabric(&self) -> Built {
        Built::shortest_path(dragonfly(*self).topo)
    }
}

impl TopologyBuilder for SpaceShuffleParams {
    fn build_fabric(&self) -> Built {
        let ss = space_shuffle(*self);
        let plan = ss.plan();
        Built::new(ss.topo, plan)
    }
}

impl TopologyBuilder for ExpanderParams {
    fn build_fabric(&self) -> Built {
        Built::shortest_path(expander(*self).topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeKind;

    #[test]
    fn paper_two_tier_dimensions() {
        let p = TwoTierParams::paper_6_2();
        p.validate();
        assert_eq!(p.pods(), 4);
        assert_eq!(p.pod_fa_count(), 64);
        let tt = two_tier(p);
        assert_eq!(tt.fas.len(), 256);
        assert_eq!(tt.t1.len(), 128);
        assert_eq!(tt.t2.len(), 64);
        // Link count: 256×32 + 128×64 = 8192 + 8192 = 16384.
        assert_eq!(tt.topo.num_links(), 16_384);
        tt.topo.validate(128);
    }

    #[test]
    fn two_tier_port_counts() {
        let tt = two_tier(TwoTierParams::paper_6_2());
        for &fa in &tt.fas {
            assert_eq!(tt.topo.node(fa).links.len(), 32);
        }
        for &fe in &tt.t1 {
            assert_eq!(tt.topo.up_links(fe).len(), 64);
            assert_eq!(tt.topo.down_links(fe).len(), 64);
        }
        for &fe in &tt.t2 {
            assert_eq!(tt.topo.down_links(fe).len(), 128);
            assert!(tt.topo.up_links(fe).is_empty());
        }
    }

    #[test]
    fn two_tier_any_to_any_reachability() {
        let tt = two_tier(TwoTierParams::paper_scaled(8));
        let reach = tt.topo.downward_edge_reach();
        // Every spine FE reaches every FA.
        for &sp in &tt.t2 {
            assert_eq!(reach[sp.0 as usize].len(), tt.fas.len());
        }
        // Every aggregation FE reaches exactly its pod downward...
        let pod_fas = tt.params.pod_fa_count() as usize;
        for &agg in &tt.t1 {
            assert_eq!(reach[agg.0 as usize].len(), pod_fas);
        }
        // ...and has up links to fall back on for everything else.
        for &agg in &tt.t1 {
            let other_pod_dst = tt
                .fas
                .iter()
                .find(|&&f| reach[agg.0 as usize].binary_search(&f).is_err())
                .copied()
                .unwrap();
            let fwd = tt.topo.forward_links(agg, other_pod_dst, &reach);
            assert_eq!(fwd.len(), tt.topo.up_links(agg).len());
        }
    }

    #[test]
    fn scaled_variant_keeps_structure() {
        let p = TwoTierParams::paper_scaled(4);
        p.validate();
        let tt = two_tier(p);
        assert_eq!(tt.fas.len(), 64);
        assert_eq!(tt.topo.num_links(), 64 * 8 + 32 * 16);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn bad_scale_factor_panics() {
        TwoTierParams::paper_scaled(3);
    }

    #[test]
    fn three_tier_dimensions_and_reach() {
        let p = ThreeTierParams::small();
        p.validate();
        let tt = three_tier(p);
        assert_eq!(tt.fas.len(), 16);
        // Links: 16×2 + 8×4 + 8×4 = 96.
        assert_eq!(tt.topo.num_links(), 96);
        tt.topo.validate(8);
        let reach = tt.topo.downward_edge_reach();
        // The spine reaches every FA.
        for &sp in &tt.t3 {
            assert_eq!(reach[sp.0 as usize].len(), 16);
        }
        // Forwarding from a tier-1 FE toward a remote pod uses up links.
        let remote = tt.fas[15];
        let fwd = tt.topo.forward_links(tt.t1[0], remote, &reach);
        assert_eq!(fwd.len(), tt.topo.up_links(tt.t1[0]).len());
    }

    #[test]
    fn single_tier_dimensions() {
        let st = single_tier(SingleTierParams::paper_6_1());
        assert_eq!(st.fas.len(), 24);
        assert_eq!(st.fes.len(), 12);
        // 24 FAs × 36 uplinks = 864 links; 72 per FE.
        assert_eq!(st.topo.num_links(), 864);
        for &fe in &st.fes {
            assert_eq!(st.topo.node(fe).links.len(), 72);
        }
    }

    #[test]
    fn single_tier_every_fe_reaches_every_fa() {
        let st = single_tier(SingleTierParams::paper_6_1());
        let reach = st.topo.downward_edge_reach();
        for &fe in &st.fes {
            assert_eq!(reach[fe.0 as usize].len(), 24);
        }
    }

    #[test]
    fn kary_432_dimensions() {
        let ft = kary(KaryParams::paper_6_3());
        assert_eq!(ft.hosts.len(), 432);
        assert_eq!(ft.edges.len(), 72);
        assert_eq!(ft.aggs.len(), 72);
        assert_eq!(ft.cores.len(), 36);
        // Links: hosts 432 + edge-agg 12·6·6 = 432 + agg-core 12·6·6 = 432.
        assert_eq!(ft.topo.num_links(), 432 * 3);
        ft.topo.validate(12);
    }

    #[test]
    fn kary_switch_radix_is_k() {
        let ft = kary(KaryParams::paper_6_3());
        for &e in &ft.edges {
            assert_eq!(ft.topo.node(e).links.len(), 12);
        }
        for &a in &ft.aggs {
            assert_eq!(ft.topo.node(a).links.len(), 12);
        }
        for &c in &ft.cores {
            assert_eq!(ft.topo.node(c).links.len(), 12);
        }
    }

    #[test]
    fn kary_core_reaches_all_edges() {
        let ft = kary(KaryParams {
            k: 4,
            ..KaryParams::paper_6_3()
        });
        let reach = ft.topo.downward_edge_reach();
        for &c in &ft.cores {
            assert_eq!(reach[c.0 as usize].len(), ft.edges.len());
        }
        // Aggregation reaches only its pod's edges.
        for &a in &ft.aggs {
            assert_eq!(reach[a.0 as usize].len(), 2);
        }
    }

    #[test]
    fn dragonfly_zoo_dimensions() {
        let p = DragonflyParams::zoo();
        assert_eq!(p.groups(), 5);
        let df = dragonfly(p);
        assert_eq!(df.fas.len(), 20);
        assert_eq!(df.routers.len(), 20);
        // Links: 20 FA + 5·(4·3/2)=30 local + 5·4·1/2=10 global.
        assert_eq!(df.topo.num_links(), 20 + 30 + 10);
        // Router radix: p + (a−1) + h = 1 + 3 + 1.
        for &r in &df.routers {
            assert_eq!(df.topo.node(r).links.len(), 5);
        }
        df.topo.validate(5);
    }

    #[test]
    fn dragonfly_every_group_pair_linked_once() {
        let df = dragonfly(DragonflyParams::zoo());
        let a = df.params.routers_per_group;
        let mut pair_links = std::collections::BTreeMap::new();
        for l in df.topo.link_ids() {
            let ends = df.topo.link(l).ends;
            let grp = |n: NodeId| {
                df.routers
                    .iter()
                    .position(|&r| r == n)
                    .map(|i| i as u32 / a)
            };
            if let (Some(ga), Some(gb)) = (grp(ends[0]), grp(ends[1])) {
                if ga != gb {
                    *pair_links.entry((ga.min(gb), ga.max(gb))).or_insert(0u32) += 1;
                }
            }
        }
        assert_eq!(pair_links.len(), 10, "all 5·4/2 group pairs wired");
        assert!(pair_links.values().all(|&c| c == 1));
    }

    #[test]
    fn space_shuffle_builds_connected_and_deterministic() {
        let ss = space_shuffle(SpaceShuffleParams::zoo(7));
        assert_eq!(ss.fas.len(), 16);
        assert_eq!(ss.switches.len(), 16);
        ss.topo.validate(16);
        // Deterministic for a seed, different across seeds.
        let again = space_shuffle(SpaceShuffleParams::zoo(7));
        assert_eq!(ss.topo.num_links(), again.topo.num_links());
        assert_eq!(ss.positions, again.positions);
        let other = space_shuffle(SpaceShuffleParams::zoo(8));
        assert_ne!(ss.positions, other.positions);
        // The greedy plan never leaves a reachable destination without a
        // candidate (checked inside from_potential in debug builds).
        let plan = ss.plan();
        assert_eq!(plan.num_endpoints, 16);
        // Each switch's FA link carries exactly that FA.
        for (i, &fa) in ss.fas.iter().enumerate() {
            let l = ss.topo.node(fa).links[0];
            let dir = ss.topo.dir_from(ss.topo.peer(fa, l), l);
            let set = &plan.dir_dsts[dir.link.0 as usize * 2 + dir.from_end as usize];
            assert_eq!(set.expand(), vec![i as u32]);
        }
    }

    #[test]
    fn expander_builds_regular_and_connected() {
        let ex = expander(ExpanderParams::zoo(3));
        assert_eq!(ex.fas.len(), 16);
        ex.topo.validate(16);
        for &s in &ex.switches {
            let deg = ex.topo.node(s).links.len() - ex.params.fas_per_switch as usize;
            assert!((2..=4).contains(&deg), "switch degree {deg} out of range");
        }
        // Connectivity: the shortest-path plan reaches every endpoint
        // from every FA uplink (no empty uplink candidate set).
        let plan = RoutePlan::shortest_path(&ex.topo);
        for (i, &fa) in ex.fas.iter().enumerate() {
            let l = ex.topo.node(fa).links[0];
            let dir = ex.topo.dir_from(fa, l);
            let set = &plan.dir_dsts[dir.link.0 as usize * 2 + dir.from_end as usize];
            assert_eq!(set.len(), ex.fas.len() - 1);
            assert!(!set.contains(i as u32));
        }
    }

    #[test]
    fn zoo_groups_follow_switch_blocks() {
        let df = dragonfly(DragonflyParams {
            fas_per_router: 2,
            ..DragonflyParams::zoo()
        });
        let built = DragonflyParams {
            fas_per_router: 2,
            ..DragonflyParams::zoo()
        }
        .build_fabric();
        assert_eq!(built.endpoints.len(), 40);
        // One group per router, two FAs each.
        assert_eq!(built.plan.groups.len(), df.routers.len());
        assert!(built.plan.groups.iter().all(|g| g.len() == 2));
    }

    #[test]
    fn node_kind_partitions() {
        let ft = kary(KaryParams {
            k: 4,
            ..KaryParams::paper_6_3()
        });
        assert_eq!(ft.topo.nodes_of_kind(NodeKind::Host).len(), 16);
        assert_eq!(ft.topo.nodes_of_kind(NodeKind::Edge).len(), 8);
        assert_eq!(ft.topo.nodes_of_kind(NodeKind::Fabric).len(), 8 + 4);
    }
}
