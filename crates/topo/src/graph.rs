//! The topology graph: nodes, levels and full-duplex links.

/// Index of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of a full-duplex link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

/// One direction of a full-duplex link: traffic flowing *out of* end
/// `from_end` (0 or 1) toward the opposite end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkDir {
    /// The underlying full-duplex link.
    pub link: LinkId,
    /// Which end (0 or 1) traffic flows out of.
    pub from_end: u8,
}

impl LinkDir {
    /// The reverse direction of the same link.
    pub fn reverse(self) -> LinkDir {
        LinkDir {
            link: self.link,
            from_end: 1 - self.from_end,
        }
    }
}

/// What a node is. The paper's device taxonomy: hosts attach to the edge;
/// edge devices (ToR / Fabric Adapter) speak packets; fabric devices
/// (Ethernet switch in the baseline, Fabric Element in Stardust) make up
/// the interior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An end host (only present in host-level topologies).
    Host,
    /// Edge device: ToR switch / Fabric Adapter.
    Edge,
    /// Interior device: Ethernet switch / Fabric Element.
    Fabric,
}

/// A node: kind, tier level and attached links.
///
/// Levels: hosts are 0, edge devices 1, first fabric tier 2, and so on.
#[derive(Debug, Clone)]
pub struct Node {
    /// What role the node plays in the fabric.
    pub kind: NodeKind,
    /// Tier level (hosts 0, edge 1, fabric tiers 2+).
    pub level: u8,
    /// Links attached to this node, in port order.
    pub links: Vec<LinkId>,
}

/// A full-duplex link between two node ends, with its fiber length.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// The two endpoints.
    pub ends: [NodeId; 2],
    /// Fiber length in meters (drives propagation delay).
    pub meters: u32,
}

impl Link {
    /// The node at end `e`.
    pub fn end(&self, e: u8) -> NodeId {
        self.ends[e as usize]
    }
    /// The node a [`LinkDir`] points *to*.
    pub fn dst_of(&self, dir_from_end: u8) -> NodeId {
        self.ends[1 - dir_from_end as usize]
    }
    /// The end index (0/1) occupied by `node`; panics if not an endpoint.
    pub fn end_of(&self, node: NodeId) -> u8 {
        if self.ends[0] == node {
            0
        } else if self.ends[1] == node {
            1
        } else {
            panic!("node {node:?} is not an endpoint of this link");
        }
    }
}

/// An immutable multigraph of nodes and full-duplex links.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl Topology {
    /// Empty topology (use the builders in [`crate::builders`]).
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self, kind: NodeKind, level: u8) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind,
            level,
            links: Vec::new(),
        });
        id
    }

    /// Connect two nodes with a full-duplex link of the given fiber length.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, meters: u32) -> LinkId {
        assert_ne!(a, b, "self-links are not allowed");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            ends: [a, b],
            meters,
        });
        self.nodes[a.0 as usize].links.push(id);
        self.nodes[b.0 as usize].links.push(id);
        id
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
    /// Number of full-duplex links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }
    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }
    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }
    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }
    /// All link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links.len() as u32).map(LinkId)
    }
    /// Node ids of a given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.node_ids()
            .filter(|&n| self.node(n).kind == kind)
            .collect()
    }

    /// The far-end node of `link` as seen from `node`.
    pub fn peer(&self, node: NodeId, link: LinkId) -> NodeId {
        let l = self.link(link);
        l.ends[1 - l.end_of(node) as usize]
    }

    /// The [`LinkDir`] for traffic leaving `node` on `link`.
    pub fn dir_from(&self, node: NodeId, link: LinkId) -> LinkDir {
        LinkDir {
            link,
            from_end: self.link(link).end_of(node),
        }
    }

    /// Neighbors of `node` as `(link, peer)` pairs, in port order.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (LinkId, NodeId)> + '_ {
        self.node(node)
            .links
            .iter()
            .map(move |&l| (l, self.peer(node, l)))
    }

    /// Links from `node` whose peer sits one level *above*.
    pub fn up_links(&self, node: NodeId) -> Vec<LinkId> {
        let lvl = self.node(node).level;
        self.neighbors(node)
            .filter(|&(_, p)| self.node(p).level > lvl)
            .map(|(l, _)| l)
            .collect()
    }

    /// Links from `node` whose peer sits one level *below*.
    pub fn down_links(&self, node: NodeId) -> Vec<LinkId> {
        let lvl = self.node(node).level;
        self.neighbors(node)
            .filter(|&(_, p)| self.node(p).level < lvl)
            .map(|(l, _)| l)
            .collect()
    }

    /// For every node, the set of **edge** nodes reachable by travelling
    /// strictly downward. Index: `node -> sorted Vec<NodeId>` of edges.
    ///
    /// This is the static ground truth the Fabric Element reachability
    /// protocol converges to (§4.2: each device advertises which Fabric
    /// Adapters it can reach to its upstream neighbors).
    pub fn downward_edge_reach(&self) -> Vec<Vec<NodeId>> {
        let mut reach: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        // Process levels bottom-up.
        let max_level = self.nodes.iter().map(|n| n.level).max().unwrap_or(0);
        for id in self.node_ids() {
            if self.node(id).kind == NodeKind::Edge {
                reach[id.0 as usize] = vec![id];
            }
        }
        for level in 2..=max_level {
            for id in self.node_ids() {
                if self.node(id).level != level {
                    continue;
                }
                let mut acc: Vec<NodeId> = Vec::new();
                for l in self.down_links(id) {
                    let p = self.peer(id, l);
                    acc.extend_from_slice(&reach[p.0 as usize]);
                }
                acc.sort_unstable();
                acc.dedup();
                reach[id.0 as usize] = acc;
            }
        }
        reach
    }

    /// Links a fabric node should use to forward toward edge `dst`:
    /// the down links whose subtree contains `dst` if any, else every up
    /// link (folded-Clos up/down routing, which is what dynamic cell
    /// forwarding load-balances over).
    pub fn forward_links(&self, node: NodeId, dst: NodeId, reach: &[Vec<NodeId>]) -> Vec<LinkId> {
        let down: Vec<LinkId> = self
            .down_links(node)
            .into_iter()
            .filter(|&l| {
                let p = self.peer(node, l);
                p == dst || reach[p.0 as usize].binary_search(&dst).is_ok()
            })
            .collect();
        if !down.is_empty() {
            down
        } else {
            self.up_links(node)
        }
    }

    /// Basic structural validation: port counts per node within `radix`,
    /// links only between adjacent levels — except fabric↔fabric links,
    /// which may sit within one level (flat fabrics: dragonfly groups,
    /// Space Shuffle rings, expanders).
    pub fn validate(&self, max_radix: usize) {
        for id in self.node_ids() {
            let n = self.node(id);
            assert!(
                n.links.len() <= max_radix,
                "{id:?} has {} ports (max {max_radix})",
                n.links.len()
            );
        }
        for l in &self.links {
            let la = self.node(l.ends[0]).level;
            let lb = self.node(l.ends[1]).level;
            let flat_fabric = la == lb
                && self.node(l.ends[0]).kind == NodeKind::Fabric
                && self.node(l.ends[1]).kind == NodeKind::Fabric;
            assert!(
                la.abs_diff(lb) == 1 || flat_fabric,
                "link between non-adjacent levels {la} and {lb}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        // Two edges, two fabric nodes, full mesh between levels.
        let mut t = Topology::new();
        let e0 = t.add_node(NodeKind::Edge, 1);
        let e1 = t.add_node(NodeKind::Edge, 1);
        let f0 = t.add_node(NodeKind::Fabric, 2);
        let f1 = t.add_node(NodeKind::Fabric, 2);
        t.add_link(e0, f0, 10);
        t.add_link(e0, f1, 10);
        t.add_link(e1, f0, 10);
        t.add_link(e1, f1, 10);
        (t, e0, e1, f0, f1)
    }

    #[test]
    fn peer_and_dirs() {
        let (t, e0, _, f0, _) = diamond();
        let l = t.node(e0).links[0];
        assert_eq!(t.peer(e0, l), f0);
        assert_eq!(t.peer(f0, l), e0);
        let d = t.dir_from(e0, l);
        assert_eq!(t.link(l).dst_of(d.from_end), f0);
        assert_eq!(t.link(l).dst_of(d.reverse().from_end), e0);
    }

    #[test]
    fn up_down_links() {
        let (t, e0, _, f0, _) = diamond();
        assert_eq!(t.up_links(e0).len(), 2);
        assert_eq!(t.down_links(e0).len(), 0);
        assert_eq!(t.down_links(f0).len(), 2);
        assert_eq!(t.up_links(f0).len(), 0);
    }

    #[test]
    fn downward_reach_of_fabric_covers_both_edges() {
        let (t, e0, e1, f0, f1) = diamond();
        let r = t.downward_edge_reach();
        assert_eq!(r[f0.0 as usize], vec![e0, e1]);
        assert_eq!(r[f1.0 as usize], vec![e0, e1]);
        assert_eq!(r[e0.0 as usize], vec![e0]);
    }

    #[test]
    fn forward_links_prefer_down() {
        let (t, e0, e1, f0, _) = diamond();
        let r = t.downward_edge_reach();
        let fwd = t.forward_links(f0, e1, &r);
        assert_eq!(fwd.len(), 1);
        assert_eq!(t.peer(f0, fwd[0]), e1);
        let fwd0 = t.forward_links(f0, e0, &r);
        assert_eq!(t.peer(f0, fwd0[0]), e0);
    }

    #[test]
    fn validate_passes_on_diamond() {
        let (t, ..) = diamond();
        t.validate(4);
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Edge, 1);
        t.add_link(a, a, 1);
    }

    #[test]
    #[should_panic(expected = "ports")]
    fn validate_rejects_overradix() {
        let (t, ..) = diamond();
        t.validate(1);
    }
}
