//! Pluggable route planning: per-direction candidate destination sets.
//!
//! Historically the fabric engine hard-coded folded-Clos positional
//! arithmetic: seed reachability "up-facing ports reach everything,
//! down-facing ports reach their subtree", prefer down-links when both
//! exist. That only describes tiered Clos shapes. [`RoutePlan`]
//! generalises it: for every link *direction* `n → m` it records the set
//! of destination endpoints for which `m` is a legitimate next hop from
//! `n`. Engines consume the plan for reachability seeding, advert
//! filtering, and shard grouping; nothing downstream of the plan knows
//! what shape the graph is.
//!
//! The default construction ([`RoutePlan::shortest_path`]) derives
//! candidates from a strictly-decreasing potential: `m` is a candidate
//! for destination `d` iff `φ(m, d) < φ(n, d)` where `φ` is the BFS hop
//! distance to `d`. Strict decrease makes every candidate walk loop-free
//! by construction, and on folded Clos it reproduces classic up/down
//! routing exactly (down-links toward the destination's subtree beat
//! up-links because they are strictly closer). Builders with their own
//! geometry (Space Shuffle ring coordinates) supply a custom potential
//! via [`RoutePlan::from_potential`].

use crate::graph::{NodeId, NodeKind, Topology};
use std::collections::VecDeque;
use std::sync::Arc;

/// A compact sorted set of destination endpoint indices, stored as
/// disjoint half-open ranges. On Clos fabrics candidate sets are
/// contiguous (a pod, or everything-but-one), so a direction's set is
/// one or two ranges instead of hundreds of ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DstSet {
    /// Sorted, disjoint, non-adjacent `[start, end)` ranges.
    ranges: Vec<(u32, u32)>,
}

impl DstSet {
    /// Empty set.
    pub fn new() -> Self {
        DstSet::default()
    }

    /// Append `v`, which must be ≥ every value already present.
    pub fn push(&mut self, v: u32) {
        if let Some(last) = self.ranges.last_mut() {
            debug_assert!(v >= last.1, "DstSet::push requires ascending values");
            if v == last.1 {
                last.1 += 1;
                return;
            }
        }
        self.ranges.push((v, v + 1));
    }

    /// Membership test (binary search over ranges).
    pub fn contains(&self, v: u32) -> bool {
        self.ranges
            .binary_search_by(|&(s, e)| {
                if e <= v {
                    std::cmp::Ordering::Less
                } else if s > v {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Materialise as a sorted `Vec` of endpoint indices.
    pub fn expand(&self) -> Vec<u32> {
        self.ranges.iter().flat_map(|&(s, e)| s..e).collect()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ranges.iter().map(|&(s, e)| (e - s) as usize).sum()
    }

    /// True when no member is present.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of stored ranges (compactness, for tests/diagnostics).
    pub fn num_ranges(&self) -> usize {
        self.ranges.len()
    }
}

/// Candidate next-hop structure for a topology: which destinations each
/// link direction may carry, plus the endpoint grouping shards align to.
#[derive(Debug, Clone)]
pub struct RoutePlan {
    /// Per link direction (indexed `link.0 * 2 + from_end`, matching the
    /// engine's direction indexing): the set of destination endpoint
    /// indices for which this direction strictly decreases the potential.
    pub dir_dsts: Vec<DstSet>,
    /// Endpoint grouping for shard partitioning: endpoints that share a
    /// lowest-fabric-level neighbor (pods on Clos, per-switch blocks on
    /// flat fabrics). Groups are ordered by first member; members sorted.
    pub groups: Vec<Vec<NodeId>>,
    /// Number of endpoints the plan routes between (destination indices
    /// in `dir_dsts` are `0..num_endpoints`).
    pub num_endpoints: usize,
}

impl RoutePlan {
    /// The default plan: BFS hop count as the potential. Loop-free
    /// multipath; reproduces up/down routing on folded Clos.
    pub fn shortest_path(topo: &Topology) -> RoutePlan {
        Self::from_potential(topo, bfs_hops)
    }

    /// Build a plan from a custom potential. `fill(topo, dst, phi)` must
    /// fill `phi` with one value per node: 0 at `dst`, `u64::MAX` where
    /// `dst` is unreachable, and such that every node with a finite
    /// positive potential has a neighbor with a strictly smaller one
    /// (checked in debug builds) — that guarantee is what makes every
    /// candidate set non-empty and every candidate walk loop-free.
    pub fn from_potential<F>(topo: &Topology, mut fill: F) -> RoutePlan
    where
        F: FnMut(&Topology, NodeId, &mut Vec<u64>),
    {
        let endpoints = topo.nodes_of_kind(NodeKind::Edge);
        let mut dir_dsts = vec![DstSet::new(); topo.num_links() * 2];
        let mut phi: Vec<u64> = Vec::new();
        for (d_idx, &d) in endpoints.iter().enumerate() {
            fill(topo, d, &mut phi);
            assert_eq!(
                phi.len(),
                topo.num_nodes(),
                "potential must cover all nodes"
            );
            assert_eq!(phi[d.0 as usize], 0, "destination potential must be 0");
            debug_assert!(
                potential_descends(topo, &phi),
                "potential has a local minimum off {d:?}"
            );
            for l in topo.link_ids() {
                let link = topo.link(l);
                for from_end in 0..2u8 {
                    let n = link.end(from_end);
                    let m = link.dst_of(from_end);
                    if phi[m.0 as usize] < phi[n.0 as usize] {
                        dir_dsts[l.0 as usize * 2 + from_end as usize].push(d_idx as u32);
                    }
                }
            }
        }
        let groups = endpoint_groups(topo, &endpoints);
        RoutePlan {
            dir_dsts,
            groups,
            num_endpoints: endpoints.len(),
        }
    }

    /// The candidate destination set for a link direction (engine dir
    /// index convention: `link * 2 + from_end`).
    pub fn dsts_of_dir(&self, dir: usize) -> &DstSet {
        &self.dir_dsts[dir]
    }
}

/// BFS hop distances from `src` over the undirected graph.
fn bfs_hops(topo: &Topology, src: NodeId, dist: &mut Vec<u64>) {
    dist.clear();
    dist.resize(topo.num_nodes(), u64::MAX);
    dist[src.0 as usize] = 0;
    let mut q = VecDeque::new();
    q.push_back(src);
    while let Some(n) = q.pop_front() {
        let dn = dist[n.0 as usize];
        for (_, p) in topo.neighbors(n) {
            if dist[p.0 as usize] == u64::MAX {
                dist[p.0 as usize] = dn + 1;
                q.push_back(p);
            }
        }
    }
}

/// Debug check: every finitely-reachable non-destination node has some
/// strictly-downhill neighbor, i.e. no candidate set is empty.
fn potential_descends(topo: &Topology, phi: &[u64]) -> bool {
    topo.node_ids().all(|n| {
        let pn = phi[n.0 as usize];
        if pn == 0 || pn == u64::MAX {
            return true;
        }
        topo.neighbors(n).any(|(_, p)| phi[p.0 as usize] < pn)
    })
}

/// Group endpoints that share a lowest-fabric-level neighbor, via
/// union-find. On two/three-tier Clos this recovers pods (FAs sharing
/// tier-1 FEs); on single-tier everything collapses into one group; on
/// flat fabrics it yields per-switch endpoint blocks.
fn endpoint_groups(topo: &Topology, endpoints: &[NodeId]) -> Vec<Vec<NodeId>> {
    let min_fabric_level = topo
        .node_ids()
        .filter(|&n| topo.node(n).kind == NodeKind::Fabric)
        .map(|n| topo.node(n).level)
        .min();
    let Some(lvl) = min_fabric_level else {
        return endpoints.iter().map(|&e| vec![e]).collect();
    };
    // Endpoint index per node (sentinel where not an endpoint).
    let mut ep_of = vec![u32::MAX; topo.num_nodes()];
    for (i, &e) in endpoints.iter().enumerate() {
        ep_of[e.0 as usize] = i as u32;
    }
    let mut parent: Vec<u32> = (0..endpoints.len() as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            let up = parent[parent[x as usize] as usize];
            parent[x as usize] = up;
            x = up;
        }
        x
    }
    for f in topo.node_ids() {
        let node = topo.node(f);
        if node.kind != NodeKind::Fabric || node.level != lvl {
            continue;
        }
        let mut first: Option<u32> = None;
        for (_, p) in topo.neighbors(f) {
            let ep = ep_of[p.0 as usize];
            if ep == u32::MAX {
                continue;
            }
            match first {
                None => first = Some(ep),
                Some(r) => {
                    let (ra, rb) = (find(&mut parent, r), find(&mut parent, ep));
                    if ra != rb {
                        parent[rb as usize] = ra;
                    }
                }
            }
        }
    }
    // Collect classes ordered by first member.
    let mut group_of_root = vec![u32::MAX; endpoints.len()];
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    for i in 0..endpoints.len() as u32 {
        let root = find(&mut parent, i) as usize;
        if group_of_root[root] == u32::MAX {
            group_of_root[root] = groups.len() as u32;
            groups.push(Vec::new());
        }
        groups[group_of_root[root] as usize].push(endpoints[i as usize]);
    }
    groups
}

/// A constructed fabric: the graph, its packet endpoints (Fabric
/// Adapters / edge switches, in engine index order), and the route plan
/// engines consume.
#[derive(Debug, Clone)]
pub struct Built {
    /// The link-level topology.
    pub topo: Topology,
    /// Endpoint node ids in engine index order (= ascending node id).
    pub endpoints: Vec<NodeId>,
    /// The routing plan for this graph.
    pub plan: Arc<RoutePlan>,
}

impl Built {
    /// Wrap a topology with an already-computed plan.
    pub fn new(topo: Topology, plan: RoutePlan) -> Built {
        let endpoints = topo.nodes_of_kind(NodeKind::Edge);
        assert_eq!(plan.num_endpoints, endpoints.len());
        Built {
            topo,
            endpoints,
            plan: Arc::new(plan),
        }
    }

    /// Wrap a topology with the default shortest-path plan.
    pub fn shortest_path(topo: Topology) -> Built {
        let plan = RoutePlan::shortest_path(&topo);
        Built::new(topo, plan)
    }
}

/// One uniform surface over every fabric shape: build the graph and its
/// route plan. Implemented by all `*Params` types in
/// [`crate::builders`], so spec/bench layers dispatch on a parameter
/// value instead of naming a concrete constructor.
pub trait TopologyBuilder {
    /// Build the graph, endpoint list, and route plan.
    fn build_fabric(&self) -> Built;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{single_tier, two_tier, SingleTierParams, TwoTierParams};

    #[test]
    fn dstset_push_contains_expand() {
        let mut s = DstSet::new();
        for v in [0u32, 1, 2, 5, 6, 9] {
            s.push(v);
        }
        assert_eq!(s.num_ranges(), 3);
        assert_eq!(s.len(), 6);
        assert_eq!(s.expand(), vec![0, 1, 2, 5, 6, 9]);
        for v in [0u32, 2, 5, 6, 9] {
            assert!(s.contains(v));
        }
        for v in [3u32, 4, 7, 8, 10, 100] {
            assert!(!s.contains(v));
        }
        assert!(DstSet::new().is_empty());
        assert!(!DstSet::new().contains(0));
    }

    /// On two-tier Clos the shortest-path plan reproduces up/down
    /// routing: FA uplinks carry everything but the FA itself, tier-1
    /// down-links carry exactly one pod member each... and at the
    /// destination pod's tier-1 FE only the down-link toward the
    /// destination is a candidate (down-preference, structurally).
    #[test]
    fn clos_plan_matches_up_down_routing() {
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let plan = RoutePlan::shortest_path(&tt.topo);
        assert_eq!(plan.num_endpoints, 16);
        let pod_fas = tt.params.pod_fa_count() as usize;

        for (i, &fa) in tt.fas.iter().enumerate() {
            for l in tt.topo.up_links(fa) {
                let dir = tt.topo.dir_from(fa, l);
                let set = &plan.dir_dsts[dir.link.0 as usize * 2 + dir.from_end as usize];
                assert_eq!(set.len(), tt.fas.len() - 1, "uplink carries all but self");
                assert!(!set.contains(i as u32));
            }
        }
        for &agg in &tt.t1 {
            for l in tt.topo.down_links(agg) {
                let dir = tt.topo.dir_from(agg, l);
                let set = &plan.dir_dsts[dir.link.0 as usize * 2 + dir.from_end as usize];
                // The down-link to FA j carries exactly {j}.
                let peer = tt.topo.peer(agg, l);
                let j = tt.fas.iter().position(|&f| f == peer).unwrap() as u32;
                assert_eq!(set.expand(), vec![j]);
            }
            for l in tt.topo.up_links(agg) {
                let dir = tt.topo.dir_from(agg, l);
                let set = &plan.dir_dsts[dir.link.0 as usize * 2 + dir.from_end as usize];
                // Uplinks carry exactly the other pods.
                assert_eq!(set.len(), tt.fas.len() - pod_fas);
            }
        }
        for &sp in &tt.t2 {
            for l in tt.topo.down_links(sp) {
                let dir = tt.topo.dir_from(sp, l);
                let set = &plan.dir_dsts[dir.link.0 as usize * 2 + dir.from_end as usize];
                // Spine down-link to a tier-1 FE carries that FE's pod.
                assert_eq!(set.len(), pod_fas);
            }
        }
    }

    #[test]
    fn clos_groups_are_pods() {
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let plan = RoutePlan::shortest_path(&tt.topo);
        assert_eq!(plan.groups.len(), tt.params.pods() as usize);
        for (g, group) in plan.groups.iter().enumerate() {
            assert_eq!(group.len(), tt.params.pod_fa_count() as usize);
            for (k, &m) in group.iter().enumerate() {
                assert_eq!(m, tt.fas[g * tt.params.pod_fa_count() as usize + k]);
            }
        }
    }

    #[test]
    fn single_tier_collapses_to_one_group() {
        let st = single_tier(SingleTierParams::paper_6_1());
        let plan = RoutePlan::shortest_path(&st.topo);
        assert_eq!(plan.groups.len(), 1);
        assert_eq!(plan.groups[0].len(), 24);
        // Every FE-side down direction carries exactly one FA.
        for &fe in &st.fes {
            for (l, peer) in st.topo.neighbors(fe).collect::<Vec<_>>() {
                let dir = st.topo.dir_from(fe, l);
                let set = &plan.dir_dsts[dir.link.0 as usize * 2 + dir.from_end as usize];
                let j = st.fas.iter().position(|&f| f == peer).unwrap() as u32;
                assert_eq!(set.expand(), vec![j]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "destination potential")]
    fn bad_potential_rejected() {
        let st = single_tier(SingleTierParams::paper_6_1());
        let n = st.topo.num_nodes();
        let _ = RoutePlan::from_potential(&st.topo, |_, _, phi| {
            phi.clear();
            phi.resize(n, 7);
        });
    }
}
