//! # stardust-topo — Clos / fat-tree topology construction
//!
//! Builders for the network shapes the paper evaluates:
//!
//! * [`two_tier`] — the §6.2 simulation topology: Fabric Adapters at the
//!   edge, two tiers of Fabric Elements (aggregation with half links down /
//!   half up, spine with all links down), including the exact published
//!   256 FA × (128+64) FE configuration and scaled-down variants.
//! * [`single_tier`] — the §6.1.2 Arista-7500E-like system: 24 Fabric
//!   Adapters, one tier of 12 Fabric Elements.
//! * [`kary`] — the k-ary fat-tree (Al-Fares) with hosts, used by the
//!   htsim-style transport comparison of §6.3 (k = 12 → 432 hosts).
//!
//! Beyond the paper's shapes, the "topology zoo" adds structurally
//! different rivals under the same surface:
//!
//! * [`dragonfly`] — balanced dragonfly (groups of fully-meshed routers,
//!   palmtree global wiring).
//! * [`space_shuffle`] — Space Shuffle (arXiv:1405.4697): seeded ring
//!   coordinate spaces with greedy next-hop sets.
//! * [`expander`] — random regular expander from superposed seeded
//!   Hamiltonian cycles.
//!
//! The [`Topology`] type is engine-agnostic: it records nodes, levels and
//! full-duplex links with fiber lengths. Dynamic state — queues, failures,
//! reachability tables — lives in the engines (`stardust-fabric`,
//! `stardust-baseline`, `stardust-transport`), which consume a topology
//! plus a [`RoutePlan`]: per-direction candidate destination sets derived
//! from the graph (see [`route`]), not from positional tier arithmetic.

pub mod builders;
pub mod graph;
pub mod route;

pub use builders::{
    dragonfly, expander, kary, single_tier, space_shuffle, three_tier, two_tier, DragonflyParams,
    ExpanderParams, KaryParams, SingleTierParams, SpaceShuffleParams, ThreeTierParams,
    TwoTierParams,
};
pub use graph::{LinkDir, LinkId, Node, NodeId, NodeKind, Topology};
pub use route::{Built, DstSet, RoutePlan, TopologyBuilder};
