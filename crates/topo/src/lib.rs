//! # stardust-topo — Clos / fat-tree topology construction
//!
//! Builders for the network shapes the paper evaluates:
//!
//! * [`two_tier`] — the §6.2 simulation topology: Fabric Adapters at the
//!   edge, two tiers of Fabric Elements (aggregation with half links down /
//!   half up, spine with all links down), including the exact published
//!   256 FA × (128+64) FE configuration and scaled-down variants.
//! * [`single_tier`] — the §6.1.2 Arista-7500E-like system: 24 Fabric
//!   Adapters, one tier of 12 Fabric Elements.
//! * [`kary`] — the k-ary fat-tree (Al-Fares) with hosts, used by the
//!   htsim-style transport comparison of §6.3 (k = 12 → 432 hosts).
//!
//! The [`Topology`] type is engine-agnostic: it records nodes, levels and
//! full-duplex links with fiber lengths. Dynamic state — queues, failures,
//! reachability tables — lives in the engines (`stardust-fabric`,
//! `stardust-baseline`, `stardust-transport`), which consume a topology
//! plus a rate plan.

pub mod builders;
pub mod graph;

pub use builders::{
    kary, single_tier, three_tier, two_tier, KaryParams, SingleTierParams, ThreeTierParams,
    TwoTierParams,
};
pub use graph::{LinkDir, LinkId, Node, NodeId, NodeKind, Topology};
