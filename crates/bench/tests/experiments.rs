//! Integration tests of the declarative experiment pipeline — the
//! refactor seam between the spec layer and the engines.
//!
//! Three pins:
//!
//! 1. **Spec files == presets.** The TOML files under `specs/ci_smoke/`
//!    are the in-code presets rendered to disk; parsing them back must
//!    reproduce the presets exactly (and survive a format → parse round
//!    trip), so the CI entry point (`stardust run specs/ci_smoke`) and
//!    the fig binaries can never drift apart.
//! 2. **Golden equivalence.** The fig10 a–c spec presets, expanded by
//!    the runner over the generic `FlowEngine` surface, must produce
//!    **bit-identical** `FlowStats` to direct `Scenario` + engine calls
//!    (the pre-refactor driving style: `add_message` / `add_flow` loops
//!    by hand).
//! 3. **Failure churn conformance.** A spec with a mid-run
//!    `FailureSchedule` runs on both the sequential and the sharded
//!    fabric engine, sharded output bit-identical to sequential.

use stardust_bench::fig10::{fabric_engine, transport_sim};
use stardust_bench::presets::{self, Fig10Params};
use stardust_bench::runner::run_spec;
use stardust_bench::spec::{EngineSpec, ExperimentSpec};
use stardust_fabric::shard::ExecMode;
use stardust_fabric::ShardedFabricEngine;
use stardust_sim::FlowStats;
use stardust_topo::builders::{two_tier, TwoTierParams};
use stardust_transport::Protocol;
use stardust_workload::TransportFlowEngine;
use std::path::PathBuf;

fn specs_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../specs/ci_smoke")
}

#[test]
fn ci_smoke_spec_files_match_presets() {
    let dir = specs_dir();
    let mut on_disk: Vec<String> = std::fs::read_dir(&dir)
        .expect("specs/ci_smoke exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".toml"))
        .collect();
    on_disk.sort();
    let presets = presets::ci_smoke();
    let mut expected: Vec<String> = presets
        .iter()
        .map(|(stem, _)| format!("{stem}.toml"))
        .collect();
    expected.sort();
    assert_eq!(
        on_disk, expected,
        "specs/ci_smoke file set drifted from presets::ci_smoke()"
    );
    for (stem, preset) in &presets {
        let path = dir.join(format!("{stem}.toml"));
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = ExperimentSpec::parse(&text)
            .unwrap_or_else(|e| panic!("{stem}.toml failed to parse: {e}"));
        assert_eq!(
            &parsed, preset,
            "{stem}.toml drifted from its preset — regenerate with \
             `stardust preset {stem} > specs/ci_smoke/{stem}.toml`"
        );
        // Round trip: parse → format → parse is the identity.
        let reparsed = ExperimentSpec::parse(&parsed.to_text()).unwrap();
        assert_eq!(reparsed, parsed, "{stem}.toml did not round-trip");
    }
}

/// The pre-refactor fabric driving style: build the engine, offer the
/// expanded flow list through `add_message` by hand, run, read
/// `stats().flows`.
fn direct_fabric(spec: &ExperimentSpec, seed: u64) -> FlowStats {
    let scn = spec.scenario_for(seed);
    let mut e = fabric_engine(spec.topology.two_tier_factor, seed);
    for f in scn.flows(e.num_fas()) {
        e.add_message(f.src, f.dst, 0, 0, f.bytes, f.start);
    }
    stardust_fabric::FabricEngine::run_until(&mut e, spec.horizon());
    e.stats().flows.clone()
}

/// The pre-refactor transport driving style: `add_flow` per spec flow,
/// run, read `flow_stats_for` over the recorded ids.
fn direct_transport(spec: &ExperimentSpec, proto: Protocol, seed: u64) -> FlowStats {
    let scn = spec.scenario_for(seed);
    let mut sim = transport_sim(spec.topology.kary_k, seed);
    let ids: Vec<_> = scn
        .flows(sim.num_hosts())
        .into_iter()
        .map(|f| sim.add_flow(proto, f.src, f.dst, f.bytes, f.start))
        .collect();
    sim.run_until(spec.horizon());
    sim.flow_stats_for(ids)
}

#[test]
fn fig10_presets_bit_identical_to_direct_engine_calls() {
    // Short horizons keep the debug-profile suite fast; equivalence is
    // horizon-independent, so 5–8 simulated ms pin it as well as 100.
    let specs = [
        presets::fig10a(Fig10Params::smoke(5), 100_000),
        presets::fig10b(Fig10Params::smoke(8), 40, 400, false),
        presets::fig10c(Fig10Params::smoke(8), 10, 150_000),
    ];
    for spec in specs {
        let outcome = run_spec(&spec);
        assert_eq!(outcome.runs.len(), spec.engines.len());
        for run in &outcome.runs {
            let golden = match run.engine {
                EngineSpec::Fabric { .. } => direct_fabric(&spec, run.seed),
                EngineSpec::Transport { proto } => direct_transport(&spec, proto, run.seed),
                EngineSpec::Sharded { .. } => continue,
            };
            assert_eq!(
                run.flows, golden,
                "{} / {}: spec-driven FlowStats diverged from the direct engine path",
                spec.name, run.label
            );
        }
    }
}

#[test]
fn failure_schedule_spec_sharded_bit_identical_to_sequential() {
    // The acceptance gate: a mid-run storm FailureSchedule spec on both
    // fabric engine flavors, bit-identical output. Smoke scale (16 FAs).
    // The preset runs the reach protocol live, so the hand-driven
    // engines below enable it at the same interval.
    let spec = presets::failure_churn(16, 12, 7, 3);
    let scn = spec.scenario_for(7);
    let mut cfg = stardust_bench::fig10::fabric_config(7);
    cfg.reach_interval = spec.reach_interval();

    let tt = two_tier(TwoTierParams::paper_scaled(spec.topology.two_tier_factor));
    let mut seq = stardust_fabric::FabricEngine::new(tt.topo.clone(), cfg.clone());
    let seq_flows = scn.run_with_failures(&mut seq, &spec.failures, spec.horizon());
    assert!(seq_flows.completed() > 0, "churn run must do real work");

    let mut sh = ShardedFabricEngine::new(tt.topo, cfg, 3);
    sh.set_exec_mode(ExecMode::Inline);
    let sh_flows = scn.run_with_failures(&mut sh, &spec.failures, spec.horizon());

    assert_eq!(
        seq_flows, sh_flows,
        "sharded FCT table diverged from sequential under the failure schedule"
    );
    assert_eq!(
        seq.stats(),
        &sh.stats(),
        "sharded FabricStats diverged from sequential under the failure schedule"
    );

    // And the runner path agrees with the hand-driven path above.
    let outcome = run_spec(&spec);
    assert!(
        outcome.check_failures.is_empty(),
        "churn spec checks failed: {:?}",
        outcome.check_failures
    );
    for run in &outcome.runs {
        assert_eq!(
            run.flows, seq_flows,
            "{}: runner output diverged from the direct churn run",
            run.label
        );
        assert_eq!(
            run.failures_applied, 6,
            "{}: every storm event applies",
            run.label
        );
        assert!(
            run.convergence_us.is_some(),
            "{}: the reach protocol must reconverge after the storm",
            run.label
        );
    }
}

#[test]
fn transport_wrapper_reports_only_its_own_flows() {
    // Background flows added directly on the inner sim stay out of the
    // wrapper's FlowStats — the contract run_transport used to provide.
    let spec = presets::fig10b(Fig10Params::smoke(8), 20, 400, false);
    let scn = spec.scenario_for(42);
    let mut sim = transport_sim(spec.topology.kary_k, 42);
    sim.add_flow(
        Protocol::Dctcp,
        0,
        1,
        1_000_000,
        stardust_sim::SimTime::ZERO,
    );
    let mut wrapped = TransportFlowEngine::new(sim, Protocol::Stardust);
    let fs = scn.run(&mut wrapped, spec.horizon());
    assert_eq!(fs.len(), 20, "background flow leaked into the FCT table");
}

#[test]
fn service_preset_streams_both_fabric_engines_bit_identically() {
    // A scaled-down service preset: lazy generation, streaming
    // admission, sketch accounting — and the sharded engine's merged
    // sketch book must equal the sequential one bit-for-bit (the
    // preset's own sharded_identical gate).
    let spec = presets::service(16, 120, 8, 42, 2, 300, 2_000);
    let outcome = run_spec(&spec);
    assert!(
        outcome.check_failures.is_empty(),
        "service spec failed: {:?}",
        outcome.check_failures
    );
    assert_eq!(outcome.runs.len(), 2);
    for run in &outcome.runs {
        assert!(
            run.flows.is_sketched(),
            "{} kept per-flow records",
            run.label
        );
        assert!(run.flows.completed() > 0);
        assert!(run.flows.fct_quantile(0.9).is_some());
    }
    assert_eq!(outcome.runs[0].flows, outcome.runs[1].flows);
}

#[test]
fn shuffle_spec_runs_end_to_end_from_toml() {
    // A runtime-parsed spec (not a preset) with the new Shuffle kind:
    // the String scenario name and the full parse → run path in one go.
    let spec = ExperimentSpec::parse(
        r#"
[experiment]
name = "shuffle-e2e"
horizon_us = 10000
seeds = [3]
engines = ["fabric"]

[topology]
two_tier_factor = 16
kary_k = 4

[scenario]
kind = "shuffle"
bytes_per_pair = 4096
node_gap_us = 200

[checks]
complete = "fabric"
zero_drops = true
"#,
    )
    .expect("inline spec parses");
    let outcome = run_spec(&spec);
    assert_eq!(outcome.runs[0].flows.len(), 16 * 15);
    assert!(
        outcome.check_failures.is_empty(),
        "shuffle spec failed: {:?}",
        outcome.check_failures
    );
}
