//! Expand an [`ExperimentSpec`] into its run matrix and drive it.
//!
//! One spec → engines × seeds runs, every engine driven through the
//! generic [`FlowEngine`](stardust_workload::FlowEngine) surface —
//! offer the expanded flow list, drive the
//! [`FailureSchedule`](stardust_workload::FailureSchedule)
//! (the body of
//! [`Scenario::run_with_failures`](stardust_workload::Scenario::run_with_failures),
//! with the applied-event count kept for reporting).
//! The runner owns the concrete engine construction (the spec's topology
//! presets), collects the engine-agnostic [`FlowStats`] plus the fabric
//! drop/discard counters, evaluates the spec's [`Checks`], and renders
//! results as text tables or machine-readable JSON.

use crate::fig10::{
    fabric_config, goodputs_gbps, print_fct_summary, print_fct_table, transport_sim,
};
use crate::json::Json;
use crate::spec::{CompleteScope, CoreChoice, EngineSpec, ExperimentSpec, StatsMode};
use stardust_fabric::shard::ExecMode;
use stardust_fabric::{FabricEngine, ShardedFabricEngine};
use stardust_sim::{CalendarCore, CoreKind, FlowStats, HeapCore, SimDuration};
use stardust_transport::Protocol;
use stardust_workload::{Scenario, TransportFlowEngine};
use std::time::Instant;

/// One finished cell of the run matrix.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Which engine ran.
    pub engine: EngineSpec,
    /// Column label (engine label, `#seed`-suffixed when the spec has
    /// several seeds).
    pub label: String,
    /// The seed of this run.
    pub seed: u64,
    /// The engine-agnostic FCT table of the scenario's flows.
    pub flows: FlowStats,
    /// Cells dropped inside the fabric (fabric-family engines only).
    pub cells_dropped: Option<u64>,
    /// Packets discarded at ingress/routing (fabric-family only).
    pub packets_discarded: Option<u64>,
    /// Simulation events executed (fabric-family only).
    pub events: Option<u64>,
    /// Link fail/restore events the engine applied.
    pub failures_applied: usize,
    /// First→last lost cell span in µs (fabric-family; `None` = no loss).
    pub loss_window_us: Option<f64>,
    /// Last link event → last reach-table change, in µs (fabric-family
    /// under the reach protocol; `None` = tables never moved after the
    /// last event, or no event was injected).
    pub convergence_us: Option<f64>,
    /// Wall-clock seconds of the run (engine construction excluded).
    pub wall_s: f64,
}

/// A spec's finished run matrix plus its check verdicts.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The spec that ran.
    pub spec: ExperimentSpec,
    /// One record per engine × seed, seeds outermost, in spec order.
    pub runs: Vec<RunRecord>,
    /// Human-readable descriptions of every failed check (empty = pass).
    pub check_failures: Vec<String>,
}

impl Outcome {
    /// `(label, FlowStats)` pairs for the table printers.
    pub fn labeled(&self) -> Vec<(String, FlowStats)> {
        self.runs
            .iter()
            .map(|r| (r.label.clone(), r.flows.clone()))
            .collect()
    }

    /// The machine-readable form of this outcome (one JSON object).
    pub fn to_json(&self) -> Json {
        let ms =
            |d: Option<SimDuration>| d.map_or(Json::Null, |d| Json::Num(d.as_secs_f64() * 1e3));
        Json::Obj(vec![
            ("experiment".into(), Json::str(&self.spec.name)),
            ("horizon_us".into(), Json::num(self.spec.horizon_us as f64)),
            (
                "runs".into(),
                Json::Arr(
                    self.runs
                        .iter()
                        .map(|r| {
                            // One fct_quantiles call: sorts the table
                            // once (or reads the sketch in sketch mode).
                            let qs = r.flows.fct_quantiles(&[0.5, 0.99, 1.0]);
                            let opt =
                                |v: Option<u64>| v.map_or(Json::Null, |n| Json::num(n as f64));
                            Json::Obj(vec![
                                ("engine".into(), Json::str(r.engine.to_spec_string())),
                                ("label".into(), Json::str(&r.label)),
                                ("seed".into(), Json::num(r.seed as f64)),
                                ("flows".into(), Json::num(r.flows.len() as f64)),
                                ("completed".into(), Json::num(r.flows.completed() as f64)),
                                ("fct_ms_mean".into(), ms(r.flows.fct_mean())),
                                ("fct_ms_p50".into(), ms(qs[0])),
                                ("fct_ms_p99".into(), ms(qs[1])),
                                ("fct_ms_max".into(), ms(qs[2])),
                                ("cells_dropped".into(), opt(r.cells_dropped)),
                                ("packets_discarded".into(), opt(r.packets_discarded)),
                                ("events".into(), opt(r.events)),
                                (
                                    "failures_applied".into(),
                                    Json::num(r.failures_applied as f64),
                                ),
                                (
                                    "loss_window_us".into(),
                                    r.loss_window_us.map_or(Json::Null, Json::Num),
                                ),
                                (
                                    "convergence_us".into(),
                                    r.convergence_us.map_or(Json::Null, Json::Num),
                                ),
                                ("wall_s".into(), Json::Num(r.wall_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "checks_failed".into(),
                Json::Arr(self.check_failures.iter().map(Json::str).collect()),
            ),
            ("pass".into(), Json::Bool(self.check_failures.is_empty())),
        ])
    }

    /// Print FCT percentile table + completion summary + check verdicts.
    pub fn print(&self) {
        let labeled = self.labeled();
        print_fct_table(
            &format!("{}: FCT by percentile [ms]", self.spec.name),
            &labeled,
        );
        print_fct_summary(&labeled);
        if !self.spec.failures.is_empty() {
            let scheduled = self
                .spec
                .failures
                .events()
                .iter()
                .filter(|e| e.at < self.spec.horizon())
                .count();
            for r in &self.runs {
                if r.failures_applied < scheduled {
                    println!(
                        "note: {} applied {}/{} link events (engine has no link state)",
                        r.label, r.failures_applied, scheduled
                    );
                }
            }
        }
        for f in &self.check_failures {
            println!("CHECK FAILED: {f}");
        }
        if !self.spec.checks.is_empty() && self.check_failures.is_empty() {
            println!("checks: all passed");
        }
    }
}

/// Print any failed checks and convert them to a process exit code;
/// on success, print `success_note` (e.g. a binary's "smoke OK" line)
/// if one is given. The shared epilogue of the fig binaries.
pub fn finish(check_failures: &[String], success_note: Option<&str>) -> std::process::ExitCode {
    for f in check_failures {
        eprintln!("CHECK FAILED: {f}");
    }
    if !check_failures.is_empty() {
        return std::process::ExitCode::FAILURE;
    }
    if let Some(note) = success_note {
        println!("\n{note}");
    }
    std::process::ExitCode::SUCCESS
}

/// Run the full engines × seeds matrix of `spec` and evaluate its
/// checks. Engine construction is untimed; each run's wall clock covers
/// flow offering + simulation only.
pub fn run_spec(spec: &ExperimentSpec) -> Outcome {
    let mut runs = Vec::with_capacity(spec.seeds.len() * spec.engines.len());
    for &seed in &spec.seeds {
        let scenario = spec.scenario_for(seed);
        for &engine in &spec.engines {
            let mut record = run_one(spec, &scenario, engine, seed);
            if spec.seeds.len() > 1 {
                record.label = format!("{}#{}", record.label, seed);
            }
            runs.push(record);
        }
    }
    let check_failures = eval_checks(spec, &runs);
    Outcome {
        spec: spec.clone(),
        runs,
        check_failures,
    }
}

/// Offer, drive the failure schedule, and collect the FCT stats.
///
/// Table mode is the body of `Scenario::run_with_failures`, with the
/// applied-event count kept (the runner reports it per run). Sketch
/// mode streams: flows are drawn lazily and admitted in
/// `spec.admit_window()`-sized slices (`Scenario::run_streamed`), and
/// engines that still produced a per-flow table (the transports, which
/// have no bounded mode) are converted to the same sketch form so every
/// run of the matrix reports comparable books.
fn drive<E: stardust_workload::FlowEngine>(
    scenario: &Scenario,
    spec: &ExperimentSpec,
    e: &mut E,
) -> (FlowStats, usize) {
    match spec.stats {
        StatsMode::Table => {
            e.offer(&scenario.flows(e.num_nodes()));
            let applied = spec.failures.drive(e, spec.horizon());
            (e.flow_stats(), applied)
        }
        StatsMode::Sketch => {
            let (flows, applied) =
                scenario.run_streamed(e, &spec.failures, spec.horizon(), spec.admit_window());
            let flows = if flows.is_sketched() {
                flows
            } else {
                flows.sketched()
            };
            (flows, applied)
        }
    }
}

/// The fig10 fabric config, with the spec's stats mode applied (sketch
/// mode runs the fabric engines with bounded per-message state) and the
/// reach protocol enabled at the spec's `reach_us` interval, if set.
fn spec_fabric_config(spec: &ExperimentSpec, seed: u64) -> stardust_fabric::FabricConfig {
    let mut cfg = fabric_config(seed);
    cfg.bounded_flows = spec.stats == StatsMode::Sketch;
    cfg.reach_interval = spec.reach_interval();
    cfg
}

/// `Option<SimDuration>` → µs, for the churn-metric record fields.
fn dur_us(d: Option<SimDuration>) -> Option<f64> {
    d.map(|d| d.as_secs_f64() * 1e6)
}

fn run_one(spec: &ExperimentSpec, scenario: &Scenario, engine: EngineSpec, seed: u64) -> RunRecord {
    match engine {
        EngineSpec::Fabric { core } => match core {
            CoreChoice::Calendar => run_fabric_seq::<CalendarCore>(spec, scenario, engine, seed),
            CoreChoice::Heap => run_fabric_seq::<HeapCore>(spec, scenario, engine, seed),
        },
        EngineSpec::Sharded { core, .. } => match core {
            CoreChoice::Calendar => {
                run_fabric_sharded::<CalendarCore>(spec, scenario, engine, seed)
            }
            CoreChoice::Heap => run_fabric_sharded::<HeapCore>(spec, scenario, engine, seed),
        },
        EngineSpec::Transport { proto } => {
            let sim = transport_sim(spec.topology.kary_k, seed);
            let mut e = TransportFlowEngine::new(sim, proto);
            let t0 = Instant::now();
            let (flows, applied) = drive(scenario, spec, &mut e);
            RunRecord {
                engine,
                label: engine.label(),
                seed,
                flows,
                cells_dropped: None,
                packets_discarded: None,
                events: None,
                failures_applied: applied,
                loss_window_us: None,
                convergence_us: None,
                wall_s: t0.elapsed().as_secs_f64(),
            }
        }
    }
}

fn run_fabric_seq<K: CoreKind>(
    spec: &ExperimentSpec,
    scenario: &Scenario,
    engine: EngineSpec,
    seed: u64,
) -> RunRecord {
    let built = spec.topology.build_fabric(seed);
    let mut e =
        FabricEngine::<K>::with_plan(built.topo, spec_fabric_config(spec, seed), built.plan);
    let t0 = Instant::now();
    let (flows, applied) = drive(scenario, spec, &mut e);
    let wall_s = t0.elapsed().as_secs_f64();
    RunRecord {
        engine,
        label: engine.label(),
        seed,
        flows,
        cells_dropped: Some(e.stats().cells_dropped.get()),
        packets_discarded: Some(e.stats().packets_discarded.get()),
        events: Some(e.events_executed()),
        failures_applied: applied,
        loss_window_us: dur_us(e.stats().loss_window()),
        convergence_us: dur_us(e.stats().convergence_time()),
        wall_s,
    }
}

fn run_fabric_sharded<K: CoreKind>(
    spec: &ExperimentSpec,
    scenario: &Scenario,
    engine: EngineSpec,
    seed: u64,
) -> RunRecord
where
    FabricEngine<K>: Send,
{
    let EngineSpec::Sharded { shards, .. } = engine else {
        unreachable!("caller matched Sharded")
    };
    let built = spec.topology.build_fabric(seed);
    let mut e = ShardedFabricEngine::<K>::with_plan(
        built.topo,
        spec_fabric_config(spec, seed),
        built.plan,
        shards,
    );
    // Thread policy (results are identical at any setting): an explicit
    // spec/CLI `threads` wins — `1` runs inline on the calling thread,
    // more multiplexes the shards round-robin. Otherwise, on hosts with
    // fewer cores than shards, OS threads only add barrier context
    // switches; the inline mode is bit-identical (pinned by the
    // conformance suite) and fast.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get()) as u32;
    match spec.threads {
        Some(1) => e.set_exec_mode(ExecMode::Inline),
        Some(t) => e.set_threads(t),
        None if cores < shards => e.set_exec_mode(ExecMode::Inline),
        None => {}
    }
    let t0 = Instant::now();
    let (flows, applied) = drive(scenario, spec, &mut e);
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = e.stats();
    RunRecord {
        engine,
        label: engine.label(),
        seed,
        flows,
        cells_dropped: Some(stats.cells_dropped.get()),
        packets_discarded: Some(stats.packets_discarded.get()),
        events: Some(e.events_executed()),
        failures_applied: applied,
        loss_window_us: dur_us(stats.loss_window()),
        convergence_us: dur_us(stats.convergence_time()),
        wall_s,
    }
}

fn eval_checks(spec: &ExperimentSpec, runs: &[RunRecord]) -> Vec<String> {
    let c = &spec.checks;
    let mut fails = Vec::new();
    let in_complete_scope = |r: &RunRecord| match c.complete {
        CompleteScope::None => false,
        CompleteScope::Fabric => r.engine.is_fabric(),
        CompleteScope::Stardust => {
            r.engine.is_fabric()
                || matches!(
                    r.engine,
                    EngineSpec::Transport {
                        proto: Protocol::Stardust
                    }
                )
        }
        CompleteScope::All => true,
    };
    for r in runs {
        let (done, total) = (r.flows.completed(), r.flows.len());
        if in_complete_scope(r) && done != total {
            fails.push(format!(
                "{}: {}/{} flows completed (complete = \"{:?}\")",
                r.label, done, total, c.complete
            ));
        }
        if c.some_complete && done == 0 {
            fails.push(format!("{}: no flow completed", r.label));
        }
        if !r.engine.is_fabric() {
            continue;
        }
        if c.zero_drops && r.cells_dropped != Some(0) {
            fails.push(format!(
                "{}: {} cells dropped — the scheduled fabric must be lossless",
                r.label,
                r.cells_dropped.unwrap_or(0)
            ));
        }
        // Every quantile gate reads this one call: the per-flow table is
        // sorted once per run (not once per gate), and in sketch mode the
        // quantiles come from the sketch, where no table exists.
        let qs = r.flows.fct_quantiles(&[0.0, 0.5, 0.99, 1.0]);
        let fct_ms = |d: Option<SimDuration>| d.map(|d| d.as_secs_f64() * 1e3);
        if let Some(cap) = c.fct_p99_ms_max {
            match fct_ms(qs[2]) {
                Some(p99) if p99 < cap => {}
                got => fails.push(format!(
                    "{}: p99 FCT {got:?} ms out of the NDP class (cap {cap} ms)",
                    r.label
                )),
            }
        }
        if let Some(cap) = c.fct_median_ms_max {
            match fct_ms(qs[1]) {
                Some(med) if med < cap => {}
                got => fails.push(format!(
                    "{}: median FCT {got:?} ms above cap {cap} ms",
                    r.label
                )),
            }
        }
        if let Some(floor) = c.min_goodput_gbps {
            let g = goodputs_gbps(&r.flows);
            match g.first() {
                Some(&min) if min > floor => {}
                got => fails.push(format!(
                    "{}: min goodput {got:?} Gbps below floor {floor} Gbps",
                    r.label
                )),
            }
        }
        if let Some(cap) = c.max_loss_window_us {
            // A run with no loss at all passes vacuously — the gate caps
            // how long loss persists once it starts, not whether it starts.
            if let Some(w) = r.loss_window_us {
                if w > cap {
                    fails.push(format!(
                        "{}: loss window {w:.1} µs exceeds cap {cap} µs — \
                         exclusion propagated too slowly",
                        r.label
                    ));
                }
            }
        }
        if let Some(cap) = c.max_convergence_us {
            match r.convergence_us {
                Some(t) if t <= cap => {}
                Some(t) => fails.push(format!(
                    "{}: reach convergence {t:.1} µs exceeds cap {cap} µs",
                    r.label
                )),
                // The schedule injected churn but the tables never moved
                // after the last event: the protocol did not react at all.
                None if r.failures_applied > 0 => fails.push(format!(
                    "{}: link events applied but the reach tables never \
                     changed after the last one — no reconvergence observed",
                    r.label
                )),
                None => {}
            }
        }
        if let Some(cap) = c.last_first_ratio_max {
            match (qs[0], qs[3]) {
                (Some(first), Some(last)) if last.as_secs_f64() / first.as_secs_f64() < cap => {}
                (Some(first), Some(last)) => fails.push(format!(
                    "{}: last/first FCT ratio {:.2} above cap {cap} — credits are not fair",
                    r.label,
                    last.as_secs_f64() / first.as_secs_f64()
                )),
                _ => fails.push(format!("{}: no FCTs to judge fairness on", r.label)),
            }
        }
    }
    if c.sharded_identical {
        for &seed in &spec.seeds {
            let fabric: Vec<&RunRecord> = runs
                .iter()
                .filter(|r| r.seed == seed && r.engine.is_fabric())
                .collect();
            if fabric.len() < 2 {
                fails.push(format!(
                    "seed {seed}: sharded_identical needs ≥ 2 fabric-family engines, got {}",
                    fabric.len()
                ));
                continue;
            }
            for pair in fabric.windows(2) {
                // Per-flow tables plus the drop/discard counters; event
                // counts are excluded (the sharded engine legitimately
                // executes extra barrier/handoff events).
                let view = |r: &RunRecord| (r.flows.clone(), r.cells_dropped, r.packets_discarded);
                if view(pair[0]) != view(pair[1]) {
                    fails.push(format!(
                        "seed {seed}: {} and {} diverged (FlowStats or drop/discard \
                         counters) — shard conformance broken",
                        pair[0].label, pair[1].label
                    ));
                }
            }
        }
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Checks;
    use stardust_sim::SimTime;
    use stardust_topo::LinkId;
    use stardust_workload::ScenarioKind;

    fn tiny_spec() -> ExperimentSpec {
        ExperimentSpec {
            name: "runner-unit".into(),
            horizon_us: 5_000,
            seeds: vec![42],
            engines: vec![
                EngineSpec::Transport {
                    proto: Protocol::Stardust,
                },
                EngineSpec::Fabric {
                    core: CoreChoice::Calendar,
                },
            ],
            topology: crate::spec::TopoSpec {
                kind: crate::spec::TopoKind::TwoTier,
                two_tier_factor: 16,
                kary_k: 4,
            },
            scenario: ScenarioKind::Permutation {
                flow_bytes: 100_000,
            },
            failures: Default::default(),
            stats: StatsMode::Table,
            admit_window_us: crate::spec::DEFAULT_ADMIT_WINDOW_US,
            reach_us: None,
            threads: None,
            checks: Checks {
                complete: CompleteScope::Fabric,
                zero_drops: true,
                ..Checks::default()
            },
        }
    }

    #[test]
    fn matrix_runs_and_checks_pass() {
        let out = run_spec(&tiny_spec());
        assert_eq!(out.runs.len(), 2);
        assert_eq!(out.runs[0].label, "Stardust");
        assert_eq!(out.runs[1].label, crate::fig10::FABRIC_LABEL);
        assert_eq!(out.runs[1].cells_dropped, Some(0));
        assert!(out.runs[1].events.unwrap() > 0);
        assert_eq!(out.runs[1].flows.len(), 16);
        assert!(
            out.check_failures.is_empty(),
            "unexpected failures: {:?}",
            out.check_failures
        );
        let json = out.to_json().render();
        assert!(json.contains("\"experiment\": \"runner-unit\""));
        assert!(json.contains("\"pass\": true"));
    }

    #[test]
    fn failed_checks_are_reported() {
        let mut spec = tiny_spec();
        // An impossible cap: every FCT is above 0 ms.
        spec.checks.fct_median_ms_max = Some(1e-9);
        let out = run_spec(&spec);
        assert!(
            out.check_failures.iter().any(|f| f.contains("median")),
            "{:?}",
            out.check_failures
        );
        assert!(out.to_json().render().contains("\"pass\": false"));
    }

    #[test]
    fn failure_schedule_applies_on_fabric_not_transport() {
        let mut spec = tiny_spec();
        spec.checks = Checks::default();
        spec.failures = Default::default();
        spec.failures = stardust_workload::FailureSchedule::new()
            .fail_at(SimTime::from_micros(500), LinkId(0))
            .restore_at(SimTime::from_micros(2_000), LinkId(0));
        let out = run_spec(&spec);
        assert_eq!(out.runs[0].failures_applied, 0, "transport has no links");
        assert_eq!(out.runs[1].failures_applied, 2, "fabric applies both");
    }

    #[test]
    fn churn_metrics_flow_into_records_and_gates() {
        let mut spec = tiny_spec();
        spec.reach_us = Some(10);
        spec.failures = stardust_workload::FailureSchedule::new()
            .fail_at(SimTime::from_micros(500), LinkId(0))
            .restore_at(SimTime::from_micros(2_000), LinkId(0));
        spec.checks = Checks {
            max_loss_window_us: Some(5_000.0),
            max_convergence_us: Some(1_000.0),
            ..Checks::default()
        };
        let out = run_spec(&spec);
        assert!(
            out.runs[1].convergence_us.is_some(),
            "the reach protocol must react to churn"
        );
        assert!(
            out.runs[0].convergence_us.is_none(),
            "transport reports no churn metrics"
        );
        assert!(out.check_failures.is_empty(), "{:?}", out.check_failures);
        assert!(out.to_json().render().contains("\"convergence_us\""));

        // The gate bites when reconvergence cannot happen: with static
        // tables (reach_us unset) nothing moves after the last event.
        spec.reach_us = None;
        let out = run_spec(&spec);
        assert!(
            out.check_failures
                .iter()
                .any(|f| f.contains("never") && f.contains(crate::fig10::FABRIC_LABEL)),
            "{:?}",
            out.check_failures
        );
    }

    #[test]
    fn sketch_mode_streams_and_reports_sketch_quantiles() {
        let mut spec = tiny_spec();
        spec.stats = StatsMode::Sketch;
        spec.engines = vec![
            EngineSpec::Fabric {
                core: CoreChoice::Calendar,
            },
            EngineSpec::Sharded {
                shards: 2,
                core: CoreChoice::Calendar,
            },
            EngineSpec::Transport {
                proto: Protocol::Stardust,
            },
        ];
        spec.checks = Checks {
            some_complete: true,
            zero_drops: true,
            sharded_identical: true,
            ..Checks::default()
        };
        let out = run_spec(&spec);
        assert!(
            out.check_failures.is_empty(),
            "sketch-mode failures: {:?}",
            out.check_failures
        );
        for r in &out.runs {
            assert!(r.flows.is_sketched(), "{} kept a table", r.label);
            assert!(r.flows.records().is_empty());
            assert!(r.flows.fct_quantile(0.5).is_some(), "{}", r.label);
        }
        // JSON quantiles are populated from the sketch, not null.
        let json = out.to_json().render();
        assert!(!json.contains("\"fct_ms_p50\": null"), "{json}");

        // The sketch books of the sequential and sharded fabric runs are
        // bit-identical — the sharded_identical gate verified it above,
        // and the records agree with an eager table run's sketched form.
        let table_out = run_spec(&tiny_spec());
        let eager_fabric = &table_out.runs[1];
        let sketch_fabric = &out.runs[0];
        assert_eq!(eager_fabric.flows.sketched(), sketch_fabric.flows);
    }

    #[test]
    fn sharded_identical_check_compares_engines() {
        let mut spec = tiny_spec();
        spec.engines = vec![
            EngineSpec::Fabric {
                core: CoreChoice::Calendar,
            },
            EngineSpec::Sharded {
                shards: 2,
                core: CoreChoice::Calendar,
            },
        ];
        spec.checks = Checks {
            sharded_identical: true,
            ..Checks::default()
        };
        let out = run_spec(&spec);
        assert!(
            out.check_failures.is_empty(),
            "sharded diverged: {:?}",
            out.check_failures
        );

        // And the check actually bites when there is nothing to compare.
        spec.engines.truncate(1);
        let out = run_spec(&spec);
        assert_eq!(out.check_failures.len(), 1);
        assert!(out.check_failures[0].contains("needs ≥ 2"));
    }
}
