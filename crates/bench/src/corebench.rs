//! Event-core benchmarking support: record the exact queue-operation
//! trace of a real fabric run, then replay it against any [`EventCore`]
//! implementation.
//!
//! The point of the old-vs-new event-core comparison is to measure the
//! *queue* under the *real* §6.2 workload, not under a synthetic
//! hold-model. [`RecordingCore`] is a [`CoreKind`] whose queue wraps the
//! production calendar queue and logs every schedule/pop to a
//! thread-local buffer; running the permutation scenario on a
//! `FabricEngine<RecordingCore>` therefore captures the genuine sequence
//! of event times and drain patterns the engine generates. [`replay`]
//! feeds that sequence back into a queue of unit-sized payloads so the
//! measured cost is the core's ordering machinery alone.

use stardust_fabric::{FabricConfig, FabricEngine};
use stardust_sim::{CoreKind, DetRng, EventCore, EventQueue, ScheduledEvent, SimTime};
use stardust_topo::builders::{two_tier, TwoTierParams};
use stardust_workload::permutation;
use std::cell::RefCell;

/// One recorded queue operation. Times are absolute picoseconds.
#[derive(Debug, Clone, Copy)]
pub enum TraceOp {
    /// `schedule(at, _)`.
    Schedule(u64),
    /// One `pop` (batched drains are recorded as consecutive pops).
    Pop,
}

thread_local! {
    static TRACE: RefCell<Vec<TraceOp>> = const { RefCell::new(Vec::new()) };
}

/// A [`CoreKind`] that records every queue operation to a thread-local
/// trace while delegating to the production calendar queue.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecordingCore;

impl CoreKind for RecordingCore {
    type Queue<E> = RecordingQueue<E>;
}

/// The queue behind [`RecordingCore`].
#[derive(Debug)]
pub struct RecordingQueue<E> {
    inner: EventQueue<E>,
}

impl<E> EventCore<E> for RecordingQueue<E> {
    fn new() -> Self {
        RecordingQueue {
            inner: EventQueue::new(),
        }
    }
    fn now(&self) -> SimTime {
        self.inner.now()
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn events_executed(&self) -> u64 {
        self.inner.events_executed()
    }
    fn schedule(&mut self, at: SimTime, payload: E) {
        TRACE.with(|t| t.borrow_mut().push(TraceOp::Schedule(at.as_ps())));
        self.inner.schedule(at, payload);
    }
    fn schedule_keyed(&mut self, at: SimTime, key: u64, payload: E) {
        // The replay cares about times and drain patterns, not keys.
        TRACE.with(|t| t.borrow_mut().push(TraceOp::Schedule(at.as_ps())));
        self.inner.schedule_keyed(at, key, payload);
    }
    fn peek_time(&self) -> Option<SimTime> {
        self.inner.peek_time()
    }
    fn visit_pending(&self, f: &mut dyn FnMut(SimTime, u64, &E)) {
        // Inspection only — not a queue operation, so nothing is traced.
        self.inner.visit_pending(f);
    }
    fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.inner.pop();
        if ev.is_some() {
            TRACE.with(|t| t.borrow_mut().push(TraceOp::Pop));
        }
        ev
    }
    fn pop_until(&mut self, horizon: SimTime) -> Option<ScheduledEvent<E>> {
        let ev = self.inner.pop_until(horizon);
        if ev.is_some() {
            TRACE.with(|t| t.borrow_mut().push(TraceOp::Pop));
        }
        ev
    }
    fn pop_batch_until(&mut self, horizon: SimTime, out: &mut Vec<ScheduledEvent<E>>) -> usize {
        let n = self.inner.pop_batch_until(horizon, out);
        if n > 0 {
            TRACE.with(|t| {
                let mut t = t.borrow_mut();
                t.extend(std::iter::repeat_n(TraceOp::Pop, n));
            });
        }
        n
    }
    fn advance_clock(&mut self, to: SimTime) {
        self.inner.advance_clock(to);
    }
    fn clear(&mut self) {
        self.inner.clear();
    }
}

/// Record the queue-operation trace of the §6.2 permutation scenario —
/// the same 1/16-scale workload `tests/determinism.rs` locks — over
/// `sim_micros` of simulated time.
pub fn record_sec62_trace(sim_micros: u64) -> Vec<TraceOp> {
    TRACE.with(|t| t.borrow_mut().clear());
    let seed = 0xDC_FA_B0_05u64;
    let tt = two_tier(TwoTierParams::paper_scaled(16));
    let cfg = FabricConfig {
        seed,
        host_ports: 2,
        ..FabricConfig::default()
    };
    let num_fa = tt.fas.len();
    let mut rng = DetRng::from_label(seed, "det-regression-workload");
    let perm = permutation(num_fa, &mut rng);
    let mut e = FabricEngine::<RecordingCore>::with_core(tt.topo, cfg);
    e.saturate_all_to_all(750, 16 * 1024);
    for src in 0..num_fa as u32 {
        let mut t = 0u64;
        for i in 0..40u32 {
            t += rng.below(2_000);
            let bytes = if i % 4 == 0 {
                9000
            } else {
                64 + rng.below(1400) as u32
            };
            e.inject(
                SimTime::from_nanos(t),
                src,
                perm[src as usize],
                (i % 2) as u8,
                0,
                bytes,
            );
        }
    }
    e.run_until(SimTime::from_micros(sim_micros));
    TRACE.with(|t| std::mem::take(&mut *t.borrow_mut()))
}

/// Replay a recorded trace against a fresh queue of core kind `Q`,
/// returning a checksum of the popped sequence numbers (so the work
/// cannot be optimized away and any ordering divergence shows up as a
/// checksum mismatch between cores).
pub fn replay<Q: EventCore<u32>>(trace: &[TraceOp]) -> u64 {
    let mut q = Q::new();
    let mut payload = 0u32;
    let mut acc = 0u64;
    for &op in trace {
        match op {
            TraceOp::Schedule(ps) => {
                q.schedule(SimTime(ps), payload);
                payload = payload.wrapping_add(1);
            }
            TraceOp::Pop => {
                let ev = q.pop().expect("trace pops a scheduled event");
                acc = acc
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add(ev.seq ^ ev.payload as u64);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_sim::HeapEventQueue;

    #[test]
    fn recorded_trace_replays_identically_on_both_cores() {
        let trace = record_sec62_trace(20);
        assert!(trace.len() > 1_000, "trace too small: {}", trace.len());
        let heap = replay::<HeapEventQueue<u32>>(&trace);
        let cal = replay::<EventQueue<u32>>(&trace);
        assert_eq!(heap, cal, "replay checksums diverged between cores");
    }
}
