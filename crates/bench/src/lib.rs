//! # stardust-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), each
//! printing the rows/series the paper reports, plus micro-benchmarks of
//! the core data structures (see `benches/`, built on the dependency-free
//! [`harness`] module).
//!
//! Every binary accepts `--scale <n>` (topology scale-down divisor where
//! applicable), `--ms <n>` (simulated milliseconds) and `--full` (run the
//! paper-size configuration). Defaults are sized to finish in seconds on
//! a laptop; EXPERIMENTS.md records results from both the default and
//! the larger settings.

use std::collections::HashMap;

pub mod corebench;
pub mod fig10;
pub mod harness;
pub mod json;
pub mod presets;
pub mod runner;
pub mod spec;
pub mod toml;

/// Minimal `--key value` / `--flag` argument parser (no dependency).
#[derive(Debug, Default)]
pub struct Args {
    kv: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args`.
    pub fn parse() -> Self {
        let mut kv = HashMap::new();
        let mut flags = Vec::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    kv.insert(name.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(name.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { kv, flags }
    }

    /// A `--key value` as u64, with default.
    pub fn get_u64(&self, key: &str, default: u64) -> u64 {
        self.kv
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer"))
            })
            .unwrap_or(default)
    }

    /// A `--key value` as f64, with default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.kv
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number"))
            })
            .unwrap_or(default)
    }

    /// A `--key value` as a string, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.kv.get(key).map(String::as_str)
    }

    /// Presence of a bare `--flag`.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

/// Print a table header with a rule line.
pub fn header(title: &str, cols: &str) {
    println!("\n=== {title} ===");
    println!("{cols}");
    println!("{}", "-".repeat(cols.len().min(100)));
}

/// Format a large count with thousands separators.
pub fn commas(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commas_formatting() {
        assert_eq!(commas(1), "1");
        assert_eq!(commas(1234), "1,234");
        assert_eq!(commas(1234567), "1,234,567");
    }
}
