//! Figure 7 (§5.2) and Figure 12 (Appendix F) — push fabric vs pull
//! fabric.
//!
//! The scenario: an egress device with two 100GE ports A and B. One
//! ingress device sends 100G toward A and 100G toward B; a second
//! ingress device sends another 100G toward A. In the Ethernet push
//! fabric, the shared middle-stage queues drop A *and* B traffic, so B —
//! whose own port is idle — delivers only ~66%. In Stardust, B's egress
//! scheduler grants B's full 100G and A's scheduler grants 50G to each
//! source: nothing is lost in the fabric.
//!
//! With `--traffic-classes`, A's traffic is high priority and B's low
//! (Appendix F): the Ethernet fabric starves B entirely; Stardust still
//! delivers both.

use stardust_baseline::{LoadBalance, PushConfig, PushEngine};
use stardust_bench::{header, Args};
use stardust_fabric::{FabricConfig, FabricEngine};
use stardust_sim::units::gbps;
use stardust_sim::{SimDuration, SimTime};
use stardust_topo::{NodeKind, Topology};

/// 3 edge devices (2 ingress + 1 egress), 2 middle switches, 100G links.
fn topo() -> Topology {
    let mut t = Topology::new();
    let tors: Vec<_> = (0..3).map(|_| t.add_node(NodeKind::Edge, 1)).collect();
    let sws: Vec<_> = (0..2).map(|_| t.add_node(NodeKind::Fabric, 2)).collect();
    for &tor in &tors {
        for &sw in &sws {
            t.add_link(tor, sw, 10);
        }
    }
    t
}

fn main() {
    let args = Args::parse();
    let tcs = args.has("traffic-classes");
    let ms = args.get_u64("ms", 2);
    let stop = SimTime::from_millis(ms);
    let horizon = SimTime::from_millis(ms + 2);
    let window = SimDuration::from_millis(ms);
    // Traffic classes: with --traffic-classes, A is high (0), B low (1).
    let (tc_a, tc_b) = if tcs { (0u8, 1u8) } else { (0u8, 0u8) };

    // --- Ethernet push fabric ---
    let mut push = PushEngine::new(
        topo(),
        PushConfig {
            link_bps: gbps(100),
            host_port_bps: gbps(100),
            host_ports: 2,
            switch_buffer_bytes: 256 * 1024,
            tor_buffer_bytes: 1024 * 1024,
            lb: LoadBalance::PacketSpray,
            ..PushConfig::default()
        },
    );
    push.add_cbr_flow(0, 2, 0, tc_a, gbps(100), 1500, SimTime::ZERO, stop); // in0 → A
    push.add_cbr_flow(0, 2, 1, tc_b, gbps(100), 1500, SimTime::ZERO, stop); // in0 → B
    push.add_cbr_flow(1, 2, 0, tc_a, gbps(100), 1500, SimTime::ZERO, stop); // in1 → A
    push.run_until(horizon);

    // --- Stardust pull fabric ---
    let mut pull = FabricEngine::new(
        topo(),
        FabricConfig {
            fabric_link_bps: gbps(100),
            host_port_bps: gbps(100),
            host_ports: 2,
            ..FabricConfig::default()
        },
    );
    pull.add_cbr_flow(0, 2, 0, tc_a, gbps(100), 1500, SimTime::ZERO, stop);
    pull.add_cbr_flow(0, 2, 1, tc_b, gbps(100), 1500, SimTime::ZERO, stop);
    pull.add_cbr_flow(1, 2, 0, tc_a, gbps(100), 1500, SimTime::ZERO, stop);
    pull.run_until(horizon);

    let title = if tcs {
        "Figure 12 (Appendix F): push vs pull with traffic classes (A high, B low)"
    } else {
        "Figure 7 (§5.2): push fabric vs Stardust pull fabric"
    };
    header(
        title,
        &format!(
            "{:<26} {:>12} {:>12} {:>14} {:>14}",
            "fabric", "A [Gbps]", "B [Gbps]", "fabric drops", "note"
        ),
    );
    let rate = |bytes: u64| (bytes as f64 * 8.0 / window.as_secs_f64() / 1e9).min(100.0);
    let pa = rate(push.stats().delivered_per_port[2][0]);
    let pb = rate(push.stats().delivered_per_port[2][1]);
    println!(
        "{:<26} {:>12.1} {:>12.1} {:>14} {:>14}",
        "Ethernet switch (push)",
        pa,
        pb,
        push.stats().fabric_drops.get(),
        if tcs { "B starved" } else { "B damaged" }
    );
    let sa = rate(pull.stats().delivered_per_port[2][0]);
    let sb = rate(pull.stats().delivered_per_port[2][1]);
    println!(
        "{:<26} {:>12.1} {:>12.1} {:>14} {:>14}",
        "Stardust (pull)",
        sa,
        sb,
        pull.stats().cells_dropped.get(),
        "lossless"
    );
    println!(
        "\npaper: push delivers A=100, B={} of 100; Stardust delivers A=100, B=100\n\
         (A's surplus 100G waits in ingress buffers / is dropped at ingress, §5.2)",
        if tcs { "0" } else { "66" }
    );
}
