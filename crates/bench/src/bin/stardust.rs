//! `stardust` — the declarative experiment CLI.
//!
//! Expands [`ExperimentSpec`] TOML files into their engines × seeds run
//! matrices over the generic `FlowEngine` surface, prints FCT tables,
//! evaluates the specs' pass/fail checks, and optionally emits results
//! as JSON for `BENCH_*.json` trajectories.
//!
//! ```text
//! stardust run <spec.toml | dir>...  [--json out.json] [--quiet]
//! stardust check <spec.toml | dir>...     # parse + validate only
//! stardust preset <name>                  # print a built-in spec
//! stardust presets                        # list built-in spec names
//! stardust lint [--root dir] [--json out.json] [--quiet]
//! stardust mc [--smoke] [--json out.json] [--quiet] [--seed N]
//!             [--depth N] [--max-states N]
//! ```
//!
//! `run` on a directory executes every `*.toml` inside (sorted by file
//! name). The process exits non-zero if any spec fails to parse or any
//! check fails — this is the single CI entry point that replaced the
//! per-figure smoke steps (`stardust run specs/ci_smoke`).

use stardust_bench::spec::ExperimentSpec;
use stardust_bench::{json::Json, presets, runner};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  stardust run <spec.toml | dir>... [--json out.json] [--quiet] \
         [--max-rss-mb N] [--threads N]\n  \
         stardust check <spec.toml | dir>...\n  stardust preset <name>\n  stardust presets\n  \
         stardust lint [--root dir] [--json out.json] [--quiet]\n  \
         stardust mc [--smoke] [--json out.json] [--quiet] [--seed N] [--depth N] \
         [--max-states N]"
    );
    ExitCode::FAILURE
}

/// Peak resident-set size of this process in MB, from Linux's
/// `VmHWM` line in `/proc/self/status` (`None` where unavailable).
fn peak_rss_mb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: u64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb / 1024)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("run") => run(&argv[1..], false),
        Some("check") => run(&argv[1..], true),
        Some("preset") => preset(&argv[1..]),
        Some("lint") => lint(&argv[1..]),
        Some("mc") => mc(&argv[1..]),
        Some("presets") => {
            for name in presets::names() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn preset(args: &[String]) -> ExitCode {
    let [name] = args else { return usage() };
    match presets::by_name(name) {
        Some(spec) => {
            print!("{}", spec.to_text());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "unknown preset {name:?}; available: {}",
                presets::names().join(", ")
            );
            ExitCode::FAILURE
        }
    }
}

/// `stardust lint`: the determinism auditor (rules D1–D5) over the
/// engine crates — same engine as the standalone `stardust-lint` binary,
/// with `--json` emitting a `BENCH_*.json`-convention document.
fn lint(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(dir) = args.get(i + 1) else {
                    return usage();
                };
                root = PathBuf::from(dir);
                i += 2;
            }
            "--json" => {
                let Some(out) = args.get(i + 1) else {
                    return usage();
                };
                json_out = Some(PathBuf::from(out));
                i += 2;
            }
            "--quiet" => {
                quiet = true;
                i += 1;
            }
            _ => return usage(),
        }
    }

    let report = match stardust_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("stardust: lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    for d in &report.diagnostics {
        println!("{}", d.render());
    }
    if !quiet {
        if report.clean() {
            println!(
                "stardust lint: clean ({} files scanned)",
                report.files_scanned
            );
        } else {
            eprintln!(
                "stardust lint: {} finding(s) in {} scanned files",
                report.diagnostics.len(),
                report.files_scanned
            );
        }
    }

    if let Some(out) = json_out {
        let doc = Json::Obj(vec![
            ("tool".into(), Json::str("stardust-lint")),
            ("root".into(), Json::str(root.display().to_string())),
            (
                "files_scanned".into(),
                Json::num(report.files_scanned as f64),
            ),
            (
                "findings".into(),
                Json::Arr(
                    report
                        .diagnostics
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("file".into(), Json::str(d.file.display().to_string())),
                                ("line".into(), Json::num(f64::from(d.line))),
                                ("rule".into(), Json::str(d.rule.id())),
                                ("name".into(), Json::str(d.rule.name())),
                                ("message".into(), Json::str(d.message.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("clean".into(), Json::Bool(report.clean())),
        ]);
        if let Err(e) = std::fs::write(&out, doc.render() + "\n") {
            eprintln!("stardust: writing {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `stardust mc`: the exhaustive control-plane model checker over the
/// deterministic fabric engine (invariants I1–I3, see `stardust-mc`).
/// Explores the 4-FA Clos plus one zoo fabric; `--smoke` bounds the
/// Clos search to the CI depth, the default runs it exhaustively (the
/// ≥10⁴-state acceptance configuration). Exits non-zero on any
/// invariant violation.
fn mc(args: &[String]) -> ExitCode {
    use stardust_mc::{clos4, mc_config, Mc, McConfig};
    use stardust_topo::{DragonflyParams, TopologyBuilder};

    let mut smoke = false;
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut seed = 11u64;
    let mut depth: Option<usize> = None;
    let mut max_states: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        let num = |j: usize| args.get(j).and_then(|s| s.parse::<u64>().ok());
        match args[i].as_str() {
            "--smoke" => {
                smoke = true;
                i += 1;
            }
            "--quiet" => {
                quiet = true;
                i += 1;
            }
            "--json" => {
                let Some(out) = args.get(i + 1) else {
                    return usage();
                };
                json_out = Some(PathBuf::from(out));
                i += 2;
            }
            "--seed" => {
                let Some(n) = num(i + 1) else { return usage() };
                seed = n;
                i += 2;
            }
            "--depth" => {
                let Some(n) = num(i + 1) else { return usage() };
                depth = Some(n as usize);
                i += 2;
            }
            "--max-states" => {
                let Some(n) = num(i + 1) else { return usage() };
                max_states = Some(n as usize);
                i += 2;
            }
            _ => return usage(),
        }
    }

    let bound = |mut c: McConfig| {
        if let Some(d) = depth {
            c.max_depth = d;
        }
        if let Some(m) = max_states {
            c.max_states = m;
        }
        c
    };
    let clos_cfg = bound(if smoke {
        McConfig::smoke()
    } else {
        McConfig::exhaustive()
    });
    let clos_mode = if smoke { "smoke" } else { "exhaustive" };
    // The zoo fabric always runs the bounded smoke search: the point is
    // that the same invariants hold beyond Clos, not state-count volume.
    let zoo_cfg = bound(McConfig::smoke());

    let runs = [
        (
            "clos4",
            clos_mode,
            Mc::new(clos4(), mc_config(seed), clos_cfg).explore(),
        ),
        (
            "dragonfly_zoo",
            "smoke",
            Mc::new(
                DragonflyParams::zoo().build_fabric(),
                mc_config(seed),
                zoo_cfg,
            )
            .explore(),
        ),
    ];

    let mut pass = true;
    for (fabric, mode, r) in &runs {
        match &r.violation {
            None => {
                if !quiet {
                    println!(
                        "mc {fabric} [{mode}]: {} distinct states, {} transitions, \
                         depth {}{} — invariants I1–I3 hold",
                        r.distinct_states,
                        r.transitions,
                        r.max_depth_reached,
                        if r.truncated { " (bounded)" } else { "" },
                    );
                }
            }
            Some(v) => {
                pass = false;
                eprintln!(
                    "mc {fabric} [{mode}]: INVARIANT {} VIOLATED after {} states\n  {}\n  \
                     trace: {:?}",
                    v.invariant, r.distinct_states, v.detail, v.trace
                );
            }
        }
    }

    if let Some(out) = json_out {
        let doc = Json::Obj(vec![
            ("tool".into(), Json::str("stardust-mc")),
            ("seed".into(), Json::num(seed as f64)),
            (
                "runs".into(),
                Json::Arr(
                    runs.iter()
                        .map(|(fabric, mode, r)| {
                            Json::Obj(vec![
                                ("fabric".into(), Json::str(*fabric)),
                                ("mode".into(), Json::str(*mode)),
                                (
                                    "distinct_states".into(),
                                    Json::num(r.distinct_states as f64),
                                ),
                                ("transitions".into(), Json::num(r.transitions as f64)),
                                (
                                    "max_depth_reached".into(),
                                    Json::num(r.max_depth_reached as f64),
                                ),
                                ("truncated".into(), Json::Bool(r.truncated)),
                                (
                                    "violation".into(),
                                    r.violation.as_ref().map_or(Json::Null, |v| {
                                        Json::Obj(vec![
                                            ("invariant".into(), Json::str(v.invariant)),
                                            ("detail".into(), Json::str(v.detail.clone())),
                                            ("trace".into(), Json::str(format!("{:?}", v.trace))),
                                        ])
                                    }),
                                ),
                                ("ok".into(), Json::Bool(r.ok())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("pass".into(), Json::Bool(pass)),
        ]);
        if let Err(e) = std::fs::write(&out, doc.render() + "\n") {
            eprintln!("stardust: writing {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
    }

    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Expand file-or-directory arguments into the sorted spec file list.
fn collect_specs(paths: &[PathBuf]) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut in_dir: Vec<PathBuf> = std::fs::read_dir(p)
                .map_err(|e| format!("{}: {e}", p.display()))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|f| f.extension().is_some_and(|x| x == "toml"))
                .collect();
            in_dir.sort();
            if in_dir.is_empty() {
                return Err(format!("{}: no *.toml specs inside", p.display()));
            }
            files.extend(in_dir);
        } else if p.is_file() {
            files.push(p.clone());
        } else {
            return Err(format!("{}: no such file or directory", p.display()));
        }
    }
    if files.is_empty() {
        return Err("no spec files given".into());
    }
    Ok(files)
}

fn load(path: &Path) -> Result<ExperimentSpec, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    ExperimentSpec::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn run(args: &[String], check_only: bool) -> ExitCode {
    let mut paths = Vec::new();
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut max_rss_mb: Option<u64> = None;
    let mut threads: Option<u32> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let Some(out) = args.get(i + 1) else {
                    return usage();
                };
                json_out = Some(PathBuf::from(out));
                i += 2;
            }
            "--max-rss-mb" => {
                let Some(cap) = args.get(i + 1).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                max_rss_mb = Some(cap);
                i += 2;
            }
            "--threads" => {
                let Some(t) = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t > 0)
                else {
                    return usage();
                };
                threads = Some(t);
                i += 2;
            }
            "--quiet" => {
                quiet = true;
                i += 1;
            }
            flag if flag.starts_with("--") => return usage(),
            path => {
                paths.push(PathBuf::from(path));
                i += 1;
            }
        }
    }
    let files = match collect_specs(&paths) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("stardust: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut outcomes = Vec::new();
    let mut failed = false;
    for file in &files {
        let mut spec = match load(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("stardust: {e}");
                failed = true;
                continue;
            }
        };
        if let Some(t) = threads {
            // CLI override beats the spec's `threads` field. Results are
            // identical at any thread count (pinned by the conformance
            // suite); oversubscribing the host only costs wall time.
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get()) as u32;
            if t > cores && !quiet {
                eprintln!(
                    "stardust: --threads {t} exceeds available parallelism ({cores}); \
                     results are unaffected but wall time may suffer"
                );
            }
            spec.threads = Some(t);
        }
        if check_only {
            println!(
                "{}: ok ({} engines × {} seeds, {} link events)",
                file.display(),
                spec.engines.len(),
                spec.seeds.len(),
                spec.failures.events().len()
            );
            continue;
        }
        if !quiet {
            println!(
                "\n### {} ({} engines × {} seeds, horizon {} µs)",
                file.display(),
                spec.engines.len(),
                spec.seeds.len(),
                spec.horizon_us
            );
        }
        let outcome = runner::run_spec(&spec);
        if quiet {
            for f in &outcome.check_failures {
                eprintln!("{}: CHECK FAILED: {f}", file.display());
            }
        } else {
            outcome.print();
        }
        failed |= !outcome.check_failures.is_empty();
        outcomes.push((file.clone(), outcome));
    }

    if let Some(out) = json_out {
        let doc = Json::Arr(
            outcomes
                .iter()
                .map(|(file, o)| {
                    let Json::Obj(mut fields) = o.to_json() else {
                        unreachable!("outcomes render as objects")
                    };
                    fields.insert(
                        0,
                        ("spec_file".into(), Json::str(file.display().to_string())),
                    );
                    Json::Obj(fields)
                })
                .collect(),
        );
        if let Err(e) = std::fs::write(&out, doc.render() + "\n") {
            eprintln!("stardust: writing {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        if !quiet {
            println!(
                "\nwrote {} ({} spec results)",
                out.display(),
                outcomes.len()
            );
        }
    }

    // The memory gate covers the whole invocation: VmHWM is the
    // process-wide high-water mark, so running a directory of specs
    // under one cap bounds every run in it.
    if let Some(cap) = max_rss_mb {
        match peak_rss_mb() {
            Some(peak) => {
                if !quiet {
                    println!("peak RSS: {peak} MB (cap {cap} MB)");
                }
                if peak > cap {
                    eprintln!("stardust: peak RSS {peak} MB exceeds the {cap} MB cap");
                    failed = true;
                }
            }
            None => {
                eprintln!("stardust: --max-rss-mb ignored — /proc/self/status has no VmHWM here")
            }
        }
    }

    if failed {
        eprintln!("stardust: FAILED (spec errors or failed checks above)");
        ExitCode::FAILURE
    } else {
        if !check_only && !quiet {
            println!("\nstardust: all specs ran, all checks passed");
        }
        ExitCode::SUCCESS
    }
}
