//! Ablation — packet packing on vs off at the network level (§3.4,
//! §6.1.1's strawman inside the full fabric rather than a single device).
//!
//! With packing disabled every packet is chopped independently and tail
//! cells are padded, so the same payload needs more cells and more wire
//! bytes; at a fixed offered load the fabric runs hotter and the achieved
//! utilization of small-packet traffic collapses.

use stardust_bench::{header, Args};
use stardust_fabric::{FabricConfig, FabricEngine};
use stardust_sim::{SimDuration, SimTime};
use stardust_topo::builders::{two_tier, TwoTierParams};

fn run(packed: bool, pkt_bytes: u32, util: f64, ms: u64) -> (f64, f64, u64, u64) {
    let params = TwoTierParams::paper_scaled(16);
    let tt = two_tier(params);
    let mut cfg = FabricConfig::default();
    let capacity = params.fa_uplinks as f64 * cfg.fabric_link_bps as f64 * cfg.payload_fraction();
    cfg.host_ports = 2;
    cfg.host_port_bps = (util * capacity / 2.0) as u64;
    cfg.packet_packing = packed;
    let mut e = FabricEngine::new(tt.topo, cfg);
    e.saturate_all_to_all(pkt_bytes, 32 * 1024);
    e.begin_measurement(SimTime::from_micros(300));
    e.run_until(SimTime::from_millis(ms));
    let s = e.stats();
    (
        e.fabric_utilization(SimDuration::from_millis(ms)),
        s.cell_latency_ns.mean() / 1000.0,
        s.cells_sent.get(),
        s.bytes_delivered.get(),
    )
}

fn main() {
    let args = Args::parse();
    let ms = args.get_u64("ms", 2);
    let util = args.get_f64("util", 0.85);
    header(
        "ablation: packet packing (two-tier fabric, offered 85% of payload capacity)",
        &format!(
            "{:>9} {:>9} {:>10} {:>12} {:>12} {:>14}",
            "pkt [B]", "packing", "delivered", "latency us", "cells sent", "cells/KB"
        ),
    );
    for pkt in [64u32, 250, 257, 750, 1500, 4000] {
        for packed in [true, false] {
            let (u, lat, cells, bytes) = run(packed, pkt, util, ms);
            println!(
                "{:>9} {:>9} {:>9.1}% {:>12.2} {:>12} {:>14.2}",
                pkt,
                if packed { "on" } else { "off" },
                u * 100.0,
                lat,
                cells,
                cells as f64 * 1024.0 / bytes.max(1) as f64,
            );
        }
    }
    println!(
        "\n§3.4: without packing, sizes just above a cell (e.g. 257 B vs 248 B payload) \
         waste ~50% of throughput; packing keeps every size near the offered load."
    );
}
