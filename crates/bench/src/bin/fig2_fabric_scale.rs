//! fig2_fabric_scale — engine events/sec across fabric sizes.
//!
//! The paper's Figure 2 argument is that a cell fabric scales to
//! data-center size; the simulator's version of that claim is that the
//! event core sustains its throughput as the topology grows. This
//! scenario sweeps a two-tier fabric from 64 to 1024 Fabric Adapters
//! under a permutation workload (every FA streams line-rate CBR traffic
//! at its permutation partner — the §6.2 traffic shape) and reports
//! simulated events per wall-clock second at each size.
//!
//! `--smoke` runs the smallest size only and fails (exit 1) if events/sec
//! drops below a floor (`STARDUST_MIN_EVENTS_PER_SEC`, default 200,000),
//! giving CI a loud regression gate on the event core.
//!
//! `--json <path>` writes the measured points machine-readably (events/s
//! per scale point) — CI runs `--smoke --json BENCH_fig2.json` and
//! uploads the file as the bench-trajectory artifact. With `--smoke` the
//! gate still applies to the smallest size only, but the JSON sweep also
//! measures 128 and 256 FAs so the trajectory carries real scale points.
//!
//! `--shards N` switches to the **sharded** engine: without `--smoke` it
//! sweeps sizes comparing sequential vs N-shard events/sec; with
//! `--smoke` it runs the 1024-FA size and fails (exit 1) unless the
//! N-shard run beats sequential by `STARDUST_MIN_SHARD_SPEEDUP`
//! (default 2×). The speedup gate needs real cores: when the host
//! exposes fewer than N, it degrades to a conformance check (identical
//! `FabricStats`) and exits 0 with a notice — parallel speedup cannot be
//! demonstrated on hardware that cannot run the shards in parallel.

use stardust_bench::json::Json;
use stardust_bench::{commas, header, Args};
use stardust_fabric::{ExecMode, FabricConfig, FabricEngine, ShardedFabricEngine};
use stardust_sim::units::gbps;
use stardust_sim::{DetRng, SimDuration, SimTime};
use stardust_topo::builders::{two_tier, TwoTierParams};
use stardust_workload::permutation;
use std::time::Instant;

/// A two-tier parameter family: the aggregation tier keeps a fixed
/// 32-port FE radix (16 down / 16 up) and grows by adding FEs. The
/// builder's spine stage is a full bipartite layer, so its 16 spines
/// fatten with fabric size (`t2_down = num_fa / 4`) — the sweep
/// therefore stresses both the more-elements and the bigger-elements
/// growth directions. `num_fa` must be a multiple of 16.
fn params_for(num_fa: u32) -> TwoTierParams {
    assert!(num_fa >= 16 && num_fa.is_multiple_of(16));
    TwoTierParams {
        num_fa,
        fa_uplinks: 4,
        t1_count: num_fa / 4,
        t1_down: 16,
        t1_up: 16,
        t2_count: 16,
        t2_down: num_fa / 4,
        near_meters: 10,
        far_meters: 100,
    }
}

struct Sample {
    num_fa: u32,
    links: usize,
    events: u64,
    wall_s: f64,
    delivered: u64,
}

/// The sweep's engine configuration (shared by the sequential and the
/// sharded runs — the conformance check depends on them being identical).
fn bench_cfg(seed: u64) -> FabricConfig {
    FabricConfig {
        seed,
        host_ports: 2,
        host_port_bps: gbps(40),
        ctrl_latency: SimDuration::from_micros(1),
        ..FabricConfig::default()
    }
}

/// Attach the permutation CBR workload to either engine flavor (both
/// expose the same `add_cbr_flow` surface).
macro_rules! attach_workload {
    ($e:expr, $num_fa:expr, $sim_us:expr, $seed:expr) => {{
        let mut rng = DetRng::from_label($seed, "fig2-fabric-scale");
        let perm = permutation($num_fa as usize, &mut rng);
        let stop = SimTime::from_micros($sim_us);
        for src in 0..$num_fa {
            $e.add_cbr_flow(
                src,
                perm[src as usize],
                (src % 2) as u8,
                0,
                gbps(40),
                1500,
                SimTime::ZERO,
                stop,
            );
        }
        stop
    }};
}

/// Build the fabric, attach the permutation CBR workload, simulate
/// `sim_us` microseconds and measure wall-clock cost of the run loop
/// (topology construction and flow setup stay untimed). Returns the
/// sample plus the final stats (for conformance checks).
fn run_size_full(num_fa: u32, sim_us: u64, seed: u64) -> (Sample, stardust_fabric::FabricStats) {
    let tt = two_tier(params_for(num_fa));
    let links = tt.topo.num_links();
    let mut e = FabricEngine::new(tt.topo, bench_cfg(seed));
    let stop = attach_workload!(e, num_fa, sim_us, seed);
    let t = Instant::now();
    e.run_until(stop);
    let wall_s = t.elapsed().as_secs_f64();
    let sample = Sample {
        num_fa,
        links,
        events: e.events_executed(),
        wall_s,
        delivered: e.stats().packets_delivered.get(),
    };
    (sample, e.stats().clone())
}

fn run_size(num_fa: u32, sim_us: u64, seed: u64) -> Sample {
    run_size_full(num_fa, sim_us, seed).0
}

fn events_per_sec(s: &Sample) -> f64 {
    s.events as f64 / s.wall_s
}

/// As [`run_size_full`], on the sharded engine. `threads` caps the
/// driving OS threads (`None` = one per shard); `Some(1)` runs the
/// whole window loop on the calling thread.
fn run_size_sharded(
    num_fa: u32,
    sim_us: u64,
    seed: u64,
    shards: u32,
    threads: Option<u32>,
) -> (Sample, stardust_fabric::FabricStats) {
    let tt = two_tier(params_for(num_fa));
    let links = tt.topo.num_links();
    let mut e = ShardedFabricEngine::new(tt.topo, bench_cfg(seed), shards);
    if let Some(t) = threads {
        e.set_threads(t);
    }
    let stop = attach_workload!(e, num_fa, sim_us, seed);
    let t = Instant::now();
    e.run_until(stop);
    let wall_s = t.elapsed().as_secs_f64();
    let stats = e.stats();
    let sample = Sample {
        num_fa,
        links,
        events: e.events_executed(),
        wall_s,
        delivered: stats.packets_delivered.get(),
    };
    (sample, stats)
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Write the measured samples as a `BENCH_fig2.json`-style document:
/// events/s per scale point plus enough context to compare runs.
/// `extra` appends further top-level sections (the smoke path adds the
/// sharded ev/s-per-core sweep and the window-widening measurement).
fn write_json(path: &str, mode: &str, sim_us: u64, samples: &[Sample], extra: Vec<(String, Json)>) {
    let mut fields = vec![
        ("bench".into(), Json::str("fig2_fabric_scale")),
        ("mode".into(), Json::str(mode)),
        ("sim_us".into(), Json::num(sim_us as f64)),
        ("host_cores".into(), Json::num(host_cores() as f64)),
        (
            "points".into(),
            Json::Arr(
                samples
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("num_fa".into(), Json::num(s.num_fa as f64)),
                            ("links".into(), Json::num(s.links as f64)),
                            ("events".into(), Json::num(s.events as f64)),
                            ("wall_s".into(), Json::Num(s.wall_s)),
                            ("events_per_sec".into(), Json::Num(events_per_sec(s))),
                            ("pkts_delivered".into(), Json::num(s.delivered as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    fields.extend(extra);
    let doc = Json::Obj(fields);
    match std::fs::write(path, doc.render() + "\n") {
        Ok(()) => println!("wrote {path} ({} scale points)", samples.len()),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The smoke artifact's shards × threads sweep at the smallest size:
/// events/sec, events/sec **per driving core**, and speedup against the
/// sequential baseline, with a conformance bit per point. On hosts with
/// fewer cores than shards the thread axis collapses to 1 (the
/// multiplexed path) so the curve never measures oversubscription noise.
fn sharded_sweep_json(
    sim_us: u64,
    seed: u64,
    seq: &Sample,
    seq_stats: &stardust_fabric::FabricStats,
) -> Json {
    let num_fa = seq.num_fa;
    let cores = host_cores() as u32;
    let seq_eps = events_per_sec(seq);
    let mut points = Vec::new();
    for shards in [2u32, 4] {
        let mut tvals = vec![1u32];
        if shards.min(cores) > 1 {
            tvals.push(shards.min(cores));
        }
        for threads in tvals {
            let (s, stats) = run_size_sharded(num_fa, sim_us, seed, shards, Some(threads));
            let eps = events_per_sec(&s);
            points.push(Json::Obj(vec![
                ("shards".into(), Json::num(shards as f64)),
                ("threads".into(), Json::num(threads as f64)),
                ("events".into(), Json::num(s.events as f64)),
                ("wall_s".into(), Json::Num(s.wall_s)),
                ("events_per_sec".into(), Json::Num(eps)),
                (
                    "events_per_sec_per_core".into(),
                    Json::Num(eps / threads as f64),
                ),
                ("speedup_vs_seq".into(), Json::Num(eps / seq_eps)),
                ("conformant".into(), Json::Bool(&stats == seq_stats)),
            ]));
            assert_eq!(
                &stats, seq_stats,
                "{shards}-shard/{threads}-thread run diverged from sequential"
            );
        }
    }
    Json::Obj(vec![
        ("num_fa".into(), Json::num(num_fa as f64)),
        ("seq_events_per_sec".into(), Json::Num(seq_eps)),
        ("points".into(), Json::Arr(points)),
    ])
}

/// Measure how much the per-pair lookahead matrix widens windows on a
/// zoo topology: run the same workload on the zoo dragonfly at 4 shards
/// with matrix windows and with the scalar (min-bound) baseline, and
/// report the synchronization-round counts. The stats must agree
/// bit-for-bit — the matrix only changes *when* shards synchronize,
/// never what they compute.
fn window_widening_json(seed: u64) -> Json {
    use stardust_topo::{DragonflyParams, TopologyBuilder};
    let built = DragonflyParams::zoo().build_fabric();
    let run = |scalar: bool| {
        let mut e: ShardedFabricEngine = ShardedFabricEngine::with_plan(
            built.topo.clone(),
            bench_cfg(seed),
            built.plan.clone(),
            4,
        );
        e.set_exec_mode(ExecMode::Inline);
        e.set_scalar_windows(scalar);
        for src in 0..20u32 {
            e.add_message(
                src,
                (src + 7) % 20,
                0,
                0,
                20_000,
                SimTime::from_nanos(src as u64 * 131),
            );
        }
        e.run_until(SimTime::from_millis(1));
        (e.windows_executed(), e.stats())
    };
    let (matrix_w, matrix_stats) = run(false);
    let (scalar_w, scalar_stats) = run(true);
    assert_eq!(
        matrix_stats, scalar_stats,
        "window policy changed results — determinism bug"
    );
    println!(
        "window widening (dragonfly zoo, 4 shards, 1 ms): \
         {scalar_w} scalar rounds vs {matrix_w} matrix rounds \
         ({:.2}x fewer barriers)",
        scalar_w as f64 / matrix_w as f64
    );
    Json::Obj(vec![
        ("topology".into(), Json::str("dragonfly_zoo")),
        ("shards".into(), Json::num(4.0)),
        ("sim_ms".into(), Json::num(1.0)),
        ("matrix_windows".into(), Json::num(matrix_w as f64)),
        ("scalar_windows".into(), Json::num(scalar_w as f64)),
        (
            "barrier_reduction".into(),
            Json::Num(scalar_w as f64 / matrix_w as f64),
        ),
    ])
}

/// `--shards N --smoke`: the CI speedup gate at 1024 FAs. Below the
/// speedup floor the sharded measurement is retried once (shared runners
/// are noisy; the gate should catch regressions, not co-tenants) before
/// failing.
fn shard_smoke(shards: u32, sim_us: u64, seed: u64) {
    let floor: f64 = std::env::var("STARDUST_MIN_SHARD_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let num_fa = 1024;
    let (seq, seq_stats) = run_size_full(num_fa, sim_us, seed);
    let (mut sh, sh_stats) = run_size_sharded(num_fa, sim_us, seed, shards, None);
    let enough_cores = (host_cores() as u32) >= shards;
    if enough_cores && events_per_sec(&sh) / events_per_sec(&seq) < floor {
        // One retry, keeping the faster measurement.
        let (retry, _) = run_size_sharded(num_fa, sim_us, seed, shards, None);
        if events_per_sec(&retry) > events_per_sec(&sh) {
            sh = retry;
        }
    }
    let speedup = events_per_sec(&sh) / events_per_sec(&seq);
    println!(
        "shard smoke: {num_fa} FAs, sequential {}/s vs {shards} shards {}/s = {speedup:.2}x \
         (floor {floor}x, host cores {})",
        commas(events_per_sec(&seq) as u64),
        commas(events_per_sec(&sh) as u64),
        host_cores()
    );
    // The runs must agree bit-for-bit whatever the timing said.
    assert_eq!(seq_stats, sh_stats, "sharded run diverged from sequential");
    if !enough_cores {
        println!(
            "only {} core(s) available for {shards} shards — speedup gate skipped, \
             conformance verified instead (stats bit-identical)",
            host_cores()
        );
        return;
    }
    if speedup < floor {
        eprintln!("sharded engine below the {floor}x speedup floor — parallel perf regression");
        std::process::exit(1);
    }
}

fn main() {
    let args = Args::parse();
    let seed = args.get_u64("seed", 42);
    if let Some(shards) = args.get_str("shards").map(|s| {
        s.parse::<u32>()
            .expect("--shards takes a positive shard count")
    }) {
        assert!(shards >= 1);
        if args.get_str("json").is_some() {
            eprintln!(
                "warning: --json is only emitted on the sequential sweep/smoke paths; \
                 ignoring it under --shards"
            );
        }
        if args.has("smoke") {
            shard_smoke(shards, args.get_u64("us", 25), seed);
            return;
        }
        // Sequential-vs-sharded sweep.
        let sim_us = args.get_u64("us", if args.has("full") { 100 } else { 50 });
        let sizes: &[u32] = if args.has("full") {
            &[64, 256, 1024]
        } else {
            &[64, 256]
        };
        println!(
            "two-tier sweep, sequential vs {shards} shards ({} host cores), \
             {sim_us} µs simulated per size",
            host_cores()
        );
        header(
            "fig2_fabric_scale --shards: sequential vs sharded events/sec",
            &format!(
                "{:>8} {:>14} {:>14} {:>14} {:>9}",
                "FAs", "events", "seq ev/s", "shard ev/s", "speedup"
            ),
        );
        for &n in sizes {
            let seq = run_size(n, sim_us, seed);
            let (sh, _) = run_size_sharded(n, sim_us, seed, shards, None);
            println!(
                "{:>8} {:>14} {:>14} {:>14} {:>8.2}x",
                n,
                commas(sh.events),
                commas(events_per_sec(&seq) as u64),
                commas(events_per_sec(&sh) as u64),
                events_per_sec(&sh) / events_per_sec(&seq)
            );
        }
        return;
    }
    if args.has("smoke") {
        // CI regression gate: one small size, hard events/sec floor.
        let floor: f64 = std::env::var("STARDUST_MIN_EVENTS_PER_SEC")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200_000.0);
        let sim_us = args.get_u64("us", 200);
        let (s, seq_stats) = run_size_full(64, sim_us, seed);
        let eps = events_per_sec(&s);
        println!(
            "smoke: 64 FAs, {} events in {:.3}s = {} events/sec (floor {})",
            commas(s.events),
            s.wall_s,
            commas(eps as u64),
            commas(floor as u64)
        );
        if let Some(path) = args.get_str("json") {
            // The sharded ev/s-per-core curve and the barrier-count
            // comparison ride on the smoke artifact: both are cheap at
            // this size and give CI a per-commit trajectory for the
            // parallel runtime, not just the sequential core.
            let extras = vec![
                (
                    "sharded_points".into(),
                    sharded_sweep_json(sim_us, seed, &s, &seq_stats),
                ),
                ("window_widening".into(), window_widening_json(seed)),
            ];
            // Two larger sizes give the artifact a real scale trajectory;
            // the hard floor still gates only the 64-FA point above.
            let mut samples = vec![s];
            for n in [128, 256] {
                samples.push(run_size(n, sim_us, seed));
            }
            write_json(path, "smoke", sim_us, &samples, extras);
            for s in &samples[1..] {
                println!(
                    "       {} FAs: {} events/sec (unfenced trajectory point)",
                    s.num_fa,
                    commas(events_per_sec(s) as u64)
                );
            }
        }
        if eps < floor {
            eprintln!("event core below the events/sec floor — perf regression");
            std::process::exit(1);
        }
        return;
    }

    let sim_us = args.get_u64("us", if args.has("full") { 200 } else { 100 });
    let sizes: &[u32] = if args.has("full") {
        &[64, 128, 256, 512, 1024]
    } else {
        &[64, 128, 256, 512]
    };
    println!(
        "two-tier fabric sweep, permutation CBR at 40G per FA, {sim_us} µs simulated per size"
    );
    header(
        "fig2_fabric_scale: event-core throughput vs fabric size",
        &format!(
            "{:>8} {:>8} {:>14} {:>10} {:>14} {:>12}",
            "FAs", "links", "events", "wall s", "events/sec", "pkts deliv"
        ),
    );
    let mut first_eps = None;
    let mut samples = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let s = run_size(n, sim_us, seed);
        let eps = events_per_sec(&s);
        first_eps.get_or_insert(eps);
        println!(
            "{:>8} {:>8} {:>14} {:>10.3} {:>14} {:>12}",
            s.num_fa,
            s.links,
            commas(s.events),
            s.wall_s,
            commas(eps as u64),
            commas(s.delivered)
        );
        samples.push(s);
    }
    if let Some(path) = args.get_str("json") {
        write_json(path, "sweep", sim_us, &samples, Vec::new());
    }
    if let Some(base) = first_eps {
        println!(
            "\n(events/sec at the largest size should stay within a small factor of \
             the smallest — {}/sec at 64 FAs — if the event core scales)",
            commas(base as u64)
        );
    }
}
