//! Ablations — credit size (§4.1) and spray-permutation refresh (§5.3).
//!
//! * Credit size: larger credits mean fewer scheduler decisions but more
//!   in-flight data per destination — egress memory and reassembly
//!   interleaving grow with credit size, which is why the paper pins the
//!   credit near the §4.1 minimum.
//! * Spray shuffle period: the round-robin permutation must be replaced
//!   "every few rounds" or recurrent synchronization between sources can
//!   bias some links ("the probability of a persistent synchronization is
//!   negligible" only because of the refresh).

use stardust_bench::{header, Args};
use stardust_fabric::{FabricConfig, FabricEngine};
use stardust_sim::{SimDuration, SimTime};
use stardust_topo::builders::{two_tier, TwoTierParams};

fn engine(cfg_mut: impl FnOnce(&mut FabricConfig), util: f64, ms: u64) -> FabricEngine {
    let params = TwoTierParams::paper_scaled(16);
    let tt = two_tier(params);
    let mut cfg = FabricConfig::default();
    let capacity = params.fa_uplinks as f64 * cfg.fabric_link_bps as f64 * cfg.payload_fraction();
    cfg.host_ports = 2;
    cfg.host_port_bps = (util * capacity / 2.0) as u64;
    cfg_mut(&mut cfg);
    let mut e = FabricEngine::new(tt.topo, cfg);
    e.saturate_all_to_all(750, 32 * 1024);
    e.begin_measurement(SimTime::from_micros(300));
    e.run_until(SimTime::from_millis(ms));
    e
}

fn main() {
    let args = Args::parse();
    let ms = args.get_u64("ms", 2);
    let util = args.get_f64("util", 0.9);

    header(
        "ablation: credit size (offered 90%)",
        &format!(
            "{:>12} {:>10} {:>12} {:>12} {:>14} {:>12}",
            "credit [B]", "delivered", "lat mean us", "lat p99 us", "egress peak B", "q p99 cells"
        ),
    );
    for credit in [1024u32, 2048, 4096, 8192, 16384] {
        let e = engine(|c| c.credit_bytes = credit, util, ms);
        let s = e.stats();
        println!(
            "{:>12} {:>9.1}% {:>12.2} {:>12.2} {:>14} {:>12}",
            credit,
            e.fabric_utilization(SimDuration::from_millis(ms)) * 100.0,
            s.cell_latency_ns.mean() / 1000.0,
            s.cell_latency_ns.quantile(0.99) as f64 / 1000.0,
            s.max_egress_bytes,
            s.last_stage_queue.quantile(0.99),
        );
    }

    header(
        "ablation: spray permutation refresh period (rounds between shuffles)",
        &format!(
            "{:>12} {:>10} {:>12} {:>12} {:>14}",
            "rounds", "delivered", "lat mean us", "lat p99 us", "q p99 cells"
        ),
    );
    for rounds in [1u32, 4, 16, 64, 1_000_000] {
        let e = engine(|c| c.spray_rounds_per_shuffle = rounds, util, ms);
        let s = e.stats();
        println!(
            "{:>12} {:>9.1}% {:>12.2} {:>12.2} {:>14}",
            rounds,
            e.fabric_utilization(SimDuration::from_millis(ms)) * 100.0,
            s.cell_latency_ns.mean() / 1000.0,
            s.cell_latency_ns.quantile(0.99) as f64 / 1000.0,
            s.last_stage_queue.quantile(0.99),
        );
    }

    header(
        "ablation: credit speedup (§4.1's \"slightly above the egress port bandwidth\")",
        &format!(
            "{:>12} {:>10} {:>14} {:>14}",
            "speedup %", "delivered", "egress peak B", "credits sent"
        ),
    );
    for speedup in [0.0f64, 0.01, 0.03, 0.10] {
        let e = engine(|c| c.credit_speedup = speedup, util, ms);
        let s = e.stats();
        println!(
            "{:>12.1} {:>9.1}% {:>14} {:>14}",
            speedup * 100.0,
            e.fabric_utilization(SimDuration::from_millis(ms)) * 100.0,
            s.max_egress_bytes,
            s.credits_sent.get(),
        );
    }
}
