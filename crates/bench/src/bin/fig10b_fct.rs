//! Figure 10(b) — flow completion times of Web-workload flows in an
//! over-subscribed network.
//!
//! A pair of nodes exchanges flows drawn from the Facebook Web flow-size
//! distribution while every other node sources four long-running
//! connections to random destinations (the paper's background load,
//! "testing the effect of queuing within the network on short flows").
//! Prints the FCT CDF per protocol.

use stardust_bench::{header, Args};
use stardust_sim::{DetRng, SimDuration, SimTime};
use stardust_topo::builders::{kary, KaryParams};
use stardust_transport::{FlowId, Protocol, TransportConfig, TransportSim};
use stardust_workload::FlowSizeDist;

fn run(proto: Protocol, k: u32, n_short: usize, seed: u64) -> Vec<f64> {
    let ft = kary(KaryParams {
        k,
        ..KaryParams::paper_6_3()
    });
    let cfg = TransportConfig {
        seed,
        ..TransportConfig::default()
    };
    let mut sim = TransportSim::new(ft, cfg);
    let n = sim.num_hosts() as u32;
    let mut rng = DetRng::from_label(seed, "fct-bg");

    // Background: every node (except the measured pair) sources 4
    // long-running connections to random destinations.
    for src in 2..n {
        for _ in 0..4 {
            let mut dst = rng.below(n as u64) as u32;
            while dst == src {
                dst = rng.below(n as u64) as u32;
            }
            sim.add_flow(proto, src, dst, u64::MAX / 2, SimTime::ZERO);
        }
    }

    // Foreground: host 0 → host 1 (same pod edge pair would be trivial;
    // hosts 0 and n-1 cross the core).
    let dist = FlowSizeDist::fb_web();
    let mut szrng = DetRng::from_label(seed, "fct-sizes");
    let mut ids: Vec<FlowId> = Vec::new();
    let mut t = SimTime::from_millis(5); // let background ramp
    for _ in 0..n_short {
        let size = dist.sample(&mut szrng).max(512);
        ids.push(sim.add_flow(proto, 0, n - 1, size, t));
        // Serial request/response exchanges, 200µs apart.
        t += SimDuration::from_micros(200);
    }
    sim.run_until(t + SimDuration::from_millis(400));
    let mut fcts: Vec<f64> = ids
        .iter()
        .filter_map(|&i| sim.flow(i).fct())
        .map(|d| d.as_secs_f64() * 1e3)
        .collect();
    fcts.sort_by(|a, b| a.partial_cmp(b).unwrap());
    fcts
}

fn main() {
    let args = Args::parse();
    let k = if args.has("full") {
        12
    } else {
        args.get_u64("k", 8) as u32
    };
    let n_short = args.get_u64("flows", 200) as usize;
    let seed = args.get_u64("seed", 42);
    let protos = [
        Protocol::Dctcp,
        Protocol::Dcqcn,
        Protocol::Mptcp,
        Protocol::Stardust,
    ];

    println!(
        "k = {k} fat-tree, {n_short} Web-workload flows host0→host{}, 4 background flows/node",
        k * k * k / 4 - 1
    );

    let results: Vec<(Protocol, Vec<f64>)> = protos
        .iter()
        .map(|&p| (p, run(p, k, n_short, seed)))
        .collect();

    header(
        "Figure 10(b): FCT CDF [ms]",
        &format!(
            "{:>8} {}",
            "CDF %",
            results
                .iter()
                .map(|(p, _)| format!("{:>10}", p.label()))
                .collect::<String>()
        ),
    );
    for pct in [10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99, 100] {
        print!("{:>8}", pct);
        for (_, fcts) in &results {
            if fcts.is_empty() {
                print!(" {:>10}", "-");
                continue;
            }
            let idx = ((pct as f64 / 100.0) * (fcts.len() - 1) as f64).round() as usize;
            print!(" {:>10.3}", fcts[idx]);
        }
        println!();
    }
    header(
        "summary",
        &format!(
            "{:>10} {:>10} {:>12} {:>12} {:>12}",
            "protocol", "completed", "median ms", "p99 ms", "max ms"
        ),
    );
    for (p, fcts) in &results {
        if fcts.is_empty() {
            println!("{:>10} {:>10}", p.label(), 0);
            continue;
        }
        println!(
            "{:>10} {:>10} {:>12.3} {:>12.3} {:>12.3}",
            p.label(),
            fcts.len(),
            fcts[fcts.len() / 2],
            fcts[(fcts.len() - 1) * 99 / 100],
            fcts.last().unwrap()
        );
    }
    println!(
        "\npaper: \"Stardust significantly outperforms all other schemes, as the fabric \
         is scheduled. Even flows of 1MB have a FCT of less than a millisecond.\""
    );
}
