//! Figure 10(b) — flow completion times of heavy-tailed Web-workload
//! flows, side by side on the §6.3 fat-tree transports **and** the
//! cell-accurate Stardust fabric.
//!
//! One [`Scenario`] expands `--flows` Poisson-arriving flows drawn from
//! the Facebook Web (or `--workload hadoop`) flow-size distribution over
//! uniformly random pairs; both engines are driven from the same seeded
//! spec — byte-identical flow lists when the two populations match (the
//! default and `--smoke` configurations), equal per-node offered load
//! otherwise — and the FCT percentile table prints per engine. `--smoke`
//! runs a small deterministic configuration with hard assertions (wired
//! into CI) — this is the acceptance gate for the finite-flow fabric layer:
//! the paper's claim that cell spraying + VOQ scheduling give NDP-class
//! FCTs *without per-flow transport machinery* is exercised on the
//! detailed fabric model, not just the abstract transport one.

use stardust_bench::fig10::{
    fabric_fas, kary_hosts, print_fct_summary, print_fct_table, run_side_by_side, FABRIC_LABEL,
};
use stardust_bench::Args;
use stardust_sim::{SimDuration, SimTime};
use stardust_transport::Protocol;
use stardust_workload::{FlowSizeDist, Scenario, ScenarioKind};

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let k = if args.has("full") {
        12
    } else if smoke {
        4
    } else {
        args.get_u64("k", 8) as u32
    };
    let factor = if args.has("full") {
        1
    } else if smoke {
        16
    } else {
        2
    } as u32;
    let n_flows = args.get_u64("flows", if smoke { 50 } else { 200 }) as usize;
    // Per-node mean inter-arrival gap; at the Web mix's ~97 KB mean flow,
    // 800 µs offers ~1 Gbps per 10G NIC (≈10% load) on either engine.
    let gap_us = args.get_u64("gap-us", 800);
    let ms = args.get_u64("ms", if smoke { 100 } else { 200 });
    let seed = args.get_u64("seed", 42);
    let hadoop = args
        .get_str("workload")
        .is_some_and(|w| w.eq_ignore_ascii_case("hadoop"));
    let (dist, name) = if hadoop {
        (FlowSizeDist::fb_hadoop(), "fig10b-hadoop-mix")
    } else {
        (FlowSizeDist::fb_web(), "fig10b-web-mix")
    };
    let mean_bytes = dist.mean();
    let scenario = Scenario {
        name,
        seed,
        kind: ScenarioKind::Mix {
            dist,
            n_flows,
            node_gap: SimDuration::from_micros(gap_us),
        },
    };
    let protos: &[Protocol] = if smoke {
        &[Protocol::Dctcp, Protocol::Stardust]
    } else {
        &[
            Protocol::Dctcp,
            Protocol::Dcqcn,
            Protocol::Mptcp,
            Protocol::Stardust,
        ]
    };

    println!(
        "{n_flows} {} flows (mean {:.0} B, Poisson per-node gap {gap_us} µs): k = {k} fat-tree \
         ({} hosts) vs 1/{factor}-scale Stardust fabric ({} FAs), {ms} ms horizon",
        if hadoop { "Hadoop" } else { "Web" },
        mean_bytes,
        kary_hosts(k),
        fabric_fas(factor)
    );

    let results = run_side_by_side(&scenario, protos, k, factor, SimTime::from_millis(ms));
    print_fct_table("Figure 10(b): FCT by percentile [ms]", &results);
    print_fct_summary(&results);
    println!(
        "\npaper: \"Stardust significantly outperforms all other schemes, as the fabric \
         is scheduled. Even flows of 1MB have a FCT of less than a millisecond.\""
    );

    if smoke {
        let (_, fab) = results
            .iter()
            .find(|(l, _)| l == FABRIC_LABEL)
            .expect("fabric column");
        assert_eq!(
            fab.completed(),
            fab.len(),
            "the lossless fabric must complete every flow"
        );
        // The paper's yardstick is serialization-bound FCTs ("even flows
        // of 1MB have a FCT of less than a millisecond" on 10G): the
        // fabric must stay within a small factor of the largest drawn
        // flow's bare 10G serialization time, and the median must not be
        // inflated by queueing delay. The bounds are per workload because
        // the serialization floor is: the smoke Web mix tops out near
        // 3 MB (2.4 ms at 10G), the Hadoop mix near 40 MB (~30 ms).
        let (median_cap, p99_cap) = if hadoop {
            (SimDuration::from_millis(2), SimDuration::from_millis(60))
        } else {
            (SimDuration::from_millis(1), SimDuration::from_millis(10))
        };
        let p99 = fab.fct_quantile(0.99).expect("fcts recorded");
        assert!(
            p99 < p99_cap,
            "fabric p99 FCT {p99} is out of the NDP class (cap {p99_cap})"
        );
        let median = fab.fct_quantile(0.5).expect("fcts recorded");
        assert!(
            median < median_cap,
            "fabric median FCT {median} is out of the NDP class (cap {median_cap})"
        );
        for (label, fs) in &results {
            assert!(fs.completed() > 0, "{label}: no flow completed");
        }
        println!("\nsmoke OK: FCT percentiles reported from both engines via one scenario spec");
    }
}
