//! Figure 10(b) — flow completion times of heavy-tailed Web-workload
//! flows, side by side on the §6.3 fat-tree transports **and** the
//! cell-accurate Stardust fabric.
//!
//! A thin shell over the declarative experiment pipeline: the
//! [`presets::fig10b`] spec expands `--flows` Poisson-arriving flows
//! drawn from the Facebook Web (or `--workload hadoop`) flow-size
//! distribution over uniformly random pairs, and the [`runner`] drives
//! every engine from the same seeded spec — byte-identical flow lists
//! when the two populations match (the default and `--smoke`
//! configurations), equal per-node offered load otherwise. `--smoke`
//! runs the CI configuration whose hard gates live in the spec's
//! `[checks]` — the acceptance gate for the finite-flow fabric layer:
//! the paper's claim that cell spraying + VOQ scheduling give NDP-class
//! FCTs *without per-flow transport machinery* is exercised on the
//! detailed fabric model, not just the abstract transport one.

use stardust_bench::fig10::{fabric_fas, kary_hosts, print_fct_summary, print_fct_table};
use stardust_bench::presets::{self, Fig10Params};
use stardust_bench::{runner, Args};
use stardust_workload::ScenarioKind;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let p = Fig10Params::from_args(&args, 100, 200);
    let n_flows = args.get_u64("flows", if smoke { 50 } else { 200 }) as usize;
    // Per-node mean inter-arrival gap; at the Web mix's ~97 KB mean flow,
    // 800 µs offers ~1 Gbps per 10G NIC (≈10% load) on either engine.
    let gap_us = args.get_u64("gap-us", 800);
    let hadoop = args
        .get_str("workload")
        .is_some_and(|w| w.eq_ignore_ascii_case("hadoop"));
    let spec = presets::fig10b(p, n_flows, gap_us, hadoop);
    let ScenarioKind::Mix { ref dist, .. } = spec.scenario else {
        unreachable!("fig10b presets are mixes")
    };

    println!(
        "{n_flows} {} flows (mean {:.0} B, Poisson per-node gap {gap_us} µs): k = {} fat-tree \
         ({} hosts) vs 1/{}-scale Stardust fabric ({} FAs), {} ms horizon",
        if hadoop { "Hadoop" } else { "Web" },
        dist.mean(),
        p.k,
        kary_hosts(p.k),
        p.factor,
        fabric_fas(p.factor),
        p.ms
    );

    let outcome = runner::run_spec(&spec);
    let results = outcome.labeled();
    print_fct_table("Figure 10(b): FCT by percentile [ms]", &results);
    print_fct_summary(&results);
    println!(
        "\npaper: \"Stardust significantly outperforms all other schemes, as the fabric \
         is scheduled. Even flows of 1MB have a FCT of less than a millisecond.\""
    );

    runner::finish(
        &outcome.check_failures,
        smoke.then_some(
            "smoke OK: FCT percentiles reported from both engines via one experiment spec",
        ),
    )
}
