//! Figure 8 — packet packing on the NetFPGA-style platform.
//!
//! (a) throughput vs packet size for the four designs at 150 MHz;
//! (b) throughput on the \[74\]-shaped DB/Web/Hadoop packet mixes.

use stardust_bench::header;
use stardust_model::datapath::{Design, Platform, ALL_DESIGNS};
use stardust_workload::PacketMix;

fn main() {
    let p = Platform::netfpga_150mhz();

    header(
        "Figure 8(a): throughput [Gbps] vs packet size, 150 MHz",
        &format!(
            "{:>9} {:>18} {:>12} {:>14} {:>24}",
            "size [B]", "Reference Switch", "NDP Switch", "Switch-Cells", "Stardust-Packed Cells"
        ),
    );
    for s in (64..=1514).step_by(50) {
        print!("{:>9}", s);
        for d in [
            Design::ReferenceSwitch,
            Design::NdpSwitch,
            Design::CellsNonPacked,
            Design::StardustPacked,
        ] {
            let gbps = p.throughput_bps(d, s) / 1e9;
            let w = match d {
                Design::ReferenceSwitch => 18,
                Design::NdpSwitch => 12,
                Design::CellsNonPacked => 14,
                Design::StardustPacked => 24,
            };
            print!(" {:>w$.2}", gbps, w = w);
        }
        println!();
    }

    // Worst-case dips (the paper's "up to 15%, 30% and 49% better").
    println!();
    for d in [
        Design::ReferenceSwitch,
        Design::NdpSwitch,
        Design::CellsNonPacked,
    ] {
        let worst = (64..=1514)
            .map(|s| p.relative_throughput(d, s))
            .fold(1.0f64, f64::min);
        println!(
            "worst-case {:<24} {:>5.1}% of line rate ({:.0}% below Stardust)",
            d.label(),
            worst * 100.0,
            (1.0 - worst) * 100.0
        );
    }

    header(
        "Figure 8(b): throughput [%] on trace-shaped packet mixes",
        &format!(
            "{:>8} {:>10} {:>8} {:>10}",
            "trace", "Switch", "Cell", "Stardust"
        ),
    );
    for mix in PacketMix::fig8b() {
        let t = |d: Design| p.trace_throughput(d, mix.entries()) * 100.0;
        println!(
            "{:>8} {:>10.1} {:>8.1} {:>10.1}",
            mix.name,
            t(Design::ReferenceSwitch),
            t(Design::CellsNonPacked),
            t(Design::StardustPacked)
        );
    }
    println!("\n(clock sweep) Reference Switch reaches line rate at:");
    for mhz in [150u64, 160, 170, 180, 200] {
        let pc = p.at_clock(mhz * 1_000_000);
        let worst = (64..=1514)
            .map(|s| pc.relative_throughput(Design::ReferenceSwitch, s))
            .fold(1.0f64, f64::min);
        println!("  {mhz} MHz: worst {:>5.1}% of line rate", worst * 100.0);
    }
    let _ = ALL_DESIGNS;
}
