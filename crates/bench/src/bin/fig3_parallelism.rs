//! Figure 3 — required parallelism in a standard switch vs a Stardust
//! Fabric Element (12.8 Tb/s device, 256 B bus, 1 GHz data path).

use stardust_bench::header;
use stardust_model::parallelism::DeviceParams;

fn main() {
    let d = DeviceParams::fig3();
    header(
        "Figure 3: required parallelism vs packet size",
        &format!(
            "{:>10} {:>18} {:>24}",
            "size [B]", "standard switch", "stardust fabric element"
        ),
    );
    let sd = d.stardust_fe_parallelism();
    for s in (64..=2560).step_by(64) {
        println!(
            "{:>10} {:>18.2} {:>24.2}",
            s,
            d.standard_switch_parallelism(s),
            sd
        );
    }
    println!(
        "\nAppendix B worked example (64 B): P = {:.3} (paper: 19.047)",
        d.required_parallelism_packets(64)
    );
    println!(
        "Improvement at 513 B: {:.0}% (paper: 41%)",
        (d.standard_switch_parallelism(513) / sd - 1.0) * 100.0
    );
    println!(
        "Improvement at 1025 B: {:.0}% (paper: 18%)",
        (d.standard_switch_parallelism(1025) / sd - 1.0) * 100.0
    );
}
