//! Figure 11 — cost (a) and power (b) of a Stardust DCN relative to
//! fat-trees, from the Table 3 list prices and the Fig 10(d) ratios.

use stardust_bench::{commas, header};
use stardust_model::cost::{CostConfig, FIG11A_FT, FIG11A_STARDUST, FIG11B_FT};

fn main() {
    let hosts_axis: Vec<u64> = vec![
        1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000,
    ];

    header(
        "Figure 11(a): Stardust cost relative to fat-tree [%]",
        &format!(
            "{:>10} {}",
            "hosts",
            FIG11A_FT
                .iter()
                .map(|c| format!("{:>26}", c.label))
                .collect::<String>()
        ),
    );
    for &h in &hosts_axis {
        print!("{:>10}", commas(h));
        for cfg in FIG11A_FT {
            match cfg.stardust_relative_cost_pct(h) {
                Some(p) => print!(" {:>25.1}%", p),
                None => print!(" {:>26}", "-"),
            }
        }
        println!();
    }

    header(
        "Figure 11(a) detail: absolute bill of materials at 100K hosts [USD]",
        &format!(
            "{:<28} {:>6} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>14}",
            "config",
            "tiers",
            "ToRs",
            "switches",
            "platforms$",
            "optics$",
            "fiber$",
            "cabling$",
            "total$"
        ),
    );
    let mut rows: Vec<CostConfig> = FIG11A_FT.to_vec();
    rows.push(FIG11A_STARDUST);
    for cfg in rows {
        if let Some(b) = cfg.bill(100_000) {
            println!(
                "{:<28} {:>6} {:>8} {:>10} {:>12} {:>12} {:>12} {:>12} {:>14}",
                cfg.label,
                b.tiers,
                commas(b.tors),
                commas(b.fabric_switches),
                commas((b.tor_cost + b.fabric_cost) / 100),
                commas(b.transceivers / 100),
                commas(b.fibers / 100),
                commas(b.server_cabling / 100),
                commas(b.total() / 100),
            );
        }
    }

    header(
        "Figure 11(b): Stardust power relative to fat-tree [%]",
        &format!(
            "{:>10} {}",
            "hosts",
            FIG11B_FT
                .iter()
                .map(|c| format!("{:>26}", c.label))
                .collect::<String>()
        ),
    );
    for &h in &hosts_axis {
        print!("{:>10}", commas(h));
        for cfg in FIG11B_FT {
            match cfg.stardust_relative_power_pct(h) {
                Some(p) => print!(" {:>25.1}%", p),
                None => print!(" {:>26}", "-"),
            }
        }
        println!();
    }
    println!(
        "\npaper: cost of a large DCN cut toward half; power savings up to ~25% of the \
         network (and ~78% within the fabric) for networks up to ~10K nodes"
    );
}
