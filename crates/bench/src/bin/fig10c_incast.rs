//! Figure 10(c) — incast completion time vs number of backend servers,
//! side by side on the §6.3 fat-tree transports **and** the cell-accurate
//! Stardust fabric.
//!
//! A frontend fans out work to N backends which all answer with a 450 KB
//! response; the figure reports the first and last flow completion time —
//! "a measure both of performance and fairness". The sweep is one
//! [`presets::fig10c`] spec per backend count, each expanded by the
//! [`runner`] over every engine. DCQCN is omitted, as in the paper (its
//! artifact lacked the incast configuration). The backend sweep is
//! clamped to each network's own population minus the frontend.
//! `--smoke` runs the small deterministic sweep whose hard gates
//! (completion, losslessness, last/first fairness bound) live in each
//! spec's `[checks]`.

use stardust_bench::fig10::{fabric_fas, kary_hosts};
use stardust_bench::presets::{self, Fig10Params};
use stardust_bench::{header, runner, Args};
use std::process::ExitCode;

const RESPONSE_BYTES: u64 = 450_000;

fn main() -> ExitCode {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let p = Fig10Params::from_args(&args, 100, 400);

    let n_hosts = kary_hosts(p.k);
    let n_fas = fabric_fas(p.factor);
    let max_backends = n_hosts.min(n_fas) - 1;
    let steps: Vec<usize> = if smoke {
        vec![5, 10, 15]
    } else {
        [10, 25, 50, 100, 150, 200, 300, 400].into_iter().collect()
    }
    .into_iter()
    .filter(|&b| b <= max_backends)
    .collect();
    if steps.is_empty() {
        eprintln!(
            "no incast steps fit: the smaller population (min of {n_hosts} hosts, {n_fas} FAs) \
             allows at most {max_backends} backends"
        );
        return ExitCode::FAILURE;
    }

    // One probe spec names the engine columns for the header.
    let engine_labels: Vec<String> = presets::fig10c(p, steps[0], RESPONSE_BYTES)
        .engines
        .iter()
        .map(|e| e.label())
        .collect();
    println!(
        "{RESPONSE_BYTES} B responses to one frontend: k = {} fat-tree ({n_hosts} hosts) \
         vs 1/{}-scale Stardust fabric ({n_fas} FAs); ideal last-FCT = N × 450KB / 10G",
        p.k, p.factor
    );
    header(
        "Figure 10(c): incast completion time [ms] (first / last per engine)",
        &format!(
            "{:>9} {} {:>12}",
            "backends",
            engine_labels
                .iter()
                .map(|l| format!("{:>14}-first {:>8}-last", l, ""))
                .collect::<String>(),
            "ideal last"
        ),
    );
    let mut failures = Vec::new();
    for &b in &steps {
        let spec = presets::fig10c(p, b, RESPONSE_BYTES);
        let outcome = runner::run_spec(&spec);
        print!("{b:>9}");
        for run in &outcome.runs {
            let fs = &run.flows;
            // One call → one sort of the per-flow table for both ends.
            let qs = fs.fct_quantiles(&[0.0, 1.0]);
            match (qs[0], qs[1], fs.completed() == fs.len()) {
                (Some(first), Some(last), true) => {
                    print!(
                        " {:>19.2} {:>13.2}",
                        first.as_secs_f64() * 1e3,
                        last.as_secs_f64() * 1e3
                    );
                }
                _ => print!(" {:>19} {:>13}", "unfinished", "-"),
            }
        }
        let ideal = b as f64 * RESPONSE_BYTES as f64 * 8.0 / 10e9 * 1e3;
        println!(" {:>12.2}", ideal);
        failures.extend(
            outcome
                .check_failures
                .into_iter()
                .map(|f| format!("{b}-to-1: {f}")),
        );
    }
    println!(
        "\npaper: \"Stardust's last FCT is the same as DCTCP and better than MPTCP, but \
         its fairness is considerably better. Furthermore, no packets are dropped within \
         the Stardust fabric.\""
    );

    runner::finish(
        &failures,
        smoke.then_some("smoke OK: fabric incast complete, lossless and fair at every step"),
    )
}
