//! Figure 10(c) — incast completion time vs number of backend servers.
//!
//! A frontend fans out work to N backends which all answer with a 450 KB
//! response. The figure reports the first and last flow completion time —
//! "a measure both of performance and fairness". DCQCN is omitted, as in
//! the paper (its artifact lacked the incast configuration).

use stardust_bench::{header, Args};
use stardust_sim::{DetRng, SimTime};
use stardust_topo::builders::{kary, KaryParams};
use stardust_transport::{FlowId, Protocol, TransportConfig, TransportSim};
use stardust_workload::incast_sources;

const RESPONSE_BYTES: u64 = 450_000;

fn run(proto: Protocol, k: u32, backends: usize, seed: u64) -> (f64, f64, u64) {
    let ft = kary(KaryParams {
        k,
        ..KaryParams::paper_6_3()
    });
    let cfg = TransportConfig {
        seed,
        ..TransportConfig::default()
    };
    let mut sim = TransportSim::new(ft, cfg);
    let n = sim.num_hosts();
    let frontend = 0u32;
    let mut rng = DetRng::from_label(seed, "incast");
    let sources = incast_sources(n, frontend, backends, &mut rng);
    let ids: Vec<FlowId> = sources
        .iter()
        .map(|&s| sim.add_flow(proto, s, frontend, RESPONSE_BYTES, SimTime::ZERO))
        .collect();
    sim.run_until(SimTime::from_millis(2_000));
    let fcts: Vec<f64> = ids
        .iter()
        .filter_map(|&i| sim.flow(i).fct())
        .map(|d| d.as_secs_f64() * 1e3)
        .collect();
    let unfinished = ids.len() - fcts.len();
    assert_eq!(
        unfinished, 0,
        "{proto:?} with {backends} backends left {unfinished} flows unfinished"
    );
    let first = fcts.iter().cloned().fold(f64::INFINITY, f64::min);
    let last = fcts.iter().cloned().fold(0.0, f64::max);
    (first, last, sim.counters.drops.get())
}

fn main() {
    let args = Args::parse();
    let k = if args.has("full") {
        12
    } else {
        args.get_u64("k", 8) as u32
    };
    let seed = args.get_u64("seed", 42);
    let max_backends = (k * k * k / 4 - 1) as usize;
    let steps: Vec<usize> = [10, 25, 50, 100, 150, 200, 300, 400]
        .into_iter()
        .filter(|&b| b <= max_backends)
        .collect();
    let protos = [Protocol::Mptcp, Protocol::Dctcp, Protocol::Stardust];

    println!(
        "k = {k} fat-tree, {RESPONSE_BYTES} B responses to one frontend; \
         ideal last-FCT = N × 450KB / 10G"
    );
    header(
        "Figure 10(c): incast completion time [ms] (first / last per protocol)",
        &format!(
            "{:>9} {} {:>12}",
            "backends",
            protos
                .iter()
                .map(|p| format!(
                    "{:>12}-first {:>11}-last {:>6}drops",
                    p.label(),
                    p.label(),
                    ""
                ))
                .collect::<String>(),
            "ideal last"
        ),
    );
    for &b in &steps {
        print!("{b:>9}");
        for &p in &protos {
            let (first, last, drops) = run(p, k, b, seed);
            print!(" {:>17.2} {:>16.2} {:>10}", first, last, drops);
        }
        let ideal = b as f64 * RESPONSE_BYTES as f64 * 8.0 / 10e9 * 1e3;
        println!(" {:>12.2}", ideal);
    }
    println!(
        "\npaper: \"Stardust's last FCT is the same as DCTCP and better than MPTCP, but \
         its fairness is considerably better. Furthermore, no packets are dropped within \
         the Stardust fabric.\""
    );
}
