//! Figure 10(c) — incast completion time vs number of backend servers,
//! side by side on the §6.3 fat-tree transports **and** the cell-accurate
//! Stardust fabric.
//!
//! A frontend fans out work to N backends which all answer with a 450 KB
//! response; the figure reports the first and last flow completion time —
//! "a measure both of performance and fairness". One [`Scenario`] per
//! backend count drives every engine. DCQCN is omitted, as in the paper
//! (its artifact lacked the incast configuration). The backend sweep is
//! clamped to each network's own population minus the frontend.
//! `--smoke` runs a small deterministic sweep with hard assertions
//! (wired into CI).

use stardust_bench::fig10::{fabric_fas, kary_hosts, run_side_by_side, FABRIC_LABEL};
use stardust_bench::{header, Args};
use stardust_sim::SimTime;
use stardust_transport::Protocol;
use stardust_workload::{Scenario, ScenarioKind};

const RESPONSE_BYTES: u64 = 450_000;

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let k = if args.has("full") {
        12
    } else if smoke {
        4
    } else {
        args.get_u64("k", 8) as u32
    };
    let factor = if args.has("full") {
        1
    } else if smoke {
        16
    } else {
        2
    } as u32;
    let ms = args.get_u64("ms", if smoke { 100 } else { 400 });
    let seed = args.get_u64("seed", 42);
    let protos: &[Protocol] = if smoke {
        &[Protocol::Dctcp, Protocol::Stardust]
    } else {
        &[Protocol::Mptcp, Protocol::Dctcp, Protocol::Stardust]
    };

    let n_hosts = kary_hosts(k);
    let n_fas = fabric_fas(factor);
    let max_backends = n_hosts.min(n_fas) - 1;
    let steps: Vec<usize> = if smoke {
        vec![5, 10, 15]
    } else {
        [10, 25, 50, 100, 150, 200, 300, 400].into_iter().collect()
    }
    .into_iter()
    .filter(|&b| b <= max_backends)
    .collect();

    println!(
        "{RESPONSE_BYTES} B responses to one frontend: k = {k} fat-tree ({n_hosts} hosts) \
         vs 1/{factor}-scale Stardust fabric ({n_fas} FAs); ideal last-FCT = N × 450KB / 10G"
    );
    header(
        "Figure 10(c): incast completion time [ms] (first / last per engine)",
        &format!(
            "{:>9} {} {:>12}",
            "backends",
            protos
                .iter()
                .map(|p| p.label().to_string())
                .chain([FABRIC_LABEL.to_string()])
                .map(|l| format!("{:>14}-first {:>8}-last", l, ""))
                .collect::<String>(),
            "ideal last"
        ),
    );
    let mut fabric_fairness = Vec::new();
    for &b in &steps {
        let scenario = Scenario {
            name: "fig10c-incast",
            seed,
            kind: ScenarioKind::Incast {
                backends: b,
                response_bytes: RESPONSE_BYTES,
            },
        };
        let results = run_side_by_side(&scenario, protos, k, factor, SimTime::from_millis(ms));
        print!("{b:>9}");
        for (label, fs) in &results {
            let first = fs.fct_quantile(0.0);
            let last = fs.fct_quantile(1.0);
            match (first, last, fs.completed() == fs.len()) {
                (Some(f), Some(l), true) => {
                    print!(
                        " {:>19.2} {:>13.2}",
                        f.as_secs_f64() * 1e3,
                        l.as_secs_f64() * 1e3
                    );
                    if label == FABRIC_LABEL {
                        fabric_fairness.push(l.as_secs_f64() / f.as_secs_f64());
                    }
                }
                _ => print!(" {:>19} {:>13}", "unfinished", "-"),
            }
            if smoke {
                assert_eq!(
                    fs.completed(),
                    fs.len(),
                    "{label}: {b}-to-1 incast left flows unfinished"
                );
            }
        }
        let ideal = b as f64 * RESPONSE_BYTES as f64 * 8.0 / 10e9 * 1e3;
        println!(" {:>12.2}", ideal);
    }
    println!(
        "\npaper: \"Stardust's last FCT is the same as DCTCP and better than MPTCP, but \
         its fairness is considerably better. Furthermore, no packets are dropped within \
         the Stardust fabric.\""
    );

    if smoke {
        assert_eq!(fabric_fairness.len(), steps.len());
        for (b, r) in steps.iter().zip(&fabric_fairness) {
            assert!(
                *r < 1.5,
                "{b}-to-1: fabric last/first FCT ratio {r:.2} — credits are not fair"
            );
        }
        println!("\nsmoke OK: fabric incast complete, lossless and fair at every step");
    }
}
