//! Figure 10(a) — per-flow throughput under a permutation workload,
//! side by side on the §6.3 fat-tree transports **and** the cell-accurate
//! Stardust fabric.
//!
//! A thin shell over the declarative experiment pipeline: the
//! [`presets::fig10a`] spec expands into a random derangement of finite
//! flows (each node sends `--bytes` to its partner), the
//! [`runner`] drives every engine from the one spec, and this binary
//! adds the figure-specific goodput-by-flow-rank table, the paper's
//! x-axis. `--full` runs the 432-host k = 12 fat-tree; `--smoke` runs
//! the small deterministic CI configuration whose hard gates live in
//! the spec's `[checks]` (completion, losslessness, goodput floor).

use stardust_bench::fig10::{
    fabric_fas, goodputs_gbps, kary_hosts, print_fct_summary, print_unfinished_notes, PCTS,
};
use stardust_bench::presets::{self, Fig10Params};
use stardust_bench::{header, runner, Args};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let p = Fig10Params::from_args(&args, 50, 100);
    let flow_bytes = args.get_u64("bytes", if smoke { 500_000 } else { 2_500_000 });
    let spec = presets::fig10a(p, flow_bytes);

    println!(
        "permutation of {flow_bytes} B flows: k = {} fat-tree ({} hosts, 10G NICs) vs \
         1/{}-scale Stardust fabric ({} FAs, 1×10G port each), {} ms horizon",
        p.k,
        kary_hosts(p.k),
        p.factor,
        fabric_fas(p.factor),
        p.ms
    );

    let outcome = runner::run_spec(&spec);
    let results = outcome.labeled();

    header(
        "Figure 10(a): goodput [Gbps] by flow rank",
        &format!(
            "{:>6} {}",
            "pct",
            results
                .iter()
                .map(|(l, _)| format!("{l:>12}"))
                .collect::<String>()
        ),
    );
    let ranked: Vec<Vec<f64>> = results.iter().map(|(_, fs)| goodputs_gbps(fs)).collect();
    for &pct in &PCTS {
        print!("{pct:>6}");
        for g in &ranked {
            if g.is_empty() {
                print!(" {:>11}", "-");
            } else {
                let idx = ((pct as f64 / 100.0) * (g.len() - 1) as f64).round() as usize;
                print!(" {:>11.2}", g[idx]);
            }
        }
        println!();
    }

    header(
        "summary",
        &format!(
            "{:>12} {:>12} {:>12} {:>14} {:>12}",
            "engine", "completed", "mean util %", ">=9.44G flows %", "min Gbps"
        ),
    );
    for ((label, fs), g) in results.iter().zip(&ranked) {
        let mean = if g.is_empty() {
            0.0
        } else {
            g.iter().sum::<f64>() / g.len() as f64
        };
        let near_line = if g.is_empty() {
            0.0
        } else {
            g.iter().filter(|&&x| x >= 9.44).count() as f64 / g.len() as f64
        };
        println!(
            "{:>12} {:>12} {:>12.1} {:>14.1} {:>12.2}",
            label,
            format!("{}/{}", fs.completed(), fs.len()),
            mean * 10.0,
            near_line * 100.0,
            g.first().copied().unwrap_or(0.0),
        );
    }
    print_fct_summary(&results);
    print_unfinished_notes(&results);
    println!(
        "\npaper (432 nodes): Stardust 9.44G on 96% of flows, mean util 94%; \
         MPTCP 90%; DCTCP 49%; DCQCN 47%"
    );

    runner::finish(
        &outcome.check_failures,
        smoke.then_some("smoke OK: both engines completed the permutation via one experiment spec"),
    )
}
