//! Figure 10(a) — per-flow throughput under a permutation workload.
//!
//! Each host continuously sends to one host and receives from another,
//! fully loading the fat-tree (432 nodes at k = 12 with `--full`; k = 8
//! by default for a quick run). Prints the per-flow throughput in
//! increasing order (the paper's "flow rank" series) and per-protocol
//! means.

use stardust_bench::{header, Args};
use stardust_sim::{DetRng, SimDuration, SimTime};
use stardust_topo::builders::{kary, KaryParams};
use stardust_transport::{FlowId, Protocol, TransportConfig, TransportSim};
use stardust_workload::permutation;

fn run(proto: Protocol, k: u32, ms: u64, seed: u64) -> (Vec<f64>, u64) {
    let ft = kary(KaryParams {
        k,
        ..KaryParams::paper_6_3()
    });
    let cfg = TransportConfig {
        seed,
        ..TransportConfig::default()
    };
    let link = cfg.link_bps as f64;
    let mut sim = TransportSim::new(ft, cfg);
    let n = sim.num_hosts();
    let mut rng = DetRng::from_label(seed, "permutation");
    let perm = permutation(n, &mut rng);
    let ids: Vec<FlowId> = (0..n as u32)
        .map(|src| sim.add_flow(proto, src, perm[src as usize], u64::MAX / 2, SimTime::ZERO))
        .collect();
    // Warm-up, then measure over the second half.
    let half = SimTime::from_millis(ms / 2);
    sim.run_until(half);
    let base: Vec<u64> = ids.iter().map(|&i| sim.flow(i).acked).collect();
    sim.run_until(SimTime::from_millis(ms));
    let window = SimDuration::from_millis(ms - ms / 2);
    let mut gbps: Vec<f64> = ids
        .iter()
        .zip(&base)
        .map(|(&i, &b)| (sim.flow(i).acked - b) as f64 * 8.0 / window.as_secs_f64() / 1e9)
        .collect();
    gbps.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let drops = sim.counters.drops.get();
    let _ = link;
    (gbps, drops)
}

fn main() {
    let args = Args::parse();
    let k = if args.has("full") {
        12
    } else {
        args.get_u64("k", 8) as u32
    };
    let ms = args.get_u64("ms", 40);
    let seed = args.get_u64("seed", 42);
    let protos = [
        Protocol::Mptcp,
        Protocol::Dctcp,
        Protocol::Dcqcn,
        Protocol::Stardust,
    ];

    println!(
        "k = {k} fat-tree ({} hosts), {ms} ms simulated, 10G links, permutation",
        k * k * k / 4
    );

    let results: Vec<(Protocol, Vec<f64>, u64)> = protos
        .iter()
        .map(|&p| {
            let (g, d) = run(p, k, ms, seed);
            (p, g, d)
        })
        .collect();

    header(
        "Figure 10(a): throughput [Gbps] by flow rank (every 5th percentile)",
        &format!(
            "{:>6} {}",
            "pct",
            results
                .iter()
                .map(|(p, ..)| format!("{:>10}", p.label()))
                .collect::<String>()
        ),
    );
    for pct in (0..=100).step_by(5) {
        print!("{:>6}", pct);
        for (_, g, _) in &results {
            let idx = ((pct as f64 / 100.0) * (g.len() - 1) as f64).round() as usize;
            print!(" {:>10.2}", g[idx]);
        }
        println!();
    }

    header(
        "summary",
        &format!(
            "{:>10} {:>12} {:>14} {:>12} {:>12}",
            "protocol", "mean util %", ">=9.44G flows %", "min Gbps", "net drops"
        ),
    );
    for (p, g, d) in &results {
        let mean = g.iter().sum::<f64>() / g.len() as f64;
        let near_line = g.iter().filter(|&&x| x >= 9.44).count() as f64 / g.len() as f64;
        println!(
            "{:>10} {:>12.1} {:>14.1} {:>12.2} {:>12}",
            p.label(),
            mean * 10.0,
            near_line * 100.0,
            g.first().copied().unwrap_or(0.0),
            d
        );
    }
    println!(
        "\npaper (432 nodes): Stardust 9.44G on 96% of flows, mean util 94%; \
         MPTCP 90%; DCTCP 49%; DCQCN 47%"
    );
}
