//! Figure 10(a) — per-flow throughput under a permutation workload,
//! side by side on the §6.3 fat-tree transports **and** the cell-accurate
//! Stardust fabric.
//!
//! One [`Scenario`] expands into a random derangement of finite flows
//! (each node sends `--bytes` to its partner); both engines are offered
//! the same spec and per-flow goodput (bytes / FCT) prints by flow rank,
//! the paper's x-axis. `--full` runs the 432-host k = 12 fat-tree;
//! `--smoke` runs a small deterministic configuration with hard
//! assertions (wired into CI).

use stardust_bench::fig10::{
    fabric_fas, goodputs_gbps, kary_hosts, print_fct_summary, run_side_by_side, FABRIC_LABEL, PCTS,
};
use stardust_bench::{header, Args};
use stardust_sim::SimTime;
use stardust_transport::Protocol;
use stardust_workload::{Scenario, ScenarioKind};

fn main() {
    let args = Args::parse();
    let smoke = args.has("smoke");
    let k = if args.has("full") {
        12
    } else if smoke {
        4
    } else {
        args.get_u64("k", 8) as u32
    };
    let factor = if args.has("full") {
        1
    } else if smoke {
        16
    } else {
        2
    } as u32;
    let flow_bytes = args.get_u64("bytes", if smoke { 500_000 } else { 2_500_000 });
    let ms = args.get_u64("ms", if smoke { 50 } else { 100 });
    let seed = args.get_u64("seed", 42);
    let scenario = Scenario {
        name: "fig10a-permutation",
        seed,
        kind: ScenarioKind::Permutation { flow_bytes },
    };
    let protos: &[Protocol] = if smoke {
        &[Protocol::Dctcp, Protocol::Stardust]
    } else {
        &[
            Protocol::Mptcp,
            Protocol::Dctcp,
            Protocol::Dcqcn,
            Protocol::Stardust,
        ]
    };

    println!(
        "permutation of {flow_bytes} B flows: k = {k} fat-tree ({} hosts, 10G NICs) vs \
         1/{factor}-scale Stardust fabric ({} FAs, 1×10G port each), {ms} ms horizon",
        kary_hosts(k),
        fabric_fas(factor)
    );

    let results = run_side_by_side(&scenario, protos, k, factor, SimTime::from_millis(ms));

    header(
        "Figure 10(a): goodput [Gbps] by flow rank",
        &format!(
            "{:>6} {}",
            "pct",
            results
                .iter()
                .map(|(l, _)| format!("{l:>12}"))
                .collect::<String>()
        ),
    );
    let ranked: Vec<Vec<f64>> = results.iter().map(|(_, fs)| goodputs_gbps(fs)).collect();
    for &pct in &PCTS {
        print!("{pct:>6}");
        for g in &ranked {
            if g.is_empty() {
                print!(" {:>11}", "-");
            } else {
                let idx = ((pct as f64 / 100.0) * (g.len() - 1) as f64).round() as usize;
                print!(" {:>11.2}", g[idx]);
            }
        }
        println!();
    }

    header(
        "summary",
        &format!(
            "{:>12} {:>12} {:>12} {:>14} {:>12}",
            "engine", "completed", "mean util %", ">=9.44G flows %", "min Gbps"
        ),
    );
    for ((label, fs), g) in results.iter().zip(&ranked) {
        let mean = if g.is_empty() {
            0.0
        } else {
            g.iter().sum::<f64>() / g.len() as f64
        };
        let near_line = if g.is_empty() {
            0.0
        } else {
            g.iter().filter(|&&x| x >= 9.44).count() as f64 / g.len() as f64
        };
        println!(
            "{:>12} {:>12} {:>12.1} {:>14.1} {:>12.2}",
            label,
            format!("{}/{}", fs.completed(), fs.len()),
            mean * 10.0,
            near_line * 100.0,
            g.first().copied().unwrap_or(0.0),
        );
    }
    print_fct_summary(&results);
    // Goodput = bytes / FCT exists only for completed flows, so the rank
    // series above is survivor-biased for any engine that did not finish
    // every flow within the horizon — call that out rather than letting
    // a lossy transport's fast survivors read as its whole population.
    for (label, fs) in &results {
        let unfinished = fs.len() - fs.completed();
        if unfinished > 0 {
            println!(
                "note: {label} left {unfinished}/{} flows unfinished at the horizon — its \
                 goodput columns cover only the {} completed (faster) flows",
                fs.len(),
                fs.completed()
            );
        }
    }
    println!(
        "\npaper (432 nodes): Stardust 9.44G on 96% of flows, mean util 94%; \
         MPTCP 90%; DCTCP 49%; DCQCN 47%"
    );

    if smoke {
        let (_, fab) = results
            .iter()
            .find(|(l, _)| l == FABRIC_LABEL)
            .expect("fabric column");
        assert_eq!(fab.completed(), fab.len(), "fabric left flows unfinished");
        let fab_g = goodputs_gbps(fab);
        assert!(
            fab_g[0] > 5.0,
            "fabric permutation goodput collapsed: min {} Gbps",
            fab_g[0]
        );
        let (_, sd) = results
            .iter()
            .find(|(l, _)| l == Protocol::Stardust.label())
            .expect("stardust transport column");
        assert_eq!(
            sd.completed(),
            sd.len(),
            "SD transport left flows unfinished"
        );
        println!("\nsmoke OK: both engines completed the permutation via one scenario spec");
    }
}
