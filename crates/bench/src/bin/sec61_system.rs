//! §6.1.2 — the single-tier system measurement (Arista 7500E scale):
//! line rate for all packet sizes and the latency bands.
//!
//! The paper's platform: 24 Fabric Adapters × one tier of 12 Fabric
//! Elements, 1152×10GE equivalent. `--full` builds that scale; the
//! default is a quarter-size replica.

use stardust_bench::{header, Args};
use stardust_fabric::{FabricConfig, FabricEngine};
use stardust_sim::units::gbps;
use stardust_sim::{SimDuration, SimTime};
use stardust_topo::builders::{single_tier, SingleTierParams};

fn run_size(params: SingleTierParams, pkt_bytes: u32, ms: u64) -> (f64, f64, f64, f64, u64) {
    let st = single_tier(params);
    let cfg = FabricConfig {
        host_ports: 4,
        // 4 ports ~ 90% of fabric capacity so the fabric is the system
        // under test, not the edge.
        host_port_bps: (params.fa_uplinks as u64 * gbps(50) * 9 / 10 / 4),
        ..FabricConfig::default()
    };
    let mut e = FabricEngine::new(st.topo, cfg);
    e.saturate_all_to_all(pkt_bytes, 32 * 1024);
    e.begin_measurement(SimTime::from_micros(300));
    e.run_until(SimTime::from_millis(ms));
    let s = e.stats();
    let util = e.fabric_utilization(SimDuration::from_millis(ms));
    (
        util,
        s.cell_latency_ns.min() as f64 / 1000.0,
        s.cell_latency_ns.mean() / 1000.0,
        s.cell_latency_ns.quantile(0.9999) as f64 / 1000.0,
        s.cells_dropped.get(),
    )
}

fn main() {
    let args = Args::parse();
    let ms = args.get_u64("ms", 2);
    let params = if args.has("full") {
        SingleTierParams::paper_6_1()
    } else {
        SingleTierParams {
            num_fa: 8,
            fa_uplinks: 12,
            fe_count: 4,
            meters: 2,
        }
    };
    println!(
        "single-tier system: {} FAs x {} uplinks over {} FEs, {} ms per point",
        params.num_fa, params.fa_uplinks, params.fe_count, ms
    );
    header(
        "§6.1.2: throughput and latency vs packet size (all-to-all, saturated)",
        &format!(
            "{:>10} {:>12} {:>12} {:>12} {:>12} {:>10}",
            "pkt [B]", "util", "min lat us", "mean lat us", "max lat us", "cell loss"
        ),
    );
    for pkt in [64u32, 128, 256, 384, 512, 1024, 1500, 4096, 9000] {
        let (util, lmin, lmean, lmax, loss) = run_size(params, pkt, ms);
        println!(
            "{:>10} {:>12.3} {:>12.2} {:>12.2} {:>12.2} {:>10}",
            pkt, util, lmin, lmean, lmax, loss
        );
    }
    println!(
        "\npaper: full line rate for all packet sizes (with packing); no loss in the \
         fabric; min latency 2.8–3.5us nearly independent of packet size, average \
         3.3–9.1us; our fabric-only latency excludes the store-and-forward host port."
    );
}
