//! Figure 2 — scalability of a 12.8 Tb/s switch under link bundling.
//!
//! Regenerates all three panels: (a) end hosts vs tiers, (b) network
//! devices vs end hosts, (c) serial links vs end hosts, for the four
//! bundle configurations, plus the Table 2 element counts.

use stardust_bench::{commas, header};
use stardust_model::fattree::FatTreeParams;
use stardust_model::scalability::FIG2_CONFIGS;

fn main() {
    header(
        "Figure 2(a): end hosts vs number of tiers",
        &format!(
            "{:<30} {:>12} {:>14} {:>16} {:>18}",
            "config", "1 tier", "2 tiers", "3 tiers", "4 tiers"
        ),
    );
    for c in FIG2_CONFIGS {
        print!("{:<30}", c.label);
        for n in 1..=4 {
            print!(" {:>17}", commas(c.max_hosts(n)));
        }
        println!();
    }

    let hosts_axis: Vec<u64> = (1..=10).map(|i| i * 100_000).collect();

    header(
        "Figure 2(b): network devices required vs end hosts",
        &format!(
            "{:<30} {}",
            "config", "devices at 100K..1M hosts (step 100K)"
        ),
    );
    for c in FIG2_CONFIGS {
        print!("{:<30}", c.label);
        for &h in &hosts_axis {
            match c.devices_for_hosts(h) {
                Some(d) => print!(" {:>8}", commas(d)),
                None => print!(" {:>8}", "-"),
            }
        }
        println!();
    }

    header(
        "Figure 2(c): serial links required vs end hosts",
        &format!("{:<30} {}", "config", "links at 100K..1M hosts (step 100K)"),
    );
    for c in FIG2_CONFIGS {
        print!("{:<30}", c.label);
        for &h in &hosts_axis {
            match c.links_for_hosts(h) {
                Some(l) => print!(" {:>10}", commas(l)),
                None => print!(" {:>10}", "-"),
            }
        }
        println!();
    }

    header(
        "Table 2: elements of an n-tier fat-tree (k=16, t=4, l=2)",
        &format!(
            "{:>5} {:>12} {:>14} {:>16} {:>14}",
            "tiers", "max ToRs", "max switches", "link bundles", "links/ToR"
        ),
    );
    let p = FatTreeParams::new(16, 4, 2);
    for n in 1..=4 {
        println!(
            "{:>5} {:>12} {:>14} {:>16} {:>14}",
            n,
            commas(p.max_tors(n)),
            commas(p.max_switches(n)),
            commas(p.link_bundles(n)),
            commas(p.links_per_tor(n)),
        );
    }
}
