//! Figure 9 — §6.2's two-tier network simulation: fabric-traversal
//! latency distribution (left) and last-stage queue-size distribution
//! (right) under fabric utilizations 0.66 / 0.8 / 0.92 / 0.95 and an
//! oversubscribed 1.2 controlled by FCI.
//!
//! Defaults run a 1/16-scale replica of the paper's 256-FA × (128+64)-FE
//! topology (the queue laws depend on utilization and speedup, not on
//! population — cross-checked against the M/D/1 model); `--scale 1`
//! (or `--full`) builds the full paper topology.

use stardust_bench::{header, Args};
use stardust_fabric::{FabricConfig, FabricEngine};
use stardust_model::md1;
use stardust_sim::{SimDuration, SimTime};
use stardust_topo::builders::{two_tier, TwoTierParams};

fn run_point(util: f64, scale: u32, ms: u64) -> FabricEngine {
    let params = TwoTierParams::paper_scaled(scale);
    let tt = two_tier(params);
    let mut cfg = FabricConfig::default();
    // Aggregate host-side rate = util × fabric payload capacity.
    let capacity_bps = params.fa_uplinks as f64
        * cfg.fabric_link_bps as f64
        * (cfg.cell_bytes - cfg.cell_header_bytes) as f64
        / cfg.cell_bytes as f64;
    cfg.host_ports = 2;
    cfg.host_port_bps = (util * capacity_bps / cfg.host_ports as f64) as u64;
    // Let the sub-unity runs develop their full M/D/1 tails (the paper's
    // Fig 9 right panel reaches ~80 cells at 95% load); FCI still engages
    // decisively in the oversubscribed case, whose queues blow past any
    // threshold.
    cfg.fci_threshold_cells = 96;
    let mut engine = FabricEngine::new(tt.topo, cfg);
    engine.saturate_all_to_all(750, 32 * 1024);
    let warmup = SimTime::from_micros(300);
    engine.begin_measurement(warmup);
    engine.run_until(SimTime::from_millis(ms));
    engine
}

fn main() {
    let args = Args::parse();
    let scale = if args.has("full") {
        1
    } else {
        args.get_u64("scale", 16) as u32
    };
    let ms = args.get_u64("ms", 3);
    let utils = [0.66, 0.8, 0.92, 0.95, 1.2];

    println!("topology: paper_6_2 / scale {scale}; {ms} ms simulated per point");

    let engines: Vec<(f64, FabricEngine)> = utils
        .iter()
        .map(|&u| (u, run_point(u, scale, ms)))
        .collect();

    header(
        "Figure 9 (left): fabric traversal latency distribution [probability per 1µs bin]",
        &format!(
            "{:>10} {}",
            "lat [us]",
            utils
                .iter()
                .map(|u| format!("{u:>9.2}"))
                .collect::<String>()
        ),
    );
    for bin_us in 0..16u64 {
        print!("{:>10}", bin_us);
        for (_, e) in &engines {
            let h = &e.stats().cell_latency_ns;
            // 1µs bins over the 100ns-binned histogram.
            let mut p = 0.0;
            for i in 0..10 {
                let edge = bin_us * 1000 + i * 100;
                p += h.pmf((edge / h.bin_width()) as usize);
            }
            print!(" {:>8.4}", p);
        }
        println!();
    }

    header(
        "Figure 9 (right): last-stage queue size CCDF  P(Q >= n)  [cells]",
        &format!(
            "{:>8} {}   {}",
            "n",
            utils
                .iter()
                .map(|u| format!("{u:>10.2}"))
                .collect::<String>(),
            "M/D/1 @0.95"
        ),
    );
    let md1_95 = md1::queue_length_distribution(0.95, 512);
    for n in (0..=80u64).step_by(8) {
        print!("{:>8}", n);
        for (_, e) in &engines {
            print!(" {:>10.2e}", e.stats().last_stage_queue.ccdf(n));
        }
        println!("   {:>10.2e}", md1::ccdf(&md1_95, n as usize));
    }

    header(
        "summary per utilization point",
        &format!(
            "{:>6} {:>10} {:>12} {:>12} {:>10} {:>10} {:>12}",
            "util",
            "eff util",
            "mean lat us",
            "p99 lat us",
            "cells lost",
            "fci marks",
            "max egress B"
        ),
    );
    for (u, e) in &engines {
        let s = e.stats();
        let window = SimDuration::from_millis(ms);
        println!(
            "{:>6.2} {:>10.3} {:>12.2} {:>12.2} {:>10} {:>10} {:>12}",
            u,
            e.fabric_utilization(window),
            s.cell_latency_ns.mean() / 1000.0,
            s.cell_latency_ns.quantile(0.99) as f64 / 1000.0,
            s.cells_dropped.get(),
            s.fci_marks.get(),
            s.max_egress_bytes,
        );
    }
    println!(
        "\npaper §6.2: \"In all runs no cells were lost with the network fabric\"; \
         oversubscribed 1.2 is throttled by FCI to ~0.9 effective."
    );
}
