//! Figure 10(d) / Appendix C — relative device area and power of a
//! Fabric Element vs a standard Ethernet switch, plus the table-size and
//! VOQ-memory comparisons.

use stardust_bench::{commas, header};
use stardust_model::silicon::{
    fa_relative_area, fe_reachability_table_bits, fe_relative_area_per_tbps,
    fe_relative_power_per_tbps, tor_route_table_bits, voq_memory_bytes, DEVICE_A_WEIGHTS,
    FIG10D_AREA_RATIOS,
};

fn main() {
    header(
        "Figure 10(d): Fabric Element (B) vs standard switch (A)",
        "component                    B/A",
    );
    let r = FIG10D_AREA_RATIOS;
    println!(
        "{:<24} {:>8.1}%",
        "Header Processing",
        r.header_processing * 100.0
    );
    println!(
        "{:<24} {:>8.1}%",
        "Network Interface",
        r.network_interface * 100.0
    );
    println!("{:<24} {:>8.1}%", "Other logic", r.other_logic * 100.0);
    println!("{:<24} {:>8.1}%", "I/O", r.io * 100.0);
    println!(
        "{:<24} {:>8.1}%   (paper: 66.6%)",
        "Relative area/Tbps",
        fe_relative_area_per_tbps() * 100.0
    );
    println!(
        "{:<24} {:>8.1}%   (paper: 64.8%)",
        "Relative power/Tbps",
        fe_relative_power_per_tbps() * 100.0
    );
    println!(
        "\ncalibrated device-A die weights: header {:.1}%, NI {:.1}%, logic {:.1}%, I/O {:.1}%",
        DEVICE_A_WEIGHTS.header_processing * 100.0,
        DEVICE_A_WEIGHTS.network_interface * 100.0,
        DEVICE_A_WEIGHTS.other_logic * 100.0,
        DEVICE_A_WEIGHTS.io * 100.0
    );

    header(
        "Appendix C: lookup-table sizes (N hosts, 40/rack, radix 256)",
        &format!(
            "{:>12} {:>22} {:>22} {:>8}",
            "hosts", "ToR IPv4 table [bits]", "FE reach table [bits]", "ratio"
        ),
    );
    for hosts in [10_000u64, 32_000, 100_000, 1_000_000] {
        let a = tor_route_table_bits(hosts, 256);
        let b = fe_reachability_table_bits(hosts, 40, 256);
        println!(
            "{:>12} {:>22} {:>22} {:>7.0}x",
            commas(hosts),
            commas(a),
            commas(b),
            a as f64 / b as f64
        );
    }

    println!(
        "\nVOQ memory: 128K VOQs = {} MB (paper: ~4 MB); Fabric Adapter net area ≈ {:.2}× a ToR",
        voq_memory_bytes(128 * 1024) / (1024 * 1024),
        fa_relative_area(0.4)
    );
}
