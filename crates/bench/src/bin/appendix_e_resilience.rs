//! Appendix E / Table 4 — reachability propagation, recovery time and
//! bandwidth overhead: the closed-form model, a live measurement of the
//! self-healing protocol, and failure churn against a finite-flow FCT
//! workload driven from a declarative experiment spec.
//!
//! The churn section is the [`presets::failure_churn`] spec: a Web mix
//! on the cell fabric with one FA-0 uplink failing mid-run and
//! recovering later, expanded by the [`runner`] over the sequential
//! **and** the sharded engine — whose outputs must stay bit-identical
//! through the churn (the spec's `sharded_identical` gate).

use stardust_bench::presets;
use stardust_bench::{header, runner, Args};
use stardust_fabric::{FabricConfig, FabricEngine};
use stardust_model::resilience::ResilienceParams;
use stardust_sim::{SimDuration, SimTime};
use stardust_topo::builders::{two_tier, TwoTierParams};
use stardust_topo::LinkId;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::parse();

    header(
        "Appendix E: closed-form recovery model (Table 4 example)",
        "quantity                          value",
    );
    let p = ResilienceParams::table4_example();
    println!(
        "{:<32} {:>10.1} us",
        "message interval t'",
        p.msg_interval_s() * 1e6
    );
    println!("{:<32} {:>10}", "messages per table M", p.msgs_per_table());
    println!("{:<32} {:>10}", "worst-case hops 2n-1", p.hops());
    println!(
        "{:<32} {:>10.1} us  (paper: 210)",
        "one propagation t",
        p.propagation_s() * 1e6
    );
    println!(
        "{:<32} {:>10.1} us  (paper: 630)",
        "simple recovery t x th",
        p.simple_recovery_s() * 1e6
    );
    println!(
        "{:<32} {:>10.1} us  (paper: 652)",
        "recovery incl. propagation",
        p.recovery_s() * 1e6
    );
    println!(
        "{:<32} {:>10.4} %  (paper: 0.04%)",
        "bandwidth overhead",
        p.bandwidth_overhead() * 100.0
    );

    header(
        "recovery time vs reachability interval (closed form)",
        &format!(
            "{:>16} {:>16} {:>14}",
            "interval [us]", "recovery [us]", "overhead [%]"
        ),
    );
    for c in [1_000u64, 5_000, 10_000, 50_000, 100_000] {
        let mut q = ResilienceParams::table4_example();
        q.cycles_between_msgs = c;
        println!(
            "{:>16.0} {:>16.1} {:>14.4}",
            q.msg_interval_s() * 1e6,
            q.recovery_s() * 1e6,
            q.bandwidth_overhead() * 100.0
        );
    }

    // --- Live self-healing measurement (event simulator) ---
    // Steady CBR traffic 0 → farthest FA; fail one of FA0's uplinks and
    // measure how long discards continue — the observable form of the
    // closed-form recovery time above. This is a polling measurement
    // (watch the discard counter between 10 µs windows), so it drives
    // the engine directly rather than through a failure schedule.
    let scale = args.get_u64("scale", 16) as u32;
    let interval_us = args.get_u64("interval-us", 10);
    let th = args.get_u64("threshold", 3) as u32;
    let tt = two_tier(TwoTierParams::paper_scaled(scale));
    let cfg = FabricConfig {
        host_ports: 2,
        host_port_bps: stardust_sim::units::gbps(40),
        reach_interval: Some(SimDuration::from_micros(interval_us)),
        reach_miss_threshold: th,
        ..FabricConfig::default()
    };
    let mut e = FabricEngine::new(tt.topo, cfg);
    let n = e.num_fas() as u32;
    e.add_cbr_flow(
        0,
        n - 1,
        0,
        0,
        stardust_sim::units::gbps(20),
        1500,
        SimTime::ZERO,
        SimTime::from_millis(50),
    );
    e.run_until(SimTime::from_millis(2));
    let delivered_before = e.stats().packets_delivered.get();
    let discarded_before = e.stats().packets_discarded.get();

    let fail_at = e.now();
    e.fail_link(LinkId(0));
    let mut healed_at = None;
    let mut last_discard = discarded_before;
    let step = SimDuration::from_micros(10);
    for _ in 0..100_000 {
        let t = e.now() + step;
        e.run_until(t);
        let d = e.stats().packets_discarded.get();
        if d == last_discard
            && e.now().since(fail_at) > SimDuration::from_micros(interval_us * th as u64)
        {
            // No new discards for one settling window: consider healed once
            // the table actually excluded the link.
            healed_at = Some(e.now());
            break;
        }
        last_discard = d;
    }
    e.run_until(SimTime::from_millis(40));

    header(
        "live self-healing measurement (fabric engine)",
        "quantity                          value",
    );
    println!("{:<32} {:>10} us", "reachability interval", interval_us);
    println!("{:<32} {:>10}", "miss threshold", th);
    match healed_at {
        Some(t) => println!(
            "{:<32} {:>10.0} us",
            "observed recovery (no more loss)",
            t.since(fail_at).as_micros_f64()
        ),
        None => println!("{:<32} {:>10}", "observed recovery", "none"),
    }
    println!(
        "{:<32} {:>10}",
        "packets discarded during failure",
        e.stats().packets_discarded.get() - discarded_before
    );
    println!(
        "{:<32} {:>10}",
        "packets delivered after heal",
        e.stats().packets_delivered.get() - delivered_before
    );

    // --- Failure churn vs a finite-flow FCT workload (spec-driven) ---
    let churn = presets::failure_churn(
        scale,
        args.get_u64("churn-ms", 20),
        args.get_u64("seed", 42),
        args.get_u64("shards", 2) as u32,
    );
    println!(
        "\nfailure-churn spec `{}`: {} link events against {} engines — \
         Appendix-E churn vs finite-flow FCTs, sequential and sharded alike",
        churn.name,
        churn.failures.events().len(),
        churn.engines.len()
    );
    let outcome = runner::run_spec(&churn);
    outcome.print();
    for r in &outcome.runs {
        if let (Some(discarded), Some(dropped)) = (r.packets_discarded, r.cells_dropped) {
            println!(
                "{:>12}: {} packets discarded during churn, {} cells dropped",
                r.label, discarded, dropped
            );
        }
    }
    if !outcome.check_failures.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
