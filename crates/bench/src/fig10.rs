//! Shared scaffolding for the Fig 10 a–c experiments: the two engine
//! presets and the FCT table printers.
//!
//! The fat-tree transport simulator models the paper's §6.3 htsim setup
//! (k-ary fat-tree, one 10G NIC per host, per-protocol transports). The
//! fabric engine is the cell-accurate §6.2 Stardust model (VOQs, credit
//! scheduling, packing, spraying); to keep the comparison one-NIC-per-
//! node it runs with a single 10G host port per Fabric Adapter. The two
//! topologies differ — that is the point: the same workload spec lands on
//! the paper's comparison network and on the Stardust fabric proper.
//!
//! The experiment driving itself lives in [`crate::runner`], which
//! expands an [`ExperimentSpec`](crate::spec::ExperimentSpec) over the
//! generic `FlowEngine` surface; the fig10 binaries are thin preset +
//! figure-specific-printing shells over it.

use crate::header;
use stardust_fabric::{FabricConfig, FabricEngine};
use stardust_sim::{units, FlowStats};
use stardust_topo::builders::{kary, two_tier, KaryParams, TwoTierParams};
use stardust_transport::{TransportConfig, TransportSim};

/// Label used for the cell-accurate fabric column.
pub const FABRIC_LABEL: &str = "SD-fabric";

/// Percentiles printed by [`print_fct_table`].
pub const PCTS: [u32; 8] = [10, 25, 50, 75, 90, 95, 99, 100];

/// Fabric Adapter population of [`fabric_engine`]`(factor, _)` — one
/// source of truth with `TwoTierParams::paper_scaled`, so the binaries'
/// printed populations and backend clamps can never drift from the
/// topology actually built.
pub fn fabric_fas(factor: u32) -> usize {
    TwoTierParams::paper_scaled(factor).num_fa as usize
}

/// Host population of [`transport_sim`]`(k, _)` (k³/4 for a k-ary
/// fat-tree).
pub fn kary_hosts(k: u32) -> usize {
    (k * k * k / 4) as usize
}

/// The Fig 10 fabric-engine configuration: one 10G host port per Fabric
/// Adapter (one-NIC hosts, like the transport topology). Shared by
/// [`fabric_engine`] and the experiment [`runner`](crate::runner), so a
/// spec preset and a hand-built engine can never drift apart.
pub fn fabric_config(seed: u64) -> FabricConfig {
    FabricConfig {
        host_ports: 1,
        host_port_bps: units::gbps(10),
        seed,
        ..FabricConfig::default()
    }
}

/// A scaled-down §6.2 two-tier Stardust fabric with one 10G host port
/// per Fabric Adapter (`factor` divides the paper populations; 16 gives
/// 16 FAs, 4 gives 64).
pub fn fabric_engine(factor: u32, seed: u64) -> FabricEngine {
    let tt = two_tier(TwoTierParams::paper_scaled(factor));
    FabricEngine::new(tt.topo, fabric_config(seed))
}

/// The §6.3 k-ary fat-tree transport simulator (k³/4 hosts, 10G links).
pub fn transport_sim(k: u32, seed: u64) -> TransportSim {
    let ft = kary(KaryParams {
        k,
        ..KaryParams::paper_6_3()
    });
    TransportSim::new(
        ft,
        TransportConfig {
            seed,
            ..TransportConfig::default()
        },
    )
}

/// Print an FCT-percentile table, one column per labelled result, in ms.
/// Each column's quantiles come from one
/// [`FlowStats::fct_quantiles`] call — the per-flow table is sorted
/// once, not per percentile, and sketch-mode stats (which keep no
/// table) print their sketch quantiles.
pub fn print_fct_table(title: &str, results: &[(String, FlowStats)]) {
    let w = column_width(results);
    let cols: String = results
        .iter()
        .map(|(l, _)| format!(" {l:>width$}", width = w))
        .collect();
    header(title, &format!("{:>6}{cols}", "pct"));
    let qs: Vec<f64> = PCTS.iter().map(|&p| p as f64 / 100.0).collect();
    let columns: Vec<_> = results
        .iter()
        .map(|(_, fs)| fs.fct_quantiles(&qs))
        .collect();
    for (i, &pct) in PCTS.iter().enumerate() {
        print!("{pct:>6}");
        for col in &columns {
            match col[i] {
                Some(d) => print!(" {:>width$.3}", d.as_secs_f64() * 1e3, width = w),
                None => print!(" {:>width$}", "-", width = w),
            }
        }
        println!();
    }
}

/// Column width that fits every result label (12 minimum).
fn column_width(results: &[(String, FlowStats)]) -> usize {
    results
        .iter()
        .map(|(l, _)| l.len())
        .max()
        .unwrap_or(0)
        .max(12)
}

/// Print the completion/median/tail summary for each labelled result.
pub fn print_fct_summary(results: &[(String, FlowStats)]) {
    let w = column_width(results);
    header(
        "summary",
        &format!(
            "{:>w$} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "engine",
            "completed",
            "mean ms",
            "median ms",
            "p99 ms",
            "max ms",
            w = w
        ),
    );
    for (label, fs) in results {
        let ms = |d: Option<stardust_sim::SimDuration>| {
            d.map_or("-".to_string(), |d| format!("{:.3}", d.as_secs_f64() * 1e3))
        };
        let qs = fs.fct_quantiles(&[0.5, 0.99, 1.0]);
        println!(
            "{:>w$} {:>12} {:>12} {:>12} {:>12} {:>12}",
            label,
            format!("{}/{}", fs.completed(), fs.len()),
            ms(fs.fct_mean()),
            ms(qs[0]),
            ms(qs[1]),
            ms(qs[2]),
            w = w
        );
    }
}

/// Per-flow goodputs in Gbps (bytes / FCT) over completed flows,
/// ascending — the paper's Fig 10(a) "flow rank" series.
pub fn goodputs_gbps(fs: &FlowStats) -> Vec<f64> {
    let mut v: Vec<f64> = fs
        .records()
        .iter()
        .filter_map(|r| {
            r.fct()
                .map(|d| r.bytes as f64 * 8.0 / d.as_secs_f64() / 1e9)
        })
        .collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

/// Print the survivor-bias note for any engine that left flows
/// unfinished at the horizon (goodput = bytes / FCT exists only for
/// completed flows, so rank series cover only the faster survivors).
pub fn print_unfinished_notes(results: &[(String, FlowStats)]) {
    for (label, fs) in results {
        let unfinished = fs.len() - fs.completed();
        if unfinished > 0 {
            println!(
                "note: {label} left {unfinished}/{} flows unfinished at the horizon — its \
                 goodput columns cover only the {} completed (faster) flows",
                fs.len(),
                fs.completed()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_sim::{SimDuration, SimTime};
    use stardust_workload::{FlowEngine, Scenario, ScenarioKind};

    #[test]
    fn engine_presets_drive_one_spec_side_by_side() {
        let scn = Scenario {
            name: "fig10-helper-test".into(),
            seed: 5,
            kind: ScenarioKind::Permutation {
                flow_bytes: 200_000,
            },
        };
        // Both populations sized by their own engine: k=4 → 16 hosts,
        // factor=16 → 16 FAs.
        let mut fab = fabric_engine(16, scn.seed);
        assert_eq!(FlowEngine::num_nodes(&fab), 16);
        let fs = scn.run(&mut fab, SimTime::from_millis(50));
        assert_eq!(fs.len(), 16);
        assert_eq!(fs.completed(), 16);
        assert_eq!(fab.stats().cells_dropped.get(), 0);
        let g = goodputs_gbps(&fs);
        assert_eq!(g.len(), 16);
        assert!(g[0] > 0.0 && g[g.len() - 1] <= 10.5, "goodputs {g:?}");
        assert!(fs.fct_quantile(0.5).unwrap() > SimDuration::ZERO);
        assert_eq!(kary_hosts(4), 16);
        assert_eq!(fabric_fas(16), 16);
    }
}
