//! Shared scaffolding for the Fig 10 a–c experiments: build the two
//! engines, run one [`Scenario`] on both, and print FCT tables side by
//! side.
//!
//! The fat-tree transport simulator models the paper's §6.3 htsim setup
//! (k-ary fat-tree, one 10G NIC per host, per-protocol transports). The
//! fabric engine is the cell-accurate §6.2 Stardust model (VOQs, credit
//! scheduling, packing, spraying); to keep the comparison one-NIC-per-
//! node it runs with a single 10G host port per Fabric Adapter. The two
//! topologies differ — that is the point: the same workload spec lands on
//! the paper's comparison network and on the Stardust fabric proper.

use crate::header;
use stardust_fabric::{FabricConfig, FabricEngine};
use stardust_sim::{quantile_of_sorted, units, FlowStats, SimTime};
use stardust_topo::builders::{kary, two_tier, KaryParams, TwoTierParams};
use stardust_transport::{Protocol, TransportConfig, TransportSim};
use stardust_workload::Scenario;

/// Label used for the cell-accurate fabric column.
pub const FABRIC_LABEL: &str = "SD-fabric";

/// Percentiles printed by [`print_fct_table`].
pub const PCTS: [u32; 8] = [10, 25, 50, 75, 90, 95, 99, 100];

/// Fabric Adapter population of [`fabric_engine`]`(factor, _)` — one
/// source of truth with `TwoTierParams::paper_scaled`, so the binaries'
/// printed populations and backend clamps can never drift from the
/// topology actually built.
pub fn fabric_fas(factor: u32) -> usize {
    TwoTierParams::paper_scaled(factor).num_fa as usize
}

/// Host population of [`transport_sim`]`(k, _)` (k³/4 for a k-ary
/// fat-tree).
pub fn kary_hosts(k: u32) -> usize {
    (k * k * k / 4) as usize
}

/// A scaled-down §6.2 two-tier Stardust fabric with one 10G host port
/// per Fabric Adapter (`factor` divides the paper populations; 16 gives
/// 16 FAs, 4 gives 64).
pub fn fabric_engine(factor: u32, seed: u64) -> FabricEngine {
    let tt = two_tier(TwoTierParams::paper_scaled(factor));
    let cfg = FabricConfig {
        host_ports: 1,
        host_port_bps: units::gbps(10),
        seed,
        ..FabricConfig::default()
    };
    FabricEngine::new(tt.topo, cfg)
}

/// The §6.3 k-ary fat-tree transport simulator (k³/4 hosts, 10G links).
pub fn transport_sim(k: u32, seed: u64) -> TransportSim {
    let ft = kary(KaryParams {
        k,
        ..KaryParams::paper_6_3()
    });
    TransportSim::new(
        ft,
        TransportConfig {
            seed,
            ..TransportConfig::default()
        },
    )
}

/// Run `scenario` on the fat-tree under each of `protos`, then on the
/// Stardust fabric, and return the labelled FCT tables (fabric last,
/// labelled [`FABRIC_LABEL`]). Asserts the paper's losslessness claim:
/// the scheduled fabric drops no cells.
pub fn run_side_by_side(
    scenario: &Scenario,
    protos: &[Protocol],
    k: u32,
    factor: u32,
    horizon: SimTime,
) -> Vec<(String, FlowStats)> {
    let mut out = Vec::with_capacity(protos.len() + 1);
    for &p in protos {
        let mut sim = transport_sim(k, scenario.seed);
        out.push((
            p.label().to_string(),
            scenario.run_transport(&mut sim, p, horizon),
        ));
    }
    let mut engine = fabric_engine(factor, scenario.seed);
    let fs = scenario.run_fabric(&mut engine, horizon);
    assert_eq!(
        engine.stats().cells_dropped.get(),
        0,
        "the scheduled fabric must not drop cells"
    );
    out.push((FABRIC_LABEL.to_string(), fs));
    out
}

/// Print an FCT-percentile table, one column per labelled result, in ms
/// (each column's FCTs are sorted once, not per percentile).
pub fn print_fct_table(title: &str, results: &[(String, FlowStats)]) {
    let cols: String = results.iter().map(|(l, _)| format!("{l:>12}")).collect();
    header(title, &format!("{:>6} {cols}", "pct"));
    let sorted: Vec<_> = results.iter().map(|(_, fs)| fs.fcts_sorted()).collect();
    for &pct in &PCTS {
        print!("{pct:>6}");
        for fcts in &sorted {
            match quantile_of_sorted(fcts, pct as f64 / 100.0) {
                Some(d) => print!(" {:>11.3}", d.as_secs_f64() * 1e3),
                None => print!(" {:>11}", "-"),
            }
        }
        println!();
    }
}

/// Print the completion/median/tail summary for each labelled result.
pub fn print_fct_summary(results: &[(String, FlowStats)]) {
    header(
        "summary",
        &format!(
            "{:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "engine", "completed", "mean ms", "median ms", "p99 ms", "max ms"
        ),
    );
    for (label, fs) in results {
        let ms = |d: Option<stardust_sim::SimDuration>| {
            d.map_or("-".to_string(), |d| format!("{:.3}", d.as_secs_f64() * 1e3))
        };
        let fcts = fs.fcts_sorted();
        println!(
            "{:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            label,
            format!("{}/{}", fs.completed(), fs.len()),
            ms(fs.fct_mean()),
            ms(quantile_of_sorted(&fcts, 0.5)),
            ms(quantile_of_sorted(&fcts, 0.99)),
            ms(quantile_of_sorted(&fcts, 1.0)),
        );
    }
}

/// Per-flow goodputs in Gbps (bytes / FCT) over completed flows,
/// ascending — the paper's Fig 10(a) "flow rank" series.
pub fn goodputs_gbps(fs: &FlowStats) -> Vec<f64> {
    let mut v: Vec<f64> = fs
        .records()
        .iter()
        .filter_map(|r| {
            r.fct()
                .map(|d| r.bytes as f64 * 8.0 / d.as_secs_f64() / 1e9)
        })
        .collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_workload::ScenarioKind;

    #[test]
    fn side_by_side_runs_one_spec_on_both_engines() {
        let scn = Scenario {
            name: "fig10-helper-test",
            seed: 5,
            kind: ScenarioKind::Permutation {
                flow_bytes: 200_000,
            },
        };
        let results =
            run_side_by_side(&scn, &[Protocol::Stardust], 4, 16, SimTime::from_millis(50));
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, "Stardust");
        assert_eq!(results[1].0, FABRIC_LABEL);
        // Both populations sized by their own engine: k=4 → 16 hosts,
        // factor=16 → 16 FAs.
        assert_eq!(results[0].1.len(), 16);
        assert_eq!(results[1].1.len(), 16);
        assert_eq!(results[1].1.completed(), 16);
        let g = goodputs_gbps(&results[1].1);
        assert_eq!(g.len(), 16);
        assert!(g[0] > 0.0 && g[g.len() - 1] <= 10.5, "goodputs {g:?}");
    }
}
