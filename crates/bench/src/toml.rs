//! A tiny self-contained TOML-subset parser and formatter.
//!
//! The workspace builds with no crates.io access (see DESIGN.md), so the
//! experiment-spec files under `specs/` are parsed by this module instead
//! of a real TOML crate. The supported subset is exactly what
//! [`ExperimentSpec`](crate::spec::ExperimentSpec) needs:
//!
//! * `key = value` pairs with bare keys (`[A-Za-z0-9_-]+`);
//! * values: basic strings (`"…"` with `\" \\ \n \t \r` escapes),
//!   integers (optional sign, `_` separators), floats (`.` or exponent),
//!   booleans, and single-line arrays of those;
//! * `[table]` and `[dotted.table]` headers;
//! * `[[array-of-tables]]` headers;
//! * `#` comments and blank lines.
//!
//! Out of scope (rejected, never silently misread): multi-line strings
//! and arrays, literal/quoted keys, inline tables, and dates.
//!
//! [`format`] renders a document back to text such that
//! `parse(format(parse(s))) == parse(s)` — the round-trip the spec tests
//! pin down. Tables format with scalar keys first, then sub-tables,
//! keys in sorted order.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer.
    Int(i64),
    /// A float (any value with a `.` or exponent).
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A single-line array.
    Array(Vec<Value>),
    /// A nested table (`[header]`) or one element of an
    /// `[[array-of-tables]]` (which parses as `Array` of `Table`s).
    Table(Table),
}

/// A table: key → value, sorted by key.
pub type Table = BTreeMap<String, Value>;

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TOML parse error on line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TomlError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        msg: msg.into(),
    })
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Parse a document into its root [`Table`].
pub fn parse(text: &str) -> Result<Table, TomlError> {
    let mut root = Table::new();
    // Path of the table currently receiving `key = value` lines; empty
    // means the root table. The final path segment may address the last
    // element of an array-of-tables.
    let mut current: Vec<String> = Vec::new();
    // Explicit `[header]` paths already opened — a repeat (e.g. two
    // `[checks]` sections from a copy-paste) would otherwise silently
    // merge, which real TOML rejects.
    let mut opened: std::collections::HashSet<Vec<String>> = std::collections::HashSet::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let Some(path) = header.strip_suffix("]]") else {
                return err(lineno, "unterminated [[array-of-tables]] header");
            };
            let path = parse_path(path, lineno)?;
            push_array_table(&mut root, &path, lineno)?;
            // A fresh array element gets a fresh sub-table namespace:
            // `[x.y]` may legitimately reappear under each `[[x]]`.
            opened.retain(|p| !(p.len() > path.len() && p[..path.len()] == path[..]));
            current = path;
        } else if let Some(header) = line.strip_prefix('[') {
            let Some(path) = header.strip_suffix(']') else {
                return err(lineno, "unterminated [table] header");
            };
            let path = parse_path(path, lineno)?;
            if !opened.insert(path.clone()) {
                return err(lineno, format!("duplicate table [{}]", path.join(".")));
            }
            if names_array(&root, &path) {
                // `[[x]]` then `[x]` would silently merge keys into the
                // last array element; real TOML rejects the redefinition.
                return err(
                    lineno,
                    format!("[{}] already defined as an array of tables", path.join(".")),
                );
            }
            // Creating the table now keeps empty sections visible.
            resolve_table(&mut root, &path, lineno)?;
            current = path;
        } else {
            let Some(eq) = line.find('=') else {
                return err(lineno, format!("expected `key = value`, got {line:?}"));
            };
            let key = line[..eq].trim();
            if key.is_empty() || !key.chars().all(is_bare_key_char) {
                return err(lineno, format!("invalid bare key {key:?}"));
            }
            let (value, rest) = parse_value(line[eq + 1..].trim(), lineno)?;
            if !rest.trim().is_empty() {
                return err(lineno, format!("trailing input after value: {rest:?}"));
            }
            let table = resolve_table(&mut root, &current, lineno)?;
            if table.insert(key.to_string(), value).is_some() {
                return err(lineno, format!("duplicate key {key:?}"));
            }
        }
    }
    Ok(root)
}

/// Strip a `#` comment, respecting `#` inside basic strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

fn parse_path(path: &str, lineno: usize) -> Result<Vec<String>, TomlError> {
    let segs: Vec<String> = path
        .trim()
        .split('.')
        .map(|s| s.trim().to_string())
        .collect();
    if segs
        .iter()
        .any(|s| s.is_empty() || !s.chars().all(is_bare_key_char))
    {
        return err(lineno, format!("invalid table path {path:?}"));
    }
    Ok(segs)
}

/// Whether `path`'s final segment currently holds an array (walking
/// intermediate segments through tables and last array elements, the
/// same way [`resolve_table`] does — but read-only and non-creating).
fn names_array(root: &Table, path: &[String]) -> bool {
    let Some((last, parents)) = path.split_last() else {
        return false;
    };
    let mut t = root;
    for seg in parents {
        t = match t.get(seg) {
            Some(Value::Table(sub)) => sub,
            Some(Value::Array(items)) => match items.last() {
                Some(Value::Table(sub)) => sub,
                _ => return false,
            },
            _ => return false,
        };
    }
    matches!(t.get(last), Some(Value::Array(_)))
}

/// Walk (creating as needed) to the table at `path`; the last element of
/// an array-of-tables counts as that path segment's table.
fn resolve_table<'a>(
    root: &'a mut Table,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut Table, TomlError> {
    let mut t = root;
    for seg in path {
        let entry = t
            .entry(seg.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        t = match entry {
            Value::Table(sub) => sub,
            Value::Array(items) => match items.last_mut() {
                Some(Value::Table(sub)) => sub,
                _ => return err(lineno, format!("{seg:?} is not a table of tables")),
            },
            _ => return err(lineno, format!("{seg:?} already holds a non-table value")),
        };
    }
    Ok(t)
}

/// Append a fresh table to the array-of-tables at `path`.
fn push_array_table(root: &mut Table, path: &[String], lineno: usize) -> Result<(), TomlError> {
    let (last, parents) = path.split_last().expect("paths are non-empty");
    let parent = resolve_table(root, parents, lineno)?;
    match parent
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()))
    {
        Value::Array(items) => {
            if items.iter().any(|v| !matches!(v, Value::Table(_))) {
                return err(lineno, format!("{last:?} mixes tables and plain values"));
            }
            items.push(Value::Table(Table::new()));
            Ok(())
        }
        _ => err(lineno, format!("{last:?} already holds a non-array value")),
    }
}

/// Parse one value at the start of `s`; return it and the rest of `s`.
fn parse_value(s: &str, lineno: usize) -> Result<(Value, &str), TomlError> {
    let s = s.trim_start();
    let Some(first) = s.chars().next() else {
        return err(lineno, "missing value");
    };
    match first {
        '"' => parse_string(s, lineno),
        '[' => parse_array(s, lineno),
        't' | 'f' => {
            if let Some(rest) = s.strip_prefix("true") {
                Ok((Value::Bool(true), rest))
            } else if let Some(rest) = s.strip_prefix("false") {
                Ok((Value::Bool(false), rest))
            } else {
                err(lineno, format!("unrecognized value {s:?}"))
            }
        }
        c if c.is_ascii_digit() || c == '-' || c == '+' => parse_number(s, lineno),
        _ => err(lineno, format!("unrecognized value {s:?}")),
    }
}

fn parse_string(s: &str, lineno: usize) -> Result<(Value, &str), TomlError> {
    debug_assert!(s.starts_with('"'));
    let mut out = String::new();
    let mut chars = s[1..].char_indices();
    while let Some((idx, c)) = chars.next() {
        match c {
            '"' => return Ok((Value::Str(out), &s[1 + idx + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                other => {
                    return err(
                        lineno,
                        format!("unsupported string escape \\{:?}", other.map(|(_, c)| c)),
                    )
                }
            },
            _ => out.push(c),
        }
    }
    err(lineno, "unterminated string")
}

fn parse_array(s: &str, lineno: usize) -> Result<(Value, &str), TomlError> {
    debug_assert!(s.starts_with('['));
    let mut rest = s[1..].trim_start();
    let mut items = Vec::new();
    loop {
        if let Some(r) = rest.strip_prefix(']') {
            return Ok((Value::Array(items), r));
        }
        if rest.is_empty() {
            return err(lineno, "unterminated array (arrays must be single-line)");
        }
        let (v, r) = parse_value(rest, lineno)?;
        items.push(v);
        rest = r.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.starts_with(']') && !rest.is_empty() {
            return err(lineno, "expected `,` or `]` in array");
        }
    }
}

fn parse_number(s: &str, lineno: usize) -> Result<(Value, &str), TomlError> {
    let end = s
        .char_indices()
        .find(|&(i, c)| {
            !(c.is_ascii_digit()
                || c == '_'
                || c == '.'
                || c == 'e'
                || c == 'E'
                || ((c == '+' || c == '-')
                    && (i == 0 || matches!(s.as_bytes()[i - 1], b'e' | b'E'))))
        })
        .map_or(s.len(), |(i, _)| i);
    let (tok, rest) = s.split_at(end);
    let clean: String = tok.chars().filter(|&c| c != '_').collect();
    if clean.contains('.') || clean.contains('e') || clean.contains('E') {
        match clean.parse::<f64>() {
            Ok(f) => Ok((Value::Float(f), rest)),
            Err(_) => err(lineno, format!("invalid float {tok:?}")),
        }
    } else {
        match clean.parse::<i64>() {
            Ok(n) => Ok((Value::Int(n), rest)),
            Err(_) => err(lineno, format!("invalid integer {tok:?}")),
        }
    }
}

/// Render a document: scalar/array keys first, then `[tables]` and
/// `[[arrays-of-tables]]`, depth-first, keys in sorted (BTreeMap) order.
pub fn format(doc: &Table) -> String {
    let mut out = String::new();
    format_table(doc, &mut Vec::new(), &mut out);
    out
}

fn format_table(t: &Table, path: &mut Vec<String>, out: &mut String) {
    for (k, v) in t {
        match v {
            Value::Table(_) => {}
            Value::Array(items)
                if items.iter().all(|i| matches!(i, Value::Table(_))) && !items.is_empty() => {}
            _ => {
                out.push_str(k);
                out.push_str(" = ");
                format_value(v, out);
                out.push('\n');
            }
        }
    }
    for (k, v) in t {
        match v {
            Value::Table(sub) => {
                path.push(k.clone());
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push('[');
                out.push_str(&path.join("."));
                out.push_str("]\n");
                format_table(sub, path, out);
                path.pop();
            }
            Value::Array(items)
                if items.iter().all(|i| matches!(i, Value::Table(_))) && !items.is_empty() =>
            {
                path.push(k.clone());
                for item in items {
                    let Value::Table(sub) = item else {
                        unreachable!()
                    };
                    if !out.is_empty() {
                        out.push('\n');
                    }
                    out.push_str("[[");
                    out.push_str(&path.join("."));
                    out.push_str("]]\n");
                    format_table(sub, path, out);
                }
                path.pop();
            }
            _ => {}
        }
    }
}

fn format_value(v: &Value, out: &mut String) {
    match v {
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    _ => out.push(c),
                }
            }
            out.push('"');
        }
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            let s = format!("{f}");
            out.push_str(&s);
            // Keep floats parsing back as floats.
            if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN") {
                out.push_str(".0");
            }
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                format_value(item, out);
            }
            out.push(']');
        }
        Value::Table(_) => unreachable!("nested tables render as [headers]"),
    }
}

/// Typed accessors used by the spec layer, with path-aware messages.
impl Value {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an i64, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an f64 (integers widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a table, if it is one.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_arrays() {
        let doc = parse(
            r#"
# a comment
name = "ci_smoke"   # trailing comment
count = 42
ratio = 1.5
on = true
seeds = [1, 2, 3]
labels = ["a", "b # not a comment"]

[scenario]
kind = "mix"
gap_us = 800

[scenario.nested]
deep = -7

[[failure]]
at_us = 500
action = "fail"

[[failure]]
at_us = 1500
action = "restore"
"#,
        )
        .expect("parse");
        assert_eq!(doc["name"], Value::Str("ci_smoke".into()));
        assert_eq!(doc["count"], Value::Int(42));
        assert_eq!(doc["ratio"], Value::Float(1.5));
        assert_eq!(doc["on"], Value::Bool(true));
        assert_eq!(
            doc["seeds"],
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            doc["labels"].as_array().unwrap()[1],
            Value::Str("b # not a comment".into())
        );
        let scn = doc["scenario"].as_table().unwrap();
        assert_eq!(scn["kind"], Value::Str("mix".into()));
        assert_eq!(scn["nested"].as_table().unwrap()["deep"], Value::Int(-7));
        let failures = doc["failure"].as_array().unwrap();
        assert_eq!(failures.len(), 2);
        assert_eq!(
            failures[1].as_table().unwrap()["action"],
            Value::Str("restore".into())
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let text = "s = \"quote \\\" slash \\\\ nl \\n tab \\t\"\n";
        let doc = parse(text).unwrap();
        assert_eq!(
            doc["s"],
            Value::Str("quote \" slash \\ nl \n tab \t".into())
        );
        let again = parse(&format(&doc)).unwrap();
        assert_eq!(doc, again);
    }

    #[test]
    fn format_then_parse_is_identity() {
        let doc = parse(
            r#"
x = 1
y = 2.0
z = [true, false]
s = "hi"

[a]
k = "v"

[a.b]
n = 3

[[runs]]
seed = 1

[[runs]]
seed = 2
horizon = 1.25e3
"#,
        )
        .unwrap();
        let text = format(&doc);
        let again = parse(&text).expect("formatted output must re-parse");
        assert_eq!(doc, again, "round-trip changed the document:\n{text}");
        // And formatting is a fixpoint after one round.
        assert_eq!(text, format(&again));
    }

    #[test]
    fn floats_always_format_as_floats() {
        let doc: Table = [("f".to_string(), Value::Float(2.0))].into_iter().collect();
        let text = format(&doc);
        assert_eq!(text, "f = 2.0\n");
        assert_eq!(parse(&text).unwrap()["f"], Value::Float(2.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for (bad, needle) in [
            ("key", "expected `key = value`"),
            ("k = ", "missing value"),
            ("k = \"open", "unterminated string"),
            ("k = [1, 2", "unterminated array"),
            ("[t", "unterminated [table]"),
            ("k = 1\nk = 2", "duplicate key"),
            ("bad key = 1", "invalid bare key"),
            ("k = 12x", "trailing input"),
            ("k = nope", "unrecognized value"),
        ] {
            let e = parse(bad).expect_err(bad);
            assert!(
                e.msg.contains(needle),
                "{bad:?}: expected {needle:?} in {:?}",
                e.msg
            );
        }
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse("a = 1\nb = 2\noops\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn array_of_tables_key_cannot_be_scalar() {
        assert!(parse("x = 1\n[[x]]\n").is_err());
        assert!(parse("[[x]]\n[x.y]\nk = 1\n").is_ok());
    }

    #[test]
    fn duplicate_table_headers_are_rejected() {
        let e = parse("[checks]\na = 1\n[checks]\nb = 2\n").unwrap_err();
        assert!(e.msg.contains("duplicate table"), "{:?}", e.msg);
        // A single-bracket reopen of an array of tables must not merge
        // into the last element.
        let e =
            parse("[[failure]]\naction = \"fail\"\n[failure]\naction = \"restore\"\n").unwrap_err();
        assert!(e.msg.contains("array of tables"), "{:?}", e.msg);
        // …but the same sub-table name under successive array elements
        // is a fresh namespace each time (real-TOML semantics).
        let doc = parse("[[runs]]\n[runs.cfg]\na = 1\n[[runs]]\n[runs.cfg]\na = 2\n").unwrap();
        assert_eq!(doc["runs"].as_array().unwrap().len(), 2);
    }
}
