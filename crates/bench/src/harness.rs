//! A tiny self-contained micro-benchmark harness.
//!
//! The build environment has no network access, so Criterion is not
//! available; this module provides the small subset the workspace needs:
//! warmup, repeated timed batches, and a median-of-batches report in
//! ns/iter. Bench targets set `harness = false` and call this from `main`.

use std::time::Instant;

/// Runs named benchmark closures and prints one line per benchmark.
pub struct Bench {
    filter: Option<String>,
}

impl Bench {
    /// Build from `std::env::args`: the first non-flag argument (if any)
    /// is a substring filter on benchmark names. The libtest-style
    /// `--bench` flag passed by `cargo bench` is ignored.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Bench { filter }
    }

    /// Benchmark `f` with the default batch count.
    pub fn bench(&mut self, name: &str, f: impl FnMut()) {
        self.bench_n(name, 30, f);
    }

    /// Benchmark `routine` over inputs produced by `setup`, excluding
    /// `setup` from the timed region (the equivalent of Criterion's
    /// `iter_batched`): each batch pre-builds its inputs, then times only
    /// the routine over them.
    pub fn bench_batched<I>(
        &mut self,
        name: &str,
        batches: u32,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I),
    ) {
        if let Some(ref pat) = self.filter {
            if !name.contains(pat.as_str()) {
                return;
            }
        }
        // Calibrate iters-per-batch on the routine alone (inputs built
        // outside the timed window), capped to bound input storage.
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for input in inputs {
                routine(input);
            }
            if t.elapsed().as_millis() >= 1 || iters >= 1 << 16 {
                break;
            }
            iters *= 8;
        }
        let mut samples: Vec<f64> = (0..batches)
            .map(|_| {
                let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                let t = Instant::now();
                for input in inputs {
                    routine(input);
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let best = samples[0];
        println!(
            "{name:<44} {median:>12.1} ns/iter (best {best:.1}, {iters} iters x {batches} batches)"
        );
    }

    /// Benchmark `f` over `batches` timed batches and report the median.
    pub fn bench_n(&mut self, name: &str, batches: u32, mut f: impl FnMut()) {
        if let Some(ref pat) = self.filter {
            if !name.contains(pat.as_str()) {
                return;
            }
        }
        // Calibrate: grow iters-per-batch until a batch takes >= 1 ms,
        // so short closures are timed over many iterations.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let elapsed = t.elapsed();
            if elapsed.as_millis() >= 1 || iters >= 1 << 24 {
                break;
            }
            iters *= 8;
        }
        let mut samples: Vec<f64> = (0..batches)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let best = samples[0];
        println!(
            "{name:<44} {median:>12.1} ns/iter (best {best:.1}, {iters} iters x {batches} batches)"
        );
    }
}
