//! Built-in [`ExperimentSpec`] presets — the fig10 a–c figures, the
//! Appendix-E failure churn, and the CI smoke set.
//!
//! The fig binaries build their specs here (their `--k/--factor/--ms`
//! flags just parameterize the preset), the `stardust` CLI prints them
//! (`stardust preset <name>`), and `specs/ci_smoke/` holds the CI set
//! rendered to disk — a test pins the files to these functions so they
//! cannot drift.

use crate::spec::{
    Checks, CompleteScope, CoreChoice, EngineSpec, ExperimentSpec, StatsMode, TopoKind, TopoSpec,
    DEFAULT_ADMIT_WINDOW_US,
};
use stardust_sim::{SimDuration, SimTime};
use stardust_topo::LinkId;
use stardust_transport::Protocol;
use stardust_workload::{FailureSchedule, FlowSizeDist, ScenarioKind};

fn transports(protos: &[Protocol]) -> Vec<EngineSpec> {
    protos
        .iter()
        .map(|&proto| EngineSpec::Transport { proto })
        .collect()
}

fn with_fabric(mut engines: Vec<EngineSpec>) -> Vec<EngineSpec> {
    engines.push(EngineSpec::Fabric {
        core: CoreChoice::Calendar,
    });
    engines
}

/// Shared shape of the fig10 presets: topology scales + horizon + seed.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Params {
    /// Fat-tree arity for the transport engines.
    pub k: u32,
    /// Two-tier scale divisor for the fabric engine.
    pub factor: u32,
    /// Horizon in milliseconds.
    pub ms: u64,
    /// Master seed.
    pub seed: u64,
    /// Smoke mode: the small deterministic CI configuration with hard
    /// checks attached.
    pub smoke: bool,
}

impl Fig10Params {
    /// The CI smoke configuration (k = 4 fat-tree vs 16-FA fabric).
    pub fn smoke(ms: u64) -> Self {
        Fig10Params {
            k: 4,
            factor: 16,
            ms,
            seed: 42,
            smoke: true,
        }
    }

    /// Resolve the fig10 binaries' shared flags: `--smoke` (CI config at
    /// `smoke_ms`), `--full` (paper scale), else `--k`/`--ms`/`--seed`
    /// with the figure's `default_ms`.
    pub fn from_args(args: &crate::Args, smoke_ms: u64, default_ms: u64) -> Self {
        if args.has("smoke") {
            return Fig10Params {
                seed: args.get_u64("seed", 42),
                ..Fig10Params::smoke(args.get_u64("ms", smoke_ms))
            };
        }
        Fig10Params {
            k: if args.has("full") {
                12
            } else {
                args.get_u64("k", 8) as u32
            },
            factor: if args.has("full") { 1 } else { 2 },
            ms: args.get_u64("ms", default_ms),
            seed: args.get_u64("seed", 42),
            smoke: false,
        }
    }
}

/// Fig 10(a): permutation goodput, every node sends `flow_bytes` to its
/// derangement partner at t = 0.
pub fn fig10a(p: Fig10Params, flow_bytes: u64) -> ExperimentSpec {
    let protos: &[Protocol] = if p.smoke {
        &[Protocol::Dctcp, Protocol::Stardust]
    } else {
        &[
            Protocol::Mptcp,
            Protocol::Dctcp,
            Protocol::Dcqcn,
            Protocol::Stardust,
        ]
    };
    ExperimentSpec {
        name: "fig10a-permutation".into(),
        horizon_us: p.ms * 1_000,
        seeds: vec![p.seed],
        engines: with_fabric(transports(protos)),
        topology: TopoSpec {
            kind: TopoKind::TwoTier,
            two_tier_factor: p.factor,
            kary_k: p.k,
        },
        scenario: ScenarioKind::Permutation { flow_bytes },
        failures: FailureSchedule::new(),
        stats: StatsMode::Table,
        admit_window_us: DEFAULT_ADMIT_WINDOW_US,
        reach_us: None,
        threads: None,
        checks: if p.smoke {
            Checks {
                // Fabric and TCP-over-Stardust must finish the whole
                // permutation; the lossy comparison transports need not.
                complete: CompleteScope::Stardust,
                zero_drops: true,
                min_goodput_gbps: Some(5.0),
                ..Checks::default()
            }
        } else {
            Checks {
                zero_drops: true,
                ..Checks::default()
            }
        },
    }
}

/// Fig 10(b): Poisson-arriving heavy-tailed mix (`hadoop = false` for
/// the Facebook Web flow sizes), FCT percentiles per engine.
pub fn fig10b(p: Fig10Params, n_flows: usize, gap_us: u64, hadoop: bool) -> ExperimentSpec {
    let protos: &[Protocol] = if p.smoke {
        &[Protocol::Dctcp, Protocol::Stardust]
    } else {
        &[
            Protocol::Dctcp,
            Protocol::Dcqcn,
            Protocol::Mptcp,
            Protocol::Stardust,
        ]
    };
    let (dist, name) = if hadoop {
        (FlowSizeDist::fb_hadoop(), "fig10b-hadoop-mix")
    } else {
        (FlowSizeDist::fb_web(), "fig10b-web-mix")
    };
    // The paper's yardstick is serialization-bound FCTs ("even flows of
    // 1MB have a FCT of less than a millisecond" on 10G): the fabric
    // must stay within a small factor of the largest drawn flow's bare
    // 10G serialization time, and the median must not be inflated by
    // queueing delay. The bounds are per workload because the
    // serialization floor is: the smoke Web mix tops out near 3 MB
    // (2.4 ms at 10G), the Hadoop mix near 40 MB (~30 ms).
    let (median_cap, p99_cap) = if hadoop { (2.0, 60.0) } else { (1.0, 10.0) };
    ExperimentSpec {
        name: name.into(),
        horizon_us: p.ms * 1_000,
        seeds: vec![p.seed],
        engines: with_fabric(transports(protos)),
        topology: TopoSpec {
            kind: TopoKind::TwoTier,
            two_tier_factor: p.factor,
            kary_k: p.k,
        },
        scenario: ScenarioKind::Mix {
            dist,
            n_flows,
            node_gap: SimDuration::from_micros(gap_us),
        },
        failures: FailureSchedule::new(),
        stats: StatsMode::Table,
        admit_window_us: DEFAULT_ADMIT_WINDOW_US,
        reach_us: None,
        threads: None,
        checks: if p.smoke {
            Checks {
                complete: CompleteScope::Fabric,
                some_complete: true,
                zero_drops: true,
                fct_median_ms_max: Some(median_cap),
                fct_p99_ms_max: Some(p99_cap),
                ..Checks::default()
            }
        } else {
            Checks {
                zero_drops: true,
                ..Checks::default()
            }
        },
    }
}

/// Fig 10(c): `backends`-to-1 incast of 450 KB responses; first/last
/// FCT measures performance and fairness. One spec per backend count —
/// the binaries sweep by calling this repeatedly.
pub fn fig10c(p: Fig10Params, backends: usize, response_bytes: u64) -> ExperimentSpec {
    let protos: &[Protocol] = if p.smoke {
        &[Protocol::Dctcp, Protocol::Stardust]
    } else {
        &[Protocol::Mptcp, Protocol::Dctcp, Protocol::Stardust]
    };
    ExperimentSpec {
        name: "fig10c-incast".into(),
        horizon_us: p.ms * 1_000,
        seeds: vec![p.seed],
        engines: with_fabric(transports(protos)),
        topology: TopoSpec {
            kind: TopoKind::TwoTier,
            two_tier_factor: p.factor,
            kary_k: p.k,
        },
        scenario: ScenarioKind::Incast {
            backends,
            response_bytes,
        },
        failures: FailureSchedule::new(),
        stats: StatsMode::Table,
        admit_window_us: DEFAULT_ADMIT_WINDOW_US,
        reach_us: None,
        threads: None,
        checks: if p.smoke {
            Checks {
                complete: CompleteScope::All,
                zero_drops: true,
                last_first_ratio_max: Some(1.5),
                ..Checks::default()
            }
        } else {
            Checks {
                zero_drops: true,
                ..Checks::default()
            }
        },
    }
}

/// Appendix-E-style failure storm against a finite-flow FCT workload:
/// a Web mix at high load on the cell fabric, sequential **and**
/// sharded, with the reach protocol running live. The storm is
/// correlated churn across three FAs' uplinks — two hard failures, one
/// gray link degrading above the §5.10 faulty-BER threshold — all
/// restored/cleared before 70% of the horizon. The spec gates on the
/// churn metrics (loss window, reconvergence time after the last
/// event) plus the sharded run staying bit-identical to the sequential
/// one through the whole storm.
pub fn failure_churn(factor: u32, ms: u64, seed: u64, shards: u32) -> ExperimentSpec {
    ExperimentSpec {
        name: "failure-churn-web-mix".into(),
        horizon_us: ms * 1_000,
        seeds: vec![seed],
        engines: vec![
            EngineSpec::Fabric {
                core: CoreChoice::Calendar,
            },
            EngineSpec::Sharded {
                shards,
                core: CoreChoice::Calendar,
            },
        ],
        topology: TopoSpec {
            kind: TopoKind::TwoTier,
            two_tier_factor: factor,
            kary_k: 4,
        },
        scenario: ScenarioKind::Mix {
            dist: FlowSizeDist::fb_web(),
            n_flows: 160,
            node_gap: SimDuration::from_micros(400),
        },
        // The storm scales with the horizon so any `ms` keeps every
        // event inside it: one FA-0 uplink fails at 10%, an FA-1 uplink
        // at 15% (correlated second failure), an FA-2 uplink goes gray
        // at 20% (4% BER — above the faulty threshold, so its
        // reachability cells carry the faulty mark); everything heals
        // by 60%. No FA ever loses both uplinks, so the fabric stays
        // connected throughout.
        failures: FailureSchedule::new()
            .fail_at(SimTime::from_micros(ms * 100), LinkId(0))
            .fail_at(SimTime::from_micros(ms * 150), LinkId(2))
            .degrade_at(SimTime::from_micros(ms * 200), LinkId(4), 40_000)
            .restore_at(SimTime::from_micros(ms * 500), LinkId(0))
            .restore_at(SimTime::from_micros(ms * 550), LinkId(2))
            .degrade_at(SimTime::from_micros(ms * 600), LinkId(4), 0),
        stats: StatsMode::Table,
        admit_window_us: DEFAULT_ADMIT_WINDOW_US,
        // The reach protocol runs live (10 µs adverts) so failures are
        // detected, excluded and revived by the protocol itself — the
        // convergence gate below is what makes this spec a protocol
        // test, not just a drop counter.
        reach_us: Some(10),
        threads: None,
        checks: Checks {
            // Packets caught in flight during reconvergence may be
            // discarded (Appendix E measures exactly that), so full
            // completion is not required — per-engine agreement is.
            some_complete: true,
            sharded_identical: true,
            // Loss may span the whole storm (the gray link drops cells
            // until it clears at 60%), but must not outlive it by more
            // than the detection bound.
            max_loss_window_us: Some((ms * 550) as f64),
            // After the last event the tables must settle within a few
            // advert intervals — reconvergence is protocol-speed, not
            // horizon-speed, at any `ms`.
            max_convergence_us: Some(500.0),
            ..Checks::default()
        },
    }
}

/// Long-horizon multi-tenant service workload on the cell fabric in
/// bounded-memory mode: a diurnally-thinned Web/Hadoop request mix, a
/// background round-robin shuffle and a rotating periodic incast, all
/// admitted in streaming windows (`stats = "sketch"` — no per-flow
/// tables anywhere). Sequential **and** sharded engines run it; the
/// `sharded_identical` gate requires their sketch books to merge
/// bit-identically.
pub fn service(
    factor: u32,
    n_flows: usize,
    ms: u64,
    seed: u64,
    shards: u32,
    node_gap_us: u64,
    diurnal_period_us: u64,
) -> ExperimentSpec {
    ExperimentSpec {
        name: "service-diurnal-mix".into(),
        horizon_us: ms * 1_000,
        seeds: vec![seed],
        engines: vec![
            EngineSpec::Fabric {
                core: CoreChoice::Calendar,
            },
            EngineSpec::Sharded {
                shards,
                core: CoreChoice::Calendar,
            },
        ],
        topology: TopoSpec {
            kind: TopoKind::TwoTier,
            two_tier_factor: factor,
            kary_k: 4,
        },
        scenario: ScenarioKind::Service {
            n_flows,
            node_gap: SimDuration::from_micros(node_gap_us),
            // A thin Hadoop slice: enough to exercise the second size
            // distribution without its 100 MB tail dominating the run.
            hadoop_share: 0.05,
            diurnal_period: SimDuration::from_micros(diurnal_period_us),
            diurnal_min: 0.3,
            shuffle_bytes: 40_000,
            shuffle_period: SimDuration::from_micros(300),
            incast_backends: 6,
            incast_bytes: 40_000,
            incast_period: SimDuration::from_micros(900),
        },
        failures: FailureSchedule::new(),
        stats: StatsMode::Sketch,
        admit_window_us: DEFAULT_ADMIT_WINDOW_US,
        reach_us: None,
        threads: None,
        checks: Checks {
            // Streaming stops admitting at the horizon, so the stream's
            // tail (and the heavy Hadoop flows) legitimately stay
            // unfinished — gate on progress + losslessness + the
            // sketch-merge bit-identity instead of full completion.
            some_complete: true,
            zero_drops: true,
            sharded_identical: true,
            ..Checks::default()
        },
    }
}

/// A topology-zoo CI gate: the fig10a-style permutation on a zoo fabric,
/// driven by the sequential engine on both event cores plus 2- and
/// 4-way sharding, gated on completion, losslessness and sharded
/// bit-identity. The route-plan layer is what makes the same spec
/// machinery run unmodified on Clos and non-Clos fabrics alike.
pub fn zoo(name: &str, kind: TopoKind) -> ExperimentSpec {
    ExperimentSpec {
        name: name.into(),
        horizon_us: 50_000,
        seeds: vec![42],
        engines: vec![
            EngineSpec::Fabric {
                core: CoreChoice::Calendar,
            },
            EngineSpec::Fabric {
                core: CoreChoice::Heap,
            },
            EngineSpec::Sharded {
                shards: 2,
                core: CoreChoice::Calendar,
            },
            EngineSpec::Sharded {
                shards: 4,
                core: CoreChoice::Calendar,
            },
        ],
        topology: TopoSpec {
            kind,
            two_tier_factor: 16,
            kary_k: 4,
        },
        scenario: ScenarioKind::Permutation {
            flow_bytes: 500_000,
        },
        failures: FailureSchedule::new(),
        stats: StatsMode::Table,
        admit_window_us: DEFAULT_ADMIT_WINDOW_US,
        reach_us: None,
        threads: None,
        checks: Checks {
            complete: CompleteScope::Fabric,
            zero_drops: true,
            sharded_identical: true,
            ..Checks::default()
        },
    }
}

/// The three zoo topologies the CI smoke set covers, with their preset
/// stems — shared by [`ci_smoke`] and the docs/CI tables.
pub fn zoo_kinds() -> Vec<(&'static str, TopoKind)> {
    vec![
        ("zoo_dragonfly", TopoKind::Dragonfly { a: 4, h: 1, p: 1 }),
        (
            "zoo_space_shuffle",
            TopoKind::SpaceShuffle {
                switches: 16,
                spaces: 3,
                fas_per_switch: 1,
            },
        ),
        (
            "zoo_expander",
            TopoKind::Expander {
                switches: 16,
                degree: 4,
                fas_per_switch: 1,
            },
        ),
    ]
}

/// The CI smoke set: what `stardust run specs/ci_smoke` executes — the
/// three fig10 gates plus the failure-schedule gate. Returned as
/// `(file_stem, spec)` pairs; the files under `specs/ci_smoke/` are
/// these specs rendered by [`ExperimentSpec::to_text`] (pinned by a
/// test).
pub fn ci_smoke() -> Vec<(&'static str, ExperimentSpec)> {
    let mut v = vec![
        ("fig10a", fig10a(Fig10Params::smoke(50), 500_000)),
        ("fig10b", fig10b(Fig10Params::smoke(100), 50, 800, false)),
        ("fig10c_05", fig10c(Fig10Params::smoke(100), 5, 450_000)),
        ("fig10c_10", fig10c(Fig10Params::smoke(100), 10, 450_000)),
        ("fig10c_15", fig10c(Fig10Params::smoke(100), 15, 450_000)),
        ("failure_churn", failure_churn(16, 20, 42, 2)),
        // ~800 streamed flows over 40 ms: small enough for CI, long
        // enough to cover several diurnal/shuffle/incast periods.
        ("service", service(16, 800, 40, 42, 2, 300, 10_000)),
    ];
    for (stem, kind) in zoo_kinds() {
        v.push((stem, zoo(stem, kind)));
    }
    v
}

/// Look up a preset by its CI-set stem (plus the non-smoke fig10
/// defaults under their figure names).
pub fn by_name(name: &str) -> Option<ExperimentSpec> {
    if let Some((_, spec)) = ci_smoke().into_iter().find(|(stem, _)| *stem == name) {
        return Some(spec);
    }
    let default = Fig10Params {
        k: 8,
        factor: 2,
        ms: 0,
        seed: 42,
        smoke: false,
    };
    match name {
        "fig10a_default" => Some(fig10a(Fig10Params { ms: 100, ..default }, 2_500_000)),
        "fig10b_default" => Some(fig10b(Fig10Params { ms: 200, ..default }, 200, 800, false)),
        "fig10c_default" => Some(fig10c(Fig10Params { ms: 400, ..default }, 50, 450_000)),
        "failure_churn_default" => Some(failure_churn(16, 40, 42, 4)),
        // The streaming-scale acceptance run: one million flows drawn
        // lazily, admitted in 1 ms windows, accounted in sketches —
        // peak memory stays flat while the flow count grows 1000×.
        "service_default" => Some(service(16, 1_000_000, 20_000, 42, 4, 200, 2_000_000)),
        _ => None,
    }
}

/// Every name [`by_name`] resolves.
pub fn names() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = ci_smoke().iter().map(|(stem, _)| *stem).collect();
    v.extend([
        "fig10a_default",
        "fig10b_default",
        "fig10c_default",
        "failure_churn_default",
        "service_default",
    ]);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_round_trips_through_toml() {
        for (stem, spec) in ci_smoke() {
            let text = spec.to_text();
            let again = ExperimentSpec::parse(&text)
                .unwrap_or_else(|e| panic!("{stem}: formatted preset failed to parse: {e}"));
            assert_eq!(spec, again, "{stem}: round trip changed the spec");
        }
        for name in names() {
            let spec = by_name(name).expect(name);
            assert_eq!(
                ExperimentSpec::parse(&spec.to_text()).unwrap(),
                spec,
                "{name} round trip"
            );
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn smoke_presets_carry_the_ci_gates() {
        let (_, a) = &ci_smoke()[0];
        assert_eq!(a.checks.complete, CompleteScope::Stardust);
        assert!(a.checks.zero_drops);
        assert_eq!(a.checks.min_goodput_gbps, Some(5.0));
        let b = by_name("fig10b").unwrap();
        assert_eq!(b.checks.fct_median_ms_max, Some(1.0));
        assert_eq!(b.checks.fct_p99_ms_max, Some(10.0));
        let c = by_name("fig10c_10").unwrap();
        assert_eq!(c.checks.last_first_ratio_max, Some(1.5));
        assert_eq!(c.checks.complete, CompleteScope::All);
        let churn = by_name("failure_churn").unwrap();
        assert!(churn.checks.sharded_identical);
        assert_eq!(churn.failures.events().len(), 6);
        assert!(churn
            .failures
            .events()
            .iter()
            .all(|e| e.at < churn.horizon()));
        churn.failures.validate().expect("storm must be coherent");
        assert_eq!(churn.reach_us, Some(10));
        assert!(churn.checks.max_loss_window_us.is_some());
        assert_eq!(churn.checks.max_convergence_us, Some(500.0));
        let svc = by_name("service").unwrap();
        assert_eq!(svc.stats, StatsMode::Sketch);
        assert!(svc.checks.sharded_identical && svc.checks.zero_drops);
        let big = by_name("service_default").unwrap();
        assert_eq!(big.stats, StatsMode::Sketch);
        assert!(matches!(
            big.scenario,
            ScenarioKind::Service {
                n_flows: 1_000_000,
                ..
            }
        ));
    }
}
