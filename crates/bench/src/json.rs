//! A hand-rolled JSON emitter (the workspace builds with no crates.io
//! access), used for machine-readable experiment and benchmark output —
//! the `BENCH_*.json` trajectory files CI archives.
//!
//! Emit-only: the pipeline writes JSON for external tooling to read;
//! nothing in the workspace needs to parse it back.

use std::fmt::Write as _;

/// A JSON value tree. Object keys keep insertion order, so emitted files
//  are stable run to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Non-finite values emit as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Serialize compactly (no insignificant whitespace, `", "` and
    /// `": "` separators for light human readability).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            _ => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::Obj(vec![
            ("name".into(), Json::str("fig2")),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "points".into(),
                Json::Arr(vec![
                    Json::Obj(vec![
                        ("fas".into(), Json::num(64u32)),
                        ("eps".into(), Json::Num(2.5e6)),
                    ]),
                    Json::Num(1.5),
                ]),
            ),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name": "fig2", "ok": true, "none": null, "points": [{"fas": 64, "eps": 2500000}, 1.5]}"#
        );
    }

    #[test]
    fn integral_floats_render_without_decimal() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(-0.25).render(), "-0.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }
}
