//! Declarative experiment specs — the management plane of the
//! evaluation matrix.
//!
//! An [`ExperimentSpec`] names everything one experiment needs:
//! topology preset + scale, the engines to drive (sequential fabric,
//! sharded fabric with a shard count and event core, or a fat-tree
//! transport protocol), the workload [`ScenarioKind`], a
//! [`FailureSchedule`] of timed link fail/restore events, the horizon,
//! the seeds, and the pass/fail [`Checks`] CI gates on. The
//! [`runner`](crate::runner) expands it into the run matrix
//! (engines × seeds) over the generic
//! [`FlowEngine`](stardust_workload::FlowEngine) surface.
//!
//! Specs parse from the TOML subset of [`crate::toml`] (see `specs/` at
//! the repo root) and format back losslessly — `parse ∘ format ∘ parse`
//! is pinned by tests. The shape:
//!
//! ```toml
//! [experiment]
//! name = "fig10b-web-mix"
//! horizon_us = 100000
//! seeds = [42]
//! engines = ["transport:dctcp", "transport:stardust", "fabric"]
//! stats = "table"       # table | sketch (bounded memory, streamed)
//! admit_window_us = 1000
//! reach_us = 10         # run the reach protocol at this interval
//!                       # (omit for static, pre-converged tables)
//!
//! [topology]
//! two_tier_factor = 16
//! kary_k = 4
//!
//! [scenario]
//! kind = "mix"          # permutation | incast | mix | shuffle | service
//! dist = "web"          # web | hadoop
//! flows = 50
//! node_gap_us = 800
//!
//! [checks]
//! complete = "fabric"   # none | fabric | stardust | all
//! zero_drops = true
//! fct_p99_ms_max = 10.0
//! max_loss_window_us = 500.0    # storm gates: cap on first→last loss
//! max_convergence_us = 200.0    # … and on last event → last table change
//!
//! [[failure]]
//! at_us = 2000
//! link = 0
//! action = "fail"       # fail | restore | degrade
//! # degrade entries carry an extra `ppm = 40000` error-rate key
//! ```

use crate::toml::{self, Table, Value};
use stardust_sim::{SimDuration, SimTime};
use stardust_topo::LinkId;
use stardust_transport::Protocol;
use stardust_workload::{FailureSchedule, FlowSizeDist, LinkAction, ScenarioKind};
use std::fmt;

/// A spec-layer error (parse or validation), with context.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl From<toml::TomlError> for SpecError {
    fn from(e: toml::TomlError) -> Self {
        SpecError(e.to_string())
    }
}

fn bad<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// Which event core a fabric engine runs on (see `stardust-sim`'s
/// `CalendarCore` / `HeapCore`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreChoice {
    /// The bucketed calendar queue (the default, faster core).
    #[default]
    Calendar,
    /// The binary-heap core (kept for differential testing).
    Heap,
}

impl CoreChoice {
    fn parse(s: &str) -> Result<Self, SpecError> {
        match s {
            "calendar" => Ok(CoreChoice::Calendar),
            "heap" => Ok(CoreChoice::Heap),
            other => bad(format!("unknown event core {other:?} (calendar | heap)")),
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            CoreChoice::Calendar => "calendar",
            CoreChoice::Heap => "heap",
        }
    }
}

/// One engine of a spec's run matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSpec {
    /// The sequential cell-accurate fabric engine.
    Fabric {
        /// Event core to run on.
        core: CoreChoice,
    },
    /// The sharded fabric engine (bit-identical to sequential).
    Sharded {
        /// Shard (thread) count, ≥ 1.
        shards: u32,
        /// Event core to run on.
        core: CoreChoice,
    },
    /// The §6.3 fat-tree transport simulator under one protocol.
    Transport {
        /// The transport protocol every offered flow uses.
        proto: Protocol,
    },
}

impl EngineSpec {
    /// Parse the spec-file syntax: `fabric[:core]`, `sharded:N[:core]`,
    /// `transport:PROTO`.
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let mut parts = s.split(':');
        let kind = parts.next().unwrap_or_default();
        let rest: Vec<&str> = parts.collect();
        match (kind, rest.as_slice()) {
            ("fabric", []) => Ok(EngineSpec::Fabric {
                core: CoreChoice::default(),
            }),
            ("fabric", [core]) => Ok(EngineSpec::Fabric {
                core: CoreChoice::parse(core)?,
            }),
            ("sharded", [n]) | ("sharded", [n, _]) => {
                let shards: u32 = n
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| SpecError(format!("bad shard count in {s:?}")))?;
                let core = match rest.as_slice() {
                    [_, core] => CoreChoice::parse(core)?,
                    _ => CoreChoice::default(),
                };
                Ok(EngineSpec::Sharded { shards, core })
            }
            ("transport", [proto]) => Ok(EngineSpec::Transport {
                proto: parse_proto(proto)?,
            }),
            _ => bad(format!(
                "unknown engine {s:?} (fabric[:core] | sharded:N[:core] | transport:proto)"
            )),
        }
    }

    /// The spec-file syntax this parses back from.
    pub fn to_spec_string(self) -> String {
        match self {
            EngineSpec::Fabric {
                core: CoreChoice::Calendar,
            } => "fabric".into(),
            EngineSpec::Fabric { core } => format!("fabric:{}", core.as_str()),
            EngineSpec::Sharded {
                shards,
                core: CoreChoice::Calendar,
            } => format!("sharded:{shards}"),
            EngineSpec::Sharded { shards, core } => {
                format!("sharded:{shards}:{}", core.as_str())
            }
            EngineSpec::Transport { proto } => {
                format!("transport:{}", proto.label().to_ascii_lowercase())
            }
        }
    }

    /// Column label in printed and JSON output.
    pub fn label(self) -> String {
        match self {
            EngineSpec::Fabric {
                core: CoreChoice::Calendar,
            } => crate::fig10::FABRIC_LABEL.to_string(),
            EngineSpec::Fabric { core } => {
                format!("{}:{}", crate::fig10::FABRIC_LABEL, core.as_str())
            }
            EngineSpec::Sharded { shards, core } => {
                let base = format!("{}/{shards}sh", crate::fig10::FABRIC_LABEL);
                match core {
                    CoreChoice::Calendar => base,
                    CoreChoice::Heap => format!("{base}:heap"),
                }
            }
            EngineSpec::Transport { proto } => proto.label().to_string(),
        }
    }

    /// Whether this is a fabric-family engine (cell-accurate model,
    /// supports link failure and drop accounting).
    pub fn is_fabric(self) -> bool {
        !matches!(self, EngineSpec::Transport { .. })
    }
}

fn parse_proto(s: &str) -> Result<Protocol, SpecError> {
    match s.to_ascii_lowercase().as_str() {
        "tcp" => Ok(Protocol::Tcp),
        "dctcp" => Ok(Protocol::Dctcp),
        "mptcp" => Ok(Protocol::Mptcp),
        "dcqcn" => Ok(Protocol::Dcqcn),
        "stardust" => Ok(Protocol::Stardust),
        other => bad(format!("unknown transport protocol {other:?}")),
    }
}

/// How a run keeps its FCT accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StatsMode {
    /// Exact per-flow record tables (the default). Memory grows with
    /// the offered flow count.
    #[default]
    Table,
    /// Bounded memory: flows are admitted in streaming windows
    /// ([`Scenario::run_streamed`](stardust_workload::Scenario::run_streamed)),
    /// fabric engines run with `FabricConfig::bounded_flows`, and every
    /// run reports counts + a mergeable quantile sketch instead of
    /// per-flow records. Required for million-flow scenarios.
    Sketch,
}

impl StatsMode {
    fn parse(s: &str) -> Result<Self, SpecError> {
        match s {
            "table" => Ok(StatsMode::Table),
            "sketch" => Ok(StatsMode::Sketch),
            other => bad(format!("unknown stats mode {other:?} (table | sketch)")),
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            StatsMode::Table => "table",
            StatsMode::Sketch => "sketch",
        }
    }
}

/// Which fabric the fabric-family engines run — the route-plan layer
/// makes every kind interchangeable under the same scenarios, failure
/// schedules and checks. The default is the paper's §6.2-style two-tier
/// Clos (scaled by `two_tier_factor`); the "topology zoo" kinds swap in
/// structurally different fabrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopoKind {
    /// `1/two_tier_factor`-scale §6.2 two-tier folded Clos.
    #[default]
    TwoTier,
    /// The compact three-tier folded Clos (16 FAs, 8+8+4 FEs).
    ThreeTier,
    /// The §6.1.2 single-tier chassis (24 FAs, 12 FEs).
    SingleTier,
    /// Balanced dragonfly: groups of `a` fully-meshed routers, `h`
    /// global links per router, `p` FAs per router, `g = a·h + 1`.
    Dragonfly {
        /// Routers per group.
        a: u32,
        /// Global links per router.
        h: u32,
        /// FAs per router.
        p: u32,
    },
    /// Space Shuffle (arXiv:1405.4697): seeded ring coordinate spaces
    /// with greedy next-hop candidate sets.
    SpaceShuffle {
        /// Switch count (≥ 3).
        switches: u32,
        /// Independent ring spaces.
        spaces: u32,
        /// FAs per switch.
        fas_per_switch: u32,
    },
    /// Random regular expander from seeded superposed Hamiltonian cycles.
    Expander {
        /// Switch count (≥ 3).
        switches: u32,
        /// Switch degree (even, < switches).
        degree: u32,
        /// FAs per switch.
        fas_per_switch: u32,
    },
}

impl TopoKind {
    /// The `[topology] kind` string this renders to / parses from.
    pub fn as_spec_str(self) -> &'static str {
        match self {
            TopoKind::TwoTier => "two_tier",
            TopoKind::ThreeTier => "three_tier",
            TopoKind::SingleTier => "single_tier",
            TopoKind::Dragonfly { .. } => "dragonfly",
            TopoKind::SpaceShuffle { .. } => "space_shuffle",
            TopoKind::Expander { .. } => "expander",
        }
    }
}

/// Every key `[topology]` accepts, with the kind (if any) that key
/// belongs to. One table drives unknown-key errors, wrong-kind errors
/// and rendering, so they cannot drift apart.
const TOPOLOGY_KEYS: [(&str, Option<&str>); 12] = [
    ("kind", None),
    ("two_tier_factor", None),
    ("kary_k", None),
    ("dragonfly_a", Some("dragonfly")),
    ("dragonfly_h", Some("dragonfly")),
    ("dragonfly_p", Some("dragonfly")),
    ("ss_switches", Some("space_shuffle")),
    ("ss_spaces", Some("space_shuffle")),
    ("ss_fas_per_switch", Some("space_shuffle")),
    ("exp_switches", Some("expander")),
    ("exp_degree", Some("expander")),
    ("exp_fas_per_switch", Some("expander")),
];

/// Topology presets for the two engine families: the fabric engines run
/// the fabric described by [`TopoKind`], the transport engines a §6.3
/// k-ary fat-tree (k³/4 hosts, 10G links). Both are present so one spec
/// can land the same workload on the paper's comparison network and on
/// the Stardust fabric proper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoSpec {
    /// Which fabric the fabric-family engines run.
    pub kind: TopoKind,
    /// Divisor of the paper's two-tier population (16 → 16 FAs).
    pub two_tier_factor: u32,
    /// Fat-tree arity (4 → 16 hosts).
    pub kary_k: u32,
}

impl TopoSpec {
    /// Parse the `[topology]` section. Unknown keys, kind/parameter
    /// mismatches and out-of-range parameters each get a distinct,
    /// actionable error.
    pub fn from_table(t: &Table) -> Result<Self, SpecError> {
        for key in t.keys() {
            if !TOPOLOGY_KEYS.iter().any(|(k, _)| k == key) {
                let expected: Vec<&str> = TOPOLOGY_KEYS.iter().map(|(k, _)| *k).collect();
                return bad(format!(
                    "unknown [topology] key {key:?} (expected one of: {})",
                    expected.join(", ")
                ));
            }
        }
        let kind_name = match t.get("kind") {
            Some(v) => v
                .as_str()
                .ok_or_else(|| SpecError("[topology] kind must be a string".into()))?,
            None => "two_tier",
        };
        for (key, owner) in TOPOLOGY_KEYS {
            if let Some(owner) = owner {
                if t.get(key).is_some() && owner != kind_name {
                    return bad(format!(
                        "[topology] key {key:?} requires kind = {owner:?} \
                         (this spec has kind = {kind_name:?})"
                    ));
                }
            }
        }
        let opt = |key: &str, default: u32| -> Result<u32, SpecError> {
            match t.get(key) {
                Some(_) => get_u64(t, "topology", key).map(|n| n as u32),
                None => Ok(default),
            }
        };
        let kind = match kind_name {
            "two_tier" => TopoKind::TwoTier,
            "three_tier" => TopoKind::ThreeTier,
            "single_tier" => TopoKind::SingleTier,
            "dragonfly" => {
                let k = TopoKind::Dragonfly {
                    a: opt("dragonfly_a", 4)?,
                    h: opt("dragonfly_h", 1)?,
                    p: opt("dragonfly_p", 1)?,
                };
                let TopoKind::Dragonfly { a, h, p } = k else {
                    unreachable!()
                };
                if a == 0 || h == 0 || p == 0 {
                    return bad(
                        "[topology] dragonfly_a, dragonfly_h and dragonfly_p must all be ≥ 1",
                    );
                }
                k
            }
            "space_shuffle" => {
                let switches = opt("ss_switches", 16)?;
                let spaces = opt("ss_spaces", 3)?;
                let fas_per_switch = opt("ss_fas_per_switch", 1)?;
                if switches < 3 {
                    return bad("[topology] ss_switches must be ≥ 3 (a ring needs a triangle)");
                }
                if spaces == 0 || fas_per_switch == 0 {
                    return bad("[topology] ss_spaces and ss_fas_per_switch must be ≥ 1");
                }
                TopoKind::SpaceShuffle {
                    switches,
                    spaces,
                    fas_per_switch,
                }
            }
            "expander" => {
                let switches = opt("exp_switches", 16)?;
                let degree = opt("exp_degree", 4)?;
                let fas_per_switch = opt("exp_fas_per_switch", 1)?;
                if switches < 3 {
                    return bad("[topology] exp_switches must be ≥ 3");
                }
                if degree == 0 || degree % 2 != 0 {
                    return bad(format!(
                        "[topology] exp_degree must be a positive even number \
                         (superposed Hamiltonian cycles add 2 each), got {degree}"
                    ));
                }
                if degree >= switches {
                    return bad(format!(
                        "[topology] exp_degree ({degree}) must be below exp_switches ({switches})"
                    ));
                }
                if fas_per_switch == 0 {
                    return bad("[topology] exp_fas_per_switch must be ≥ 1");
                }
                TopoKind::Expander {
                    switches,
                    degree,
                    fas_per_switch,
                }
            }
            other => {
                return bad(format!(
                    "unknown topology kind {other:?} (two_tier | three_tier | \
                     single_tier | dragonfly | space_shuffle | expander)"
                ))
            }
        };
        let spec = TopoSpec {
            kind,
            two_tier_factor: get_u64(t, "topology", "two_tier_factor")? as u32,
            kary_k: get_u64(t, "topology", "kary_k")? as u32,
        };
        if spec.two_tier_factor == 0 || spec.kary_k == 0 {
            return bad("[topology] factors must be positive");
        }
        Ok(spec)
    }

    /// Render back to a `[topology]` table (defaulted kind omitted, so
    /// pre-zoo spec files round-trip unchanged).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new();
        if self.kind != TopoKind::default() {
            t.insert("kind".into(), Value::Str(self.kind.as_spec_str().into()));
        }
        t.insert(
            "two_tier_factor".into(),
            Value::Int(self.two_tier_factor as i64),
        );
        t.insert("kary_k".into(), Value::Int(self.kary_k as i64));
        match self.kind {
            TopoKind::TwoTier | TopoKind::ThreeTier | TopoKind::SingleTier => {}
            TopoKind::Dragonfly { a, h, p } => {
                t.insert("dragonfly_a".into(), Value::Int(a as i64));
                t.insert("dragonfly_h".into(), Value::Int(h as i64));
                t.insert("dragonfly_p".into(), Value::Int(p as i64));
            }
            TopoKind::SpaceShuffle {
                switches,
                spaces,
                fas_per_switch,
            } => {
                t.insert("ss_switches".into(), Value::Int(switches as i64));
                t.insert("ss_spaces".into(), Value::Int(spaces as i64));
                t.insert(
                    "ss_fas_per_switch".into(),
                    Value::Int(fas_per_switch as i64),
                );
            }
            TopoKind::Expander {
                switches,
                degree,
                fas_per_switch,
            } => {
                t.insert("exp_switches".into(), Value::Int(switches as i64));
                t.insert("exp_degree".into(), Value::Int(degree as i64));
                t.insert(
                    "exp_fas_per_switch".into(),
                    Value::Int(fas_per_switch as i64),
                );
            }
        }
        t
    }

    /// Fabric Adapter population of [`Self::build_fabric`] — one source
    /// of truth with the builders, so backend clamps and printed
    /// populations can never drift from the topology actually built.
    pub fn fabric_endpoints(&self) -> usize {
        match self.kind {
            TopoKind::TwoTier => crate::fig10::fabric_fas(self.two_tier_factor),
            TopoKind::ThreeTier => stardust_topo::ThreeTierParams::small().num_fa as usize,
            TopoKind::SingleTier => stardust_topo::SingleTierParams::paper_6_1().num_fa as usize,
            TopoKind::Dragonfly { a, h, p } => ((a * h + 1) * a * p) as usize,
            TopoKind::SpaceShuffle {
                switches,
                fas_per_switch,
                ..
            }
            | TopoKind::Expander {
                switches,
                fas_per_switch,
                ..
            } => (switches * fas_per_switch) as usize,
        }
    }

    /// Build the fabric topology plus its route plan. `seed` feeds the
    /// randomized builders (Space Shuffle rings, expander cycles), so
    /// each spec seed draws its own wiring — the deterministic builders
    /// ignore it.
    pub fn build_fabric(&self, seed: u64) -> stardust_topo::Built {
        use stardust_topo::TopologyBuilder as _;
        match self.kind {
            TopoKind::TwoTier => {
                stardust_topo::TwoTierParams::paper_scaled(self.two_tier_factor).build_fabric()
            }
            TopoKind::ThreeTier => stardust_topo::ThreeTierParams::small().build_fabric(),
            TopoKind::SingleTier => stardust_topo::SingleTierParams::paper_6_1().build_fabric(),
            TopoKind::Dragonfly { a, h, p } => {
                let mut params = stardust_topo::DragonflyParams::zoo();
                params.routers_per_group = a;
                params.globals_per_router = h;
                params.fas_per_router = p;
                params.build_fabric()
            }
            TopoKind::SpaceShuffle {
                switches,
                spaces,
                fas_per_switch,
            } => {
                let mut params = stardust_topo::SpaceShuffleParams::zoo(seed);
                params.switches = switches;
                params.spaces = spaces;
                params.fas_per_switch = fas_per_switch;
                params.build_fabric()
            }
            TopoKind::Expander {
                switches,
                degree,
                fas_per_switch,
            } => {
                let mut params = stardust_topo::ExpanderParams::zoo(seed);
                params.switches = switches;
                params.degree = degree;
                params.fas_per_switch = fas_per_switch;
                params.build_fabric()
            }
        }
    }
}

/// Which runs a completion gate covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompleteScope {
    /// No completion requirement.
    #[default]
    None,
    /// Every fabric-family run must finish all flows.
    Fabric,
    /// Fabric-family runs plus `transport:stardust` must finish all.
    Stardust,
    /// Every run must finish all flows.
    All,
}

impl CompleteScope {
    fn parse(s: &str) -> Result<Self, SpecError> {
        match s {
            "none" => Ok(CompleteScope::None),
            "fabric" => Ok(CompleteScope::Fabric),
            "stardust" => Ok(CompleteScope::Stardust),
            "all" => Ok(CompleteScope::All),
            other => bad(format!(
                "unknown complete scope {other:?} (none | fabric | stardust | all)"
            )),
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            CompleteScope::None => "none",
            CompleteScope::Fabric => "fabric",
            CompleteScope::Stardust => "stardust",
            CompleteScope::All => "all",
        }
    }
}

/// Pass/fail gates evaluated over a spec's finished run matrix — the
/// machine-readable form of what the fig10 `--smoke` binaries used to
/// hard-code.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Checks {
    /// Completion requirement (see [`CompleteScope`]).
    pub complete: CompleteScope,
    /// Every run must complete at least one flow.
    pub some_complete: bool,
    /// Fabric-family runs must drop zero cells (the paper's
    /// losslessness claim).
    pub zero_drops: bool,
    /// Cap on fabric p99 FCT, in milliseconds.
    pub fct_p99_ms_max: Option<f64>,
    /// Cap on fabric median FCT, in milliseconds.
    pub fct_median_ms_max: Option<f64>,
    /// Floor on the slowest completed fabric flow's goodput, in Gbps.
    pub min_goodput_gbps: Option<f64>,
    /// Cap on fabric last/first FCT ratio (incast fairness).
    pub last_first_ratio_max: Option<f64>,
    /// All fabric-family runs of one seed must produce bit-identical
    /// `FlowStats` (the sharded-conformance gate as a spec line).
    pub sharded_identical: bool,
    /// Cap on each fabric run's loss window (first lost cell → last
    /// lost cell), in microseconds. A run with no loss passes.
    pub max_loss_window_us: Option<f64>,
    /// Cap on each fabric run's convergence time (last link event →
    /// last reach-table change), in microseconds. Requires the reach
    /// protocol (`reach_us`); a run whose schedule applied link events
    /// but whose tables never settled after them fails the gate.
    pub max_convergence_us: Option<f64>,
}

impl Checks {
    /// Whether no gate is configured.
    pub fn is_empty(&self) -> bool {
        *self == Checks::default()
    }
}

/// One declarative experiment: everything the runner needs to expand
/// and drive the engines × seeds matrix. See the module docs for the
/// file format.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name; also names the [`Scenario`] (and thereby salts
    /// its flow-list RNG).
    ///
    /// [`Scenario`]: stardust_workload::Scenario
    pub name: String,
    /// Simulated horizon, in microseconds.
    pub horizon_us: u64,
    /// Master seeds; the matrix runs every engine under every seed.
    pub seeds: Vec<u64>,
    /// Engines to drive.
    pub engines: Vec<EngineSpec>,
    /// Topology presets (see [`TopoSpec`]).
    pub topology: TopoSpec,
    /// The workload pattern.
    pub scenario: ScenarioKind,
    /// Timed link fail/restore events (applied to engines that model
    /// link state; reported as skipped on those that don't).
    pub failures: FailureSchedule,
    /// FCT accounting mode (see [`StatsMode`]).
    pub stats: StatsMode,
    /// Streaming admission window in microseconds (sketch mode only):
    /// flows are offered at most this far ahead of the engine clock.
    pub admit_window_us: u64,
    /// Reach-protocol advertisement interval in microseconds for
    /// fabric-family engines; `None` runs static, pre-converged tables.
    /// Required for convergence-time gates to be meaningful.
    pub reach_us: Option<u64>,
    /// OS threads driving each sharded engine (clamped to the shard
    /// count; results are identical at any setting). `None` keeps the
    /// runner's default: one thread per shard when the host has the
    /// cores, inline otherwise. Overridable from the CLI with
    /// `stardust run --threads N`.
    pub threads: Option<u32>,
    /// Pass/fail gates.
    pub checks: Checks,
}

/// Default streaming admission window (µs) when a spec does not set one.
pub const DEFAULT_ADMIT_WINDOW_US: u64 = 1_000;

impl ExperimentSpec {
    /// The horizon as a [`SimTime`].
    pub fn horizon(&self) -> SimTime {
        SimTime::from_micros(self.horizon_us)
    }

    /// The streaming admission window as a [`SimDuration`].
    pub fn admit_window(&self) -> SimDuration {
        SimDuration::from_micros(self.admit_window_us)
    }

    /// The reach-protocol interval, if the spec enables the protocol.
    pub fn reach_interval(&self) -> Option<SimDuration> {
        self.reach_us.map(SimDuration::from_micros)
    }

    /// Parse a spec from TOML text.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        Self::from_table(&toml::parse(text)?)
    }

    /// Parse a spec from an already-parsed TOML document.
    pub fn from_table(doc: &Table) -> Result<Self, SpecError> {
        let exp = get_table(doc, "experiment")?;
        let name = get_str(exp, "experiment", "name")?.to_string();
        if name.is_empty() {
            return bad("[experiment] name must be non-empty");
        }
        let horizon_us = get_u64(exp, "experiment", "horizon_us")?;
        if horizon_us == 0 {
            return bad("[experiment] horizon_us must be positive");
        }
        let seeds = match exp.get("seeds") {
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| {
                    v.as_int()
                        .filter(|&n| n >= 0)
                        .map(|n| n as u64)
                        .ok_or_else(|| SpecError("seeds must be non-negative integers".into()))
                })
                .collect::<Result<Vec<u64>, _>>()?,
            Some(_) => return bad("[experiment] seeds must be an array of integers"),
            None => vec![42],
        };
        if seeds.is_empty() {
            return bad("[experiment] seeds must be non-empty");
        }
        let engines = match exp.get("engines") {
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| {
                    v.as_str()
                        .ok_or_else(|| SpecError("engines must be strings".into()))
                        .and_then(EngineSpec::parse)
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return bad("[experiment] engines must be an array of engine strings"),
        };
        if engines.is_empty() {
            return bad("[experiment] engines must be non-empty");
        }
        let stats = match exp.get("stats") {
            Some(v) => StatsMode::parse(
                v.as_str()
                    .ok_or_else(|| SpecError("[experiment] stats must be a string".into()))?,
            )?,
            None => StatsMode::default(),
        };
        let admit_window_us = match exp.get("admit_window_us") {
            Some(_) => get_u64(exp, "experiment", "admit_window_us")?,
            None => DEFAULT_ADMIT_WINDOW_US,
        };
        if admit_window_us == 0 {
            return bad("[experiment] admit_window_us must be positive");
        }
        let reach_us = match exp.get("reach_us") {
            Some(_) => Some(get_u64(exp, "experiment", "reach_us")?),
            None => None,
        };
        if reach_us == Some(0) {
            return bad("[experiment] reach_us must be positive (omit it for static tables)");
        }
        let threads = match exp.get("threads") {
            Some(_) => Some(get_u64(exp, "experiment", "threads")? as u32),
            None => None,
        };
        if threads == Some(0) {
            return bad("[experiment] threads must be positive (omit it for one per shard)");
        }

        let topology = TopoSpec::from_table(get_table(doc, "topology")?)?;

        let scenario = parse_scenario(get_table(doc, "scenario")?)?;
        let failures = parse_failures(doc)?;
        let checks = match doc.get("checks") {
            Some(Value::Table(t)) => parse_checks(t)?,
            Some(_) => return bad("[checks] must be a table"),
            None => Checks::default(),
        };

        let spec = ExperimentSpec {
            name,
            horizon_us,
            seeds,
            engines,
            topology,
            scenario,
            failures,
            stats,
            admit_window_us,
            reach_us,
            threads,
            checks,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Cross-field validation a flat parse cannot catch: checks that
    /// need per-flow records are rejected in sketch mode, the failure
    /// schedule's per-link state machine must be coherent (no
    /// double-fail / restore-of-up typos), convergence gates need the
    /// reach protocol enabled, and the scenario must fit the population
    /// of **every** engine it will run on (surfacing what used to be a
    /// silent incast backend clamp).
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.stats == StatsMode::Sketch && self.checks.min_goodput_gbps.is_some() {
            return bad("checks.min_goodput_gbps needs per-flow records, which \
                 stats = \"sketch\" does not keep");
        }
        self.failures.validate().map_err(SpecError)?;
        if self.checks.max_convergence_us.is_some() && self.reach_us.is_none() {
            return bad("checks.max_convergence_us needs the reach protocol \
                 ([experiment] reach_us) — static tables never reconverge");
        }
        let scenario = self.scenario_for(self.seeds.first().copied().unwrap_or(0));
        for &engine in &self.engines {
            let n_nodes = if engine.is_fabric() {
                self.topology.fabric_endpoints()
            } else {
                crate::fig10::kary_hosts(self.topology.kary_k)
            };
            scenario
                .validate_for(n_nodes)
                .map_err(|e| SpecError(format!("engine {:?}: {e}", engine.to_spec_string())))?;
        }
        Ok(())
    }

    /// Render back to a TOML document; `parse(format(to_table()))`
    /// reproduces the spec exactly (pinned by round-trip tests).
    ///
    /// # Panics
    /// If the scenario uses a flow-size distribution other than the
    /// built-in `web` / `hadoop` ones (nothing a parsed spec can hold).
    pub fn to_table(&self) -> Table {
        let mut exp = Table::new();
        exp.insert("name".into(), Value::Str(self.name.clone()));
        exp.insert("horizon_us".into(), Value::Int(self.horizon_us as i64));
        exp.insert(
            "seeds".into(),
            Value::Array(self.seeds.iter().map(|&s| Value::Int(s as i64)).collect()),
        );
        exp.insert(
            "engines".into(),
            Value::Array(
                self.engines
                    .iter()
                    .map(|e| Value::Str(e.to_spec_string()))
                    .collect(),
            ),
        );
        if self.stats != StatsMode::default() {
            exp.insert("stats".into(), Value::Str(self.stats.as_str().into()));
        }
        if self.admit_window_us != DEFAULT_ADMIT_WINDOW_US {
            exp.insert(
                "admit_window_us".into(),
                Value::Int(self.admit_window_us as i64),
            );
        }
        if let Some(us) = self.reach_us {
            exp.insert("reach_us".into(), Value::Int(us as i64));
        }
        if let Some(t) = self.threads {
            exp.insert("threads".into(), Value::Int(t as i64));
        }

        let mut doc = Table::new();
        doc.insert("experiment".into(), Value::Table(exp));
        doc.insert("topology".into(), Value::Table(self.topology.to_table()));
        doc.insert(
            "scenario".into(),
            Value::Table(scenario_table(&self.scenario)),
        );
        if !self.failures.is_empty() {
            doc.insert(
                "failure".into(),
                Value::Array(
                    self.failures
                        .events()
                        .iter()
                        .map(|ev| {
                            let mut t = Table::new();
                            t.insert(
                                "at_us".into(),
                                Value::Int((ev.at.as_ps() / stardust_sim::time::PS_PER_US) as i64),
                            );
                            t.insert("link".into(), Value::Int(ev.link.0 as i64));
                            t.insert(
                                "action".into(),
                                Value::Str(
                                    match ev.action {
                                        LinkAction::Fail => "fail",
                                        LinkAction::Restore => "restore",
                                        LinkAction::Degrade { .. } => "degrade",
                                    }
                                    .into(),
                                ),
                            );
                            if let LinkAction::Degrade { ppm } = ev.action {
                                t.insert("ppm".into(), Value::Int(i64::from(ppm)));
                            }
                            Value::Table(t)
                        })
                        .collect(),
                ),
            );
        }
        if !self.checks.is_empty() {
            doc.insert("checks".into(), Value::Table(checks_table(&self.checks)));
        }
        doc
    }

    /// Render to TOML text.
    pub fn to_text(&self) -> String {
        toml::format(&self.to_table())
    }

    /// The scenario this spec runs under `seed`.
    pub fn scenario_for(&self, seed: u64) -> stardust_workload::Scenario {
        stardust_workload::Scenario {
            name: self.name.clone(),
            seed,
            kind: self.scenario.clone(),
        }
    }
}

fn get_table<'a>(doc: &'a Table, key: &str) -> Result<&'a Table, SpecError> {
    match doc.get(key) {
        Some(Value::Table(t)) => Ok(t),
        Some(_) => bad(format!("[{key}] must be a table")),
        None => bad(format!("missing [{key}] section")),
    }
}

fn get_str<'a>(t: &'a Table, section: &str, key: &str) -> Result<&'a str, SpecError> {
    t.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| SpecError(format!("[{section}] needs a string {key:?}")))
}

fn get_u64(t: &Table, section: &str, key: &str) -> Result<u64, SpecError> {
    t.get(key)
        .and_then(Value::as_int)
        .filter(|&n| n >= 0)
        .map(|n| n as u64)
        .ok_or_else(|| SpecError(format!("[{section}] needs a non-negative integer {key:?}")))
}

fn get_f64(t: &Table, section: &str, key: &str) -> Result<f64, SpecError> {
    t.get(key)
        .and_then(Value::as_float)
        .filter(|f| f.is_finite())
        .ok_or_else(|| SpecError(format!("[{section}] needs a finite number {key:?}")))
}

fn parse_dist(s: &str) -> Result<FlowSizeDist, SpecError> {
    match s {
        "web" => Ok(FlowSizeDist::fb_web()),
        "hadoop" => Ok(FlowSizeDist::fb_hadoop()),
        other => bad(format!("unknown flow-size dist {other:?} (web | hadoop)")),
    }
}

fn dist_name(d: &FlowSizeDist) -> &'static str {
    if *d == FlowSizeDist::fb_web() {
        "web"
    } else if *d == FlowSizeDist::fb_hadoop() {
        "hadoop"
    } else {
        panic!("only the built-in web/hadoop dists are spec-serializable")
    }
}

fn parse_scenario(t: &Table) -> Result<ScenarioKind, SpecError> {
    match get_str(t, "scenario", "kind")? {
        "permutation" => Ok(ScenarioKind::Permutation {
            flow_bytes: get_u64(t, "scenario", "flow_bytes")?,
        }),
        "incast" => Ok(ScenarioKind::Incast {
            backends: get_u64(t, "scenario", "backends")? as usize,
            response_bytes: get_u64(t, "scenario", "response_bytes")?,
        }),
        "mix" => Ok(ScenarioKind::Mix {
            dist: parse_dist(get_str(t, "scenario", "dist")?)?,
            n_flows: get_u64(t, "scenario", "flows")? as usize,
            node_gap: SimDuration::from_micros(get_u64(t, "scenario", "node_gap_us")?),
        }),
        "shuffle" => Ok(ScenarioKind::Shuffle {
            bytes_per_pair: get_u64(t, "scenario", "bytes_per_pair")?,
            node_gap: SimDuration::from_micros(get_u64(t, "scenario", "node_gap_us")?),
        }),
        "service" => {
            let us = |key| get_u64(t, "scenario", key).map(SimDuration::from_micros);
            let hadoop_share = get_f64(t, "scenario", "hadoop_share")?;
            if !(0.0..=1.0).contains(&hadoop_share) {
                return bad("[scenario] hadoop_share must be within [0, 1]");
            }
            let diurnal_min = get_f64(t, "scenario", "diurnal_min")?;
            if !(diurnal_min > 0.0 && diurnal_min <= 1.0) {
                return bad("[scenario] diurnal_min must be within (0, 1]");
            }
            for key in ["diurnal_period_us", "shuffle_period_us", "incast_period_us"] {
                if get_u64(t, "scenario", key)? == 0 {
                    return bad(format!("[scenario] {key} must be positive"));
                }
            }
            Ok(ScenarioKind::Service {
                n_flows: get_u64(t, "scenario", "flows")? as usize,
                node_gap: us("node_gap_us")?,
                hadoop_share,
                diurnal_period: us("diurnal_period_us")?,
                diurnal_min,
                shuffle_bytes: get_u64(t, "scenario", "shuffle_bytes")?,
                shuffle_period: us("shuffle_period_us")?,
                incast_backends: get_u64(t, "scenario", "incast_backends")? as usize,
                incast_bytes: get_u64(t, "scenario", "incast_bytes")?,
                incast_period: us("incast_period_us")?,
            })
        }
        other => bad(format!(
            "unknown scenario kind {other:?} (permutation | incast | mix | shuffle | service)"
        )),
    }
}

fn scenario_table(kind: &ScenarioKind) -> Table {
    let mut t = Table::new();
    match kind {
        ScenarioKind::Permutation { flow_bytes } => {
            t.insert("kind".into(), Value::Str("permutation".into()));
            t.insert("flow_bytes".into(), Value::Int(*flow_bytes as i64));
        }
        ScenarioKind::Incast {
            backends,
            response_bytes,
        } => {
            t.insert("kind".into(), Value::Str("incast".into()));
            t.insert("backends".into(), Value::Int(*backends as i64));
            t.insert("response_bytes".into(), Value::Int(*response_bytes as i64));
        }
        ScenarioKind::Mix {
            dist,
            n_flows,
            node_gap,
        } => {
            t.insert("kind".into(), Value::Str("mix".into()));
            t.insert("dist".into(), Value::Str(dist_name(dist).into()));
            t.insert("flows".into(), Value::Int(*n_flows as i64));
            t.insert(
                "node_gap_us".into(),
                Value::Int((node_gap.0 / stardust_sim::time::PS_PER_US) as i64),
            );
        }
        ScenarioKind::Shuffle {
            bytes_per_pair,
            node_gap,
        } => {
            t.insert("kind".into(), Value::Str("shuffle".into()));
            t.insert("bytes_per_pair".into(), Value::Int(*bytes_per_pair as i64));
            t.insert(
                "node_gap_us".into(),
                Value::Int((node_gap.0 / stardust_sim::time::PS_PER_US) as i64),
            );
        }
        ScenarioKind::Service {
            n_flows,
            node_gap,
            hadoop_share,
            diurnal_period,
            diurnal_min,
            shuffle_bytes,
            shuffle_period,
            incast_backends,
            incast_bytes,
            incast_period,
        } => {
            let us = |d: &SimDuration| Value::Int((d.0 / stardust_sim::time::PS_PER_US) as i64);
            t.insert("kind".into(), Value::Str("service".into()));
            t.insert("flows".into(), Value::Int(*n_flows as i64));
            t.insert("node_gap_us".into(), us(node_gap));
            t.insert("hadoop_share".into(), Value::Float(*hadoop_share));
            t.insert("diurnal_period_us".into(), us(diurnal_period));
            t.insert("diurnal_min".into(), Value::Float(*diurnal_min));
            t.insert("shuffle_bytes".into(), Value::Int(*shuffle_bytes as i64));
            t.insert("shuffle_period_us".into(), us(shuffle_period));
            t.insert(
                "incast_backends".into(),
                Value::Int(*incast_backends as i64),
            );
            t.insert("incast_bytes".into(), Value::Int(*incast_bytes as i64));
            t.insert("incast_period_us".into(), us(incast_period));
        }
    }
    t
}

fn parse_failures(doc: &Table) -> Result<FailureSchedule, SpecError> {
    let mut schedule = FailureSchedule::new();
    match doc.get("failure") {
        None => {}
        Some(Value::Array(items)) => {
            for item in items {
                let Some(t) = item.as_table() else {
                    return bad("[[failure]] entries must be tables");
                };
                let at = SimTime::from_micros(get_u64(t, "failure", "at_us")?);
                let link = LinkId(get_u64(t, "failure", "link")? as u32);
                schedule = match get_str(t, "failure", "action")? {
                    "fail" => schedule.fail_at(at, link),
                    "restore" => schedule.restore_at(at, link),
                    "degrade" => {
                        let ppm = get_u64(t, "failure", "ppm")?;
                        let ppm = u32::try_from(ppm)
                            .map_err(|_| SpecError("[[failure]] ppm must fit in u32".into()))?;
                        schedule.degrade_at(at, link, ppm)
                    }
                    other => {
                        return bad(format!(
                            "unknown failure action {other:?} (fail | restore | degrade)"
                        ))
                    }
                };
            }
        }
        Some(_) => return bad("failure must be an array of tables ([[failure]])"),
    }
    Ok(schedule)
}

fn parse_checks(t: &Table) -> Result<Checks, SpecError> {
    let mut c = Checks::default();
    for (key, v) in t {
        match key.as_str() {
            "complete" => {
                c.complete = CompleteScope::parse(
                    v.as_str()
                        .ok_or_else(|| SpecError("checks.complete must be a string".into()))?,
                )?
            }
            "some_complete" => c.some_complete = check_bool(key, v)?,
            "zero_drops" => c.zero_drops = check_bool(key, v)?,
            "sharded_identical" => c.sharded_identical = check_bool(key, v)?,
            "fct_p99_ms_max" => c.fct_p99_ms_max = Some(check_f64(key, v)?),
            "fct_median_ms_max" => c.fct_median_ms_max = Some(check_f64(key, v)?),
            "min_goodput_gbps" => c.min_goodput_gbps = Some(check_f64(key, v)?),
            "last_first_ratio_max" => c.last_first_ratio_max = Some(check_f64(key, v)?),
            "max_loss_window_us" => c.max_loss_window_us = Some(check_f64(key, v)?),
            "max_convergence_us" => c.max_convergence_us = Some(check_f64(key, v)?),
            other => return bad(format!("unknown check {other:?}")),
        }
    }
    Ok(c)
}

fn check_bool(key: &str, v: &Value) -> Result<bool, SpecError> {
    v.as_bool()
        .ok_or_else(|| SpecError(format!("checks.{key} must be a boolean")))
}

fn check_f64(key: &str, v: &Value) -> Result<f64, SpecError> {
    v.as_float()
        .filter(|f| f.is_finite() && *f > 0.0)
        .ok_or_else(|| SpecError(format!("checks.{key} must be a positive number")))
}

fn checks_table(c: &Checks) -> Table {
    let mut t = Table::new();
    if c.complete != CompleteScope::None {
        t.insert("complete".into(), Value::Str(c.complete.as_str().into()));
    }
    if c.some_complete {
        t.insert("some_complete".into(), Value::Bool(true));
    }
    if c.zero_drops {
        t.insert("zero_drops".into(), Value::Bool(true));
    }
    if c.sharded_identical {
        t.insert("sharded_identical".into(), Value::Bool(true));
    }
    if let Some(x) = c.fct_p99_ms_max {
        t.insert("fct_p99_ms_max".into(), Value::Float(x));
    }
    if let Some(x) = c.fct_median_ms_max {
        t.insert("fct_median_ms_max".into(), Value::Float(x));
    }
    if let Some(x) = c.min_goodput_gbps {
        t.insert("min_goodput_gbps".into(), Value::Float(x));
    }
    if let Some(x) = c.last_first_ratio_max {
        t.insert("last_first_ratio_max".into(), Value::Float(x));
    }
    if let Some(x) = c.max_loss_window_us {
        t.insert("max_loss_window_us".into(), Value::Float(x));
    }
    if let Some(x) = c.max_convergence_us {
        t.insert("max_convergence_us".into(), Value::Float(x));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
[experiment]
name = "unit-spec"
horizon_us = 50000
seeds = [42, 7]
engines = ["transport:dctcp", "transport:stardust", "fabric", "sharded:2", "fabric:heap"]
reach_us = 10

[topology]
two_tier_factor = 16
kary_k = 4

[scenario]
kind = "mix"
dist = "web"
flows = 50
node_gap_us = 800

[checks]
complete = "fabric"
some_complete = true
zero_drops = true
fct_p99_ms_max = 10.0
sharded_identical = true
max_loss_window_us = 5000.0
max_convergence_us = 1000.0

[[failure]]
at_us = 2000
link = 0
action = "fail"

[[failure]]
at_us = 3000
link = 5
action = "degrade"
ppm = 40000

[[failure]]
at_us = 6000
link = 0
action = "restore"

[[failure]]
at_us = 7000
link = 5
action = "degrade"
ppm = 0
"#;

    #[test]
    fn parses_a_full_spec() {
        let spec = ExperimentSpec::parse(FULL).expect("parse");
        assert_eq!(spec.name, "unit-spec");
        assert_eq!(spec.horizon(), SimTime::from_millis(50));
        assert_eq!(spec.seeds, vec![42, 7]);
        assert_eq!(spec.engines.len(), 5);
        assert_eq!(
            spec.engines[3],
            EngineSpec::Sharded {
                shards: 2,
                core: CoreChoice::Calendar
            }
        );
        assert_eq!(
            spec.engines[4],
            EngineSpec::Fabric {
                core: CoreChoice::Heap
            }
        );
        assert!(matches!(
            spec.scenario,
            ScenarioKind::Mix { n_flows: 50, .. }
        ));
        assert_eq!(spec.failures.events().len(), 4);
        assert_eq!(
            spec.failures.events()[1].action,
            LinkAction::Degrade { ppm: 40_000 }
        );
        assert_eq!(spec.reach_us, Some(10));
        assert_eq!(spec.checks.complete, CompleteScope::Fabric);
        assert_eq!(spec.checks.fct_p99_ms_max, Some(10.0));
        assert!(spec.checks.sharded_identical);
        assert_eq!(spec.checks.last_first_ratio_max, None);
        assert_eq!(spec.checks.max_loss_window_us, Some(5000.0));
        assert_eq!(spec.checks.max_convergence_us, Some(1000.0));
    }

    #[test]
    fn incoherent_failure_schedules_are_rejected() {
        // Restoring a link that never failed is a typo, not a no-op.
        let text = FULL.replace("action = \"fail\"", "action = \"restore\"");
        let e = ExperimentSpec::parse(&text).expect_err("restore-of-up must not parse");
        assert!(e.to_string().contains("not failed"), "{e}");
    }

    #[test]
    fn convergence_gate_without_reach_protocol_is_rejected() {
        let text = FULL.replace("reach_us = 10\n", "");
        let e = ExperimentSpec::parse(&text).expect_err("gate needs the protocol");
        assert!(e.to_string().contains("max_convergence_us"), "{e}");
        assert!(e.to_string().contains("reach_us"), "{e}");
    }

    #[test]
    fn round_trips_through_format() {
        let spec = ExperimentSpec::parse(FULL).unwrap();
        let text = spec.to_text();
        let again = ExperimentSpec::parse(&text).expect("formatted spec re-parses");
        assert_eq!(spec, again, "round trip changed the spec:\n{text}");
        // Formatting is a fixpoint.
        assert_eq!(text, again.to_text());
    }

    #[test]
    fn engine_strings_round_trip() {
        for s in [
            "fabric",
            "fabric:heap",
            "sharded:2",
            "sharded:4:heap",
            "transport:tcp",
            "transport:dctcp",
            "transport:mptcp",
            "transport:dcqcn",
            "transport:stardust",
        ] {
            let e = EngineSpec::parse(s).expect(s);
            assert_eq!(e.to_spec_string(), s);
            assert_eq!(EngineSpec::parse(&e.to_spec_string()).unwrap(), e);
        }
        for bad in [
            "",
            "fabric:quantum",
            "sharded:0",
            "sharded:x",
            "transport:udp",
        ] {
            assert!(EngineSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn scenario_kinds_round_trip() {
        for kind in [
            ScenarioKind::Permutation { flow_bytes: 1000 },
            ScenarioKind::Incast {
                backends: 10,
                response_bytes: 450_000,
            },
            ScenarioKind::Mix {
                dist: FlowSizeDist::fb_hadoop(),
                n_flows: 9,
                node_gap: SimDuration::from_micros(123),
            },
            ScenarioKind::Shuffle {
                bytes_per_pair: 4096,
                node_gap: SimDuration::from_micros(55),
            },
            ScenarioKind::Service {
                n_flows: 100_000,
                node_gap: SimDuration::from_micros(200),
                hadoop_share: 0.25,
                diurnal_period: SimDuration::from_millis(5),
                diurnal_min: 0.5,
                shuffle_bytes: 40_000,
                shuffle_period: SimDuration::from_micros(300),
                incast_backends: 6,
                incast_bytes: 40_000,
                incast_period: SimDuration::from_micros(900),
            },
        ] {
            let t = scenario_table(&kind);
            assert_eq!(parse_scenario(&t).unwrap(), kind);
        }
    }

    #[test]
    fn stats_mode_and_admit_window_round_trip() {
        let text = FULL.replace("seeds = [42, 7]", "seeds = [42, 7]\nstats = \"sketch\"");
        let spec = ExperimentSpec::parse(&text).expect("sketch spec parses");
        assert_eq!(spec.stats, StatsMode::Sketch);
        assert_eq!(spec.admit_window_us, DEFAULT_ADMIT_WINDOW_US);
        let again = ExperimentSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(spec, again);

        let mut spec = spec;
        spec.admit_window_us = 250;
        let again = ExperimentSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(again.admit_window_us, 250);

        // The default mode stays omitted from the rendered form.
        let table_spec = ExperimentSpec::parse(FULL).unwrap();
        assert!(!table_spec.to_text().contains("stats"));
        assert!(!table_spec.to_text().contains("admit_window_us"));
    }

    #[test]
    fn threads_field_round_trips_and_rejects_zero() {
        let text = FULL.replace("seeds = [42, 7]", "seeds = [42, 7]\nthreads = 2");
        let spec = ExperimentSpec::parse(&text).expect("threads spec parses");
        assert_eq!(spec.threads, Some(2));
        let again = ExperimentSpec::parse(&spec.to_text()).unwrap();
        assert_eq!(spec, again);

        // Default stays omitted from the rendered form.
        let default_spec = ExperimentSpec::parse(FULL).unwrap();
        assert_eq!(default_spec.threads, None);
        assert!(!default_spec.to_text().contains("threads"));

        let zero = FULL.replace("seeds = [42, 7]", "seeds = [42, 7]\nthreads = 0");
        let e = ExperimentSpec::parse(&zero).expect_err("zero threads rejected");
        assert!(e.to_string().contains("threads"), "{e}");
    }

    #[test]
    fn sketch_mode_rejects_record_only_checks() {
        let text = FULL
            .replace("seeds = [42, 7]", "seeds = [42, 7]\nstats = \"sketch\"")
            .replace("fct_p99_ms_max = 10.0", "min_goodput_gbps = 5.0");
        let e = ExperimentSpec::parse(&text).expect_err("goodput needs records");
        assert!(e.to_string().contains("min_goodput_gbps"), "{e}");
    }

    #[test]
    fn oversized_incast_is_a_spec_error_not_a_silent_clamp() {
        // 16 fat-tree hosts and 16 fabric FAs: 15 backends fit, 16 don't.
        let mk = |backends: u64| {
            format!(
                "[experiment]\nname = \"incast-check\"\nhorizon_us = 1000\n\
                 engines = [\"fabric\", \"transport:stardust\"]\n\n\
                 [topology]\ntwo_tier_factor = 16\nkary_k = 4\n\n\
                 [scenario]\nkind = \"incast\"\nbackends = {backends}\nresponse_bytes = 1000\n"
            )
        };
        assert!(ExperimentSpec::parse(&mk(15)).is_ok());
        let e = ExperimentSpec::parse(&mk(16)).expect_err("16-into-16 incast");
        assert!(e.to_string().contains("backends"), "{e}");
    }

    fn topo_spec(body: &str) -> Result<ExperimentSpec, SpecError> {
        ExperimentSpec::parse(&format!(
            "[experiment]\nname = \"topo-check\"\nhorizon_us = 1000\nengines = [\"fabric\"]\n\n\
             [topology]\n{body}\n\n\
             [scenario]\nkind = \"permutation\"\nflow_bytes = 1000\n"
        ))
    }

    #[test]
    fn topology_kinds_parse_round_trip_and_size() {
        let base = "two_tier_factor = 16\nkary_k = 4\n";
        for (body, kind, endpoints) in [
            (String::new(), TopoKind::TwoTier, 16),
            ("kind = \"three_tier\"".into(), TopoKind::ThreeTier, 16),
            ("kind = \"single_tier\"".into(), TopoKind::SingleTier, 24),
            (
                "kind = \"dragonfly\"\ndragonfly_a = 4\ndragonfly_h = 1\ndragonfly_p = 2".into(),
                TopoKind::Dragonfly { a: 4, h: 1, p: 2 },
                40,
            ),
            (
                "kind = \"space_shuffle\"".into(),
                TopoKind::SpaceShuffle {
                    switches: 16,
                    spaces: 3,
                    fas_per_switch: 1,
                },
                16,
            ),
            (
                "kind = \"expander\"\nexp_switches = 12\nexp_degree = 6".into(),
                TopoKind::Expander {
                    switches: 12,
                    degree: 6,
                    fas_per_switch: 1,
                },
                12,
            ),
        ] {
            let spec =
                topo_spec(&format!("{base}{body}")).unwrap_or_else(|e| panic!("{body}: {e}"));
            assert_eq!(spec.topology.kind, kind, "{body}");
            assert_eq!(spec.topology.fabric_endpoints(), endpoints, "{body}");
            let again = ExperimentSpec::parse(&spec.to_text()).expect("round trip parses");
            assert_eq!(spec, again, "{body} round trip");
            // The built fabric matches the declared population.
            let built = spec.topology.build_fabric(42);
            assert_eq!(built.plan.num_endpoints, endpoints, "{body} build");
        }
    }

    #[test]
    fn default_kind_stays_omitted_from_rendered_form() {
        let spec = ExperimentSpec::parse(FULL).unwrap();
        assert_eq!(spec.topology.kind, TopoKind::TwoTier);
        assert!(!spec.to_text().contains("kind = \"two_tier\""));
    }

    #[test]
    fn unknown_topology_key_is_a_distinct_error() {
        let e = topo_spec("two_tier_factor = 16\nkary_k = 4\nradix = 8").expect_err("radix");
        let msg = e.to_string();
        assert!(msg.contains("unknown [topology] key \"radix\""), "{msg}");
        assert!(msg.contains("expected one of"), "{msg}");
        assert!(msg.contains("dragonfly_a"), "error lists valid keys: {msg}");
    }

    #[test]
    fn kind_parameter_mismatch_is_a_distinct_error() {
        let e = topo_spec("two_tier_factor = 16\nkary_k = 4\ndragonfly_a = 4")
            .expect_err("dragonfly key without dragonfly kind");
        let msg = e.to_string();
        assert!(
            msg.contains("\"dragonfly_a\" requires kind = \"dragonfly\""),
            "{msg}"
        );
        assert!(
            msg.contains("kind = \"two_tier\""),
            "names the actual kind: {msg}"
        );

        let e = topo_spec("kind = \"dragonfly\"\ntwo_tier_factor = 16\nkary_k = 4\nss_spaces = 2")
            .expect_err("space-shuffle key under dragonfly kind");
        assert!(
            e.to_string().contains("requires kind = \"space_shuffle\""),
            "{e}"
        );
    }

    #[test]
    fn bad_topology_parameters_get_actionable_errors() {
        let base = "two_tier_factor = 16\nkary_k = 4\n";
        for (body, needle) in [
            ("kind = \"hypercube\"", "unknown topology kind"),
            ("kind = \"dragonfly\"\ndragonfly_a = 0", "must all be ≥ 1"),
            ("kind = \"space_shuffle\"\nss_switches = 2", "must be ≥ 3"),
            ("kind = \"expander\"\nexp_degree = 3", "even"),
            (
                "kind = \"expander\"\nexp_switches = 4\nexp_degree = 4",
                "below exp_switches",
            ),
        ] {
            let e = topo_spec(&format!("{base}{body}")).expect_err(body);
            assert!(e.to_string().contains(needle), "{body}: {e}");
        }
    }

    #[test]
    fn rejects_bad_specs() {
        for (mutation, needle) in [
            ("name = \"\"", "non-empty"),
            ("horizon_us = 0", "positive"),
            ("engines = []", "non-empty"),
            ("seeds = [-1]", "non-negative"),
        ] {
            let text = FULL
                .replace("name = \"unit-spec\"", mutation)
                .replace("horizon_us = 50000", mutation)
                .replace(
                    "engines = [\"transport:dctcp\", \"transport:stardust\", \"fabric\", \"sharded:2\", \"fabric:heap\"]",
                    mutation,
                )
                .replace("seeds = [42, 7]", mutation);
            // Each replace() collapses several keys onto `mutation`; any
            // resulting document must fail to validate (duplicate keys or
            // the targeted validation error).
            let e = ExperimentSpec::parse(&text).expect_err(needle);
            assert!(!e.to_string().is_empty());
        }
        assert!(ExperimentSpec::parse("[experiment]\nname = \"x\"\n").is_err());
    }

    #[test]
    fn defaults_apply() {
        let spec = ExperimentSpec::parse(
            r#"
[experiment]
name = "min"
horizon_us = 1000
engines = ["fabric"]

[topology]
two_tier_factor = 16
kary_k = 4

[scenario]
kind = "permutation"
flow_bytes = 1000
"#,
        )
        .unwrap();
        assert_eq!(spec.seeds, vec![42]);
        assert!(spec.failures.is_empty());
        assert!(spec.checks.is_empty());
        assert_eq!(spec.scenario_for(9).seed, 9);
        assert_eq!(spec.scenario_for(9).name, "min");
    }
}
