//! Micro-benchmarks of the core data structures: the per-cell and
//! per-credit costs that set the simulator's events/second, and the
//! analytic kernels.
//!
//! The build environment has no network access, so instead of Criterion
//! this uses the tiny timing harness in [`stardust_bench::harness`]
//! (`harness = false` in the manifest). Run with `cargo bench -p
//! stardust-bench`; pass a substring argument to filter benchmarks.

use stardust_bench::corebench::{record_sec62_trace, replay};
use stardust_bench::harness::Bench;
use stardust_fabric::cell::{BurstId, Packet, PacketId, NO_FLOW};
use stardust_fabric::packing::pack_burst;
use stardust_fabric::spray::Sprayer;
use stardust_fabric::voq::Voq;
use stardust_fabric::{FabricConfig, FabricEngine};
use stardust_model::md1;
use stardust_sim::{DetRng, EventQueue, HeapEventQueue, Histogram, SimTime};
use stardust_topo::builders::{two_tier, TwoTierParams};

fn pkt(bytes: u32) -> Packet {
    Packet {
        id: PacketId(0),
        src_fa: 0,
        dst_fa: 1,
        dst_port: 0,
        tc: 0,
        bytes,
        flow: NO_FLOW,
        injected_at: SimTime::ZERO,
    }
}

fn bench_packing(b: &mut Bench) {
    for (name, packed) in [("packing/packed", true), ("packing/non_packed", false)] {
        b.bench_batched(
            name,
            30,
            || (0..6).map(|_| pkt(750)).collect::<Vec<_>>(),
            |packets| {
                std::hint::black_box(pack_burst(
                    BurstId(0),
                    packets,
                    256,
                    8,
                    packed,
                    SimTime::ZERO,
                ));
            },
        );
    }
}

fn bench_voq(b: &mut Bench) {
    let mut v = Voq::new();
    b.bench("voq_push_grant_cycle", || {
        for _ in 0..6 {
            v.push(pkt(750));
        }
        std::hint::black_box(v.grant(4096, 4096));
    });
}

fn bench_sprayer(b: &mut Bench) {
    for links in [4u32, 32, 256] {
        let rng = DetRng::from_label(1, "bench");
        let mut s = Sprayer::new((0..links).collect(), 4, rng);
        b.bench(&format!("sprayer/next_{links}_links"), || {
            std::hint::black_box(s.next());
        });
    }
}

fn bench_event_queue(b: &mut Bench) {
    b.bench("event_queue_push_pop_1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
        }
        let mut acc = 0u64;
        while let Some(e) = q.pop() {
            acc = acc.wrapping_add(e.payload);
        }
        std::hint::black_box(acc);
    });
}

/// Old-vs-new event core on the real §6.2 permutation workload: replay
/// the exact queue-operation trace of a saturated 1/16-scale fabric run
/// against the legacy binary heap and the calendar queue, and report the
/// events/sec ratio (the ROADMAP gate is ≥ 1.3×).
fn bench_event_cores(b: &mut Bench) {
    let trace = record_sec62_trace(100);
    let pops = trace
        .iter()
        .filter(|op| matches!(op, stardust_bench::corebench::TraceOp::Pop))
        .count() as u64;
    b.bench_n("event_core/sec62_replay_heap", 10, || {
        std::hint::black_box(replay::<HeapEventQueue<u32>>(&trace));
    });
    b.bench_n("event_core/sec62_replay_calendar", 10, || {
        std::hint::black_box(replay::<EventQueue<u32>>(&trace));
    });
    // Direct events/sec comparison (median of 5 full replays each).
    let time = |f: &dyn Fn() -> u64| -> f64 {
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let t = std::time::Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };
    let heap_s = time(&|| replay::<HeapEventQueue<u32>>(&trace));
    let cal_s = time(&|| replay::<EventQueue<u32>>(&trace));
    println!(
        "event_core/sec62_events_per_sec              heap {:.2}M  calendar {:.2}M  speedup {:.2}x",
        pops as f64 / heap_s / 1e6,
        pops as f64 / cal_s / 1e6,
        heap_s / cal_s,
    );
}

fn bench_histogram(b: &mut Bench) {
    let mut h = Histogram::new(1, 1024);
    let mut x = 0u64;
    b.bench("histogram_record", || {
        x = (x.wrapping_mul(6364136223846793005).wrapping_add(1)) % 1024;
        h.record(x);
    });
}

fn bench_md1(b: &mut Bench) {
    b.bench("md1_distribution_256", || {
        std::hint::black_box(md1::queue_length_distribution(0.95, 256));
    });
}

fn bench_engine(b: &mut Bench) {
    // Cost of simulating 50µs of a saturated 1/16-scale two-tier fabric;
    // topology build and engine setup stay outside the timed region.
    b.bench_batched(
        "fabric_engine/two_tier_scale16_50us",
        10,
        || {
            let tt = two_tier(TwoTierParams::paper_scaled(16));
            let cfg = FabricConfig {
                host_ports: 2,
                host_port_bps: stardust_sim::units::gbps(40),
                ..FabricConfig::default()
            };
            let mut e = FabricEngine::new(tt.topo, cfg);
            e.saturate_all_to_all(750, 16 * 1024);
            e
        },
        |mut e| {
            e.run_until(SimTime::from_micros(50));
            std::hint::black_box(e.stats().cells_delivered.get());
        },
    );
}

fn main() {
    let mut b = Bench::from_args();
    bench_packing(&mut b);
    bench_voq(&mut b);
    bench_sprayer(&mut b);
    bench_event_queue(&mut b);
    bench_event_cores(&mut b);
    bench_histogram(&mut b);
    bench_md1(&mut b);
    bench_engine(&mut b);
}
