//! Criterion micro-benchmarks of the core data structures: the per-cell
//! and per-credit costs that set the simulator's events/second, and the
//! analytic kernels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use stardust_fabric::cell::{BurstId, Packet, PacketId};
use stardust_fabric::packing::pack_burst;
use stardust_fabric::spray::Sprayer;
use stardust_fabric::voq::Voq;
use stardust_fabric::{FabricConfig, FabricEngine};
use stardust_model::md1;
use stardust_sim::{DetRng, EventQueue, Histogram, SimTime};
use stardust_topo::builders::{two_tier, TwoTierParams};

fn pkt(bytes: u32) -> Packet {
    Packet {
        id: PacketId(0),
        src_fa: 0,
        dst_fa: 1,
        dst_port: 0,
        tc: 0,
        bytes,
        injected_at: SimTime::ZERO,
    }
}

fn bench_packing(c: &mut Criterion) {
    let mut g = c.benchmark_group("packing");
    g.sample_size(30);
    for (name, packed) in [("packed", true), ("non_packed", false)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || (0..6).map(|_| pkt(750)).collect::<Vec<_>>(),
                |packets| pack_burst(BurstId(0), packets, 256, 8, packed, SimTime::ZERO),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_voq(c: &mut Criterion) {
    c.bench_function("voq_push_grant_cycle", |b| {
        let mut v = Voq::new();
        b.iter(|| {
            for _ in 0..6 {
                v.push(pkt(750));
            }
            std::hint::black_box(v.grant(4096, 4096))
        })
    });
}

fn bench_sprayer(c: &mut Criterion) {
    let mut g = c.benchmark_group("sprayer");
    g.sample_size(30);
    for links in [4u32, 32, 256] {
        g.bench_function(format!("next_{links}_links"), |b| {
            let rng = DetRng::from_label(1, "bench");
            let mut s = Sprayer::new((0..links).collect(), 4, rng);
            b.iter(|| std::hint::black_box(s.next()))
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some(e) = q.pop() {
                acc = acc.wrapping_add(e.payload);
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record", |b| {
        let mut h = Histogram::new(1, 1024);
        let mut x = 0u64;
        b.iter(|| {
            x = (x * 6364136223846793005 + 1) % 1024;
            h.record(x);
        })
    });
}

fn bench_md1(c: &mut Criterion) {
    c.bench_function("md1_distribution_256", |b| {
        b.iter(|| std::hint::black_box(md1::queue_length_distribution(0.95, 256)))
    });
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric_engine");
    g.sample_size(10);
    // Cost of simulating 50µs of a saturated 1/16-scale two-tier fabric.
    g.bench_function("two_tier_scale16_50us", |b| {
        b.iter_batched(
            || {
                let tt = two_tier(TwoTierParams::paper_scaled(16));
                let cfg = FabricConfig {
                    host_ports: 2,
                    host_port_bps: stardust_sim::units::gbps(40),
                    ..FabricConfig::default()
                };
                let mut e = FabricEngine::new(tt.topo, cfg);
                e.saturate_all_to_all(750, 16 * 1024);
                e
            },
            |mut e| {
                e.run_until(SimTime::from_micros(50));
                std::hint::black_box(e.stats().cells_delivered.get())
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_packing,
    bench_voq,
    bench_sprayer,
    bench_event_queue,
    bench_histogram,
    bench_md1,
    bench_engine
);
criterion_main!(benches);
