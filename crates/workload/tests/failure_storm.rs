//! Interleaving-order property tests for [`FailureSchedule::drive`]:
//! link events landing **exactly on a window boundary** must apply after
//! the boundary instant's flows (which belong to the preceding window —
//! `run_until` is horizon-inclusive) and before the following window's,
//! and the whole interleaving must be bit-identical across 1/2/4/8
//! shards and across eager vs windowed admission. A storm schedule with
//! fail, restore *and* degrade events doubles as coverage for the
//! correlated-churn metrics (`first_loss_ps`, `last_reach_change_ps`, …)
//! merging bit-identically out of the sharded reduction.

use stardust_fabric::{ExecMode, FabricConfig, FabricEngine, ShardedFabricEngine};
use stardust_sim::{DetRng, SimDuration, SimTime};
use stardust_topo::{LinkId, TopologyBuilder, TwoTierParams};
use stardust_workload::{FailureSchedule, FlowEngine, FlowSource, FlowSpec};

const SEED: u64 = 23;
const HORIZON: SimTime = SimTime(1_000_000_000_000); // 1 ms in ps
const WINDOW: SimDuration = SimDuration::from_micros(100);

fn cfg() -> FabricConfig {
    FabricConfig {
        seed: SEED,
        reach_interval: Some(SimDuration::from_micros(10)),
        reach_miss_threshold: 3,
        ..FabricConfig::default()
    }
}

/// The storm: every event lands exactly on a 100µs admission-window
/// boundary, so the boundary ordering (boundary flows, then the link
/// event, then the next window's flows) is exercised on every event.
fn storm() -> FailureSchedule {
    FailureSchedule::new()
        .fail_at(SimTime::from_micros(200), LinkId(1))
        .degrade_at(SimTime::from_micros(300), LinkId(5), 40_000)
        .restore_at(SimTime::from_micros(400), LinkId(1))
        .degrade_at(SimTime::from_micros(500), LinkId(5), 0)
}

/// A deterministic flow list with a cluster of flows starting *exactly*
/// at each event instant, plus background arrivals in between.
fn flows() -> Vec<FlowSpec> {
    let mut rng = DetRng::from_label(SEED, "storm-flows");
    let mut out = Vec::new();
    let mut push = |start_us: u64, rng: &mut DetRng| {
        let src = rng.below(16) as u32;
        let mut dst = rng.below(16) as u32;
        while dst == src {
            dst = rng.below(16) as u32;
        }
        out.push(FlowSpec {
            src,
            dst,
            bytes: 2_000 + rng.below(30_000),
            start: SimTime::from_micros(start_us),
        });
    };
    for boundary_us in [200, 300, 400, 500] {
        for _ in 0..4 {
            push(boundary_us, &mut rng);
        }
    }
    for i in 0..30u64 {
        push(17 + i * 23, &mut rng);
    }
    // High-load waves straddling each event: every FA sends a large
    // message just before the instant, so cells are in flight over the
    // failed/degraded link while the protocol is still excluding it —
    // the storm is guaranteed to open a loss window.
    for wave_us in [195u64, 295, 395] {
        for src in 0..16u32 {
            out.push(FlowSpec {
                src,
                dst: (src + 5) % 16,
                bytes: 100_000,
                start: SimTime::from_micros(wave_us),
            });
        }
    }
    out.sort_by_key(|f| f.start);
    out
}

/// The windowed advance of `Scenario::run_streamed`, replicated so the
/// boundary property can be pinned on a hand-built flow list: always
/// offers flows with `start ≤ wend` before running the window, even for
/// a zero-length window (target == now).
fn advance_to(
    engine: &mut impl FlowEngine,
    source: &mut dyn FlowSource,
    now: &mut SimTime,
    target: SimTime,
) {
    loop {
        let wend = if target.since(*now) <= WINDOW {
            target
        } else {
            *now + WINDOW
        };
        engine.offer_until(source, wend);
        engine.run_until(wend);
        *now = wend;
        if *now >= target {
            break;
        }
    }
}

#[test]
fn boundary_events_interleave_identically_across_shard_counts() {
    let built = TwoTierParams::paper_scaled(16).build_fabric();
    let schedule = storm();
    schedule.validate().expect("storm must be well-formed");
    let flow_list = flows();

    // Reference: sequential engine, eager admission.
    let mut seq: FabricEngine =
        FabricEngine::with_plan(built.topo.clone(), cfg(), built.plan.clone());
    seq.offer(&flow_list);
    assert_eq!(schedule.drive(&mut seq, HORIZON), 4);
    let reference = seq.stats().clone();
    assert!(
        reference.first_loss_ps != u64::MAX,
        "a storm at load must lose cells while exclusion propagates"
    );
    assert!(reference.last_link_event_ps > 0 && reference.last_reach_change_ps > 0);

    // Sequential engine, windowed admission with events exactly on the
    // window boundaries: flows starting at an event instant are offered
    // (and executed) before the event applies, the following window's
    // flows after — same order the eager path produces globally.
    let mut windowed: FabricEngine =
        FabricEngine::with_plan(built.topo.clone(), cfg(), built.plan.clone());
    let mut source = flow_list.clone().into_iter().peekable();
    let mut now = SimTime::ZERO;
    let mut applied = 0;
    for ev in schedule.events() {
        advance_to(&mut windowed, &mut source, &mut now, ev.at);
        // Disambiguate to the trait methods: the inherent fabric methods
        // return `()` while the `FlowEngine` surface reports `bool`.
        applied += usize::from(match ev.action {
            stardust_workload::LinkAction::Fail => FlowEngine::fail_link(&mut windowed, ev.link),
            stardust_workload::LinkAction::Restore => {
                FlowEngine::restore_link(&mut windowed, ev.link)
            }
            stardust_workload::LinkAction::Degrade { ppm } => {
                FlowEngine::set_link_error_ppm(&mut windowed, ev.link, ppm)
            }
        });
    }
    advance_to(&mut windowed, &mut source, &mut now, HORIZON);
    assert_eq!(applied, 4);
    assert_eq!(
        windowed.stats(),
        &reference,
        "windowed admission must reproduce the eager interleaving"
    );

    // Sharded engines at 2/4/8 shards: merged stats — including the
    // loss-window and convergence ps-stamps — must equal the sequential
    // record bit for bit.
    for shards in [2u32, 4, 8] {
        let mut e: ShardedFabricEngine =
            ShardedFabricEngine::with_plan(built.topo.clone(), cfg(), built.plan.clone(), shards);
        e.set_exec_mode(ExecMode::Inline);
        e.offer(&flow_list);
        assert_eq!(schedule.drive(&mut e, HORIZON), 4);
        assert_eq!(
            e.stats(),
            reference,
            "{shards}-shard run diverged from sequential"
        );
    }
}
