//! Packet-size mixes shaped on Roy et al., "Inside the Social Network's
//! (Datacenter) Network" (SIGCOMM'15) — the paper's reference \[74\].
//!
//! The published measurements show datacenter packets are predominantly
//! small: "packets smaller than the internal data path width ... can be
//! over 50% of the traffic, assuming a 256B wide bus" (§2.3). Web and
//! cache (DB) services are dominated by sub-256 B packets with a long
//! 1500 B tail; Hadoop is bimodal with most bytes in MTU-sized packets.
//! The mixes below encode those *shapes*; absolute trace files are not
//! public, which is why Fig 8(b) is reproduced from shape-matched
//! synthetic mixes (see DESIGN.md substitutions).

use stardust_sim::DetRng;

/// A discrete packet-size distribution: `(size_bytes, weight)` pairs.
/// Weights are packet-count proportions (not byte proportions).
#[derive(Debug, Clone)]
pub struct PacketMix {
    /// Mix name (e.g. the trace it was digitized from).
    pub name: &'static str,
    entries: Vec<(u64, f64)>,
    total: f64,
}

impl PacketMix {
    /// Build a mix from `(size, weight)` pairs.
    pub fn new(name: &'static str, entries: Vec<(u64, f64)>) -> Self {
        assert!(!entries.is_empty());
        assert!(entries.iter().all(|&(s, w)| s >= 64 && w > 0.0));
        let total = entries.iter().map(|&(_, w)| w).sum();
        PacketMix {
            name,
            entries,
            total,
        }
    }

    /// The Fig 8(b) "DB" trace shape: cache traffic, dominated by small
    /// request/response packets.
    pub fn db() -> Self {
        PacketMix::new(
            "DB",
            vec![
                (64, 0.30),
                (128, 0.25),
                (256, 0.20),
                (512, 0.10),
                (1024, 0.05),
                (1500, 0.10),
            ],
        )
    }

    /// The Fig 8(b) "Web" trace shape: small-object HTTP traffic with a
    /// modest MTU tail.
    pub fn web() -> Self {
        PacketMix::new(
            "Web",
            vec![
                (64, 0.15),
                (128, 0.25),
                (256, 0.30),
                (512, 0.12),
                (1024, 0.08),
                (1500, 0.10),
            ],
        )
    }

    /// The Fig 8(b) "Hadoop" trace shape: bulk transfers, most packets at
    /// or near the MTU.
    pub fn hadoop() -> Self {
        PacketMix::new(
            "Hadoop",
            vec![
                (64, 0.10),
                (128, 0.05),
                (256, 0.05),
                (512, 0.10),
                (1024, 0.20),
                (1500, 0.50),
            ],
        )
    }

    /// The three Fig 8(b) mixes in plot order.
    pub fn fig8b() -> [PacketMix; 3] {
        [Self::db(), Self::web(), Self::hadoop()]
    }

    /// `(size, weight)` view for analytic consumers.
    pub fn entries(&self) -> &[(u64, f64)] {
        &self.entries
    }

    /// Draw one packet size.
    ///
    /// The final entry absorbs the entire remaining probability mass
    /// unconditionally: the `x -= w` subtractions accumulate
    /// floating-point error, and a draw near `total` could otherwise skip
    /// past the last comparison — the draw is effectively clamped to the
    /// table.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let mut x = rng.unit() * self.total;
        let (last, head) = self.entries.split_last().expect("non-empty mix");
        for &(s, w) in head {
            if x < w {
                return s;
            }
            x -= w;
        }
        last.0
    }

    /// Mean packet size in bytes (packet-weighted).
    pub fn mean_bytes(&self) -> f64 {
        self.entries.iter().map(|&(s, w)| s as f64 * w).sum::<f64>() / self.total
    }

    /// Fraction of packets strictly smaller than `bytes`.
    pub fn frac_below(&self, bytes: u64) -> f64 {
        self.entries
            .iter()
            .filter(|&&(s, _)| s < bytes)
            .map(|&(_, w)| w)
            .sum::<f64>()
            / self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_normalized_enough() {
        for m in PacketMix::fig8b() {
            let t: f64 = m.entries().iter().map(|&(_, w)| w).sum();
            assert!((t - 1.0).abs() < 1e-9, "{}", m.name);
        }
    }

    #[test]
    fn small_packet_share_matches_section_2_3() {
        // "over 50% of the traffic [is] smaller than a 256B bus" — true
        // for the request/response mixes, not for Hadoop.
        assert!(PacketMix::db().frac_below(256) > 0.5);
        assert!(PacketMix::web().frac_below(257) > 0.5);
        assert!(PacketMix::hadoop().frac_below(256) < 0.25);
    }

    #[test]
    fn hadoop_has_largest_mean() {
        let [db, web, hadoop] = PacketMix::fig8b();
        assert!(hadoop.mean_bytes() > web.mean_bytes());
        assert!(hadoop.mean_bytes() > db.mean_bytes());
        assert!(hadoop.mean_bytes() > 900.0);
        assert!(db.mean_bytes() < 400.0);
    }

    #[test]
    fn sampling_matches_weights() {
        let m = PacketMix::web();
        let mut rng = DetRng::from_label(1, "mix");
        let n = 100_000;
        let mut count_256 = 0;
        for _ in 0..n {
            let s = m.sample(&mut rng);
            assert!(m.entries().iter().any(|&(e, _)| e == s));
            if s == 256 {
                count_256 += 1;
            }
        }
        let frac = count_256 as f64 / n as f64;
        assert!((frac - 0.30).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn every_entry_frequency_matches_its_weight() {
        // Regression for the sample() fallthrough: each entry of each mix
        // — the final one included — must be drawn in proportion to its
        // declared weight.
        for m in PacketMix::fig8b() {
            let mut rng = DetRng::from_label(17, m.name);
            let n = 200_000u32;
            let mut counts: Vec<u64> = vec![0; m.entries().len()];
            for _ in 0..n {
                let s = m.sample(&mut rng);
                let idx = m
                    .entries()
                    .iter()
                    .position(|&(e, _)| e == s)
                    .expect("sample outside the table");
                counts[idx] += 1;
            }
            let total: f64 = m.entries().iter().map(|&(_, w)| w).sum();
            for (&(size, w), &c) in m.entries().iter().zip(&counts) {
                let got = c as f64 / n as f64;
                let want = w / total;
                assert!(
                    (got - want).abs() < 0.005,
                    "{} size {size}: got {got}, want {want}",
                    m.name
                );
            }
        }
    }
}
