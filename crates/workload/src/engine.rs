//! The [`FlowEngine`] trait — one driving surface over every simulator —
//! plus the [`FailureSchedule`] of timed link fail/restore events.
//!
//! The paper's evaluation is a *matrix*: workloads × engines ×
//! topologies × failure conditions (§6, Appendix E). Before this trait
//! each cell of that matrix needed its own entry point
//! (`Scenario::run_fabric`, `run_fabric_sharded`, `run_transport`);
//! now any engine that can accept [`FlowSpec`]s, run to a horizon and
//! report [`FlowStats`] plugs into one generic [`Scenario::run`] — and
//! into the declarative experiment pipeline built on top of it in
//! `stardust-bench`.
//!
//! Three engine families implement it:
//!
//! * [`FabricEngine`] — the cell-accurate §6.2 Stardust fabric
//!   (finite message flows through VOQs, credits, packing, spraying).
//! * [`ShardedFabricEngine`] — the same fabric partitioned over OS
//!   threads, bit-identical to the sequential engine by construction.
//! * [`TransportFlowEngine`] — a [`TransportSim`] wrapped together with
//!   one [`Protocol`]: the §6.3 fat-tree comparison environment.
//!
//! Link failure is an *optional* capability: the fabric engines
//! implement [`FlowEngine::fail_link`] / [`FlowEngine::restore_link`]
//! (reachability propagation reroutes around the dead direction, the
//! Appendix E mechanism), while the abstract transport model reports
//! the events as unsupported and keeps running.
//!
//! [`Scenario::run`]: crate::Scenario::run

use crate::scenario::FlowSpec;
use stardust_fabric::{FabricEngine, ShardedFabricEngine};
use stardust_sim::{CoreKind, DetRng, FlowStats, SimDuration, SimTime};
use stardust_topo::LinkId;
use stardust_transport::{FlowId, Protocol, TransportSim};

/// A lazily generated, time-ordered stream of flows — the pull side of
/// streaming admission ([`FlowEngine::offer_until`]). Any
/// `Peekable<Iterator<Item = FlowSpec>>` is a `FlowSource` (notably
/// [`Scenario::flow_source`](crate::Scenario::flow_source)`.peekable()`),
/// so scenario generation never has to materialize its flow list.
pub trait FlowSource {
    /// Start time of the next flow, without consuming it (`None` when
    /// the stream is exhausted).
    fn peek_start(&mut self) -> Option<SimTime>;

    /// Pull the next flow.
    fn next_flow(&mut self) -> Option<FlowSpec>;
}

impl<I: Iterator<Item = FlowSpec>> FlowSource for std::iter::Peekable<I> {
    fn peek_start(&mut self) -> Option<SimTime> {
        self.peek().map(|f| f.start)
    }

    fn next_flow(&mut self) -> Option<FlowSpec> {
        self.next()
    }
}

/// Flows pulled per [`FlowEngine::offer`] call inside
/// [`FlowEngine::offer_until`] — bounds the admission scratch buffer
/// regardless of how many arrivals one window covers.
const OFFER_BATCH: usize = 4_096;

/// A simulator that can be offered finite flows, run to a horizon, and
/// report the engine-agnostic FCT table. See the module docs.
pub trait FlowEngine {
    /// Number of addressable endpoints (Fabric Adapters for the fabric
    /// engines, hosts for the transport simulator); [`FlowSpec::src`] /
    /// [`FlowSpec::dst`] must stay below it.
    fn num_nodes(&self) -> usize;

    /// Offer finite flows to the engine. May be called repeatedly; flows
    /// whose `start` has already passed begin immediately.
    fn offer(&mut self, flows: &[FlowSpec]);

    /// Streaming admission: pull every flow with `start ≤ until` from
    /// `source` and offer it, in stream order, batching through
    /// [`FlowEngine::offer`] in bounded slices. With a time-ordered
    /// source the result is byte-identical to offering the whole list
    /// eagerly — engines schedule flow starts under content-derived
    /// event keys, so *when* a future flow was offered never affects
    /// event order. The default implementation suits every engine;
    /// it exists on the trait so engines with native admission queues
    /// can override it.
    fn offer_until(&mut self, source: &mut dyn FlowSource, until: SimTime) {
        let mut batch: Vec<FlowSpec> = Vec::new();
        while let Some(start) = source.peek_start() {
            if start > until {
                break;
            }
            batch.push(source.next_flow().expect("peeked a flow"));
            if batch.len() == OFFER_BATCH {
                self.offer(&batch);
                batch.clear();
            }
        }
        if !batch.is_empty() {
            self.offer(&batch);
        }
    }

    /// Advance simulated time to `horizon` (and commit the clock there,
    /// so back-to-back windowed runs cover exactly their spans).
    fn run_until(&mut self, horizon: SimTime);

    /// The FCT table of the engine's finite flows, in offer order.
    ///
    /// [`TransportFlowEngine`] restricts this to the flows offered
    /// through the trait (its inner sim can carry background flows).
    /// The fabric engines report **every** message flow — they have no
    /// side channel for background messages, so the two views coincide
    /// whenever flows are offered only through this trait.
    fn flow_stats(&self) -> FlowStats;

    /// Take `link` down, if the engine models link state. Returns
    /// whether the event was applied (the default implementation
    /// reports `false`: unsupported).
    fn fail_link(&mut self, link: LinkId) -> bool {
        let _ = link;
        false
    }

    /// Bring `link` back up, if the engine models link state. Returns
    /// whether the event was applied.
    fn restore_link(&mut self, link: LinkId) -> bool {
        let _ = link;
        false
    }

    /// Set `link`'s bit-error rate to `ppm` parts-per-million (0 clears
    /// it — a gray link, §5.10), if the engine models link errors.
    /// Returns whether the event was applied.
    fn set_link_error_ppm(&mut self, link: LinkId, ppm: u32) -> bool {
        let _ = (link, ppm);
        false
    }
}

impl<K: CoreKind> FlowEngine for FabricEngine<K> {
    fn num_nodes(&self) -> usize {
        self.num_fas()
    }

    fn offer(&mut self, flows: &[FlowSpec]) {
        for f in flows {
            // Destination port 0 — one host NIC per FA, matching the
            // transport topology's one-NIC hosts; traffic class 0.
            self.add_message(f.src, f.dst, 0, 0, f.bytes, f.start);
        }
    }

    fn run_until(&mut self, horizon: SimTime) {
        FabricEngine::run_until(self, horizon);
    }

    fn flow_stats(&self) -> FlowStats {
        self.stats().flows.clone()
    }

    fn fail_link(&mut self, link: LinkId) -> bool {
        FabricEngine::fail_link(self, link);
        true
    }

    fn restore_link(&mut self, link: LinkId) -> bool {
        FabricEngine::restore_link(self, link);
        true
    }

    fn set_link_error_ppm(&mut self, link: LinkId, ppm: u32) -> bool {
        FabricEngine::set_link_error_rate(self, link, f64::from(ppm) / 1e6);
        true
    }
}

impl<K: CoreKind> FlowEngine for ShardedFabricEngine<K>
where
    FabricEngine<K>: Send,
{
    fn num_nodes(&self) -> usize {
        self.num_fas()
    }

    fn offer(&mut self, flows: &[FlowSpec]) {
        for f in flows {
            self.add_message(f.src, f.dst, 0, 0, f.bytes, f.start);
        }
    }

    fn run_until(&mut self, horizon: SimTime) {
        ShardedFabricEngine::run_until(self, horizon);
    }

    fn flow_stats(&self) -> FlowStats {
        self.stats().flows
    }

    fn fail_link(&mut self, link: LinkId) -> bool {
        ShardedFabricEngine::fail_link(self, link);
        true
    }

    fn restore_link(&mut self, link: LinkId) -> bool {
        ShardedFabricEngine::restore_link(self, link);
        true
    }

    fn set_link_error_ppm(&mut self, link: LinkId, ppm: u32) -> bool {
        ShardedFabricEngine::set_link_error_rate(self, link, f64::from(ppm) / 1e6);
        true
    }
}

/// A [`TransportSim`] bound to one [`Protocol`]: the missing piece that
/// lets the §6.3 fat-tree simulator (whose flows each carry their own
/// protocol) stand behind the protocol-less [`FlowEngine`] surface.
/// Records the ids of the flows offered through it, so
/// [`FlowEngine::flow_stats`] reports exactly those, in offer order —
/// background flows added directly on the inner sim are excluded.
pub struct TransportFlowEngine {
    sim: TransportSim,
    proto: Protocol,
    offered: Vec<FlowId>,
}

impl TransportFlowEngine {
    /// Wrap `sim`, sending every offered flow under `proto`.
    pub fn new(sim: TransportSim, proto: Protocol) -> Self {
        TransportFlowEngine {
            sim,
            proto,
            offered: Vec::new(),
        }
    }

    /// The wrapped protocol.
    pub fn protocol(&self) -> Protocol {
        self.proto
    }

    /// The inner simulator (for stats beyond the FCT table).
    pub fn sim(&self) -> &TransportSim {
        &self.sim
    }

    /// The inner simulator, mutably (e.g. to add background flows that
    /// stay out of [`FlowEngine::flow_stats`]).
    pub fn sim_mut(&mut self) -> &mut TransportSim {
        &mut self.sim
    }
}

impl FlowEngine for TransportFlowEngine {
    fn num_nodes(&self) -> usize {
        self.sim.num_hosts()
    }

    fn offer(&mut self, flows: &[FlowSpec]) {
        for f in flows {
            self.offered.push(
                self.sim
                    .add_flow(self.proto, f.src, f.dst, f.bytes, f.start),
            );
        }
    }

    fn run_until(&mut self, horizon: SimTime) {
        self.sim.run_until(horizon);
    }

    fn flow_stats(&self) -> FlowStats {
        self.sim.flow_stats_for(self.offered.iter().copied())
    }
}

/// What a [`LinkEvent`] does to its link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkAction {
    /// Take the link down.
    Fail,
    /// Bring the link back up.
    Restore,
    /// Make the link gray: set its bit-error rate to `ppm`
    /// parts-per-million (0 clears it). Integer ppm keeps the event
    /// `Eq`/hashable; the engines convert to a rate. A rate past the
    /// §5.10 faulty threshold (1%, i.e. 10 000 ppm) makes the
    /// reachability protocol exclude the link on its own.
    Degrade {
        /// Bit-error rate in parts-per-million.
        ppm: u32,
    },
}

/// One timed link-state change of a [`FailureSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEvent {
    /// When the change happens.
    pub at: SimTime,
    /// Which full-duplex link.
    pub link: LinkId,
    /// Fail or restore.
    pub action: LinkAction,
}

/// A declarative schedule of link fail/restore events — Appendix-E-style
/// churn as experiment *data* instead of hand-rolled driver loops.
///
/// [`Scenario::run_with_failures`] interleaves the schedule with the
/// engine's run loop: it runs to each event's time, applies the event
/// through [`FlowEngine::fail_link`] / [`FlowEngine::restore_link`],
/// and continues — so the same spec exercises churn on the sequential
/// fabric, the sharded fabric (bit-identically), or any future engine.
///
/// [`Scenario::run_with_failures`]: crate::Scenario::run_with_failures
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureSchedule {
    events: Vec<LinkEvent>,
}

impl FailureSchedule {
    /// An empty schedule (no link ever changes state).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one event; the schedule keeps itself sorted by time (ties in
    /// insertion order, so fail-then-restore of the same instant apply
    /// in the order written).
    pub fn push(&mut self, ev: LinkEvent) {
        let pos = self.events.partition_point(|e| e.at <= ev.at);
        self.events.insert(pos, ev);
    }

    /// Builder form: fail `link` at `at`.
    pub fn fail_at(mut self, at: SimTime, link: LinkId) -> Self {
        self.push(LinkEvent {
            at,
            link,
            action: LinkAction::Fail,
        });
        self
    }

    /// Builder form: restore `link` at `at`.
    pub fn restore_at(mut self, at: SimTime, link: LinkId) -> Self {
        self.push(LinkEvent {
            at,
            link,
            action: LinkAction::Restore,
        });
        self
    }

    /// Builder form: set `link`'s error rate to `ppm` parts-per-million
    /// at `at` (0 clears it).
    pub fn degrade_at(mut self, at: SimTime, link: LinkId, ppm: u32) -> Self {
        self.push(LinkEvent {
            at,
            link,
            action: LinkAction::Degrade { ppm },
        });
        self
    }

    /// Correlated pod loss: every link in `links` fails at `at` and is
    /// restored at `restore_at` — the "whole pod goes dark at one
    /// instant" Appendix-E case a single-link schedule cannot express.
    pub fn pod_loss(mut self, at: SimTime, restore_at: SimTime, links: &[LinkId]) -> Self {
        assert!(restore_at > at, "pod must be restored after it fails");
        for &link in links {
            self.push(LinkEvent {
                at,
                link,
                action: LinkAction::Fail,
            });
            self.push(LinkEvent {
                at: restore_at,
                link,
                action: LinkAction::Restore,
            });
        }
        self
    }

    /// Seeded link flapping: `flaps` fail/restore pairs spread over
    /// `[start, start + span)`. Each flap is confined to its own time
    /// slot — down in the slot's first half, back up in its second — so
    /// the schedule passes [`FailureSchedule::validate`] by construction
    /// even when the same link is drawn twice. Which link flaps and
    /// where inside the slot it flaps is drawn from the labelled
    /// [`DetRng`] stream: the same `(seed, label, links, …)` always
    /// yields the same storm, on every shard count.
    pub fn flap_storm(
        mut self,
        seed: u64,
        label: &str,
        links: &[LinkId],
        start: SimTime,
        span: SimDuration,
        flaps: usize,
    ) -> Self {
        assert!(!links.is_empty(), "a flap storm needs candidate links");
        let slot_ps = span.as_ps() / flaps.max(1) as u64;
        assert!(slot_ps >= 2, "span too short for {flaps} flaps");
        let mut rng = DetRng::from_label(seed, label).split_u64(links.len() as u64);
        for i in 0..flaps as u64 {
            let link = links[rng.index(links.len())];
            let slot = start.as_ps() + i * slot_ps;
            let down = slot + rng.below(slot_ps / 2);
            let up = slot + slot_ps / 2 + rng.below(slot_ps / 2);
            self.push(LinkEvent {
                at: SimTime(down),
                link,
                action: LinkAction::Fail,
            });
            self.push(LinkEvent {
                at: SimTime(up),
                link,
                action: LinkAction::Restore,
            });
        }
        self
    }

    /// Seeded gray links: every link in `links` degrades at `at` to an
    /// error rate drawn from `[1, max_ppm]` ppm on the labelled
    /// [`DetRng`] stream, and is cleared (ppm = 0) at `clear_at`.
    pub fn gray_storm(
        mut self,
        seed: u64,
        label: &str,
        links: &[LinkId],
        at: SimTime,
        clear_at: SimTime,
        max_ppm: u32,
    ) -> Self {
        assert!(clear_at > at, "gray links must clear after they degrade");
        assert!(max_ppm >= 1, "max_ppm must be at least 1");
        let mut rng = DetRng::from_label(seed, label).split_u64(links.len() as u64);
        for &link in links {
            let ppm = 1 + rng.below(u64::from(max_ppm)) as u32;
            self.push(LinkEvent {
                at,
                link,
                action: LinkAction::Degrade { ppm },
            });
            self.push(LinkEvent {
                at: clear_at,
                link,
                action: LinkAction::Degrade { ppm: 0 },
            });
        }
        self
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[LinkEvent] {
        &self.events
    }

    /// Whether the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check the schedule's per-link state machine: failing a link that
    /// is already failed, or restoring one that is not failed, is a spec
    /// error. The engines would treat either as a deterministic no-op,
    /// but a schedule that relies on that is almost always a typo — so
    /// the experiment pipeline rejects it up front. Degrades carry no
    /// up/down state and are always legal. Same-instant events are
    /// checked in their (insertion-order) apply order.
    pub fn validate(&self) -> Result<(), String> {
        let mut down: Vec<LinkId> = Vec::new();
        for ev in &self.events {
            match ev.action {
                LinkAction::Fail => {
                    if down.contains(&ev.link) {
                        return Err(format!(
                            "failure schedule: link {} fails at {:?} while already failed",
                            ev.link.0, ev.at
                        ));
                    }
                    down.push(ev.link);
                }
                LinkAction::Restore => match down.iter().position(|&l| l == ev.link) {
                    Some(i) => {
                        down.swap_remove(i);
                    }
                    None => {
                        return Err(format!(
                            "failure schedule: link {} restored at {:?} while not failed",
                            ev.link.0, ev.at
                        ));
                    }
                },
                LinkAction::Degrade { .. } => {}
            }
        }
        Ok(())
    }

    /// Drive `engine` from its current time to `horizon`, applying every
    /// event scheduled before `horizon` at its exact time. Returns how
    /// many events the engine actually applied (an engine without link
    /// state reports all of them unsupported — the run still completes).
    pub fn drive(&self, engine: &mut impl FlowEngine, horizon: SimTime) -> usize {
        let mut applied = 0;
        for ev in &self.events {
            if ev.at >= horizon {
                break;
            }
            engine.run_until(ev.at);
            let ok = match ev.action {
                LinkAction::Fail => engine.fail_link(ev.link),
                LinkAction::Restore => engine.restore_link(ev.link),
                LinkAction::Degrade { ppm } => engine.set_link_error_ppm(ev.link, ppm),
            };
            applied += usize::from(ok);
        }
        engine.run_until(horizon);
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_keeps_time_order() {
        let s = FailureSchedule::new()
            .restore_at(SimTime::from_micros(30), LinkId(1))
            .fail_at(SimTime::from_micros(10), LinkId(1))
            .fail_at(SimTime::from_micros(20), LinkId(2));
        let times: Vec<_> = s.events().iter().map(|e| e.at).collect();
        assert_eq!(
            times,
            vec![
                SimTime::from_micros(10),
                SimTime::from_micros(20),
                SimTime::from_micros(30)
            ]
        );
        assert!(!s.is_empty());
        assert!(FailureSchedule::new().is_empty());
    }

    #[test]
    fn same_instant_events_apply_in_insertion_order() {
        let t = SimTime::from_micros(5);
        let s = FailureSchedule::new()
            .fail_at(t, LinkId(3))
            .restore_at(t, LinkId(3));
        assert_eq!(s.events()[0].action, LinkAction::Fail);
        assert_eq!(s.events()[1].action, LinkAction::Restore);
    }

    /// A mock engine that records the interleaving of run/fail/restore.
    struct Probe {
        log: Vec<String>,
        now: SimTime,
    }

    impl FlowEngine for Probe {
        fn num_nodes(&self) -> usize {
            2
        }
        fn offer(&mut self, flows: &[FlowSpec]) {
            self.log.push(format!("offer {}", flows.len()));
        }
        fn run_until(&mut self, horizon: SimTime) {
            assert!(horizon >= self.now, "schedule ran backwards");
            self.now = horizon;
            self.log.push(format!("run {}", horizon.as_nanos_f64()));
        }
        fn flow_stats(&self) -> FlowStats {
            FlowStats::new()
        }
        fn fail_link(&mut self, link: LinkId) -> bool {
            self.log.push(format!("fail {}", link.0));
            true
        }
        fn restore_link(&mut self, link: LinkId) -> bool {
            self.log.push(format!("restore {}", link.0));
            true
        }
        fn set_link_error_ppm(&mut self, link: LinkId, ppm: u32) -> bool {
            self.log.push(format!("degrade {} {}", link.0, ppm));
            true
        }
    }

    #[test]
    fn drive_interleaves_events_with_run_windows() {
        let s = FailureSchedule::new()
            .fail_at(SimTime::from_nanos(100), LinkId(0))
            .restore_at(SimTime::from_nanos(300), LinkId(0))
            // At the horizon exactly: must NOT apply (horizon-exclusive).
            .fail_at(SimTime::from_nanos(1000), LinkId(1));
        let mut p = Probe {
            log: Vec::new(),
            now: SimTime::ZERO,
        };
        let applied = s.drive(&mut p, SimTime::from_nanos(1000));
        assert_eq!(applied, 2);
        assert_eq!(
            p.log,
            vec!["run 100", "fail 0", "run 300", "restore 0", "run 1000"]
        );
    }

    #[test]
    fn degrade_events_drive_the_error_process() {
        let s = FailureSchedule::new()
            .degrade_at(SimTime::from_nanos(50), LinkId(2), 40_000)
            .degrade_at(SimTime::from_nanos(200), LinkId(2), 0);
        let mut p = Probe {
            log: Vec::new(),
            now: SimTime::ZERO,
        };
        assert_eq!(s.drive(&mut p, SimTime::from_nanos(500)), 2);
        assert_eq!(
            p.log,
            vec![
                "run 50",
                "degrade 2 40000",
                "run 200",
                "degrade 2 0",
                "run 500"
            ]
        );
    }

    #[test]
    fn validate_accepts_wellformed_and_flags_stateful_typos() {
        let ok = FailureSchedule::new()
            .fail_at(SimTime::from_micros(1), LinkId(0))
            .degrade_at(SimTime::from_micros(2), LinkId(1), 100)
            .restore_at(SimTime::from_micros(3), LinkId(0))
            .fail_at(SimTime::from_micros(4), LinkId(0));
        assert!(ok.validate().is_ok());

        // Failing an already-failed link is a spec error…
        let double_fail = FailureSchedule::new()
            .fail_at(SimTime::from_micros(1), LinkId(5))
            .fail_at(SimTime::from_micros(2), LinkId(5));
        let err = double_fail.validate().unwrap_err();
        assert!(err.contains("already failed"), "got: {err}");

        // …as is restoring a link that was never failed.
        let stray_restore = FailureSchedule::new().restore_at(SimTime::from_micros(1), LinkId(3));
        let err = stray_restore.validate().unwrap_err();
        assert!(err.contains("not failed"), "got: {err}");

        // Same-instant fail-then-restore is legal (insertion order);
        // restore-then-fail of a link that is up is not.
        let t = SimTime::from_micros(9);
        assert!(FailureSchedule::new()
            .fail_at(t, LinkId(1))
            .restore_at(t, LinkId(1))
            .validate()
            .is_ok());
        assert!(FailureSchedule::new()
            .restore_at(t, LinkId(1))
            .fail_at(t, LinkId(1))
            .validate()
            .is_err());
    }

    #[test]
    fn pod_loss_is_correlated_and_valid() {
        let pod = [LinkId(0), LinkId(1), LinkId(2)];
        let s = FailureSchedule::new().pod_loss(
            SimTime::from_micros(10),
            SimTime::from_micros(50),
            &pod,
        );
        s.validate().expect("generated storm must be well-formed");
        assert_eq!(s.events().len(), 6);
        // All three links go down at the same instant…
        let fails: Vec<_> = s
            .events()
            .iter()
            .filter(|e| e.action == LinkAction::Fail)
            .collect();
        assert_eq!(fails.len(), 3);
        assert!(fails.iter().all(|e| e.at == SimTime::from_micros(10)));
        // …and come back at the same instant.
        let restores: Vec<_> = s
            .events()
            .iter()
            .filter(|e| e.action == LinkAction::Restore)
            .collect();
        assert!(restores.iter().all(|e| e.at == SimTime::from_micros(50)));
    }

    #[test]
    fn flap_storm_is_seeded_deterministic_and_valid() {
        let links: Vec<LinkId> = (0..8).map(LinkId).collect();
        let mk = |seed| {
            FailureSchedule::new().flap_storm(
                seed,
                "test-flaps",
                &links,
                SimTime::from_micros(100),
                SimDuration::from_micros(800),
                10,
            )
        };
        let a = mk(42);
        a.validate().expect("generated storm must be well-formed");
        assert_eq!(a.events().len(), 20);
        assert_eq!(a, mk(42), "same seed must reproduce the storm");
        assert_ne!(a, mk(43), "different seeds must differ");
        // Every event lands inside the storm window.
        assert!(a
            .events()
            .iter()
            .all(|e| e.at >= SimTime::from_micros(100) && e.at < SimTime::from_micros(900)));
    }

    #[test]
    fn gray_storm_degrades_and_clears_every_link() {
        let links = [LinkId(4), LinkId(7)];
        let s = FailureSchedule::new().gray_storm(
            11,
            "test-gray",
            &links,
            SimTime::from_micros(5),
            SimTime::from_micros(80),
            50_000,
        );
        s.validate().expect("degrades are always legal");
        assert_eq!(s.events().len(), 4);
        for &link in &links {
            let evs: Vec<_> = s.events().iter().filter(|e| e.link == link).collect();
            assert_eq!(evs.len(), 2);
            assert!(
                matches!(evs[0].action, LinkAction::Degrade { ppm } if (1..=50_000).contains(&ppm))
            );
            assert_eq!(evs[1].action, LinkAction::Degrade { ppm: 0 });
        }
    }

    #[test]
    fn engines_without_link_state_count_zero_applied() {
        struct NoLinks;
        impl FlowEngine for NoLinks {
            fn num_nodes(&self) -> usize {
                2
            }
            fn offer(&mut self, _flows: &[FlowSpec]) {}
            fn run_until(&mut self, _horizon: SimTime) {}
            fn flow_stats(&self) -> FlowStats {
                FlowStats::new()
            }
        }
        let s = FailureSchedule::new().fail_at(SimTime::from_nanos(1), LinkId(0));
        assert_eq!(s.drive(&mut NoLinks, SimTime::from_nanos(10)), 0);
    }
}
