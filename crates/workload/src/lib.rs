//! # stardust-workload — traffic generation for the evaluation
//!
//! The workloads the paper evaluates with:
//!
//! * [`sizes`] — packet-size mixes shaped on the Facebook datacenter
//!   measurements of Roy et al. \[74\] (the paper's Fig 8(b) "DB", "Web"
//!   and "Hadoop" traces).
//! * [`flows`] — flow-size distributions (the Fig 10(b) FCT experiment
//!   replays the Facebook Web workload's flow sizes).
//! * [`patterns`] — communication patterns: random permutations
//!   (Fig 10(a)), incast groups (Fig 10(c)), all-to-all pairs (§6.2).
//! * [`scenario`] — the shared scenario driver: one seeded spec expanded
//!   into a flow list and offered to any engine (Fig 10 a–c).
//! * [`engine`] — the [`FlowEngine`] trait every simulator stands
//!   behind (cell-accurate fabric, sharded fabric, fat-tree transports),
//!   plus the [`FailureSchedule`] of timed link fail/restore events.

pub mod engine;
pub mod flows;
pub mod patterns;
pub mod scenario;
pub mod sizes;

pub use engine::{
    FailureSchedule, FlowEngine, FlowSource, LinkAction, LinkEvent, TransportFlowEngine,
};
pub use flows::FlowSizeDist;
pub use patterns::{all_to_all_pairs, incast_sources, permutation};
pub use scenario::{FlowSpec, Scenario, ScenarioKind};
pub use sizes::PacketMix;
