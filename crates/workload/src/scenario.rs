//! One workload spec, any engine — the shared scenario driver behind
//! the Fig 10 a–c experiments and the declarative experiment pipeline.
//!
//! A [`Scenario`] expands deterministically (from its seed) into a list
//! of [`FlowSpec`]s — *who sends how many bytes to whom, starting when* —
//! and the same list can be offered to any [`FlowEngine`] through one
//! generic entry point, [`Scenario::run`]:
//!
//! * the cell-accurate [`FabricEngine`](stardust_fabric::FabricEngine)
//!   (finite flows with **no per-flow transport machinery**, paced
//!   purely by the fabric's credit scheduler — the paper's central
//!   claim under test), sequential or sharded;
//! * the §6.3 fat-tree transport simulator under any of its transports
//!   (TCP, DCTCP, MPTCP, DCQCN, or the htsim-style Stardust model),
//!   via [`TransportFlowEngine`](crate::TransportFlowEngine).
//!
//! Every engine returns the engine-agnostic [`FlowStats`] table from
//! `stardust-sim`, so FCT percentiles print side by side from one spec.
//! [`Scenario::run_with_failures`] additionally threads a
//! [`FailureSchedule`] of timed link fail/restore events through the
//! run — Appendix-E-style churn against finite-flow FCT workloads.

use crate::engine::{FailureSchedule, FlowEngine, FlowSource};
use crate::flows::FlowSizeDist;
use crate::patterns::{all_to_all_pairs, incast_sources, permutation};
use stardust_sim::{DetRng, FlowStats, SimDuration, SimTime};

/// Nanoseconds per second, as f64 (arrival-gap conversion).
const NS_PER_SEC: f64 = 1e9;

/// One finite flow of a scenario: `bytes` from `src` to `dst`, offered at
/// `start`. Node indices are engine-relative (hosts for the transport
/// simulator, Fabric Adapters for the fabric engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSpec {
    /// Source node index.
    pub src: u32,
    /// Destination node index.
    pub dst: u32,
    /// Flow size in bytes.
    pub bytes: u64,
    /// Offered-to-the-network time.
    pub start: SimTime,
}

/// The communication patterns of the paper's headline evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioKind {
    /// Fig 10(a): a random derangement — every node sends one
    /// `flow_bytes` flow to its partner at t = 0, fully loading the
    /// network. Per-flow goodput = bytes / FCT.
    Permutation {
        /// Bytes per flow.
        flow_bytes: u64,
    },
    /// Fig 10(c): `backends` distinct sources all answer frontend node 0
    /// with a `response_bytes` response at t = 0. First vs last FCT
    /// measures both performance and fairness.
    Incast {
        /// Number of responding backends (clamped to the node count − 1).
        backends: usize,
        /// Response size in bytes.
        response_bytes: u64,
    },
    /// Fig 10(b): `n_flows` flows drawn from a heavy-tailed size
    /// distribution over uniformly random (src ≠ dst) pairs, arriving as
    /// a Poisson process.
    Mix {
        /// Flow-size distribution (e.g. [`FlowSizeDist::fb_web`]).
        dist: FlowSizeDist,
        /// Number of flows to offer.
        n_flows: usize,
        /// Mean inter-arrival gap **per node**: the network-wide Poisson
        /// process uses `node_gap / n_nodes`, so the offered per-node
        /// load (`dist.mean() × 8 / node_gap`) is invariant across engine
        /// populations — a 16-FA fabric and a 128-host fat-tree see the
        /// same load per NIC from one spec.
        node_gap: SimDuration,
    },
    /// All-to-all shuffle (map-reduce style): every ordered (src, dst)
    /// pair carries one `bytes_per_pair` transfer, so each node sends —
    /// and receives — exactly `n_nodes − 1` flows. Transfers start as a
    /// Poisson process in a seed-shuffled pair order, with the same
    /// per-node load normalization as [`ScenarioKind::Mix`]: the
    /// network-wide gap is `node_gap / n_nodes`, keeping the offered
    /// per-NIC load invariant across engine populations.
    Shuffle {
        /// Bytes for each src→dst pair transfer.
        bytes_per_pair: u64,
        /// Mean per-node inter-arrival gap of the Poisson start process.
        node_gap: SimDuration,
    },
    /// A long-horizon, datacenter-in-the-small service workload: three
    /// concurrent tenants merged into one time-ordered arrival stream,
    /// capped at `n_flows` flows total.
    ///
    /// * **Request mix** — a Poisson process at mean per-node gap
    ///   `node_gap` (network-wide `node_gap / n_nodes`, the
    ///   [`ScenarioKind::Mix`] normalization), thinned by a diurnal load
    ///   curve: an arrival at time `t` survives with probability
    ///   `diurnal_min + (1 − diurnal_min) · (½ − ½·cos(2π t / diurnal_period))`,
    ///   so offered load swings sinusoidally between `diurnal_min` of
    ///   peak (at `t = 0`) and peak (at half a period). Each surviving
    ///   flow draws its size from [`FlowSizeDist::fb_hadoop`] with
    ///   probability `hadoop_share`, else [`FlowSizeDist::fb_web`].
    /// * **Background shuffle** — one `shuffle_bytes` transfer every
    ///   `shuffle_period`, walking the ordered (src, dst) pairs
    ///   round-robin (transfer *k* starts at `(k+1) · shuffle_period`).
    ///   Disabled when `shuffle_bytes = 0`.
    /// * **Periodic incast** — every `incast_period`, a rotating
    ///   frontend (`wave mod n_nodes`) receives `incast_bytes` responses
    ///   from each of the `incast_backends` nodes after it. Disabled
    ///   when `incast_backends = 0`; requires
    ///   `incast_backends ≤ n_nodes − 1` (see [`Scenario::validate_for`]).
    ///
    /// Designed for the streaming path ([`Scenario::flow_source`] +
    /// [`Scenario::run_streamed`]): generation is O(1) memory, so
    /// million-flow, hour-horizon runs never materialize a list.
    Service {
        /// Total flows across all tenants (the stream's length).
        n_flows: usize,
        /// Mean per-node inter-arrival gap of the request mix at peak.
        node_gap: SimDuration,
        /// Probability a mix flow draws the Hadoop size distribution.
        hadoop_share: f64,
        /// Period of the diurnal load curve.
        diurnal_period: SimDuration,
        /// Trough-to-peak load ratio in (0, 1].
        diurnal_min: f64,
        /// Bytes per background shuffle transfer (0 = tenant off).
        shuffle_bytes: u64,
        /// Gap between consecutive shuffle transfers.
        shuffle_period: SimDuration,
        /// Responding backends per incast wave (0 = tenant off).
        incast_backends: usize,
        /// Bytes per incast response.
        incast_bytes: u64,
        /// Gap between incast waves.
        incast_period: SimDuration,
    },
}

/// A named, seeded workload scenario (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (labels experiment output and salts the flow-list
    /// RNG). Owned, so scenarios parsed from experiment specs at runtime
    /// can carry their own names.
    pub name: String,
    /// Master seed; the flow list is a pure function of `(kind, seed,
    /// n_nodes)`.
    pub seed: u64,
    /// The communication pattern.
    pub kind: ScenarioKind,
}

impl Scenario {
    /// Expand into the flow list for an `n_nodes`-node network. Pure and
    /// deterministic: every engine is offered byte-identical workloads.
    /// Materializes [`Scenario::flow_source`] — the two are pinned
    /// bit-identical by test, so eager and streaming paths cannot
    /// diverge.
    pub fn flows(&self, n_nodes: usize) -> Vec<FlowSpec> {
        self.flow_source(n_nodes).collect()
    }

    /// The scenario as a lazy, time-ordered [`FlowSpec`] iterator: flows
    /// come out in non-decreasing `start` order without materializing
    /// the list, so streaming admission ([`FlowEngine::offer_until`] /
    /// [`Scenario::run_streamed`]) holds only in-flight state.
    /// Per-flow generation cost is O(1); construction is O(n_nodes) for
    /// [`ScenarioKind::Permutation`] / [`ScenarioKind::Incast`] and
    /// O(n_nodes²) for [`ScenarioKind::Shuffle`] (inherent to those
    /// patterns); [`ScenarioKind::Mix`] and [`ScenarioKind::Service`]
    /// are O(1) throughout.
    pub fn flow_source(&self, n_nodes: usize) -> ScenarioFlows {
        assert!(n_nodes >= 2, "a scenario needs at least two nodes");
        let mut rng = DetRng::from_label(self.seed, &self.name);
        let gen = match &self.kind {
            ScenarioKind::Permutation { flow_bytes } => {
                let perm = permutation(n_nodes, &mut rng);
                let list: Vec<FlowSpec> = (0..n_nodes as u32)
                    .map(|src| FlowSpec {
                        src,
                        dst: perm[src as usize],
                        bytes: *flow_bytes,
                        start: SimTime::ZERO,
                    })
                    .collect();
                FlowGen::List(list.into_iter())
            }
            ScenarioKind::Incast {
                backends,
                response_bytes,
            } => {
                let frontend = 0u32;
                let n_backends = (*backends).min(n_nodes - 1);
                let list: Vec<FlowSpec> = incast_sources(n_nodes, frontend, n_backends, &mut rng)
                    .into_iter()
                    .map(|src| FlowSpec {
                        src,
                        dst: frontend,
                        bytes: *response_bytes,
                        start: SimTime::ZERO,
                    })
                    .collect();
                FlowGen::List(list.into_iter())
            }
            ScenarioKind::Mix {
                dist,
                n_flows,
                node_gap,
            } => FlowGen::Mix {
                rng,
                dist: dist.clone(),
                remaining: *n_flows,
                n_nodes: n_nodes as u64,
                gap_secs: node_gap.as_secs_f64() / n_nodes as f64,
                t_ns: 0,
            },
            ScenarioKind::Shuffle {
                bytes_per_pair,
                node_gap,
            } => {
                let mut pairs = all_to_all_pairs(n_nodes);
                rng.shuffle(&mut pairs);
                FlowGen::Shuffle {
                    rng,
                    pairs: pairs.into_iter(),
                    bytes: (*bytes_per_pair).max(1),
                    gap_secs: node_gap.as_secs_f64() / n_nodes as f64,
                    t_ns: 0,
                }
            }
            ScenarioKind::Service {
                n_flows,
                node_gap,
                hadoop_share,
                diurnal_period,
                diurnal_min,
                shuffle_bytes,
                shuffle_period,
                incast_backends,
                incast_bytes,
                incast_period,
            } => {
                if let Err(e) = self.validate_for(n_nodes) {
                    panic!("{e}");
                }
                assert!(
                    (0.0..=1.0).contains(hadoop_share),
                    "hadoop_share out of [0,1]"
                );
                assert!(
                    *diurnal_min > 0.0 && *diurnal_min <= 1.0,
                    "diurnal_min out of (0,1]"
                );
                assert!(node_gap.as_ps() > 0 && diurnal_period.as_ps() > 0);
                assert!(*shuffle_bytes == 0 || shuffle_period.as_ps() > 0);
                assert!(*incast_backends == 0 || incast_period.as_ps() > 0);
                let mut g = ServiceGen {
                    n_nodes: n_nodes as u64,
                    remaining: *n_flows,
                    rng,
                    web: FlowSizeDist::fb_web(),
                    hadoop: FlowSizeDist::fb_hadoop(),
                    hadoop_share: *hadoop_share,
                    gap_secs: node_gap.as_secs_f64() / n_nodes as f64,
                    diurnal_period_ns: (diurnal_period.as_secs_f64() * NS_PER_SEC).round() as u64,
                    diurnal_min: *diurnal_min,
                    mix_t_ns: 0,
                    mix_next: None,
                    shuffle_bytes: *shuffle_bytes,
                    shuffle_period_ns: (shuffle_period.as_secs_f64() * NS_PER_SEC).round() as u64,
                    shuffle_k: 0,
                    shuffle_next: None,
                    incast_backends: *incast_backends as u64,
                    incast_bytes: (*incast_bytes).max(1),
                    incast_period_ns: (incast_period.as_secs_f64() * NS_PER_SEC).round() as u64,
                    incast_wave: 1,
                    incast_i: 0,
                    incast_next: None,
                };
                g.advance_mix();
                if g.shuffle_bytes > 0 {
                    g.advance_shuffle();
                }
                if g.incast_backends > 0 {
                    g.advance_incast();
                }
                FlowGen::Service(Box::new(g))
            }
        };
        ScenarioFlows { gen }
    }

    /// Check the scenario against an engine population. Unlike the
    /// silent clamp [`Scenario::flows`] historically applied (and keeps,
    /// for direct API use), this surfaces an impossible spec — e.g. an
    /// incast asking for more backends than the network has nodes — as
    /// an error the experiment pipeline can report.
    pub fn validate_for(&self, n_nodes: usize) -> Result<(), String> {
        let check_incast = |what: &str, backends: usize| {
            if backends > n_nodes.saturating_sub(1) {
                Err(format!(
                    "scenario '{}': {what} wants {backends} backends but an \
                     {n_nodes}-node engine has only {} possible sources",
                    self.name,
                    n_nodes.saturating_sub(1),
                ))
            } else {
                Ok(())
            }
        };
        match &self.kind {
            ScenarioKind::Incast { backends, .. } => check_incast("incast", *backends),
            ScenarioKind::Service {
                incast_backends, ..
            } => check_incast("the incast tenant", *incast_backends),
            _ => Ok(()),
        }
    }

    /// Offer the scenario to any [`FlowEngine`] — the cell-accurate
    /// fabric (sequential or sharded), the fat-tree transport simulator
    /// behind [`TransportFlowEngine`](crate::TransportFlowEngine), or
    /// anything else implementing the trait — run to `horizon` and
    /// return the FCT table of the scenario's own flows.
    pub fn run(&self, engine: &mut impl FlowEngine, horizon: SimTime) -> FlowStats {
        self.run_with_failures(engine, &FailureSchedule::default(), horizon)
    }

    /// As [`Scenario::run`], threading a [`FailureSchedule`] of timed
    /// link fail/restore events through the run: the engine runs to each
    /// event's time, the event is applied (engines without link state
    /// skip it), and the run continues to `horizon`.
    pub fn run_with_failures(
        &self,
        engine: &mut impl FlowEngine,
        failures: &FailureSchedule,
        horizon: SimTime,
    ) -> FlowStats {
        engine.offer(&self.flows(engine.num_nodes()));
        failures.drive(engine, horizon);
        engine.flow_stats()
    }

    /// As [`Scenario::run_with_failures`], but **streaming**: flows are
    /// drawn lazily from [`Scenario::flow_source`] and admitted in
    /// `window`-sized slices just ahead of the engine's clock, so the
    /// scenario never materializes its flow list — with a
    /// bounded-memory engine (`FabricConfig::bounded_flows`), total
    /// memory is in-flight state only, independent of flow count.
    ///
    /// Bit-identical to the eager path for every flow admitted: arrival
    /// order equals generation order, flow ids match, and newly offered
    /// flows always start at or after the engine's committed clock, so
    /// the content-keyed event order is unchanged. The one semantic
    /// difference: flows starting **after** `horizon` are never offered
    /// (an eager run registers them as offered-but-unfinished).
    ///
    /// Returns the stats plus how many link events the engine applied
    /// (as [`FailureSchedule::drive`] reports for the eager path).
    pub fn run_streamed(
        &self,
        engine: &mut impl FlowEngine,
        failures: &FailureSchedule,
        horizon: SimTime,
        window: SimDuration,
    ) -> (FlowStats, usize) {
        assert!(window > SimDuration::ZERO, "zero admission window");
        assert!(horizon < SimTime::MAX, "streaming needs a finite horizon");
        // Advance to `target` in admission windows. Runs at least once
        // even for target == now, so flows starting exactly at a
        // boundary are offered before the engine executes it — the same
        // offer-before-run order the eager path guarantees globally.
        fn advance_to<E: FlowEngine>(
            engine: &mut E,
            source: &mut dyn FlowSource,
            now: &mut SimTime,
            target: SimTime,
            window: SimDuration,
        ) {
            loop {
                let wend = if target.since(*now) <= window {
                    target
                } else {
                    *now + window
                };
                engine.offer_until(source, wend);
                engine.run_until(wend);
                *now = wend;
                if *now >= target {
                    break;
                }
            }
        }
        let mut source = self.flow_source(engine.num_nodes()).peekable();
        let mut now = SimTime::ZERO;
        let mut applied = 0;
        for ev in failures.events() {
            if ev.at >= horizon {
                break;
            }
            advance_to(engine, &mut source, &mut now, ev.at, window);
            let ok = match ev.action {
                crate::engine::LinkAction::Fail => engine.fail_link(ev.link),
                crate::engine::LinkAction::Restore => engine.restore_link(ev.link),
                crate::engine::LinkAction::Degrade { ppm } => {
                    engine.set_link_error_ppm(ev.link, ppm)
                }
            };
            applied += usize::from(ok);
        }
        advance_to(engine, &mut source, &mut now, horizon, window);
        (engine.flow_stats(), applied)
    }
}

/// The lazy flow stream behind [`Scenario::flow_source`]: an
/// `Iterator<Item = FlowSpec>` yielding arrivals in non-decreasing start
/// order. Wrap it in [`Iterator::peekable`] to use it as a
/// [`FlowSource`] for streaming admission.
pub struct ScenarioFlows {
    gen: FlowGen,
}

enum FlowGen {
    /// Pre-expanded t = 0 burst patterns (Permutation, Incast).
    List(std::vec::IntoIter<FlowSpec>),
    /// Poisson mix, generated on demand. Arrival times accumulate in
    /// **integer nanoseconds** — the old `SimTime += from_secs_f64(gap)`
    /// accumulation mixed float rounding into every step, drifting over
    /// long horizons.
    Mix {
        rng: DetRng,
        dist: FlowSizeDist,
        remaining: usize,
        n_nodes: u64,
        gap_secs: f64,
        t_ns: u64,
    },
    /// Seed-shuffled all-to-all pairs with Poisson starts.
    Shuffle {
        rng: DetRng,
        pairs: std::vec::IntoIter<(u32, u32)>,
        bytes: u64,
        gap_secs: f64,
        t_ns: u64,
    },
    /// The three-tenant service stream.
    Service(Box<ServiceGen>),
}

impl Iterator for ScenarioFlows {
    type Item = FlowSpec;

    fn next(&mut self) -> Option<FlowSpec> {
        match &mut self.gen {
            FlowGen::List(list) => list.next(),
            FlowGen::Mix {
                rng,
                dist,
                remaining,
                n_nodes,
                gap_secs,
                t_ns,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                *t_ns += (rng.exponential(*gap_secs) * NS_PER_SEC).round() as u64;
                let src = rng.below(*n_nodes) as u32;
                let mut dst = rng.below(*n_nodes) as u32;
                while dst == src {
                    dst = rng.below(*n_nodes) as u32;
                }
                Some(FlowSpec {
                    src,
                    dst,
                    bytes: dist.sample(rng).max(1),
                    start: SimTime::from_nanos(*t_ns),
                })
            }
            FlowGen::Shuffle {
                rng,
                pairs,
                bytes,
                gap_secs,
                t_ns,
            } => {
                let (src, dst) = pairs.next()?;
                *t_ns += (rng.exponential(*gap_secs) * NS_PER_SEC).round() as u64;
                Some(FlowSpec {
                    src,
                    dst,
                    bytes: *bytes,
                    start: SimTime::from_nanos(*t_ns),
                })
            }
            FlowGen::Service(g) => g.next_flow(),
        }
    }
}

/// Generator state of [`ScenarioKind::Service`]: one slot of lookahead
/// per tenant, merged by (start time, tenant index) — O(1) memory.
struct ServiceGen {
    n_nodes: u64,
    remaining: usize,
    // Request-mix tenant.
    rng: DetRng,
    web: FlowSizeDist,
    hadoop: FlowSizeDist,
    hadoop_share: f64,
    gap_secs: f64,
    diurnal_period_ns: u64,
    diurnal_min: f64,
    mix_t_ns: u64,
    mix_next: Option<FlowSpec>,
    // Background-shuffle tenant.
    shuffle_bytes: u64,
    shuffle_period_ns: u64,
    shuffle_k: u64,
    shuffle_next: Option<FlowSpec>,
    // Periodic-incast tenant.
    incast_backends: u64,
    incast_bytes: u64,
    incast_period_ns: u64,
    incast_wave: u64,
    incast_i: u64,
    incast_next: Option<FlowSpec>,
}

impl ServiceGen {
    /// Draw the mix tenant's next surviving arrival (diurnal thinning:
    /// rejected candidates advance time but emit nothing).
    fn advance_mix(&mut self) {
        loop {
            self.mix_t_ns += (self.rng.exponential(self.gap_secs) * NS_PER_SEC).round() as u64;
            let phase =
                (self.mix_t_ns % self.diurnal_period_ns) as f64 / self.diurnal_period_ns as f64;
            let p = self.diurnal_min
                + (1.0 - self.diurnal_min) * (0.5 - 0.5 * (std::f64::consts::TAU * phase).cos());
            if !self.rng.chance(p) {
                continue;
            }
            let src = self.rng.below(self.n_nodes) as u32;
            let mut dst = self.rng.below(self.n_nodes) as u32;
            while dst == src {
                dst = self.rng.below(self.n_nodes) as u32;
            }
            let hadoop = self.rng.chance(self.hadoop_share);
            let bytes = if hadoop {
                self.hadoop.sample(&mut self.rng)
            } else {
                self.web.sample(&mut self.rng)
            }
            .max(1);
            self.mix_next = Some(FlowSpec {
                src,
                dst,
                bytes,
                start: SimTime::from_nanos(self.mix_t_ns),
            });
            return;
        }
    }

    /// The shuffle tenant walks ordered pairs round-robin: transfer `k`
    /// covers pair `k mod n(n−1)` (canonical order: src-major, dst
    /// skipping src) at time `(k+1)·period`.
    fn advance_shuffle(&mut self) {
        let k = self.shuffle_k;
        self.shuffle_k += 1;
        let n = self.n_nodes;
        let idx = k % (n * (n - 1));
        let src = idx / (n - 1);
        let mut dst = idx % (n - 1);
        if dst >= src {
            dst += 1;
        }
        self.shuffle_next = Some(FlowSpec {
            src: src as u32,
            dst: dst as u32,
            bytes: self.shuffle_bytes,
            start: SimTime::from_nanos((k + 1) * self.shuffle_period_ns),
        });
    }

    /// Wave `w` (from 1) of the incast tenant: frontend `w mod n_nodes`
    /// receives one response from each of the `incast_backends` nodes
    /// after it, all offered at `w·period`.
    fn advance_incast(&mut self) {
        if self.incast_i == self.incast_backends {
            self.incast_wave += 1;
            self.incast_i = 0;
        }
        let w = self.incast_wave;
        let frontend = w % self.n_nodes;
        let src = (frontend + 1 + self.incast_i) % self.n_nodes;
        self.incast_i += 1;
        self.incast_next = Some(FlowSpec {
            src: src as u32,
            dst: frontend as u32,
            bytes: self.incast_bytes,
            start: SimTime::from_nanos(w * self.incast_period_ns),
        });
    }

    /// Pop the earliest tenant's flow (ties break by tenant index: mix,
    /// then shuffle, then incast) and refill that tenant's slot.
    fn next_flow(&mut self) -> Option<FlowSpec> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let slots = [
            self.mix_next.map(|f| f.start),
            self.shuffle_next.map(|f| f.start),
            self.incast_next.map(|f| f.start),
        ];
        let winner = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|t| (t, i)))
            .min()
            .expect("the mix tenant never runs dry")
            .1;
        match winner {
            0 => {
                let f = self.mix_next.take();
                self.advance_mix();
                f
            }
            1 => {
                let f = self.shuffle_next.take();
                self.advance_shuffle();
                f
            }
            _ => {
                let f = self.incast_next.take();
                self.advance_incast();
                f
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardust_fabric::{FabricConfig, FabricEngine};
    use stardust_topo::builders::{kary, two_tier, KaryParams, TwoTierParams};
    use stardust_transport::{Protocol, TransportSim};

    fn web_mix() -> Scenario {
        Scenario {
            name: "test-web-mix".into(),
            seed: 7,
            kind: ScenarioKind::Mix {
                dist: FlowSizeDist::fb_web(),
                n_flows: 50,
                node_gap: SimDuration::from_micros(320),
            },
        }
    }

    #[test]
    fn flow_lists_are_deterministic_and_valid() {
        for scn in [
            Scenario {
                name: "perm".into(),
                seed: 3,
                kind: ScenarioKind::Permutation { flow_bytes: 1_000 },
            },
            Scenario {
                name: "incast".into(),
                seed: 3,
                kind: ScenarioKind::Incast {
                    backends: 10,
                    response_bytes: 450_000,
                },
            },
            Scenario {
                name: "shuffle".into(),
                seed: 3,
                kind: ScenarioKind::Shuffle {
                    bytes_per_pair: 10_000,
                    node_gap: SimDuration::from_micros(100),
                },
            },
            web_mix(),
        ] {
            let a = scn.flows(16);
            let b = scn.flows(16);
            assert_eq!(a, b, "{}: expansion must be pure", scn.name);
            assert!(!a.is_empty());
            assert!(a.iter().all(|f| f.src != f.dst && f.bytes > 0));
            assert!(a.iter().all(|f| f.src < 16 && f.dst < 16));
        }
    }

    #[test]
    fn incast_backends_clamped_to_population() {
        let scn = Scenario {
            name: "incast-clamp".into(),
            seed: 1,
            kind: ScenarioKind::Incast {
                backends: 1_000,
                response_bytes: 1_000,
            },
        };
        let flows = scn.flows(8);
        assert_eq!(flows.len(), 7);
        assert!(flows.iter().all(|f| f.dst == 0 && f.src != 0));
    }

    #[test]
    fn mix_arrivals_are_increasing_poisson() {
        let flows = web_mix().flows(16);
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(flows.last().unwrap().start > SimTime::ZERO);
    }

    #[test]
    fn shuffle_covers_every_ordered_pair_exactly_once() {
        let n = 12usize;
        let scn = Scenario {
            name: "shuffle-cover".into(),
            seed: 9,
            kind: ScenarioKind::Shuffle {
                bytes_per_pair: 4_096,
                node_gap: SimDuration::from_micros(50),
            },
        };
        let flows = scn.flows(n);
        assert_eq!(flows.len(), n * (n - 1));
        // Every ordered pair appears exactly once…
        let mut pairs: Vec<(u32, u32)> = flows.iter().map(|f| (f.src, f.dst)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), n * (n - 1));
        // …so per-node load is normalized: each node sends and receives
        // exactly n−1 flows of equal size (the Mix-style invariant).
        for node in 0..n as u32 {
            assert_eq!(flows.iter().filter(|f| f.src == node).count(), n - 1);
            assert_eq!(flows.iter().filter(|f| f.dst == node).count(), n - 1);
        }
        assert!(flows.iter().all(|f| f.bytes == 4_096));
        // Poisson starts: non-decreasing, strictly past zero by the end.
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(flows.last().unwrap().start > SimTime::ZERO);
    }

    #[test]
    fn shuffle_order_is_seeded() {
        let kind = ScenarioKind::Shuffle {
            bytes_per_pair: 1_000,
            node_gap: SimDuration::from_micros(50),
        };
        let a = Scenario {
            name: "shuffle-seed".into(),
            seed: 1,
            kind: kind.clone(),
        }
        .flows(8);
        let b = Scenario {
            name: "shuffle-seed".into(),
            seed: 2,
            kind,
        }
        .flows(8);
        assert_ne!(a, b, "different seeds must shuffle the pair order");
    }

    #[test]
    fn one_spec_drives_both_engines() {
        let scn = web_mix();
        // Fabric side.
        let tt = two_tier(TwoTierParams::paper_scaled(16));
        let cfg = FabricConfig {
            host_ports: 1,
            host_port_bps: stardust_sim::units::gbps(40),
            ..FabricConfig::default()
        };
        let mut e = FabricEngine::new(tt.topo, cfg);
        let fab = scn.run(&mut e, SimTime::from_millis(20));
        assert_eq!(fab.len(), 50);
        assert_eq!(fab.completed(), 50, "lossless fabric must finish all");
        // Transport side, same spec, through the protocol wrapper.
        let ft = kary(KaryParams {
            k: 4,
            ..KaryParams::paper_6_3()
        });
        let sim = TransportSim::new(ft, stardust_transport::TransportConfig::default());
        let mut wrapped = crate::TransportFlowEngine::new(sim, Protocol::Stardust);
        let tra = scn.run(&mut wrapped, SimTime::from_millis(100));
        assert_eq!(tra.len(), 50);
        assert!(tra.completed() > 0);
        // Both tables carry real FCTs.
        assert!(fab.fct_quantile(0.5).unwrap() > SimDuration::ZERO);
        assert!(tra.fct_quantile(0.5).unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn fabric_scenario_runs_are_bit_identical() {
        let run = || {
            let scn = web_mix();
            let tt = two_tier(TwoTierParams::paper_scaled(16));
            let mut e = FabricEngine::new(tt.topo, FabricConfig::default());
            scn.run(&mut e, SimTime::from_millis(20))
        };
        assert_eq!(run(), run());
    }

    fn service() -> Scenario {
        Scenario {
            name: "test-service".into(),
            seed: 11,
            kind: ScenarioKind::Service {
                n_flows: 400,
                node_gap: SimDuration::from_micros(400),
                hadoop_share: 0.25,
                diurnal_period: SimDuration::from_millis(2),
                diurnal_min: 0.25,
                shuffle_bytes: 20_000,
                shuffle_period: SimDuration::from_micros(150),
                incast_backends: 6,
                incast_bytes: 30_000,
                incast_period: SimDuration::from_micros(500),
            },
        }
    }

    #[test]
    fn lazy_source_reproduces_eager_list_bit_identically() {
        // The tentpole invariant: `flows()` IS the collected
        // `flow_source()` — pin it for every kind, plus time order.
        for scn in [
            Scenario {
                name: "perm".into(),
                seed: 3,
                kind: ScenarioKind::Permutation { flow_bytes: 1_000 },
            },
            Scenario {
                name: "incast".into(),
                seed: 3,
                kind: ScenarioKind::Incast {
                    backends: 10,
                    response_bytes: 450_000,
                },
            },
            Scenario {
                name: "shuffle".into(),
                seed: 3,
                kind: ScenarioKind::Shuffle {
                    bytes_per_pair: 10_000,
                    node_gap: SimDuration::from_micros(100),
                },
            },
            web_mix(),
            service(),
        ] {
            let eager = scn.flows(16);
            let lazy: Vec<FlowSpec> = scn.flow_source(16).collect();
            assert_eq!(eager, lazy, "{}: lazy must equal eager", scn.name);
            assert!(
                eager.windows(2).all(|w| w[0].start <= w[1].start),
                "{}: arrivals must come out in time order",
                scn.name
            );
        }
    }

    #[test]
    fn mix_arrivals_accumulate_in_whole_nanoseconds() {
        // The drift fix: every start time is an integer nanosecond count,
        // so long-horizon accumulation is exact integer arithmetic.
        for f in web_mix().flows(16) {
            assert_eq!(f.start.as_ps() % 1_000, 0, "start {:?}", f.start);
        }
    }

    #[test]
    fn service_merges_all_three_tenants_in_time_order() {
        let scn = service();
        let flows = scn.flows(16);
        assert_eq!(flows.len(), 400);
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(flows
            .iter()
            .all(|f| f.src != f.dst && f.src < 16 && f.dst < 16));
        assert!(flows.iter().all(|f| f.bytes > 0));
        // Shuffle transfers are recognizable by their fixed size…
        let shuffles = flows.iter().filter(|f| f.bytes == 20_000).count();
        assert!(shuffles > 10, "shuffle tenant missing ({shuffles})");
        // …incast waves by their many-to-one bursts at one instant.
        let incasts = flows.iter().filter(|f| f.bytes == 30_000).count();
        assert!(incasts >= 6, "incast tenant missing ({incasts})");
        // And the mix tenant must reach into Hadoop-sized flows.
        assert!(
            flows.iter().any(|f| f.bytes > 10_485_760),
            "hadoop share missing from the mix"
        );
        // Purity.
        assert_eq!(flows, scn.flows(16));
    }

    #[test]
    fn service_diurnal_curve_thins_the_trough() {
        // With a period spanning the whole run, early arrivals (trough,
        // p ≈ diurnal_min) must be sparser than arrivals near the peak
        // (half a period in). Compare mix-tenant counts in the first and
        // second quarters of the half-period.
        let scn = Scenario {
            name: "diurnal".into(),
            seed: 5,
            kind: ScenarioKind::Service {
                n_flows: 2_000,
                node_gap: SimDuration::from_micros(100),
                hadoop_share: 0.0,
                diurnal_period: SimDuration::from_millis(40),
                diurnal_min: 0.1,
                shuffle_bytes: 0,
                shuffle_period: SimDuration::from_micros(100),
                incast_backends: 0,
                incast_bytes: 1,
                incast_period: SimDuration::from_micros(100),
            },
        };
        let flows = scn.flows(16);
        let q = SimDuration::from_millis(10);
        let first = flows.iter().filter(|f| f.start < SimTime::ZERO + q).count();
        let second = flows
            .iter()
            .filter(|f| f.start >= SimTime::ZERO + q && f.start < SimTime::ZERO + q + q)
            .count();
        assert!(
            second as f64 > 2.0 * first as f64,
            "peak quarter ({second}) must out-arrive trough quarter ({first})"
        );
    }

    #[test]
    fn validate_for_surfaces_impossible_incasts() {
        let scn = Scenario {
            name: "too-big".into(),
            seed: 1,
            kind: ScenarioKind::Incast {
                backends: 1_000,
                response_bytes: 1_000,
            },
        };
        let err = scn.validate_for(8).unwrap_err();
        assert!(err.contains("1000 backends"), "got: {err}");
        assert!(err.contains("7 possible sources"), "got: {err}");
        // A service with an oversized incast tenant fails too — and its
        // expansion panics rather than silently clamping.
        let mut svc = service();
        if let ScenarioKind::Service {
            incast_backends, ..
        } = &mut svc.kind
        {
            *incast_backends = 16;
        }
        assert!(svc.validate_for(16).is_err());
        assert!(svc.validate_for(17).is_ok());
        // Within-population incasts pass.
        assert!(service().validate_for(16).is_ok());
    }

    #[test]
    #[should_panic(expected = "backends")]
    fn service_expansion_rejects_oversized_incast() {
        let mut svc = service();
        if let ScenarioKind::Service {
            incast_backends, ..
        } = &mut svc.kind
        {
            *incast_backends = 99;
        }
        svc.flows(16);
    }

    #[test]
    fn streamed_run_matches_eager_on_the_fabric() {
        let scn = web_mix();
        let mk = || {
            let tt = two_tier(TwoTierParams::paper_scaled(16));
            FabricEngine::new(tt.topo, FabricConfig::default())
        };
        // Horizon past every arrival, so both paths offer all 50 flows.
        let horizon = SimTime::from_millis(20);
        let eager = scn.run(&mut mk(), horizon);
        for window_us in [5, 100, 50_000] {
            let mut e = mk();
            let streamed = scn.run_streamed(
                &mut e,
                &FailureSchedule::default(),
                horizon,
                SimDuration::from_micros(window_us),
            );
            assert_eq!(streamed.0, eager, "window {window_us}µs diverged");
        }
    }

    #[test]
    fn streamed_run_matches_eager_under_failures() {
        let scn = web_mix();
        let fail_link = stardust_topo::LinkId(0);
        let schedule = FailureSchedule::new()
            .fail_at(SimTime::from_micros(300), fail_link)
            .restore_at(SimTime::from_micros(900), fail_link);
        let horizon = SimTime::from_millis(20);
        let mk = || {
            let cfg = FabricConfig {
                reach_interval: Some(SimDuration::from_micros(50)),
                ..FabricConfig::default()
            };
            FabricEngine::new(two_tier(TwoTierParams::paper_scaled(16)).topo, cfg)
        };
        let mut a = mk();
        let eager = scn.run_with_failures(&mut a, &schedule, horizon);
        let mut b = mk();
        let (streamed, applied) =
            scn.run_streamed(&mut b, &schedule, horizon, SimDuration::from_micros(40));
        assert_eq!(applied, 2, "both link events apply on the fabric");
        assert_eq!(streamed, eager, "failure interleaving diverged");
    }

    #[test]
    fn streamed_run_matches_eager_on_the_transport() {
        let scn = web_mix();
        let mk = || {
            let ft = kary(KaryParams {
                k: 4,
                ..KaryParams::paper_6_3()
            });
            let sim = TransportSim::new(ft, stardust_transport::TransportConfig::default());
            crate::TransportFlowEngine::new(sim, Protocol::Stardust)
        };
        let horizon = SimTime::from_millis(100);
        let eager = scn.run(&mut mk(), horizon);
        let mut e = mk();
        let streamed = scn.run_streamed(
            &mut e,
            &FailureSchedule::default(),
            horizon,
            SimDuration::from_micros(200),
        );
        assert_eq!(streamed.0, eager);
    }
}
